//! The throughput plateau: why exceeding the bandwidth envelope is
//! pointless, from two angles.
//!
//! The analytical model says cores past the traffic crossover get
//! throttled; the discrete-event simulation shows the same plateau
//! emerging from queueing on a shared DRAM channel. Run both and compare.
//!
//! Run: `cargo run --release --example throughput_plateau`

use bandwidth_wall::cache_sim::{simulate_throughput, ThroughputSimConfig};
use bandwidth_wall::model::{Baseline, Technique, ThroughputModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Analytic: 32-CEA next-generation die.
    let model = ThroughputModel::new(Baseline::niagara2_like(), 32.0);
    println!("analytic throughput (baseline-core equivalents):");
    for point in model.curve([4, 8, 11, 16, 24, 28])? {
        println!(
            "  {:>2} cores -> {:>5.2} total, {:>4.2} per core",
            point.cores, point.throughput, point.per_core_throughput
        );
    }
    println!("  plateau = {:.2}", model.plateau_throughput()?);

    // Link compression doubles the envelope — and the plateau.
    let improved = ThroughputModel::new(Baseline::niagara2_like(), 32.0)
        .with_technique(Technique::link_compression(2.0)?);
    println!(
        "  with 2x link compression the plateau rises to {:.2}",
        improved.plateau_throughput()?
    );

    // Simulated: cores sharing one DRAM channel.
    println!("\nsimulated IPC on a shared 4 B/cycle channel:");
    for cores in [2u16, 4, 8, 16, 32] {
        let r = simulate_throughput(ThroughputSimConfig {
            cores,
            misses_per_instruction: 0.02,
            line_bytes: 64,
            bytes_per_cycle: 4.0,
            access_latency: 200,
            instructions_per_core: 100_000,
        });
        println!(
            "  {:>2} cores -> IPC {:>4.2}, queue delay {:>5.0} cycles, channel {:>3.0}%",
            cores,
            r.ipc,
            r.average_queue_delay,
            r.channel_utilization * 100.0
        );
    }
    println!("\nboth views agree: past saturation, extra cores only lengthen the queue");
    Ok(())
}
