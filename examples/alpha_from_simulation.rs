//! End-to-end pipeline: measure a workload's α on the simulator, then
//! feed it to the analytical model.
//!
//! This is the full methodology of the paper in one program:
//!  1. generate a synthetic workload (unknown α, as far as this program
//!     is concerned),
//!  2. profile its miss rate at many cache sizes in one pass,
//!  3. fit the power law of cache misses,
//!  4. ask the model how many cores the next generations support for
//!     *this* workload.
//!
//! Run: `cargo run --release --example alpha_from_simulation`

use bandwidth_wall::model::{Alpha, Baseline, GenerationSweep};
use bandwidth_wall::numerics::PowerLawFit;
use bandwidth_wall::trace::{MissRateProbe, StackDistanceTrace, TraceSource};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The workload under study (pretend we don't know alpha = 0.45).
    let mut workload = StackDistanceTrace::builder(0.45)
        .seed(7)
        .max_distance(1 << 16)
        .name("mystery-workload")
        .build();

    // 2. Profile miss rates at ten cache sizes in a single pass.
    let capacities: Vec<usize> = (7..=15).map(|i| 1usize << i).collect();
    let mut probe = MissRateProbe::new(&capacities);
    workload.warm_probe(&mut probe);
    for access in workload.iter().take(300_000) {
        probe.observe(access.address() / 64);
    }
    let rates = probe.miss_rates();
    println!("measured miss rates for '{}':", workload.name());
    for (&c, &r) in capacities.iter().zip(&rates) {
        println!("  {:>6} KB -> {:.4}", c * 64 / 1024, r);
    }

    // 3. Fit the power law.
    let xs: Vec<f64> = capacities.iter().map(|&c| c as f64).collect();
    let fit = PowerLawFit::fit(&xs, &rates)?;
    println!(
        "\nfitted power law: alpha = {:.3} (R² = {:.4})",
        fit.alpha, fit.r_squared
    );

    // 4. Ask the model about core scaling for this workload.
    let baseline = Baseline::niagara2_like().with_alpha(Alpha::new(fit.alpha)?);
    println!("\ncore scaling under a constant traffic envelope:");
    for result in GenerationSweep::new(baseline).run(4)? {
        println!(
            "  {:>3.0}x transistors -> {:>3} cores (ideal {:>3}), {:>4.1}% die for cores",
            result.scaling_ratio,
            result.supportable_cores,
            result.ideal_cores,
            result.core_area_fraction * 100.0
        );
    }
    Ok(())
}
