//! Design-space exploration: a CMP architect's view of the bandwidth
//! wall.
//!
//! Given a die budget two generations out (64 CEAs), this example walks
//! the core/cache allocation curve, examines how much envelope growth
//! buys, checks workload sensitivity (α), and ranks Table 2's techniques
//! by the cores they unlock.
//!
//! Run: `cargo run --example design_space`

use bandwidth_wall::model::{
    catalog, Alpha, AssumptionLevel, Baseline, ScalingProblem, TrafficModel,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let baseline = Baseline::niagara2_like();
    let die = 64.0; // two generations out

    println!("== allocation curve (64-CEA die, alpha = 0.5) ==");
    let model = TrafficModel::new(baseline);
    for cores in [8.0, 14.0, 16.0, 24.0, 32.0, 48.0] {
        let traffic = model.relative_traffic_on_die(die, cores)?;
        let verdict = if traffic <= 1.0 { "fits" } else { "exceeds" };
        println!(
            "  {cores:>4.0} cores / {:>4.0} cache CEAs -> {traffic:>5.2}x traffic ({verdict})",
            die - cores
        );
    }

    println!("\n== how much does envelope growth buy? ==");
    for growth in [1.0, 1.21, 1.5, 2.0, 4.0] {
        let p = ScalingProblem::new(baseline, die).with_bandwidth_growth(growth);
        println!(
            "  envelope x{growth:<4} -> {} cores",
            p.max_supportable_cores()?
        );
    }

    println!("\n== workload sensitivity ==");
    for (label, alpha) in [
        ("SPEC-like   (α=0.25)", Alpha::SPEC2006),
        ("OLTP-2-like (α=0.36)", Alpha::COMMERCIAL_MIN),
        ("average     (α=0.50)", Alpha::COMMERCIAL_AVERAGE),
        ("OLTP-4-like (α=0.62)", Alpha::COMMERCIAL_MAX),
    ] {
        let p = ScalingProblem::new(baseline.with_alpha(alpha), die);
        println!("  {label} -> {} cores", p.max_supportable_cores()?);
    }

    println!("\n== technique ranking (realistic assumptions, 64-CEA die) ==");
    let mut ranked: Vec<(String, u64)> = catalog()
        .iter()
        .map(|profile| {
            let cores = ScalingProblem::new(baseline, die)
                .with_technique(profile.technique(AssumptionLevel::Realistic).unwrap())
                .max_supportable_cores()
                .unwrap();
            (format!("{} ({})", profile.name(), profile.label()), cores)
        })
        .collect();
    ranked.sort_by_key(|&(_, cores)| std::cmp::Reverse(cores));
    for (name, cores) in ranked {
        println!("  {cores:>3} cores  {name}");
    }
    println!(
        "  (baseline without techniques: {} cores)",
        ScalingProblem::new(baseline, die).max_supportable_cores()?
    );
    Ok(())
}
