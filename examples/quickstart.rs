//! Quickstart: the bandwidth wall in a dozen lines.
//!
//! Reproduces the paper's headline claims with the analytical model:
//! starting from a balanced 8-core CMP, how far can core counts scale
//! under a fixed memory-traffic envelope, and how much do bandwidth
//! conservation techniques help?
//!
//! Run: `cargo run --example quickstart`

use bandwidth_wall::model::{Baseline, GenerationSweep, ScalingProblem, Technique};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's baseline: Niagara2-like, 8 cores + 8 CEAs of L2 cache,
    // alpha = 0.5 (average commercial workload).
    let baseline = Baseline::niagara2_like();

    // Question 1: next generation (32 CEAs), constant traffic envelope.
    let next_gen = ScalingProblem::new(baseline, 32.0);
    println!(
        "next generation supports {} cores (proportional scaling wants {})",
        next_gen.max_supportable_cores()?,
        next_gen.proportional_cores(),
    );

    // Question 2: four generations out.
    let sweep = GenerationSweep::new(baseline).run(4)?;
    let at_16x = &sweep[3];
    println!(
        "at 16x transistors: {} cores on {:.0}% of the die (ideal: {})",
        at_16x.supportable_cores,
        at_16x.core_area_fraction * 100.0,
        at_16x.ideal_cores,
    );

    // Question 3: what do bandwidth conservation techniques buy?
    for (name, technique) in [
        ("DRAM caches (8x density)", Technique::dram_cache(8.0)?),
        ("link compression (2x)", Technique::link_compression(2.0)?),
        (
            "small cache lines (40% unused)",
            Technique::small_cache_lines(0.4)?,
        ),
    ] {
        let cores = ScalingProblem::new(baseline, 32.0)
            .with_technique(technique)
            .max_supportable_cores()?;
        println!("with {name}: {cores} cores next generation");
    }

    // Question 4: stack everything (the paper's 183-core headline).
    let everything = ScalingProblem::new(baseline, 256.0).with_techniques([
        Technique::cache_link_compression(2.0)?,
        Technique::dram_cache(8.0)?,
        Technique::stacked_cache(1)?,
        Technique::small_cache_lines(0.4)?,
    ]);
    println!(
        "all techniques combined at 16x: {} cores — super-proportional",
        everything.max_supportable_cores()?
    );
    Ok(())
}
