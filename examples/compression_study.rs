//! Compression study: derive cache/link compression ratios from real
//! engines and plug them into the scaling model.
//!
//! Rather than assuming Table 2's 2x compression, this example runs FPC,
//! BDI and the value-locality link compressor over a synthetic commercial
//! value stream, validates them against a compressed-cache simulation,
//! and asks the model what the *measured* ratios buy.
//!
//! Run: `cargo run --release --example compression_study`

use bandwidth_wall::cache_sim::{CacheConfig, CompressedCache};
use bandwidth_wall::compress::{evaluate, Bdi, Fpc, LinkCompressor};
use bandwidth_wall::model::{Baseline, ScalingProblem, Technique};
use bandwidth_wall::trace::values::{LineValueGenerator, ValueProfile};
use bandwidth_wall::trace::{StackDistanceTrace, TraceSource};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let values = LineValueGenerator::new(ValueProfile::commercial(), 11);
    let lines: Vec<Vec<u8>> = (0..4000u64)
        .map(|l| values.line_bytes(l * 64, 64))
        .collect();

    // Static compression ratios over the value stream.
    let fpc_ratio = evaluate(&Fpc::new(), lines.iter().map(|l| l.as_slice())).ratio();
    let bdi_ratio = evaluate(&Bdi::new(), lines.iter().map(|l| l.as_slice())).ratio();
    let mut link = LinkCompressor::new();
    for line in &lines {
        link.transfer(line);
    }
    let link_ratio = link.stats().ratio();
    println!("measured engine ratios on the commercial value profile:");
    println!("  FPC  {fpc_ratio:.2}x   BDI  {bdi_ratio:.2}x   link-dict  {link_ratio:.2}x");

    // Cross-check: a compressed cache under a real access stream should
    // realise roughly the FPC ratio as extra capacity.
    let mut cache = CompressedCache::new(CacheConfig::new(64 << 10, 64, 8)?, Box::new(Fpc::new()));
    let mut trace = StackDistanceTrace::builder(0.5)
        .seed(3)
        .max_distance(1 << 13)
        .build();
    for access in trace.iter().take(100_000) {
        let line_addr = access.address() / 64 * 64;
        let data = values.line_bytes(line_addr, 64);
        cache.access_with_data(line_addr, access.kind().is_write(), &data);
    }
    println!(
        "compressed-cache simulation: effective capacity factor {:.2}x ({} lines vs {} uncompressed)",
        cache.effective_capacity_factor(),
        cache.resident_lines(),
        cache.uncompressed_capacity_lines()
    );

    // Feed the measured ratios to the model.
    let baseline = Baseline::niagara2_like();
    let base = ScalingProblem::new(baseline, 32.0).max_supportable_cores()?;
    let cc = ScalingProblem::new(baseline, 32.0)
        .with_technique(Technique::cache_compression(fpc_ratio)?)
        .max_supportable_cores()?;
    let lc = ScalingProblem::new(baseline, 32.0)
        .with_technique(Technique::link_compression(link_ratio)?)
        .max_supportable_cores()?;
    let both = ScalingProblem::new(baseline, 32.0)
        .with_techniques([Technique::cache_link_compression(
            fpc_ratio.min(link_ratio),
        )?])
        .max_supportable_cores()?;
    println!("\nnext-generation core counts with the *measured* ratios:");
    println!("  no compression        {base} cores");
    println!("  cache compression     {cc} cores ({fpc_ratio:.2}x FPC)");
    println!("  link compression      {lc} cores ({link_ratio:.2}x dictionary)");
    println!("  cache+link (conserv.) {both} cores");
    Ok(())
}
