//! The analytical CMP memory-traffic model of *"Scaling the Bandwidth
//! Wall: Challenges in and Avenues for CMP Scaling"* (Rogers, Krishna,
//! Bell, Vu, Jiang, Solihin — ISCA 2009).
//!
//! The model predicts how much off-chip memory traffic a chip
//! multiprocessor generates as a function of its die-area split between
//! cores and caches, using the power law of cache misses, and answers the
//! paper's central question: **how many cores can future technology
//! generations support without outgrowing the off-chip bandwidth
//! envelope?**
//!
//! # Tour
//!
//! * [`Alpha`], [`Baseline`] — workload exponent and the reference CMP
//!   (Niagara2-like: 8 cores + 8 CEAs of cache, α = 0.5).
//! * [`MissRateCurve`] — the power law of cache misses (Equations 1–2).
//! * [`TrafficModel`] — relative chip traffic between configurations
//!   (Equations 3–5).
//! * [`Technique`] and [`catalog()`] — the nine bandwidth-conservation
//!   techniques of Section 6 / Table 2, composable into sets.
//! * [`ScalingProblem`], [`GenerationSweep`] — the Equation 7 solver and
//!   multi-generation sweeps (Figures 3, 15–17).
//! * [`combination`] — the fifteen technique combinations of Figure 16.
//! * [`sharing`] — the data-sharing extension (Equations 13–14,
//!   Figure 13).
//!
//! # Example
//!
//! The paper's headline numbers in five lines:
//!
//! ```
//! use bandwall_model::{Baseline, GenerationSweep, ScalingProblem, Technique};
//!
//! // Four generations out, constant traffic: 24 cores, not 128.
//! let results = GenerationSweep::new(Baseline::niagara2_like()).run(4)?;
//! assert_eq!(results[3].supportable_cores, 24);
//!
//! // DRAM caches lift the fourth generation to 47 cores.
//! let dram = ScalingProblem::new(Baseline::niagara2_like(), 256.0)
//!     .with_technique(Technique::dram_cache(8.0)?);
//! assert_eq!(dram.max_supportable_cores()?, 47);
//! # Ok::<(), bandwall_model::ModelError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod canonical;
pub mod catalog;
pub mod combination;
pub mod descriptor;
pub mod effects;
mod error;
pub mod mix;
mod params;
mod power_law;
pub mod roadmap;
mod scaling;
pub mod sharing;
pub mod techniques;
mod throughput;
mod traffic;

pub use canonical::CanonicalProblem;
pub use catalog::{catalog, extended_catalog, AssumptionLevel, Rating, TechniqueProfile};
pub use descriptor::{ParamDomain, ParamSpec, TechniqueDescriptor};
pub use effects::Effects;
pub use error::ModelError;
pub use params::{Alpha, Baseline};
pub use power_law::MissRateCurve;
pub use scaling::{GenerationResult, GenerationSweep, ScalingProblem, ScalingSolution};
pub use techniques::{Category, Technique};
pub use throughput::{ThroughputModel, ThroughputPoint};
pub use traffic::TrafficModel;
