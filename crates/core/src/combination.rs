//! Named technique combinations, including the fifteen studied in
//! Figure 16.
//!
//! A [`Combination`] is simply a labelled set of catalogue techniques built
//! at a chosen [`AssumptionLevel`]. When a combination pairs DRAM caches
//! with 3D stacking, the DRAM density applies to both the core die and the
//! stacked layer (both dies use DRAM cells), which is how the paper reaches
//! 183 cores for CC/LC + DRAM + 3D + SmCl at the fourth generation.

use crate::catalog::{profile, AssumptionLevel};
use crate::error::ModelError;
use crate::techniques::Technique;
use std::fmt;

/// A named set of techniques (one x-axis group of Figure 16).
///
/// # Examples
///
/// ```
/// use bandwall_model::combination::Combination;
/// use bandwall_model::catalog::AssumptionLevel;
/// use bandwall_model::{Baseline, ScalingProblem};
///
/// let combo = Combination::from_labels(&["CC/LC", "DRAM", "3D", "SmCl"],
///                                      AssumptionLevel::Realistic)?;
/// let p = ScalingProblem::new(Baseline::niagara2_like(), 256.0)
///     .with_techniques(combo.techniques().iter().copied());
/// assert_eq!(p.max_supportable_cores()?, 183);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Combination {
    name: String,
    techniques: Vec<Technique>,
}

impl Combination {
    /// Builds a combination from catalogue labels (`"CC"`, `"DRAM"`, `"3D"`,
    /// `"Fltr"`, `"SmCo"`, `"LC"`, `"Sect"`, `"SmCl"`, `"CC/LC"`) at the
    /// given assumption level. The display name joins the labels with
    /// `" + "` as in the paper's figure.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] for an unknown label.
    pub fn from_labels(labels: &[&str], level: AssumptionLevel) -> Result<Self, ModelError> {
        let mut techniques = Vec::with_capacity(labels.len());
        for &label in labels {
            let p = profile(label).ok_or(ModelError::InvalidParameter {
                name: "label",
                value: f64::NAN,
                constraint: "must be a Table 2 technique label",
            })?;
            techniques.push(p.technique(level)?);
        }
        Ok(Combination {
            name: labels.join(" + "),
            techniques,
        })
    }

    /// Builds a combination from explicit techniques with a custom name.
    pub fn new<I>(name: impl Into<String>, techniques: I) -> Self
    where
        I: IntoIterator<Item = Technique>,
    {
        Combination {
            name: name.into(),
            techniques: techniques.into_iter().collect(),
        }
    }

    /// The combination's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The constituent techniques.
    pub fn techniques(&self) -> &[Technique] {
        &self.techniques
    }
}

impl fmt::Display for Combination {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// The fifteen technique combinations of Figure 16, in x-axis order
/// (IDEAL and BASE excluded; they carry no techniques).
///
/// # Errors
///
/// Never fails for the built-in label sets; the `Result` mirrors
/// [`Combination::from_labels`].
///
/// # Examples
///
/// ```
/// use bandwall_model::combination::figure16_combinations;
/// use bandwall_model::catalog::AssumptionLevel;
///
/// let combos = figure16_combinations(AssumptionLevel::Realistic)?;
/// assert_eq!(combos.len(), 15);
/// assert_eq!(combos[0].name(), "CC + DRAM + 3D");
/// assert_eq!(combos.last().unwrap().name(), "CC/LC + DRAM + 3D + SmCl");
/// # Ok::<(), bandwall_model::ModelError>(())
/// ```
pub fn figure16_combinations(level: AssumptionLevel) -> Result<Vec<Combination>, ModelError> {
    const SETS: [&[&str]; 15] = [
        &["CC", "DRAM", "3D"],
        &["CC/LC", "DRAM"],
        &["CC", "3D", "Fltr"],
        &["CC/LC", "Fltr"],
        &["DRAM", "3D", "LC"],
        &["DRAM", "Fltr", "LC"],
        &["DRAM", "LC", "Sect"],
        &["3D", "Fltr", "LC"],
        &["SmCl", "LC"],
        &["CC/LC", "SmCl"],
        &["DRAM", "3D", "SmCl"],
        &["CC/LC", "DRAM", "SmCl"],
        &["CC/LC", "3D", "SmCl"],
        &["CC/LC", "DRAM", "3D"],
        &["CC/LC", "DRAM", "3D", "SmCl"],
    ];
    SETS.iter()
        .map(|labels| Combination::from_labels(labels, level))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Baseline;
    use crate::scaling::ScalingProblem;

    #[test]
    fn from_labels_builds_techniques() {
        let c = Combination::from_labels(&["CC", "LC"], AssumptionLevel::Realistic).unwrap();
        assert_eq!(c.name(), "CC + LC");
        assert_eq!(c.techniques().len(), 2);
        assert_eq!(c.to_string(), "CC + LC");
    }

    #[test]
    fn unknown_label_rejected() {
        assert!(Combination::from_labels(&["XYZ"], AssumptionLevel::Realistic).is_err());
    }

    #[test]
    fn figure16_has_15_combinations() {
        let combos = figure16_combinations(AssumptionLevel::Realistic).unwrap();
        assert_eq!(combos.len(), 15);
    }

    #[test]
    fn headline_combination_reaches_183_cores_at_16x() {
        let combos = figure16_combinations(AssumptionLevel::Realistic).unwrap();
        let full = combos.last().unwrap();
        let p = ScalingProblem::new(Baseline::niagara2_like(), 256.0)
            .with_techniques(full.techniques().iter().copied());
        assert_eq!(p.max_supportable_cores().unwrap(), 183);
    }

    #[test]
    fn direct_reduction_of_smcl_plus_lc_is_70_percent() {
        // "the combination of link compression and small cache lines alone
        // can directly reduce memory traffic by 70%"
        let c = Combination::from_labels(&["SmCl", "LC"], AssumptionLevel::Realistic).unwrap();
        let effects = crate::techniques::combine(c.techniques());
        let reduction = 1.0 - 1.0 / effects.traffic_divisor();
        assert!((reduction - 0.70).abs() < 0.01, "reduction = {reduction}");
    }

    #[test]
    fn combinations_dominate_their_parts() {
        // Each combination should support at least as many cores as any of
        // its constituent techniques alone.
        let base = Baseline::niagara2_like();
        for combo in figure16_combinations(AssumptionLevel::Realistic).unwrap() {
            let combined = ScalingProblem::new(base, 64.0)
                .with_techniques(combo.techniques().iter().copied())
                .max_supportable_cores()
                .unwrap();
            for &t in combo.techniques() {
                let single = ScalingProblem::new(base, 64.0)
                    .with_technique(t)
                    .max_supportable_cores()
                    .unwrap();
                assert!(
                    combined >= single,
                    "{}: combined {combined} < single {single} ({t})",
                    combo.name()
                );
            }
        }
    }

    #[test]
    fn custom_combination() {
        let c = Combination::new("custom", [Technique::link_compression(2.0).unwrap()]);
        assert_eq!(c.name(), "custom");
        assert_eq!(c.techniques().len(), 1);
    }
}
