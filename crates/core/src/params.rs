//! Model parameters: the power-law exponent and the baseline CMP
//! configuration (Table 1 of the paper).

use crate::error::ModelError;
use std::fmt;

/// The cache-sensitivity exponent `α` of the power law of cache misses.
///
/// `α` measures how strongly a workload's miss rate responds to cache size:
/// `m = m0 · (C/C0)^-α`. Hartstein et al. observed `α ∈ [0.3, 0.7]` with an
/// average of 0.5 (the "√2 rule"); the paper's commercial workloads span
/// 0.36–0.62 (average 0.48) and its SPEC 2006 aggregate fits `α = 0.25`.
///
/// The newtype guarantees `0 < α` and finiteness, so downstream arithmetic
/// never has to re-validate.
///
/// # Examples
///
/// ```
/// use bandwall_model::Alpha;
///
/// let alpha = Alpha::new(0.5)?;
/// assert_eq!(alpha.get(), 0.5);
/// assert!(Alpha::new(-0.1).is_err());
/// assert!(Alpha::new(f64::NAN).is_err());
/// # Ok::<(), bandwall_model::ModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Alpha(f64);

impl Alpha {
    /// The paper's default `α = 0.5` ("average commercial workload").
    pub const COMMERCIAL_AVERAGE: Alpha = Alpha(0.5);
    /// Smallest per-application commercial `α` observed in Figure 1 (OLTP-2).
    pub const COMMERCIAL_MIN: Alpha = Alpha(0.36);
    /// Largest per-application commercial `α` observed in Figure 1 (OLTP-4).
    pub const COMMERCIAL_MAX: Alpha = Alpha(0.62);
    /// The SPEC 2006 aggregate `α` from Figure 1.
    pub const SPEC2006: Alpha = Alpha(0.25);

    /// Creates a validated exponent.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] unless `0 < value` and the
    /// value is finite. (Values above 1 are unusual but legal; the paper
    /// discusses `α = 0.9` hypothetically.)
    pub fn new(value: f64) -> Result<Self, ModelError> {
        if value.is_finite() && value > 0.0 {
            Ok(Alpha(value))
        } else {
            Err(ModelError::InvalidParameter {
                name: "alpha",
                value,
                constraint: "must be finite and positive",
            })
        }
    }

    /// Returns the raw exponent.
    pub fn get(self) -> f64 {
        self.0
    }

    /// Evaluates the dampening factor `x^-α` applied to a relative
    /// cache-capacity change `x`.
    ///
    /// # Examples
    ///
    /// ```
    /// use bandwall_model::Alpha;
    ///
    /// // Quadrupling cache per core halves traffic at α = 0.5.
    /// let damp = Alpha::COMMERCIAL_AVERAGE.dampen(4.0);
    /// assert!((damp - 0.5).abs() < 1e-12);
    /// ```
    pub fn dampen(self, capacity_ratio: f64) -> f64 {
        capacity_ratio.powf(-self.0)
    }
}

impl fmt::Display for Alpha {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "α={}", self.0)
    }
}

impl TryFrom<f64> for Alpha {
    type Error = ModelError;

    fn try_from(value: f64) -> Result<Self, Self::Error> {
        Alpha::new(value)
    }
}

/// The baseline CMP configuration that all scaled designs are compared
/// against (Section 5.1 of the paper).
///
/// Die area is measured in *core-equivalent areas* (CEAs): one CEA is the
/// area of one core plus its L1 caches. The paper's baseline is modelled on
/// Sun Niagara2 — a *balanced* 16-CEA chip with 8 cores and 8 CEAs of L2
/// cache (~4 MB), running a workload with `α = 0.5`.
///
/// # Examples
///
/// ```
/// use bandwall_model::{Alpha, Baseline};
///
/// let base = Baseline::niagara2_like();
/// assert_eq!(base.cores(), 8.0);
/// assert_eq!(base.cache_ceas(), 8.0);
/// assert_eq!(base.cache_per_core(), 1.0);
/// assert_eq!(base.total_ceas(), 16.0);
///
/// let custom = Baseline::new(4.0, 12.0, Alpha::new(0.36)?)?;
/// assert_eq!(custom.cache_per_core(), 3.0);
/// # Ok::<(), bandwall_model::ModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Baseline {
    cores: f64,
    cache_ceas: f64,
    alpha: Alpha,
}

impl Baseline {
    /// Creates a baseline of `cores` cores (P₁) and `cache_ceas` CEAs of
    /// cache (C₁) for a workload with exponent `alpha`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] unless both `cores` and
    /// `cache_ceas` are finite and strictly positive (a baseline with zero
    /// cache would make the per-core ratio `S₁` degenerate).
    pub fn new(cores: f64, cache_ceas: f64, alpha: Alpha) -> Result<Self, ModelError> {
        if !(cores.is_finite() && cores > 0.0) {
            return Err(ModelError::InvalidParameter {
                name: "cores",
                value: cores,
                constraint: "must be finite and positive",
            });
        }
        if !(cache_ceas.is_finite() && cache_ceas > 0.0) {
            return Err(ModelError::InvalidParameter {
                name: "cache_ceas",
                value: cache_ceas,
                constraint: "must be finite and positive",
            });
        }
        Ok(Baseline {
            cores,
            cache_ceas,
            alpha,
        })
    }

    /// The paper's baseline: 8 cores, 8 CEAs of cache, `α = 0.5`
    /// (Niagara2-like balanced design, Section 5.1).
    pub fn niagara2_like() -> Self {
        Baseline {
            cores: 8.0,
            cache_ceas: 8.0,
            alpha: Alpha::COMMERCIAL_AVERAGE,
        }
    }

    /// Returns the same baseline with a different workload exponent
    /// (used for the α-sensitivity study of Figure 17).
    #[must_use]
    pub fn with_alpha(mut self, alpha: Alpha) -> Self {
        self.alpha = alpha;
        self
    }

    /// Number of baseline cores, `P₁`.
    pub fn cores(&self) -> f64 {
        self.cores
    }

    /// Baseline cache allocation in CEAs, `C₁`.
    pub fn cache_ceas(&self) -> f64 {
        self.cache_ceas
    }

    /// Baseline cache per core, `S₁ = C₁ / P₁`.
    pub fn cache_per_core(&self) -> f64 {
        self.cache_ceas / self.cores
    }

    /// Total baseline die budget, `N₁ = P₁ + C₁`.
    pub fn total_ceas(&self) -> f64 {
        self.cores + self.cache_ceas
    }

    /// Workload exponent `α`.
    pub fn alpha(&self) -> Alpha {
        self.alpha
    }
}

impl Default for Baseline {
    /// Same as [`Baseline::niagara2_like`].
    fn default() -> Self {
        Baseline::niagara2_like()
    }
}

impl fmt::Display for Baseline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} cores + {} cache CEAs ({})",
            self.cores, self.cache_ceas, self.alpha
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_validation() {
        assert!(Alpha::new(0.5).is_ok());
        assert!(Alpha::new(1.5).is_ok());
        assert!(Alpha::new(0.0).is_err());
        assert!(Alpha::new(-0.5).is_err());
        assert!(Alpha::new(f64::INFINITY).is_err());
    }

    #[test]
    fn alpha_dampening_examples_from_paper() {
        // Section 6.1: at α = 0.5 halving traffic needs 4× cache; at
        // α = 0.9 it needs 2.16×.
        assert!((Alpha::new(0.5).unwrap().dampen(4.0) - 0.5).abs() < 1e-12);
        let needed = 2f64.powf(1.0 / 0.9);
        assert!((Alpha::new(0.9).unwrap().dampen(needed) - 0.5).abs() < 1e-12);
        assert!((needed - 2.16).abs() < 0.01);
    }

    #[test]
    fn alpha_try_from() {
        assert_eq!(Alpha::try_from(0.25).unwrap(), Alpha::SPEC2006);
        assert!(Alpha::try_from(f64::NAN).is_err());
    }

    #[test]
    fn baseline_accessors() {
        let b = Baseline::niagara2_like();
        assert_eq!(b.cores(), 8.0);
        assert_eq!(b.cache_per_core(), 1.0);
        assert_eq!(b.total_ceas(), 16.0);
        assert_eq!(b.alpha(), Alpha::COMMERCIAL_AVERAGE);
        assert_eq!(Baseline::default(), b);
    }

    #[test]
    fn baseline_validation() {
        let a = Alpha::COMMERCIAL_AVERAGE;
        assert!(Baseline::new(0.0, 8.0, a).is_err());
        assert!(Baseline::new(8.0, 0.0, a).is_err());
        assert!(Baseline::new(-1.0, 8.0, a).is_err());
        assert!(Baseline::new(8.0, f64::NAN, a).is_err());
    }

    #[test]
    fn with_alpha_replaces_exponent() {
        let b = Baseline::niagara2_like().with_alpha(Alpha::SPEC2006);
        assert_eq!(b.alpha(), Alpha::SPEC2006);
        assert_eq!(b.cores(), 8.0);
    }

    #[test]
    fn display_formats() {
        let b = Baseline::niagara2_like();
        let s = b.to_string();
        assert!(s.contains('8') && s.contains("α=0.5"), "{s}");
    }
}
