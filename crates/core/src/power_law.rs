//! The power law of cache misses (Section 4.1, Equations 1–2).
//!
//! For a workload with baseline miss rate `m0` at cache size `C0`, the miss
//! rate at size `C` is `m = m0 · (C/C0)^-α`. Because write-backs are an
//! application-specific constant fraction `rwb` of misses, total memory
//! traffic `M = m · (1 + rwb)` obeys the *same* law — the `(1 + rwb)` terms
//! cancel in any traffic ratio (Equation 2). [`MissRateCurve::traffic`]
//! exposes that reasoning explicitly.

use crate::error::ModelError;
use crate::params::Alpha;

/// A calibrated power-law miss-rate curve `m(C) = m0 · (C/C0)^-α`.
///
/// # Examples
///
/// ```
/// use bandwall_model::{Alpha, MissRateCurve};
///
/// // 10% misses at a 1 MB cache, √2 rule.
/// let curve = MissRateCurve::new(0.10, 1.0, Alpha::COMMERCIAL_AVERAGE)?;
/// // Doubling the cache divides misses by √2.
/// let m2 = curve.miss_rate(2.0)?;
/// assert!((m2 - 0.10 / 2f64.sqrt()).abs() < 1e-12);
/// # Ok::<(), bandwall_model::ModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MissRateCurve {
    base_miss_rate: f64,
    base_cache_size: f64,
    alpha: Alpha,
}

impl MissRateCurve {
    /// Creates a curve anchored at miss rate `base_miss_rate` for cache size
    /// `base_cache_size` (any consistent unit: KB, CEAs, lines, …).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] unless
    /// `0 < base_miss_rate <= 1` and `base_cache_size > 0`.
    pub fn new(
        base_miss_rate: f64,
        base_cache_size: f64,
        alpha: Alpha,
    ) -> Result<Self, ModelError> {
        if !(base_miss_rate.is_finite() && base_miss_rate > 0.0 && base_miss_rate <= 1.0) {
            return Err(ModelError::InvalidParameter {
                name: "base_miss_rate",
                value: base_miss_rate,
                constraint: "must be in (0, 1]",
            });
        }
        if !(base_cache_size.is_finite() && base_cache_size > 0.0) {
            return Err(ModelError::InvalidParameter {
                name: "base_cache_size",
                value: base_cache_size,
                constraint: "must be finite and positive",
            });
        }
        Ok(MissRateCurve {
            base_miss_rate,
            base_cache_size,
            alpha,
        })
    }

    /// Baseline miss rate `m0`.
    pub fn base_miss_rate(&self) -> f64 {
        self.base_miss_rate
    }

    /// Baseline cache size `C0`.
    pub fn base_cache_size(&self) -> f64 {
        self.base_cache_size
    }

    /// Workload exponent `α`.
    pub fn alpha(&self) -> Alpha {
        self.alpha
    }

    /// Miss rate at cache size `cache_size` (Equation 1).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] if `cache_size` is not
    /// finite and positive, and [`ModelError::Numerical`] when the
    /// power-law term overflows (extreme size ratios).
    pub fn miss_rate(&self, cache_size: f64) -> Result<f64, ModelError> {
        if !(cache_size.is_finite() && cache_size > 0.0) {
            return Err(ModelError::InvalidParameter {
                name: "cache_size",
                value: cache_size,
                constraint: "must be finite and positive",
            });
        }
        let rate = self.base_miss_rate * self.alpha.dampen(cache_size / self.base_cache_size);
        if !rate.is_finite() {
            return Err(ModelError::Numerical(format!(
                "miss rate overflowed at cache size {cache_size}"
            )));
        }
        Ok(rate)
    }

    /// Total memory traffic per access at `cache_size`, including
    /// write-backs: `M = m · (1 + rwb)` (Section 4.2).
    ///
    /// `writeback_ratio` is the application-specific constant fraction of
    /// misses that cause a dirty eviction. Because it is constant across
    /// cache sizes, traffic ratios between two sizes are independent of it —
    /// see [`MissRateCurve::traffic_ratio`].
    ///
    /// # Errors
    ///
    /// Propagates [`MissRateCurve::miss_rate`] errors and rejects negative
    /// or non-finite `writeback_ratio`.
    pub fn traffic(&self, cache_size: f64, writeback_ratio: f64) -> Result<f64, ModelError> {
        if !(writeback_ratio.is_finite() && writeback_ratio >= 0.0) {
            return Err(ModelError::InvalidParameter {
                name: "writeback_ratio",
                value: writeback_ratio,
                constraint: "must be finite and non-negative",
            });
        }
        Ok(self.miss_rate(cache_size)? * (1.0 + writeback_ratio))
    }

    /// Ratio of traffic at `new_size` to traffic at `old_size`
    /// (Equation 2): `(new/old)^-α`, independent of the write-back ratio.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] if either size is not
    /// finite and positive.
    ///
    /// # Examples
    ///
    /// ```
    /// use bandwall_model::{Alpha, MissRateCurve};
    ///
    /// let curve = MissRateCurve::new(0.2, 4.0, Alpha::COMMERCIAL_AVERAGE)?;
    /// // 4× more cache → traffic halves at α = 0.5, regardless of rwb.
    /// assert!((curve.traffic_ratio(4.0, 16.0)? - 0.5).abs() < 1e-12);
    /// # Ok::<(), bandwall_model::ModelError>(())
    /// ```
    pub fn traffic_ratio(&self, old_size: f64, new_size: f64) -> Result<f64, ModelError> {
        for (name, v) in [("old_size", old_size), ("new_size", new_size)] {
            if !(v.is_finite() && v > 0.0) {
                return Err(ModelError::InvalidParameter {
                    name,
                    value: v,
                    constraint: "must be finite and positive",
                });
            }
        }
        let ratio = self.alpha.dampen(new_size / old_size);
        if !ratio.is_finite() {
            return Err(ModelError::Numerical(format!(
                "traffic ratio overflowed between sizes {old_size} and {new_size}"
            )));
        }
        Ok(ratio)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve() -> MissRateCurve {
        MissRateCurve::new(0.1, 1.0, Alpha::COMMERCIAL_AVERAGE).unwrap()
    }

    #[test]
    fn sqrt2_rule_holds() {
        let c = curve();
        let halved = c.miss_rate(2.0).unwrap();
        assert!((c.base_miss_rate() / halved - 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn miss_rate_at_base_size_is_base_rate() {
        let c = curve();
        assert!((c.miss_rate(1.0).unwrap() - 0.1).abs() < 1e-15);
    }

    #[test]
    fn smaller_cache_raises_misses() {
        let c = curve();
        assert!(c.miss_rate(0.5).unwrap() > c.base_miss_rate());
    }

    #[test]
    fn writeback_cancels_in_ratio() {
        let c = curve();
        for rwb in [0.0, 0.2, 0.5, 1.0] {
            let t1 = c.traffic(1.0, rwb).unwrap();
            let t2 = c.traffic(4.0, rwb).unwrap();
            let ratio = t2 / t1;
            assert!(
                (ratio - c.traffic_ratio(1.0, 4.0).unwrap()).abs() < 1e-12,
                "rwb = {rwb}"
            );
        }
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(MissRateCurve::new(0.0, 1.0, Alpha::COMMERCIAL_AVERAGE).is_err());
        assert!(MissRateCurve::new(1.5, 1.0, Alpha::COMMERCIAL_AVERAGE).is_err());
        assert!(MissRateCurve::new(0.1, 0.0, Alpha::COMMERCIAL_AVERAGE).is_err());
        let c = curve();
        assert!(c.miss_rate(0.0).is_err());
        assert!(c.miss_rate(f64::NAN).is_err());
        assert!(c.traffic(1.0, -0.1).is_err());
        assert!(c.traffic_ratio(0.0, 1.0).is_err());
        assert!(c.traffic_ratio(1.0, f64::INFINITY).is_err());
    }

    #[test]
    fn alpha_controls_slope() {
        let shallow = MissRateCurve::new(0.1, 1.0, Alpha::SPEC2006).unwrap();
        let steep = MissRateCurve::new(0.1, 1.0, Alpha::COMMERCIAL_MAX).unwrap();
        assert!(steep.miss_rate(16.0).unwrap() < shallow.miss_rate(16.0).unwrap());
    }

    #[test]
    fn accessors() {
        let c = curve();
        assert_eq!(c.base_miss_rate(), 0.1);
        assert_eq!(c.base_cache_size(), 1.0);
        assert_eq!(c.alpha(), Alpha::COMMERCIAL_AVERAGE);
    }
}
