//! The data-sharing extension of the traffic model (Section 6.3,
//! Equations 13–14).
//!
//! When a fraction `fsh` of cached data is shared by all threads, the chip
//! behaves as if it had fewer independent cores:
//! `P' = fsh + (1 - fsh) · P`. With a shared L2, both the fetch traffic and
//! the cache footprint scale with `P'` rather than `P`; with private L2s a
//! shared block is replicated, so only the fetch traffic benefits.

use crate::error::ModelError;
use crate::params::Baseline;
use bandwall_numerics::{brent, Tolerance};

/// Cache organisation assumed when evaluating data sharing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CacheOrganization {
    /// One L2 shared by all cores (possibly physically distributed). A
    /// shared block occupies a single line — the paper's upper-bound
    /// setting.
    #[default]
    SharedL2,
    /// Per-core private L2s. Shared blocks are replicated in every private
    /// cache, so sharing does not reclaim capacity (footnote 1).
    PrivateL2,
}

/// Effective number of independent cores under data sharing
/// (Equation 14): `P' = fsh + (1 - fsh) · P`.
///
/// # Errors
///
/// Returns [`ModelError::InvalidParameter`] unless `cores >= 1` and
/// `0 <= shared_fraction <= 1`.
///
/// # Examples
///
/// ```
/// use bandwall_model::sharing::effective_independent_cores;
///
/// // Full sharing collapses every thread's fetches into one.
/// assert_eq!(effective_independent_cores(16.0, 1.0)?, 1.0);
/// // No sharing leaves all cores independent.
/// assert_eq!(effective_independent_cores(16.0, 0.0)?, 16.0);
/// # Ok::<(), bandwall_model::ModelError>(())
/// ```
pub fn effective_independent_cores(cores: f64, shared_fraction: f64) -> Result<f64, ModelError> {
    if !(cores.is_finite() && cores >= 1.0) {
        return Err(ModelError::InvalidParameter {
            name: "cores",
            value: cores,
            constraint: "must be finite and at least 1",
        });
    }
    if !(shared_fraction.is_finite() && (0.0..=1.0).contains(&shared_fraction)) {
        return Err(ModelError::InvalidParameter {
            name: "shared_fraction",
            value: shared_fraction,
            constraint: "must be in [0, 1]",
        });
    }
    Ok(shared_fraction + (1.0 - shared_fraction) * cores)
}

/// Traffic model extended with inter-thread data sharing.
///
/// # Examples
///
/// Figure 13's anchor points: to keep traffic at the baseline level while
/// scaling proportionally, the shared fraction must climb to ≈40%, 63%,
/// 77%, 86% over four generations.
///
/// ```
/// use bandwall_model::sharing::SharingModel;
/// use bandwall_model::Baseline;
///
/// let model = SharingModel::new(Baseline::niagara2_like());
/// let f16 = model.required_shared_fraction(16.0, 16.0, 1.0)?.unwrap();
/// assert!((f16 - 0.40).abs() < 0.01);
/// let f128 = model.required_shared_fraction(128.0, 128.0, 1.0)?.unwrap();
/// assert!((f128 - 0.86).abs() < 0.015);
/// # Ok::<(), bandwall_model::ModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SharingModel {
    baseline: Baseline,
    organization: CacheOrganization,
}

impl SharingModel {
    /// Creates a sharing model with the paper's default shared-L2
    /// organisation.
    pub fn new(baseline: Baseline) -> Self {
        SharingModel {
            baseline,
            organization: CacheOrganization::SharedL2,
        }
    }

    /// Selects the cache organisation.
    #[must_use]
    pub fn with_organization(mut self, organization: CacheOrganization) -> Self {
        self.organization = organization;
        self
    }

    /// The baseline configuration.
    pub fn baseline(&self) -> &Baseline {
        &self.baseline
    }

    /// The assumed cache organisation.
    pub fn organization(&self) -> CacheOrganization {
        self.organization
    }

    /// Relative traffic `M₂/M₁` for `cores` cores, `cache_ceas` CEAs of
    /// cache, and shared fraction `fsh` (Equation 13).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] for out-of-domain inputs
    /// and [`ModelError::NoCacheArea`] if `cache_ceas` is not positive.
    pub fn relative_traffic(
        &self,
        cores: f64,
        cache_ceas: f64,
        shared_fraction: f64,
    ) -> Result<f64, ModelError> {
        if !(cache_ceas.is_finite() && cache_ceas > 0.0) {
            return Err(ModelError::NoCacheArea {
                cores: cores as u64,
                total_ceas: cache_ceas,
            });
        }
        let p_eff = effective_independent_cores(cores, shared_fraction)?;
        // With a shared L2 the capacity is divided among the effective
        // cores; with private L2s replication keeps it at C/P (footnote 1).
        let capacity_divisor = match self.organization {
            CacheOrganization::SharedL2 => p_eff,
            CacheOrganization::PrivateL2 => cores,
        };
        let cache_per_core = cache_ceas / capacity_divisor;
        let core_term = p_eff / self.baseline.cores();
        let cache_term = self
            .baseline
            .alpha()
            .dampen(cache_per_core / self.baseline.cache_per_core());
        Ok(core_term * cache_term)
    }

    /// The shared fraction needed to hold traffic at `target_ratio × M₁`
    /// for the given configuration, or `None` when even full sharing
    /// (`fsh = 1`) cannot reach the target.
    ///
    /// # Errors
    ///
    /// Propagates domain errors from [`SharingModel::relative_traffic`] and
    /// numerical failures from the root finder.
    pub fn required_shared_fraction(
        &self,
        cores: f64,
        cache_ceas: f64,
        target_ratio: f64,
    ) -> Result<Option<f64>, ModelError> {
        let at = |fsh: f64| self.relative_traffic(cores, cache_ceas, fsh);
        if at(0.0)? <= target_ratio {
            return Ok(Some(0.0));
        }
        if at(1.0)? > target_ratio {
            return Ok(None);
        }
        let f = |fsh: f64| at(fsh).map(|t| t - target_ratio).unwrap_or(f64::MAX);
        let root = brent(f, 0.0, 1.0, Tolerance::default())?;
        Ok(Some(root))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> SharingModel {
        SharingModel::new(Baseline::niagara2_like())
    }

    #[test]
    fn no_sharing_matches_plain_model() {
        let m = model();
        // 16 cores / 16 CEAs cache, fsh = 0 → traffic doubles.
        let t = m.relative_traffic(16.0, 16.0, 0.0).unwrap();
        assert!((t - 2.0).abs() < 1e-12);
    }

    #[test]
    fn full_sharing_single_effective_core() {
        let m = model();
        // fsh = 1: one effective core with all the cache.
        let t = m.relative_traffic(16.0, 16.0, 1.0).unwrap();
        let expected = (1.0 / 8.0) * (16.0f64 / 1.0).powf(-0.5);
        assert!((t - expected).abs() < 1e-12);
    }

    #[test]
    fn sharing_reduces_traffic_monotonically() {
        let m = model();
        let mut last = f64::MAX;
        for i in 0..=10 {
            let fsh = i as f64 / 10.0;
            let t = m.relative_traffic(32.0, 32.0, fsh).unwrap();
            assert!(t < last, "not decreasing at fsh = {fsh}");
            last = t;
        }
    }

    #[test]
    fn figure13_required_fractions() {
        let m = model();
        // Paper prose: "40%, 63%, 77%, and 86%". The model yields 39.5%,
        // 62.3%, 76.2%, 84.9% — the paper reports figure-read roundings.
        let cases = [(16.0, 0.40), (32.0, 0.63), (64.0, 0.77), (128.0, 0.86)];
        for (cores, expected) in cases {
            let fsh = m
                .required_shared_fraction(cores, cores, 1.0)
                .unwrap()
                .unwrap();
            assert!(
                (fsh - expected).abs() < 0.015,
                "{cores} cores: fsh = {fsh}, expected ≈ {expected}"
            );
        }
    }

    #[test]
    fn required_fraction_zero_when_already_within() {
        let m = model();
        let fsh = m.required_shared_fraction(8.0, 8.0, 1.0).unwrap().unwrap();
        assert_eq!(fsh, 0.0);
    }

    #[test]
    fn required_fraction_none_when_unreachable() {
        let m = model();
        // Even full sharing cannot push 128 proportional cores below the
        // single-effective-core floor (1/8)·128^-0.5 ≈ 0.011.
        assert_eq!(
            m.required_shared_fraction(128.0, 128.0, 0.01).unwrap(),
            None
        );
    }

    #[test]
    fn private_caches_benefit_less() {
        let shared = model();
        let private = model().with_organization(CacheOrganization::PrivateL2);
        let ts = shared.relative_traffic(16.0, 16.0, 0.5).unwrap();
        let tp = private.relative_traffic(16.0, 16.0, 0.5).unwrap();
        assert!(
            ts < tp,
            "shared L2 must benefit more: shared {ts} vs private {tp}"
        );
        // Both still beat no sharing.
        let none = shared.relative_traffic(16.0, 16.0, 0.0).unwrap();
        assert!(tp < none);
    }

    #[test]
    fn effective_cores_validation() {
        assert!(effective_independent_cores(0.5, 0.5).is_err());
        assert!(effective_independent_cores(8.0, -0.1).is_err());
        assert!(effective_independent_cores(8.0, 1.1).is_err());
        assert!(effective_independent_cores(f64::NAN, 0.5).is_err());
    }

    #[test]
    fn relative_traffic_validation() {
        let m = model();
        assert!(m.relative_traffic(16.0, 0.0, 0.5).is_err());
        assert!(m.relative_traffic(0.0, 16.0, 0.5).is_err());
        assert!(m.relative_traffic(16.0, 16.0, 2.0).is_err());
    }

    #[test]
    fn organization_accessor_round_trip() {
        let m = model().with_organization(CacheOrganization::PrivateL2);
        assert_eq!(m.organization(), CacheOrganization::PrivateL2);
        assert_eq!(CacheOrganization::default(), CacheOrganization::SharedL2);
    }
}
