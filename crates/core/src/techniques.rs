//! The bandwidth-conservation techniques of Section 6.
//!
//! Each [`Technique`] is a validated, immutable instantiation of one
//! [`crate::descriptor::TechniqueDescriptor`] from the open registry,
//! together with the way it perturbs the traffic model (its [`Effects`]
//! contribution). Techniques compose freely — apply any subset to a
//! [`crate::ScalingProblem`] — and composition is commutative because
//! every contribution is multiplicative.
//!
//! The named constructors below cover the paper's Table 2; techniques
//! registered later (e.g. `thermal_capped_3d`, `cxl_harvesting`) are
//! built through [`Technique::from_registry`], which is also how the
//! wire layer instantiates every technique from its id.
//!
//! | Paper label | Constructor | Category |
//! |-------------|-------------|----------|
//! | CC — cache compression | [`Technique::cache_compression`] | indirect |
//! | DRAM — DRAM cache | [`Technique::dram_cache`] | indirect |
//! | 3D — stacked cache | [`Technique::stacked_cache`] / [`Technique::stacked_dram_cache`] | indirect |
//! | Fltr — unused-data filtering | [`Technique::unused_data_filter`] | indirect |
//! | SmCo — smaller cores | [`Technique::smaller_cores`] | indirect |
//! | LC — link compression | [`Technique::link_compression`] | direct |
//! | Sect — sectored caches | [`Technique::sectored_cache`] | direct |
//! | SmCl — small cache lines | [`Technique::small_cache_lines`] | dual |
//! | CC/LC — cache+link compression | [`Technique::cache_link_compression`] | dual |

use crate::descriptor::{self, TechniqueDescriptor, MAX_PARAMS};
use crate::effects::Effects;
use crate::error::ModelError;
use std::fmt;

/// How a technique attacks the bandwidth wall (Section 6 taxonomy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// Reduces traffic indirectly by increasing effective cache capacity;
    /// dampened by the `-α` exponent.
    Indirect,
    /// Reduces the memory traffic itself (or grows effective bandwidth).
    Direct,
    /// Both at once.
    Dual,
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Category::Indirect => "indirect",
            Category::Direct => "direct",
            Category::Dual => "dual",
        })
    }
}

/// One bandwidth-conservation technique with validated parameters.
///
/// # Examples
///
/// ```
/// use bandwall_model::{Baseline, ScalingProblem, Technique};
///
/// // DRAM caches at 8× density lift the next generation from 11 to 18 cores.
/// let problem = ScalingProblem::new(Baseline::niagara2_like(), 32.0)
///     .with_technique(Technique::dram_cache(8.0)?);
/// assert_eq!(problem.max_supportable_cores()?, 18);
/// # Ok::<(), bandwall_model::ModelError>(())
/// ```
#[derive(Clone, Copy)]
pub struct Technique {
    descriptor: &'static TechniqueDescriptor,
    params: [f64; MAX_PARAMS],
}

impl Technique {
    /// Builds a technique from already-validated parts — only
    /// [`TechniqueDescriptor::instantiate`] calls this.
    pub(crate) fn from_parts(
        descriptor: &'static TechniqueDescriptor,
        params: [f64; MAX_PARAMS],
    ) -> Self {
        Technique { descriptor, params }
    }

    /// Instantiates any registered technique by registry id, validating
    /// `params` against its schema (one value per schema entry, in
    /// order). This is the open-ended constructor the named ones below
    /// are shorthands for.
    ///
    /// # Examples
    ///
    /// ```
    /// use bandwall_model::Technique;
    ///
    /// let a = Technique::from_registry("dram_cache", &[8.0])?;
    /// assert_eq!(a, Technique::dram_cache(8.0)?);
    /// # Ok::<(), bandwall_model::ModelError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Rejects unknown ids, wrong parameter counts, and out-of-domain
    /// parameters.
    pub fn from_registry(id: &str, params: &[f64]) -> Result<Self, ModelError> {
        let descriptor = descriptor::descriptor(id).ok_or(ModelError::InvalidParameter {
            name: "technique_id",
            value: f64::NAN,
            constraint: "must name a registered technique",
        })?;
        descriptor.instantiate(params)
    }

    /// Cache compression with the given ratio (Section 6.1). Realistic
    /// ratios are 1.4–2.1× for commercial workloads.
    ///
    /// # Errors
    ///
    /// Rejects ratios below 1 or non-finite.
    pub fn cache_compression(ratio: f64) -> Result<Self, ModelError> {
        Self::from_registry("cache_compression", &[ratio])
    }

    /// DRAM L2 cache, `density`× denser than SRAM (Section 6.1 cites
    /// 8×–16× density improvements).
    ///
    /// # Errors
    ///
    /// Rejects densities below 1 or non-finite.
    pub fn dram_cache(density: f64) -> Result<Self, ModelError> {
        Self::from_registry("dram_cache", &[density])
    }

    /// 3D-stacked SRAM cache layers (Section 6.1). The paper analyses
    /// `layers = 1`.
    ///
    /// # Errors
    ///
    /// Rejects `layers == 0`.
    pub fn stacked_cache(layers: u32) -> Result<Self, ModelError> {
        Self::stacked_dram_cache(layers, 1.0)
    }

    /// 3D-stacked cache layers implemented in DRAM `layer_density`× denser
    /// than SRAM (the "3D DRAM (8x/16x)" bars of Figure 6). The cache
    /// sharing the core die stays SRAM unless a separate
    /// [`Technique::dram_cache`] is also applied.
    ///
    /// # Errors
    ///
    /// Rejects `layers == 0` and densities below 1.
    pub fn stacked_dram_cache(layers: u32, layer_density: f64) -> Result<Self, ModelError> {
        Self::from_registry("stacked_cache", &[f64::from(layers), layer_density])
    }

    /// Unused-data filtering keeping only useful words cached
    /// (Section 6.1); `unused_fraction` of cached data goes unused
    /// (realistically ~40%).
    ///
    /// # Errors
    ///
    /// Rejects fractions outside `[0, 1)`.
    pub fn unused_data_filter(unused_fraction: f64) -> Result<Self, ModelError> {
        Self::from_registry("unused_data_filter", &[unused_fraction])
    }

    /// Smaller cores occupying `area_fraction` of a baseline CEA
    /// (Section 6.1; prior work suggests up to 80× smaller).
    ///
    /// # Errors
    ///
    /// Rejects fractions outside `(0, 1]`.
    pub fn smaller_cores(area_fraction: f64) -> Result<Self, ModelError> {
        Self::from_registry("smaller_cores", &[area_fraction])
    }

    /// Link compression with the given effective-bandwidth ratio
    /// (Section 6.2; ~2× for commercial workloads).
    ///
    /// # Errors
    ///
    /// Rejects ratios below 1 or non-finite.
    pub fn link_compression(ratio: f64) -> Result<Self, ModelError> {
        Self::from_registry("link_compression", &[ratio])
    }

    /// Sectored caches fetching only predicted-referenced sectors
    /// (Section 6.2). Unfilled sectors still occupy cache space, so only
    /// traffic shrinks.
    ///
    /// # Errors
    ///
    /// Rejects fractions outside `[0, 1)`.
    pub fn sectored_cache(unused_fraction: f64) -> Result<Self, ModelError> {
        Self::from_registry("sectored_cache", &[unused_fraction])
    }

    /// Word-sized cache lines (Section 6.3, Equation 12): unused words
    /// consume neither bus bandwidth nor cache capacity.
    ///
    /// # Errors
    ///
    /// Rejects fractions outside `[0, 1)`.
    pub fn small_cache_lines(unused_fraction: f64) -> Result<Self, ModelError> {
        Self::from_registry("small_cache_lines", &[unused_fraction])
    }

    /// Cache + link compression (Section 6.3): compressed data crosses the
    /// link *and* stays compressed in the L2.
    ///
    /// # Errors
    ///
    /// Rejects ratios below 1 or non-finite.
    pub fn cache_link_compression(ratio: f64) -> Result<Self, ModelError> {
        Self::from_registry("cache_link_compression", &[ratio])
    }

    /// The registry descriptor this technique instantiates.
    pub fn descriptor(&self) -> &'static TechniqueDescriptor {
        self.descriptor
    }

    /// The validated parameter vector, one value per schema entry of
    /// [`Self::descriptor`].
    pub fn params(&self) -> &[f64] {
        &self.params[..self.descriptor.params.len()]
    }

    /// The paper's taxonomy bucket for this technique.
    pub fn category(&self) -> Category {
        self.descriptor.category
    }

    /// The short label the paper uses on figure axes (CC, DRAM, 3D, Fltr,
    /// SmCo, LC, Sect, SmCl, CC/LC — plus the registered extensions).
    pub fn label(&self) -> &'static str {
        self.descriptor.label
    }

    /// Accumulates this technique's contribution into `effects`.
    pub fn apply_to(&self, effects: &mut Effects) {
        (self.descriptor.apply)(self.params(), effects);
    }
}

impl PartialEq for Technique {
    fn eq(&self, other: &Self) -> bool {
        self.descriptor.tag == other.descriptor.tag && self.params() == other.params()
    }
}

impl fmt::Debug for Technique {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Technique")
            .field("id", &self.descriptor.id)
            .field("params", &self.params())
            .finish()
    }
}

impl fmt::Display for Technique {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (self.descriptor.describe)(self.params(), f)
    }
}

/// Folds a set of techniques into one [`Effects`] record.
///
/// # Examples
///
/// ```
/// use bandwall_model::techniques::{combine, Technique};
///
/// let set = [
///     Technique::cache_link_compression(2.0)?,
///     Technique::small_cache_lines(0.4)?,
/// ];
/// let e = combine(&set);
/// // Direct reduction: 2 × 1/(1-0.4) = 3.33× → 70% less traffic.
/// assert!((e.traffic_divisor() - 2.0 / 0.6).abs() < 1e-12);
/// # Ok::<(), bandwall_model::ModelError>(())
/// ```
pub fn combine(techniques: &[Technique]) -> Effects {
    let mut effects = Effects::none();
    for t in techniques {
        t.apply_to(&mut effects);
    }
    effects
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_validation() {
        assert!(Technique::cache_compression(0.9).is_err());
        assert!(Technique::cache_compression(1.0).is_ok());
        assert!(Technique::dram_cache(f64::NAN).is_err());
        assert!(Technique::stacked_cache(0).is_err());
        assert!(Technique::stacked_dram_cache(1, 0.5).is_err());
        assert!(Technique::unused_data_filter(1.0).is_err());
        assert!(Technique::unused_data_filter(-0.1).is_err());
        assert!(Technique::unused_data_filter(0.0).is_ok());
        assert!(Technique::smaller_cores(0.0).is_err());
        assert!(Technique::smaller_cores(1.5).is_err());
        assert!(Technique::smaller_cores(1.0).is_ok());
        assert!(Technique::link_compression(0.5).is_err());
        assert!(Technique::sectored_cache(0.99).is_ok());
        assert!(Technique::small_cache_lines(1.0).is_err());
        assert!(Technique::cache_link_compression(2.0).is_ok());
    }

    #[test]
    fn registry_constructor_matches_named_ones() {
        assert_eq!(
            Technique::from_registry("cache_compression", &[2.0]).unwrap(),
            Technique::cache_compression(2.0).unwrap()
        );
        assert_eq!(
            Technique::from_registry("stacked_cache", &[1.0, 1.0]).unwrap(),
            Technique::stacked_cache(1).unwrap()
        );
        assert!(Technique::from_registry("warp_drive", &[1.0]).is_err());
        assert!(Technique::from_registry("dram_cache", &[]).is_err());
        assert!(Technique::from_registry("thermal_capped_3d", &[4.0, 8.0, 0.7]).is_ok());
        assert!(Technique::from_registry("cxl_harvesting", &[0.5, 0.5]).is_ok());
    }

    #[test]
    fn categories_match_paper() {
        assert_eq!(
            Technique::cache_compression(2.0).unwrap().category(),
            Category::Indirect
        );
        assert_eq!(
            Technique::dram_cache(8.0).unwrap().category(),
            Category::Indirect
        );
        assert_eq!(
            Technique::stacked_cache(1).unwrap().category(),
            Category::Indirect
        );
        assert_eq!(
            Technique::unused_data_filter(0.4).unwrap().category(),
            Category::Indirect
        );
        assert_eq!(
            Technique::smaller_cores(0.025).unwrap().category(),
            Category::Indirect
        );
        assert_eq!(
            Technique::link_compression(2.0).unwrap().category(),
            Category::Direct
        );
        assert_eq!(
            Technique::sectored_cache(0.4).unwrap().category(),
            Category::Direct
        );
        assert_eq!(
            Technique::small_cache_lines(0.4).unwrap().category(),
            Category::Dual
        );
        assert_eq!(
            Technique::cache_link_compression(2.0).unwrap().category(),
            Category::Dual
        );
    }

    #[test]
    fn labels_match_figure_axes() {
        let labels: Vec<&str> = [
            Technique::cache_compression(2.0).unwrap(),
            Technique::dram_cache(8.0).unwrap(),
            Technique::stacked_cache(1).unwrap(),
            Technique::unused_data_filter(0.4).unwrap(),
            Technique::smaller_cores(0.025).unwrap(),
            Technique::link_compression(2.0).unwrap(),
            Technique::sectored_cache(0.4).unwrap(),
            Technique::small_cache_lines(0.4).unwrap(),
            Technique::cache_link_compression(2.0).unwrap(),
        ]
        .iter()
        .map(Technique::label)
        .collect();
        assert_eq!(
            labels,
            ["CC", "DRAM", "3D", "Fltr", "SmCo", "LC", "Sect", "SmCl", "CC/LC"]
        );
    }

    #[test]
    fn indirect_effects() {
        let e = combine(&[Technique::cache_compression(2.0).unwrap()]);
        assert_eq!(e.capacity_factor(), 2.0);
        assert_eq!(e.traffic_divisor(), 1.0);

        let e = combine(&[Technique::unused_data_filter(0.4).unwrap()]);
        assert!((e.capacity_factor() - 1.0 / 0.6).abs() < 1e-12);
    }

    #[test]
    fn direct_effects() {
        let e = combine(&[Technique::link_compression(3.0).unwrap()]);
        assert_eq!(e.traffic_divisor(), 3.0);
        assert_eq!(e.capacity_factor(), 1.0);

        let e = combine(&[Technique::sectored_cache(0.8).unwrap()]);
        assert!((e.traffic_divisor() - 5.0).abs() < 1e-12);
        assert_eq!(e.capacity_factor(), 1.0);
    }

    #[test]
    fn dual_effects() {
        let e = combine(&[Technique::small_cache_lines(0.4).unwrap()]);
        assert!((e.capacity_factor() - 1.0 / 0.6).abs() < 1e-12);
        assert!((e.traffic_divisor() - 1.0 / 0.6).abs() < 1e-12);
    }

    #[test]
    fn combination_is_commutative() {
        let a = Technique::cache_link_compression(2.0).unwrap();
        let b = Technique::dram_cache(8.0).unwrap();
        let c = Technique::stacked_cache(1).unwrap();
        let d = Technique::small_cache_lines(0.4).unwrap();
        let forward = combine(&[a, b, c, d]);
        let backward = combine(&[d, c, b, a]);
        assert_eq!(forward, backward);
    }

    #[test]
    fn paper_combined_capacity_claim() {
        // "3D-stacked DRAM cache, cache compression, and small cache lines
        // can increase the effective cache capacity by 53×" — capacity per
        // CEA × die-area doubling when cache dominates.
        let e = combine(&[
            Technique::cache_compression(2.0).unwrap(),
            Technique::dram_cache(8.0).unwrap(),
            Technique::stacked_cache(1).unwrap(),
            Technique::small_cache_lines(0.4).unwrap(),
        ]);
        // Per-CEA factor: 2 × 8 × 1.667 = 26.7; the stacked layer doubles
        // the cache area when cache dominates the die, giving ≈53×.
        let per_cea = e.capacity_factor() * e.cache_density();
        assert!((per_cea - 80.0 / 3.0).abs() < 1e-9);
        let with_layer = per_cea * 2.0;
        assert!(with_layer > 50.0 && with_layer < 56.0, "{with_layer}");
        // Indirect traffic reduction at α = 0.5: 1 - 53^-0.5 ≈ 86%
        // (the paper quotes 84% for its exact area split).
        let reduction = 1.0 - with_layer.powf(-0.5);
        assert!(reduction > 0.83 && reduction < 0.88, "{reduction}");
    }

    #[test]
    fn display_mentions_parameters() {
        assert!(Technique::dram_cache(8.0)
            .unwrap()
            .to_string()
            .contains('8'));
        assert!(Technique::smaller_cores(1.0 / 80.0)
            .unwrap()
            .to_string()
            .contains("80"));
        assert!(Technique::stacked_dram_cache(1, 16.0)
            .unwrap()
            .to_string()
            .contains("16"));
        assert!(Technique::stacked_cache(1)
            .unwrap()
            .to_string()
            .contains("SRAM"));
    }

    #[test]
    fn display_is_byte_stable_for_the_catalogue() {
        // These strings feed figure labels and golden reports; the
        // registry's describe functions must keep them byte-identical.
        for (t, display) in [
            (
                Technique::cache_compression(2.0).unwrap(),
                "cache compression (2x)",
            ),
            (
                Technique::dram_cache(8.0).unwrap(),
                "DRAM cache (8x density)",
            ),
            (
                Technique::stacked_cache(1).unwrap(),
                "3D-stacked SRAM cache (1 layer(s))",
            ),
            (
                Technique::stacked_dram_cache(2, 8.0).unwrap(),
                "3D-stacked DRAM cache (2 layer(s), 8x)",
            ),
            (
                Technique::unused_data_filter(0.4).unwrap(),
                "unused-data filtering (40%)",
            ),
            (
                Technique::smaller_cores(1.0 / 80.0).unwrap(),
                "smaller cores (80x smaller)",
            ),
            (
                Technique::link_compression(2.0).unwrap(),
                "link compression (2x)",
            ),
            (
                Technique::sectored_cache(0.4).unwrap(),
                "sectored cache (40% unused)",
            ),
            (
                Technique::small_cache_lines(0.4).unwrap(),
                "small cache lines (40% unused)",
            ),
            (
                Technique::cache_link_compression(2.0).unwrap(),
                "cache+link compression (2x)",
            ),
        ] {
            assert_eq!(t.to_string(), display);
        }
    }

    #[test]
    fn category_display() {
        assert_eq!(Category::Indirect.to_string(), "indirect");
        assert_eq!(Category::Direct.to_string(), "direct");
        assert_eq!(Category::Dual.to_string(), "dual");
    }
}
