//! The bandwidth-conservation techniques of Section 6.
//!
//! Each [`Technique`] is a validated, immutable description of one
//! mechanism from the paper, together with the way it perturbs the traffic
//! model (its [`Effects`] contribution). Techniques compose freely — apply
//! any subset to a [`crate::ScalingProblem`] — and composition is
//! commutative because every contribution is multiplicative.
//!
//! | Paper label | Constructor | Category |
//! |-------------|-------------|----------|
//! | CC — cache compression | [`Technique::cache_compression`] | indirect |
//! | DRAM — DRAM cache | [`Technique::dram_cache`] | indirect |
//! | 3D — stacked cache | [`Technique::stacked_cache`] / [`Technique::stacked_dram_cache`] | indirect |
//! | Fltr — unused-data filtering | [`Technique::unused_data_filter`] | indirect |
//! | SmCo — smaller cores | [`Technique::smaller_cores`] | indirect |
//! | LC — link compression | [`Technique::link_compression`] | direct |
//! | Sect — sectored caches | [`Technique::sectored_cache`] | direct |
//! | SmCl — small cache lines | [`Technique::small_cache_lines`] | dual |
//! | CC/LC — cache+link compression | [`Technique::cache_link_compression`] | dual |

use crate::effects::{Effects, StackedLayer};
use crate::error::ModelError;
use std::fmt;

/// How a technique attacks the bandwidth wall (Section 6 taxonomy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// Reduces traffic indirectly by increasing effective cache capacity;
    /// dampened by the `-α` exponent.
    Indirect,
    /// Reduces the memory traffic itself (or grows effective bandwidth).
    Direct,
    /// Both at once.
    Dual,
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Category::Indirect => "indirect",
            Category::Direct => "direct",
            Category::Dual => "dual",
        })
    }
}

/// The mechanism a [`Technique`] models, with its validated parameters.
///
/// Obtain via [`Technique::kind`] for reporting or matching; construct
/// techniques through the `Technique` constructors, which validate ranges.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum TechniqueKind {
    /// On-chip cache compression with the given compression ratio.
    CacheCompression {
        /// Achieved compression ratio (≥ 1), e.g. 2.0 for 2×.
        ratio: f64,
    },
    /// L2 implemented in DRAM, `density`× denser than SRAM.
    DramCache {
        /// Density improvement over SRAM (≥ 1).
        density: f64,
    },
    /// 3D-stacked cache-only die layers.
    StackedCache {
        /// Number of extra cache-only dies.
        layers: u32,
        /// Density of each layer relative to SRAM (1.0 = SRAM layer).
        layer_density: f64,
    },
    /// Retain only useful words on chip, discarding predicted-unused words.
    UnusedDataFilter {
        /// Average fraction of cached data that goes unused (0 ≤ f < 1).
        unused_fraction: f64,
    },
    /// Simpler cores occupying a fraction of a CEA each.
    SmallerCores {
        /// Core area as a fraction of the baseline core (0 < f ≤ 1).
        area_fraction: f64,
    },
    /// Compressed transfers on the off-chip memory link.
    LinkCompression {
        /// Effective bandwidth multiplier (≥ 1).
        ratio: f64,
    },
    /// Fetch only predicted-referenced sectors of each line.
    SectoredCache {
        /// Average fraction of a line that goes unused (0 ≤ f < 1).
        unused_fraction: f64,
    },
    /// Word-sized cache lines: unused words consume neither bandwidth nor
    /// cache space (Equation 12).
    SmallCacheLines {
        /// Average fraction of a line that goes unused (0 ≤ f < 1).
        unused_fraction: f64,
    },
    /// Cache and link compression applied together: data stays compressed
    /// in the L2 and on the link.
    CacheLinkCompression {
        /// Shared compression ratio (≥ 1).
        ratio: f64,
    },
}

/// One bandwidth-conservation technique with validated parameters.
///
/// # Examples
///
/// ```
/// use bandwall_model::{Baseline, ScalingProblem, Technique};
///
/// // DRAM caches at 8× density lift the next generation from 11 to 18 cores.
/// let problem = ScalingProblem::new(Baseline::niagara2_like(), 32.0)
///     .with_technique(Technique::dram_cache(8.0)?);
/// assert_eq!(problem.max_supportable_cores()?, 18);
/// # Ok::<(), bandwall_model::ModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Technique {
    kind: TechniqueKind,
}

fn validate_ratio(name: &'static str, ratio: f64) -> Result<f64, ModelError> {
    if ratio.is_finite() && ratio >= 1.0 {
        Ok(ratio)
    } else {
        Err(ModelError::InvalidParameter {
            name,
            value: ratio,
            constraint: "must be finite and >= 1",
        })
    }
}

fn validate_fraction(name: &'static str, fraction: f64) -> Result<f64, ModelError> {
    if fraction.is_finite() && (0.0..1.0).contains(&fraction) {
        Ok(fraction)
    } else {
        Err(ModelError::InvalidParameter {
            name,
            value: fraction,
            constraint: "must be in [0, 1)",
        })
    }
}

impl Technique {
    /// Cache compression with the given ratio (Section 6.1). Realistic
    /// ratios are 1.4–2.1× for commercial workloads.
    ///
    /// # Errors
    ///
    /// Rejects ratios below 1 or non-finite.
    pub fn cache_compression(ratio: f64) -> Result<Self, ModelError> {
        Ok(Technique {
            kind: TechniqueKind::CacheCompression {
                ratio: validate_ratio("compression_ratio", ratio)?,
            },
        })
    }

    /// DRAM L2 cache, `density`× denser than SRAM (Section 6.1 cites
    /// 8×–16× density improvements).
    ///
    /// # Errors
    ///
    /// Rejects densities below 1 or non-finite.
    pub fn dram_cache(density: f64) -> Result<Self, ModelError> {
        Ok(Technique {
            kind: TechniqueKind::DramCache {
                density: validate_ratio("dram_density", density)?,
            },
        })
    }

    /// 3D-stacked SRAM cache layers (Section 6.1). The paper analyses
    /// `layers = 1`.
    ///
    /// # Errors
    ///
    /// Rejects `layers == 0`.
    pub fn stacked_cache(layers: u32) -> Result<Self, ModelError> {
        Self::stacked_dram_cache(layers, 1.0)
    }

    /// 3D-stacked cache layers implemented in DRAM `layer_density`× denser
    /// than SRAM (the "3D DRAM (8x/16x)" bars of Figure 6). The cache
    /// sharing the core die stays SRAM unless a separate
    /// [`Technique::dram_cache`] is also applied.
    ///
    /// # Errors
    ///
    /// Rejects `layers == 0` and densities below 1.
    pub fn stacked_dram_cache(layers: u32, layer_density: f64) -> Result<Self, ModelError> {
        if layers == 0 {
            return Err(ModelError::InvalidParameter {
                name: "layers",
                value: 0.0,
                constraint: "must be at least 1",
            });
        }
        Ok(Technique {
            kind: TechniqueKind::StackedCache {
                layers,
                layer_density: validate_ratio("layer_density", layer_density)?,
            },
        })
    }

    /// Unused-data filtering keeping only useful words cached
    /// (Section 6.1); `unused_fraction` of cached data goes unused
    /// (realistically ~40%).
    ///
    /// # Errors
    ///
    /// Rejects fractions outside `[0, 1)`.
    pub fn unused_data_filter(unused_fraction: f64) -> Result<Self, ModelError> {
        Ok(Technique {
            kind: TechniqueKind::UnusedDataFilter {
                unused_fraction: validate_fraction("unused_fraction", unused_fraction)?,
            },
        })
    }

    /// Smaller cores occupying `area_fraction` of a baseline CEA
    /// (Section 6.1; prior work suggests up to 80× smaller).
    ///
    /// # Errors
    ///
    /// Rejects fractions outside `(0, 1]`.
    pub fn smaller_cores(area_fraction: f64) -> Result<Self, ModelError> {
        if area_fraction.is_finite() && area_fraction > 0.0 && area_fraction <= 1.0 {
            Ok(Technique {
                kind: TechniqueKind::SmallerCores { area_fraction },
            })
        } else {
            Err(ModelError::InvalidParameter {
                name: "area_fraction",
                value: area_fraction,
                constraint: "must be in (0, 1]",
            })
        }
    }

    /// Link compression with the given effective-bandwidth ratio
    /// (Section 6.2; ~2× for commercial workloads).
    ///
    /// # Errors
    ///
    /// Rejects ratios below 1 or non-finite.
    pub fn link_compression(ratio: f64) -> Result<Self, ModelError> {
        Ok(Technique {
            kind: TechniqueKind::LinkCompression {
                ratio: validate_ratio("compression_ratio", ratio)?,
            },
        })
    }

    /// Sectored caches fetching only predicted-referenced sectors
    /// (Section 6.2). Unfilled sectors still occupy cache space, so only
    /// traffic shrinks.
    ///
    /// # Errors
    ///
    /// Rejects fractions outside `[0, 1)`.
    pub fn sectored_cache(unused_fraction: f64) -> Result<Self, ModelError> {
        Ok(Technique {
            kind: TechniqueKind::SectoredCache {
                unused_fraction: validate_fraction("unused_fraction", unused_fraction)?,
            },
        })
    }

    /// Word-sized cache lines (Section 6.3, Equation 12): unused words
    /// consume neither bus bandwidth nor cache capacity.
    ///
    /// # Errors
    ///
    /// Rejects fractions outside `[0, 1)`.
    pub fn small_cache_lines(unused_fraction: f64) -> Result<Self, ModelError> {
        Ok(Technique {
            kind: TechniqueKind::SmallCacheLines {
                unused_fraction: validate_fraction("unused_fraction", unused_fraction)?,
            },
        })
    }

    /// Cache + link compression (Section 6.3): compressed data crosses the
    /// link *and* stays compressed in the L2.
    ///
    /// # Errors
    ///
    /// Rejects ratios below 1 or non-finite.
    pub fn cache_link_compression(ratio: f64) -> Result<Self, ModelError> {
        Ok(Technique {
            kind: TechniqueKind::CacheLinkCompression {
                ratio: validate_ratio("compression_ratio", ratio)?,
            },
        })
    }

    /// The mechanism and parameters behind this technique.
    pub fn kind(&self) -> TechniqueKind {
        self.kind
    }

    /// The paper's taxonomy bucket for this technique.
    pub fn category(&self) -> Category {
        match self.kind {
            TechniqueKind::CacheCompression { .. }
            | TechniqueKind::DramCache { .. }
            | TechniqueKind::StackedCache { .. }
            | TechniqueKind::UnusedDataFilter { .. }
            | TechniqueKind::SmallerCores { .. } => Category::Indirect,
            TechniqueKind::LinkCompression { .. } | TechniqueKind::SectoredCache { .. } => {
                Category::Direct
            }
            TechniqueKind::SmallCacheLines { .. } | TechniqueKind::CacheLinkCompression { .. } => {
                Category::Dual
            }
        }
    }

    /// The short label the paper uses on figure axes (CC, DRAM, 3D, Fltr,
    /// SmCo, LC, Sect, SmCl, CC/LC).
    pub fn label(&self) -> &'static str {
        match self.kind {
            TechniqueKind::CacheCompression { .. } => "CC",
            TechniqueKind::DramCache { .. } => "DRAM",
            TechniqueKind::StackedCache { .. } => "3D",
            TechniqueKind::UnusedDataFilter { .. } => "Fltr",
            TechniqueKind::SmallerCores { .. } => "SmCo",
            TechniqueKind::LinkCompression { .. } => "LC",
            TechniqueKind::SectoredCache { .. } => "Sect",
            TechniqueKind::SmallCacheLines { .. } => "SmCl",
            TechniqueKind::CacheLinkCompression { .. } => "CC/LC",
        }
    }

    /// Accumulates this technique's contribution into `effects`.
    pub fn apply_to(&self, effects: &mut Effects) {
        match self.kind {
            TechniqueKind::CacheCompression { ratio } => effects.scale_capacity(ratio),
            TechniqueKind::DramCache { density } => effects.scale_cache_density(density),
            TechniqueKind::StackedCache {
                layers,
                layer_density,
            } => {
                let layer =
                    StackedLayer::new(layer_density).expect("validated at technique construction");
                for _ in 0..layers {
                    effects.add_stacked_layer(layer);
                }
            }
            TechniqueKind::UnusedDataFilter { unused_fraction } => {
                effects.scale_capacity(1.0 / (1.0 - unused_fraction));
            }
            TechniqueKind::SmallerCores { area_fraction } => {
                effects.scale_core_size(area_fraction);
            }
            TechniqueKind::LinkCompression { ratio } => effects.scale_traffic_divisor(ratio),
            TechniqueKind::SectoredCache { unused_fraction } => {
                effects.scale_traffic_divisor(1.0 / (1.0 - unused_fraction));
            }
            TechniqueKind::SmallCacheLines { unused_fraction } => {
                let factor = 1.0 / (1.0 - unused_fraction);
                effects.scale_capacity(factor);
                effects.scale_traffic_divisor(factor);
            }
            TechniqueKind::CacheLinkCompression { ratio } => {
                effects.scale_capacity(ratio);
                effects.scale_traffic_divisor(ratio);
            }
        }
    }
}

impl fmt::Display for Technique {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            TechniqueKind::CacheCompression { ratio } => {
                write!(f, "cache compression ({ratio}x)")
            }
            TechniqueKind::DramCache { density } => write!(f, "DRAM cache ({density}x density)"),
            TechniqueKind::StackedCache {
                layers,
                layer_density,
            } => {
                if layer_density == 1.0 {
                    write!(f, "3D-stacked SRAM cache ({layers} layer(s))")
                } else {
                    write!(
                        f,
                        "3D-stacked DRAM cache ({layers} layer(s), {layer_density}x)"
                    )
                }
            }
            TechniqueKind::UnusedDataFilter { unused_fraction } => {
                write!(f, "unused-data filtering ({:.0}%)", unused_fraction * 100.0)
            }
            TechniqueKind::SmallerCores { area_fraction } => {
                write!(f, "smaller cores ({:.0}x smaller)", 1.0 / area_fraction)
            }
            TechniqueKind::LinkCompression { ratio } => write!(f, "link compression ({ratio}x)"),
            TechniqueKind::SectoredCache { unused_fraction } => {
                write!(f, "sectored cache ({:.0}% unused)", unused_fraction * 100.0)
            }
            TechniqueKind::SmallCacheLines { unused_fraction } => {
                write!(
                    f,
                    "small cache lines ({:.0}% unused)",
                    unused_fraction * 100.0
                )
            }
            TechniqueKind::CacheLinkCompression { ratio } => {
                write!(f, "cache+link compression ({ratio}x)")
            }
        }
    }
}

/// Folds a set of techniques into one [`Effects`] record.
///
/// # Examples
///
/// ```
/// use bandwall_model::techniques::{combine, Technique};
///
/// let set = [
///     Technique::cache_link_compression(2.0)?,
///     Technique::small_cache_lines(0.4)?,
/// ];
/// let e = combine(&set);
/// // Direct reduction: 2 × 1/(1-0.4) = 3.33× → 70% less traffic.
/// assert!((e.traffic_divisor() - 2.0 / 0.6).abs() < 1e-12);
/// # Ok::<(), bandwall_model::ModelError>(())
/// ```
pub fn combine(techniques: &[Technique]) -> Effects {
    let mut effects = Effects::none();
    for t in techniques {
        t.apply_to(&mut effects);
    }
    effects
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_validation() {
        assert!(Technique::cache_compression(0.9).is_err());
        assert!(Technique::cache_compression(1.0).is_ok());
        assert!(Technique::dram_cache(f64::NAN).is_err());
        assert!(Technique::stacked_cache(0).is_err());
        assert!(Technique::stacked_dram_cache(1, 0.5).is_err());
        assert!(Technique::unused_data_filter(1.0).is_err());
        assert!(Technique::unused_data_filter(-0.1).is_err());
        assert!(Technique::unused_data_filter(0.0).is_ok());
        assert!(Technique::smaller_cores(0.0).is_err());
        assert!(Technique::smaller_cores(1.5).is_err());
        assert!(Technique::smaller_cores(1.0).is_ok());
        assert!(Technique::link_compression(0.5).is_err());
        assert!(Technique::sectored_cache(0.99).is_ok());
        assert!(Technique::small_cache_lines(1.0).is_err());
        assert!(Technique::cache_link_compression(2.0).is_ok());
    }

    #[test]
    fn categories_match_paper() {
        assert_eq!(
            Technique::cache_compression(2.0).unwrap().category(),
            Category::Indirect
        );
        assert_eq!(
            Technique::dram_cache(8.0).unwrap().category(),
            Category::Indirect
        );
        assert_eq!(
            Technique::stacked_cache(1).unwrap().category(),
            Category::Indirect
        );
        assert_eq!(
            Technique::unused_data_filter(0.4).unwrap().category(),
            Category::Indirect
        );
        assert_eq!(
            Technique::smaller_cores(0.025).unwrap().category(),
            Category::Indirect
        );
        assert_eq!(
            Technique::link_compression(2.0).unwrap().category(),
            Category::Direct
        );
        assert_eq!(
            Technique::sectored_cache(0.4).unwrap().category(),
            Category::Direct
        );
        assert_eq!(
            Technique::small_cache_lines(0.4).unwrap().category(),
            Category::Dual
        );
        assert_eq!(
            Technique::cache_link_compression(2.0).unwrap().category(),
            Category::Dual
        );
    }

    #[test]
    fn labels_match_figure_axes() {
        let labels: Vec<&str> = [
            Technique::cache_compression(2.0).unwrap(),
            Technique::dram_cache(8.0).unwrap(),
            Technique::stacked_cache(1).unwrap(),
            Technique::unused_data_filter(0.4).unwrap(),
            Technique::smaller_cores(0.025).unwrap(),
            Technique::link_compression(2.0).unwrap(),
            Technique::sectored_cache(0.4).unwrap(),
            Technique::small_cache_lines(0.4).unwrap(),
            Technique::cache_link_compression(2.0).unwrap(),
        ]
        .iter()
        .map(Technique::label)
        .collect();
        assert_eq!(
            labels,
            ["CC", "DRAM", "3D", "Fltr", "SmCo", "LC", "Sect", "SmCl", "CC/LC"]
        );
    }

    #[test]
    fn indirect_effects() {
        let e = combine(&[Technique::cache_compression(2.0).unwrap()]);
        assert_eq!(e.capacity_factor(), 2.0);
        assert_eq!(e.traffic_divisor(), 1.0);

        let e = combine(&[Technique::unused_data_filter(0.4).unwrap()]);
        assert!((e.capacity_factor() - 1.0 / 0.6).abs() < 1e-12);
    }

    #[test]
    fn direct_effects() {
        let e = combine(&[Technique::link_compression(3.0).unwrap()]);
        assert_eq!(e.traffic_divisor(), 3.0);
        assert_eq!(e.capacity_factor(), 1.0);

        let e = combine(&[Technique::sectored_cache(0.8).unwrap()]);
        assert!((e.traffic_divisor() - 5.0).abs() < 1e-12);
        assert_eq!(e.capacity_factor(), 1.0);
    }

    #[test]
    fn dual_effects() {
        let e = combine(&[Technique::small_cache_lines(0.4).unwrap()]);
        assert!((e.capacity_factor() - 1.0 / 0.6).abs() < 1e-12);
        assert!((e.traffic_divisor() - 1.0 / 0.6).abs() < 1e-12);
    }

    #[test]
    fn combination_is_commutative() {
        let a = Technique::cache_link_compression(2.0).unwrap();
        let b = Technique::dram_cache(8.0).unwrap();
        let c = Technique::stacked_cache(1).unwrap();
        let d = Technique::small_cache_lines(0.4).unwrap();
        let forward = combine(&[a, b, c, d]);
        let backward = combine(&[d, c, b, a]);
        assert_eq!(forward, backward);
    }

    #[test]
    fn paper_combined_capacity_claim() {
        // "3D-stacked DRAM cache, cache compression, and small cache lines
        // can increase the effective cache capacity by 53×" — capacity per
        // CEA × die-area doubling when cache dominates.
        let e = combine(&[
            Technique::cache_compression(2.0).unwrap(),
            Technique::dram_cache(8.0).unwrap(),
            Technique::stacked_cache(1).unwrap(),
            Technique::small_cache_lines(0.4).unwrap(),
        ]);
        // Per-CEA factor: 2 × 8 × 1.667 = 26.7; the stacked layer doubles
        // the cache area when cache dominates the die, giving ≈53×.
        let per_cea = e.capacity_factor() * e.cache_density();
        assert!((per_cea - 80.0 / 3.0).abs() < 1e-9);
        let with_layer = per_cea * 2.0;
        assert!(with_layer > 50.0 && with_layer < 56.0, "{with_layer}");
        // Indirect traffic reduction at α = 0.5: 1 - 53^-0.5 ≈ 86%
        // (the paper quotes 84% for its exact area split).
        let reduction = 1.0 - with_layer.powf(-0.5);
        assert!(reduction > 0.83 && reduction < 0.88, "{reduction}");
    }

    #[test]
    fn display_mentions_parameters() {
        assert!(Technique::dram_cache(8.0)
            .unwrap()
            .to_string()
            .contains('8'));
        assert!(Technique::smaller_cores(1.0 / 80.0)
            .unwrap()
            .to_string()
            .contains("80"));
        assert!(Technique::stacked_dram_cache(1, 16.0)
            .unwrap()
            .to_string()
            .contains("16"));
        assert!(Technique::stacked_cache(1)
            .unwrap()
            .to_string()
            .contains("SRAM"));
    }

    #[test]
    fn category_display() {
        assert_eq!(Category::Indirect.to_string(), "indirect");
        assert_eq!(Category::Direct.to_string(), "direct");
        assert_eq!(Category::Dual.to_string(), "dual");
    }
}
