//! The open technique registry: one [`TechniqueDescriptor`] per
//! bandwidth-conservation technique.
//!
//! Table 2 is the paper's central artifact, but a catalogue hardcoded as
//! enums and match arms is closed: every new technique used to require
//! edits in four places (the `Technique` constructors, the catalogue
//! enum, the named-sweep match, and the wire schema). This module makes
//! the catalogue *data*: each descriptor carries the technique's
//! identity, its Table 2 ratings and assumption bands, its parameter
//! schema (names, domains, defaults — shared by the constructors and the
//! `/v1` wire layer), its canonical-encoding tag, and its effect
//! application as a composable term over [`Effects`]. Every consumer —
//! [`crate::catalog()`], the figure sweeps, `GET /v1/techniques`,
//! `POST /v1/sweep` validation — derives from this table, so registering
//! a technique here is the *only* step needed to open a new scenario
//! axis.
//!
//! The registry holds the paper's nine Table 2 rows
//! ([`TechniqueDescriptor::paper`] is `true`) plus post-2009 extensions:
//! `thermal_capped_3d` (the thermal ceiling on 3D stacking, after Yavits
//! et al., "The Effect of Temperature on Amdahl Law in 3D Multicore
//! Era") and `cxl_harvesting` (idle-I/O bandwidth harvesting over CXL,
//! after Kadiyala & Daglis, arXiv 2511.12349).

use crate::catalog::{AssumptionLevel, Rating};
use crate::effects::{Effects, StackedLayer};
use crate::error::ModelError;
use crate::techniques::{Category, Technique};
use std::fmt;

/// The largest parameter count any registered technique uses; the fixed
/// size of [`Technique`]'s inline parameter storage.
pub const MAX_PARAMS: usize = 3;

/// The validation domain of one technique parameter. Each domain owns
/// its constraint text, so the registry cannot drift from the error
/// messages the model (and the wire layer) report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamDomain {
    /// A multiplier at or above 1 (compression ratios, densities).
    Ratio,
    /// A fraction in `[0, 1)` (unused-data shares).
    Fraction,
    /// A fraction in `[0, 1]` (duty cycles; the closed upper end is
    /// meaningful: "always" is a valid answer).
    ClosedFraction,
    /// A fraction in `(0, 1]` (area fractions, derating factors).
    UnitInterval,
    /// A non-negative finite magnitude.
    NonNegative,
    /// A whole number of layers, at least 1.
    Layers,
}

impl ParamDomain {
    /// The constraint text carried by validation errors.
    pub fn constraint(self) -> &'static str {
        match self {
            ParamDomain::Ratio => "must be finite and >= 1",
            ParamDomain::Fraction => "must be in [0, 1)",
            ParamDomain::ClosedFraction => "must be in [0, 1]",
            ParamDomain::UnitInterval => "must be in (0, 1]",
            ParamDomain::NonNegative => "must be finite and >= 0",
            ParamDomain::Layers => "must be at least 1",
        }
    }

    /// Whether values in this domain are whole numbers (and therefore
    /// canonically encoded — and wire-rendered — as integers).
    pub fn is_integer(self) -> bool {
        matches!(self, ParamDomain::Layers)
    }

    /// Checks `value` against the domain.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] carrying `name`, the
    /// offending value, and this domain's constraint text.
    pub fn validate(self, name: &'static str, value: f64) -> Result<f64, ModelError> {
        let ok = match self {
            ParamDomain::Ratio => value.is_finite() && value >= 1.0,
            ParamDomain::Fraction => value.is_finite() && (0.0..1.0).contains(&value),
            ParamDomain::ClosedFraction => value.is_finite() && (0.0..=1.0).contains(&value),
            ParamDomain::UnitInterval => value.is_finite() && value > 0.0 && value <= 1.0,
            ParamDomain::NonNegative => value.is_finite() && value >= 0.0,
            ParamDomain::Layers => {
                value.is_finite()
                    && value.fract() == 0.0
                    && (1.0..=f64::from(u32::MAX)).contains(&value)
            }
        };
        if ok {
            Ok(value)
        } else {
            Err(ModelError::InvalidParameter {
                name,
                value,
                constraint: self.constraint(),
            })
        }
    }
}

/// Schema of one technique parameter: its wire field name, the name
/// validation errors report it under, its domain, and the value it takes
/// when a wire shape omits it.
#[derive(Debug, Clone, Copy)]
pub struct ParamSpec {
    /// JSON field name on the wire (e.g. `"layer_density"`).
    pub field: &'static str,
    /// Name used in [`ModelError::InvalidParameter`] (historically not
    /// always the wire name, e.g. `compression_ratio` for `ratio`).
    pub error_name: &'static str,
    /// Validation domain.
    pub domain: ParamDomain,
    /// Value assumed when a wire shape omits this field; `None` marks a
    /// parameter every wire shape must carry.
    pub default: Option<f64>,
}

/// One JSON shape a technique accepts (and renders) on the wire: a
/// `kind` string plus the indices of the parameters that shape carries.
/// A technique may have several shapes — `stacked_cache` (layers only,
/// density defaulting to SRAM) and `stacked_dram_cache` (layers and
/// density) are two shapes of one descriptor.
#[derive(Debug, Clone, Copy)]
pub struct WireKind {
    /// The `kind` discriminator on the wire.
    pub kind: &'static str,
    /// Indices into [`TechniqueDescriptor::params`] this shape carries;
    /// omitted parameters take their [`ParamSpec::default`].
    pub fields: &'static [usize],
}

/// One assumption level of a technique: the Table 2 cell text and the
/// full parameter vector that instantiates it.
#[derive(Debug, Clone, Copy)]
pub struct AssumptionBand {
    /// Human-readable assumption text, as printed in Table 2.
    pub text: &'static str,
    /// Parameter vector (one value per [`TechniqueDescriptor::params`]
    /// entry) at this level.
    pub params: &'static [f64],
}

/// Everything the system knows about one bandwidth-conservation
/// technique. See the [module docs](self) for the design rationale.
#[derive(Debug, Clone, Copy)]
pub struct TechniqueDescriptor {
    /// Stable registry id — also the technique's primary wire kind.
    pub id: &'static str,
    /// Short figure-axis label (e.g. `"CC/LC"`).
    pub label: &'static str,
    /// Full name as printed in Table 2.
    pub name: &'static str,
    /// Section 6 taxonomy bucket.
    pub category: Category,
    /// Canonical-encoding discriminant. Tags are append-only and never
    /// reused: they feed [`crate::CanonicalProblem`] digests that appear
    /// in wire replies, so reassigning one would silently invalidate
    /// memoized solves and recorded digests.
    pub tag: u64,
    /// `true` for the nine rows of the paper's Table 2; `false` for
    /// post-2009 extensions. [`crate::catalog::catalog`] filters on this
    /// so the paper-reproduction experiments keep their exact row sets.
    pub paper: bool,
    /// Parameter schema, in constructor/validation order.
    pub params: &'static [ParamSpec],
    /// Wire shapes, most specific default-matching shape first (the
    /// renderer picks the first shape whose omitted parameters all equal
    /// their defaults).
    pub wire: &'static [WireKind],
    /// Table 2: expected benefit to CMP core scaling.
    pub effectiveness: Rating,
    /// Table 2: variability of the benefit across workloads.
    pub range: Rating,
    /// Table 2: implementation cost/feasibility.
    pub complexity: Rating,
    /// Lower end of the literature range.
    pub pessimistic: AssumptionBand,
    /// The main-line assumption.
    pub realistic: AssumptionBand,
    /// Upper end of the literature range.
    pub optimistic: AssumptionBand,
    /// Accumulates the technique's contribution into an [`Effects`]
    /// record. Parameters arrive validated.
    pub apply: fn(&[f64], &mut Effects),
    /// Renders the technique's human-readable description (the
    /// `Display` impl of [`Technique`] delegates here).
    pub describe: fn(&[f64], &mut fmt::Formatter<'_>) -> fmt::Result,
}

impl TechniqueDescriptor {
    /// Validates `params` against the schema and builds the technique.
    /// Parameters are validated in schema order, so the first
    /// out-of-domain value is the one reported.
    ///
    /// # Errors
    ///
    /// [`ModelError::InvalidParameter`] for a wrong parameter count or
    /// the first parameter outside its domain.
    pub fn instantiate(&'static self, params: &[f64]) -> Result<Technique, ModelError> {
        if params.len() != self.params.len() {
            return Err(ModelError::InvalidParameter {
                name: "params",
                value: params.len() as f64,
                constraint: "wrong parameter count for technique",
            });
        }
        let mut stored = [0.0_f64; MAX_PARAMS];
        for (slot, (spec, &value)) in stored.iter_mut().zip(self.params.iter().zip(params)) {
            *slot = spec.domain.validate(spec.error_name, value)?;
        }
        Ok(Technique::from_parts(self, stored))
    }

    /// The assumption band at `level`.
    pub fn band(&self, level: AssumptionLevel) -> &AssumptionBand {
        match level {
            AssumptionLevel::Pessimistic => &self.pessimistic,
            AssumptionLevel::Realistic => &self.realistic,
            AssumptionLevel::Optimistic => &self.optimistic,
        }
    }

    /// Instantiates the technique at an assumption level.
    ///
    /// # Errors
    ///
    /// Never fails for registered descriptors (their bands are
    /// registry-tested); the `Result` mirrors [`Self::instantiate`].
    pub fn at(&'static self, level: AssumptionLevel) -> Result<Technique, ModelError> {
        self.instantiate(self.band(level).params)
    }
}

// ---------------------------------------------------------------------
// Effect application — each technique's contribution to the multiplicative
// algebra, as a named function so the registry stays a const table.
// ---------------------------------------------------------------------

fn apply_cache_compression(p: &[f64], e: &mut Effects) {
    e.scale_capacity(p[0]);
}

fn apply_dram_cache(p: &[f64], e: &mut Effects) {
    e.scale_cache_density(p[0]);
}

fn apply_stacked_cache(p: &[f64], e: &mut Effects) {
    let layer = StackedLayer::new(p[1]).expect("validated at technique construction");
    for _ in 0..(p[0] as u64) {
        e.add_stacked_layer(layer);
    }
}

fn apply_unused_data_filter(p: &[f64], e: &mut Effects) {
    e.scale_capacity(1.0 / (1.0 - p[0]));
}

fn apply_smaller_cores(p: &[f64], e: &mut Effects) {
    e.scale_core_size(p[0]);
}

fn apply_link_compression(p: &[f64], e: &mut Effects) {
    e.scale_traffic_divisor(p[0]);
}

fn apply_sectored_cache(p: &[f64], e: &mut Effects) {
    e.scale_traffic_divisor(1.0 / (1.0 - p[0]));
}

fn apply_small_cache_lines(p: &[f64], e: &mut Effects) {
    let factor = 1.0 / (1.0 - p[0]);
    e.scale_capacity(factor);
    e.scale_traffic_divisor(factor);
}

fn apply_cache_link_compression(p: &[f64], e: &mut Effects) {
    e.scale_capacity(p[0]);
    e.scale_traffic_divisor(p[0]);
}

/// Thermal ceiling on 3D stacking: each successive layer sits further
/// from the heat sink and must derate (slower refresh, lower clock,
/// guard-banded capacity), so layer `k` contributes
/// `density × derate^k`. The total stacked benefit is geometrically
/// bounded by `density / (1 - derate)` layers-worth of cache — the
/// thermal ceiling — instead of growing linearly with the stack.
fn apply_thermal_capped_3d(p: &[f64], e: &mut Effects) {
    let layers = p[0] as u64;
    let derate = p[2];
    let mut density = p[1];
    for _ in 0..layers {
        e.add_stacked_layer(StackedLayer::new(density).expect("derated density stays positive"));
        density *= derate;
    }
}

/// CXL idle-I/O bandwidth harvesting: memory traffic borrows the I/O
/// links' idle cycles, growing the effective off-chip envelope by
/// `io_bandwidth_ratio × idle_fraction` — a direct divisor on relative
/// traffic, exactly like provisioning that much extra bandwidth.
fn apply_cxl_harvesting(p: &[f64], e: &mut Effects) {
    e.scale_traffic_divisor(1.0 + p[0] * p[1]);
}

// ---------------------------------------------------------------------
// Descriptions — byte-compatible with the historical Display strings.
// ---------------------------------------------------------------------

fn fmt_cache_compression(p: &[f64], f: &mut fmt::Formatter<'_>) -> fmt::Result {
    write!(f, "cache compression ({}x)", p[0])
}

fn fmt_dram_cache(p: &[f64], f: &mut fmt::Formatter<'_>) -> fmt::Result {
    write!(f, "DRAM cache ({}x density)", p[0])
}

fn fmt_stacked_cache(p: &[f64], f: &mut fmt::Formatter<'_>) -> fmt::Result {
    let layers = p[0] as u64;
    if p[1] == 1.0 {
        write!(f, "3D-stacked SRAM cache ({layers} layer(s))")
    } else {
        write!(f, "3D-stacked DRAM cache ({layers} layer(s), {}x)", p[1])
    }
}

fn fmt_unused_data_filter(p: &[f64], f: &mut fmt::Formatter<'_>) -> fmt::Result {
    write!(f, "unused-data filtering ({:.0}%)", p[0] * 100.0)
}

fn fmt_smaller_cores(p: &[f64], f: &mut fmt::Formatter<'_>) -> fmt::Result {
    write!(f, "smaller cores ({:.0}x smaller)", 1.0 / p[0])
}

fn fmt_link_compression(p: &[f64], f: &mut fmt::Formatter<'_>) -> fmt::Result {
    write!(f, "link compression ({}x)", p[0])
}

fn fmt_sectored_cache(p: &[f64], f: &mut fmt::Formatter<'_>) -> fmt::Result {
    write!(f, "sectored cache ({:.0}% unused)", p[0] * 100.0)
}

fn fmt_small_cache_lines(p: &[f64], f: &mut fmt::Formatter<'_>) -> fmt::Result {
    write!(f, "small cache lines ({:.0}% unused)", p[0] * 100.0)
}

fn fmt_cache_link_compression(p: &[f64], f: &mut fmt::Formatter<'_>) -> fmt::Result {
    write!(f, "cache+link compression ({}x)", p[0])
}

fn fmt_thermal_capped_3d(p: &[f64], f: &mut fmt::Formatter<'_>) -> fmt::Result {
    write!(
        f,
        "thermal-capped 3D cache ({} layer(s), {}x, derate {})",
        p[0] as u64, p[1], p[2]
    )
}

fn fmt_cxl_harvesting(p: &[f64], f: &mut fmt::Formatter<'_>) -> fmt::Result {
    write!(
        f,
        "CXL bandwidth harvesting ({}x I/O, {:.0}% idle)",
        p[0],
        p[1] * 100.0
    )
}

// ---------------------------------------------------------------------
// The registry.
// ---------------------------------------------------------------------

/// Shorthand for a single-parameter `ratio` technique's wire shape.
const RATIO_WIRE: &[usize] = &[0];

static REGISTRY: [TechniqueDescriptor; 11] = [
    TechniqueDescriptor {
        id: "cache_compression",
        label: "CC",
        name: "Cache Compress",
        category: Category::Indirect,
        tag: 1,
        paper: true,
        params: &[ParamSpec {
            field: "ratio",
            error_name: "compression_ratio",
            domain: ParamDomain::Ratio,
            default: None,
        }],
        wire: &[WireKind {
            kind: "cache_compression",
            fields: RATIO_WIRE,
        }],
        effectiveness: Rating::Medium,
        range: Rating::Low,
        complexity: Rating::Medium,
        pessimistic: AssumptionBand {
            text: "1.25x compr.",
            params: &[1.25],
        },
        realistic: AssumptionBand {
            text: "2x compr.",
            params: &[2.0],
        },
        optimistic: AssumptionBand {
            text: "3.5x compr.",
            params: &[3.5],
        },
        apply: apply_cache_compression,
        describe: fmt_cache_compression,
    },
    TechniqueDescriptor {
        id: "dram_cache",
        label: "DRAM",
        name: "DRAM Cache",
        category: Category::Indirect,
        tag: 2,
        paper: true,
        params: &[ParamSpec {
            field: "density",
            error_name: "dram_density",
            domain: ParamDomain::Ratio,
            default: None,
        }],
        wire: &[WireKind {
            kind: "dram_cache",
            fields: RATIO_WIRE,
        }],
        effectiveness: Rating::High,
        range: Rating::Medium,
        complexity: Rating::Low,
        pessimistic: AssumptionBand {
            text: "4x density",
            params: &[4.0],
        },
        realistic: AssumptionBand {
            text: "8x density",
            params: &[8.0],
        },
        optimistic: AssumptionBand {
            text: "16x density",
            params: &[16.0],
        },
        apply: apply_dram_cache,
        describe: fmt_dram_cache,
    },
    TechniqueDescriptor {
        id: "stacked_cache",
        label: "3D",
        name: "3D-stacked Cache",
        category: Category::Indirect,
        tag: 3,
        paper: true,
        params: &[
            ParamSpec {
                field: "layers",
                error_name: "layers",
                domain: ParamDomain::Layers,
                default: None,
            },
            ParamSpec {
                field: "layer_density",
                error_name: "layer_density",
                domain: ParamDomain::Ratio,
                default: Some(1.0),
            },
        ],
        wire: &[
            WireKind {
                kind: "stacked_cache",
                fields: &[0],
            },
            WireKind {
                kind: "stacked_dram_cache",
                fields: &[0, 1],
            },
        ],
        effectiveness: Rating::Medium,
        range: Rating::Low,
        complexity: Rating::High,
        // Table 2 considers only the SRAM-layer variant for 3D.
        pessimistic: AssumptionBand {
            text: "3D SRAM layer",
            params: &[1.0, 1.0],
        },
        realistic: AssumptionBand {
            text: "3D SRAM layer",
            params: &[1.0, 1.0],
        },
        optimistic: AssumptionBand {
            text: "3D SRAM layer",
            params: &[1.0, 1.0],
        },
        apply: apply_stacked_cache,
        describe: fmt_stacked_cache,
    },
    TechniqueDescriptor {
        id: "unused_data_filter",
        label: "Fltr",
        name: "Unused Data Filter",
        category: Category::Indirect,
        tag: 4,
        paper: true,
        params: &[ParamSpec {
            field: "unused_fraction",
            error_name: "unused_fraction",
            domain: ParamDomain::Fraction,
            default: None,
        }],
        wire: &[WireKind {
            kind: "unused_data_filter",
            fields: RATIO_WIRE,
        }],
        effectiveness: Rating::Medium,
        range: Rating::Medium,
        complexity: Rating::Medium,
        pessimistic: AssumptionBand {
            text: "10% unused data",
            params: &[0.1],
        },
        realistic: AssumptionBand {
            text: "40% unused data",
            params: &[0.4],
        },
        optimistic: AssumptionBand {
            text: "80% unused data",
            params: &[0.8],
        },
        apply: apply_unused_data_filter,
        describe: fmt_unused_data_filter,
    },
    TechniqueDescriptor {
        id: "smaller_cores",
        label: "SmCo",
        name: "Smaller Cores",
        category: Category::Indirect,
        tag: 5,
        paper: true,
        params: &[ParamSpec {
            field: "area_fraction",
            error_name: "area_fraction",
            domain: ParamDomain::UnitInterval,
            default: None,
        }],
        wire: &[WireKind {
            kind: "smaller_cores",
            fields: RATIO_WIRE,
        }],
        effectiveness: Rating::Low,
        range: Rating::Low,
        complexity: Rating::Low,
        pessimistic: AssumptionBand {
            text: "9x less area",
            params: &[1.0 / 9.0],
        },
        realistic: AssumptionBand {
            text: "40x less area",
            params: &[1.0 / 40.0],
        },
        optimistic: AssumptionBand {
            text: "80x less area",
            params: &[1.0 / 80.0],
        },
        apply: apply_smaller_cores,
        describe: fmt_smaller_cores,
    },
    TechniqueDescriptor {
        id: "link_compression",
        label: "LC",
        name: "Link Compress",
        category: Category::Direct,
        tag: 6,
        paper: true,
        params: &[ParamSpec {
            field: "ratio",
            error_name: "compression_ratio",
            domain: ParamDomain::Ratio,
            default: None,
        }],
        wire: &[WireKind {
            kind: "link_compression",
            fields: RATIO_WIRE,
        }],
        effectiveness: Rating::High,
        range: Rating::Medium,
        complexity: Rating::Low,
        pessimistic: AssumptionBand {
            text: "1.25x compr.",
            params: &[1.25],
        },
        realistic: AssumptionBand {
            text: "2x compr.",
            params: &[2.0],
        },
        optimistic: AssumptionBand {
            text: "3.5x compr.",
            params: &[3.5],
        },
        apply: apply_link_compression,
        describe: fmt_link_compression,
    },
    TechniqueDescriptor {
        id: "sectored_cache",
        label: "Sect",
        name: "Sectored Caches",
        category: Category::Direct,
        tag: 7,
        paper: true,
        params: &[ParamSpec {
            field: "unused_fraction",
            error_name: "unused_fraction",
            domain: ParamDomain::Fraction,
            default: None,
        }],
        wire: &[WireKind {
            kind: "sectored_cache",
            fields: RATIO_WIRE,
        }],
        effectiveness: Rating::Medium,
        range: Rating::High,
        complexity: Rating::Medium,
        pessimistic: AssumptionBand {
            text: "10% unused data",
            params: &[0.1],
        },
        realistic: AssumptionBand {
            text: "40% unused data",
            params: &[0.4],
        },
        optimistic: AssumptionBand {
            text: "80% unused data",
            params: &[0.8],
        },
        apply: apply_sectored_cache,
        describe: fmt_sectored_cache,
    },
    TechniqueDescriptor {
        id: "small_cache_lines",
        label: "SmCl",
        name: "Smaller Cache Lines",
        category: Category::Dual,
        tag: 8,
        paper: true,
        params: &[ParamSpec {
            field: "unused_fraction",
            error_name: "unused_fraction",
            domain: ParamDomain::Fraction,
            default: None,
        }],
        wire: &[WireKind {
            kind: "small_cache_lines",
            fields: RATIO_WIRE,
        }],
        effectiveness: Rating::High,
        range: Rating::High,
        complexity: Rating::Medium,
        pessimistic: AssumptionBand {
            text: "10% unused data",
            params: &[0.1],
        },
        realistic: AssumptionBand {
            text: "40% unused data",
            params: &[0.4],
        },
        optimistic: AssumptionBand {
            text: "80% unused data",
            params: &[0.8],
        },
        apply: apply_small_cache_lines,
        describe: fmt_small_cache_lines,
    },
    TechniqueDescriptor {
        id: "cache_link_compression",
        label: "CC/LC",
        name: "Cache+Link Compress",
        category: Category::Dual,
        tag: 9,
        paper: true,
        params: &[ParamSpec {
            field: "ratio",
            error_name: "compression_ratio",
            domain: ParamDomain::Ratio,
            default: None,
        }],
        wire: &[WireKind {
            kind: "cache_link_compression",
            fields: RATIO_WIRE,
        }],
        effectiveness: Rating::High,
        range: Rating::High,
        complexity: Rating::Low,
        pessimistic: AssumptionBand {
            text: "1.25x compr.",
            params: &[1.25],
        },
        realistic: AssumptionBand {
            text: "2x compr.",
            params: &[2.0],
        },
        optimistic: AssumptionBand {
            text: "3.5x compr.",
            params: &[3.5],
        },
        apply: apply_cache_link_compression,
        describe: fmt_cache_link_compression,
    },
    // -- Post-2009 extensions (registered as data; nothing below the
    //    registry knows them by name) ---------------------------------
    TechniqueDescriptor {
        id: "thermal_capped_3d",
        label: "3D/T",
        name: "Thermal-capped 3D Cache",
        category: Category::Indirect,
        tag: 10,
        paper: false,
        params: &[
            ParamSpec {
                field: "layers",
                error_name: "layers",
                domain: ParamDomain::Layers,
                default: None,
            },
            ParamSpec {
                field: "layer_density",
                error_name: "layer_density",
                domain: ParamDomain::Ratio,
                default: Some(1.0),
            },
            ParamSpec {
                field: "thermal_derate",
                error_name: "thermal_derate",
                domain: ParamDomain::UnitInterval,
                default: Some(1.0),
            },
        ],
        wire: &[WireKind {
            kind: "thermal_capped_3d",
            fields: &[0, 1, 2],
        }],
        effectiveness: Rating::High,
        range: Rating::Medium,
        complexity: Rating::High,
        pessimistic: AssumptionBand {
            text: "2 DRAM layers, 0.5 derate",
            params: &[2.0, 8.0, 0.5],
        },
        realistic: AssumptionBand {
            text: "4 DRAM layers, 0.7 derate",
            params: &[4.0, 8.0, 0.7],
        },
        optimistic: AssumptionBand {
            text: "8 DRAM layers, 0.85 derate",
            params: &[8.0, 16.0, 0.85],
        },
        apply: apply_thermal_capped_3d,
        describe: fmt_thermal_capped_3d,
    },
    TechniqueDescriptor {
        id: "cxl_harvesting",
        label: "CXL",
        name: "CXL Bandwidth Harvest",
        category: Category::Direct,
        tag: 11,
        paper: false,
        params: &[
            ParamSpec {
                field: "io_bandwidth_ratio",
                error_name: "io_bandwidth_ratio",
                domain: ParamDomain::NonNegative,
                default: None,
            },
            ParamSpec {
                field: "idle_fraction",
                error_name: "idle_fraction",
                domain: ParamDomain::ClosedFraction,
                default: None,
            },
        ],
        wire: &[WireKind {
            kind: "cxl_harvesting",
            fields: &[0, 1],
        }],
        effectiveness: Rating::Medium,
        range: Rating::High,
        complexity: Rating::Medium,
        pessimistic: AssumptionBand {
            text: "0.25x I/O, 25% idle",
            params: &[0.25, 0.25],
        },
        realistic: AssumptionBand {
            text: "0.5x I/O, 50% idle",
            params: &[0.5, 0.5],
        },
        optimistic: AssumptionBand {
            text: "1x I/O, 80% idle",
            params: &[1.0, 0.8],
        },
        apply: apply_cxl_harvesting,
        describe: fmt_cxl_harvesting,
    },
];

/// The full technique registry: the paper's nine Table 2 rows followed
/// by the post-2009 extensions, in figure/registration order.
pub fn registry() -> &'static [TechniqueDescriptor] {
    &REGISTRY
}

/// Looks up a descriptor by registry id.
///
/// # Examples
///
/// ```
/// use bandwall_model::descriptor::descriptor;
/// assert!(descriptor("dram_cache").is_some());
/// assert!(descriptor("warp_drive").is_none());
/// ```
pub fn descriptor(id: &str) -> Option<&'static TechniqueDescriptor> {
    REGISTRY.iter().find(|d| d.id == id)
}

/// Resolves a wire `kind` string to its descriptor and the wire shape it
/// names (a descriptor may expose several shapes).
pub fn wire_kind(kind: &str) -> Option<(&'static TechniqueDescriptor, &'static WireKind)> {
    REGISTRY
        .iter()
        .find_map(|d| d.wire.iter().find(|w| w.kind == kind).map(|w| (d, w)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn registry_identity_is_consistent() {
        let ids: BTreeSet<&str> = REGISTRY.iter().map(|d| d.id).collect();
        let tags: BTreeSet<u64> = REGISTRY.iter().map(|d| d.tag).collect();
        let labels: BTreeSet<&str> = REGISTRY.iter().map(|d| d.label).collect();
        assert_eq!(ids.len(), REGISTRY.len(), "ids must be unique");
        assert_eq!(tags.len(), REGISTRY.len(), "tags must be unique");
        assert_eq!(labels.len(), REGISTRY.len(), "labels must be unique");
        let kinds: Vec<&str> = REGISTRY
            .iter()
            .flat_map(|d| d.wire.iter().map(|w| w.kind))
            .collect();
        let unique: BTreeSet<&&str> = kinds.iter().collect();
        assert_eq!(unique.len(), kinds.len(), "wire kinds must be unique");
        assert_eq!(REGISTRY.iter().filter(|d| d.paper).count(), 9);
    }

    #[test]
    fn schemas_are_well_formed() {
        for d in registry() {
            assert!(d.params.len() <= MAX_PARAMS, "{}", d.id);
            assert_eq!(
                d.wire.first().map(|w| w.kind),
                Some(d.id),
                "{}: primary wire kind must be the id",
                d.id
            );
            for w in d.wire {
                for &i in w.fields {
                    assert!(i < d.params.len(), "{}: field index {i}", d.id);
                }
                // Omitted fields must have defaults, or the shape could
                // never be parsed.
                for (i, spec) in d.params.iter().enumerate() {
                    assert!(
                        w.fields.contains(&i) || spec.default.is_some(),
                        "{}: shape {} omits defaultless param {}",
                        d.id,
                        w.kind,
                        spec.field
                    );
                }
            }
        }
    }

    #[test]
    fn every_band_instantiates_and_describes() {
        for d in registry() {
            for level in AssumptionLevel::ALL {
                let t = d
                    .at(level)
                    .unwrap_or_else(|e| panic!("{} {level}: {e}", d.id));
                assert_eq!(t.label(), d.label);
                assert!(!t.to_string().is_empty());
            }
        }
    }

    #[test]
    fn domains_validate_and_report_constraints() {
        assert!(ParamDomain::Ratio.validate("r", 1.0).is_ok());
        assert!(ParamDomain::Ratio.validate("r", 0.9).is_err());
        assert!(ParamDomain::Fraction.validate("f", 0.0).is_ok());
        assert!(ParamDomain::Fraction.validate("f", 1.0).is_err());
        assert!(ParamDomain::ClosedFraction.validate("f", 1.0).is_ok());
        assert!(ParamDomain::ClosedFraction.validate("f", 1.1).is_err());
        assert!(ParamDomain::UnitInterval.validate("u", 0.0).is_err());
        assert!(ParamDomain::UnitInterval.validate("u", 1.0).is_ok());
        assert!(ParamDomain::NonNegative.validate("n", 0.0).is_ok());
        assert!(ParamDomain::NonNegative.validate("n", -0.1).is_err());
        assert!(ParamDomain::Layers.validate("l", 2.0).is_ok());
        assert!(ParamDomain::Layers.validate("l", 1.5).is_err());
        assert!(ParamDomain::Layers.validate("l", 0.0).is_err());
        let err = ParamDomain::Layers.validate("layers", 0.0).unwrap_err();
        assert!(err.to_string().contains("must be at least 1"), "{err}");
    }

    #[test]
    fn wire_kind_resolves_aliases() {
        let (d, w) = wire_kind("stacked_dram_cache").unwrap();
        assert_eq!(d.id, "stacked_cache");
        assert_eq!(w.fields, &[0, 1]);
        assert!(wire_kind("nope").is_none());
    }

    #[test]
    fn instantiate_validates_in_schema_order() {
        let d = descriptor("stacked_cache").unwrap();
        // Both parameters invalid: the first (layers) is reported.
        let err = d.instantiate(&[0.0, 0.5]).unwrap_err();
        assert!(err.to_string().contains("layers"), "{err}");
        assert!(d.instantiate(&[1.0]).is_err(), "wrong arity");
    }

    #[test]
    fn thermal_cap_is_geometric() {
        let d = descriptor("thermal_capped_3d").unwrap();
        let t = d.instantiate(&[3.0, 8.0, 0.5]).unwrap();
        let mut e = Effects::none();
        t.apply_to(&mut e);
        let total: f64 = e.stacked_layers().iter().map(|l| l.density()).sum();
        assert!((total - (8.0 + 4.0 + 2.0)).abs() < 1e-12, "{total}");
        // Ceiling: no matter how many layers, the total effective density
        // never exceeds density / (1 - derate) — the fp sum saturates there.
        let many = d.instantiate(&[64.0, 8.0, 0.5]).unwrap();
        let mut e = Effects::none();
        many.apply_to(&mut e);
        let total: f64 = e.stacked_layers().iter().map(|l| l.density()).sum();
        assert!(total <= 16.0, "{total}");
        assert!(total > 15.9, "{total}");
    }

    #[test]
    fn cxl_harvesting_is_a_pure_traffic_divisor() {
        let d = descriptor("cxl_harvesting").unwrap();
        let t = d.instantiate(&[1.0, 0.5]).unwrap();
        let mut e = Effects::none();
        t.apply_to(&mut e);
        assert_eq!(e.traffic_divisor(), 1.5);
        assert_eq!(e.capacity_factor(), 1.0);
        assert!(e.stacked_layers().is_empty());
    }
}
