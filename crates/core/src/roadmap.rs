//! Bandwidth-growth scenarios derived from technology roadmaps.
//!
//! The paper motivates the bandwidth wall with the ITRS projection that
//! "pin counts will increase by about 10% per year whereas the number of
//! on-chip cores is expected to double every 18 months". This module
//! turns such projections into the per-generation envelope factor `B`
//! that [`crate::ScalingProblem::with_bandwidth_growth`] and
//! [`crate::GenerationSweep`] consume.

use crate::error::ModelError;
use crate::params::Baseline;

/// The four future technology generations the paper sweeps (transistor
/// scaling ratios 2×–16×).
pub const GENERATIONS: [u32; 4] = [1, 2, 3, 4];

/// Scaling-ratio labels used on the paper's x-axes.
pub const GENERATION_LABELS: [&str; 4] = ["2x", "4x", "8x", "16x"];

/// The common baseline for every experiment (Section 5.1): the
/// Niagara2-like reference CMP with 8 cores, 8 CEAs of cache, α = 0.5.
pub fn paper_baseline() -> Baseline {
    Baseline::niagara2_like()
}

/// Die budget (total CEAs) of future generation `g` (1-based): the
/// baseline's 16 CEAs doubled once per generation.
///
/// # Examples
///
/// ```
/// use bandwall_model::roadmap::die_budget;
///
/// assert_eq!(die_budget(1), 32.0);
/// assert_eq!(die_budget(4), 256.0);
/// ```
pub fn die_budget(generation: u32) -> f64 {
    paper_baseline().total_ceas() * 2f64.powi(generation as i32)
}

/// A bandwidth-growth scenario: how the off-chip envelope evolves per
/// technology generation.
///
/// # Examples
///
/// ```
/// use bandwall_model::roadmap::BandwidthScenario;
///
/// // ITRS: pins +10%/year, 18 months per generation.
/// let itrs = BandwidthScenario::itrs_2005();
/// let b = itrs.growth_per_generation();
/// assert!((b - 1.1f64.powf(1.5)).abs() < 1e-12);
///
/// // A constant envelope (the paper's default analysis).
/// assert_eq!(BandwidthScenario::constant().growth_per_generation(), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BandwidthScenario {
    name: String,
    annual_pin_growth: f64,
    annual_frequency_growth: f64,
    months_per_generation: f64,
}

impl BandwidthScenario {
    /// Builds a scenario from annual pin-count growth, annual per-pin
    /// frequency growth, and the cadence of technology generations.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] for non-positive growth
    /// factors or cadence.
    pub fn new(
        name: impl Into<String>,
        annual_pin_growth: f64,
        annual_frequency_growth: f64,
        months_per_generation: f64,
    ) -> Result<Self, ModelError> {
        for (param, value) in [
            ("annual_pin_growth", annual_pin_growth),
            ("annual_frequency_growth", annual_frequency_growth),
            ("months_per_generation", months_per_generation),
        ] {
            if !(value.is_finite() && value > 0.0) {
                return Err(ModelError::InvalidParameter {
                    name: param,
                    value,
                    constraint: "must be finite and positive",
                });
            }
        }
        Ok(BandwidthScenario {
            name: name.into(),
            annual_pin_growth,
            annual_frequency_growth,
            months_per_generation,
        })
    }

    /// The ITRS 2005 assembly-and-packaging projection the paper cites:
    /// pins +10% per year, flat per-pin rate, 18-month generations.
    pub fn itrs_2005() -> Self {
        BandwidthScenario {
            name: "ITRS 2005 (pins +10%/yr)".to_string(),
            annual_pin_growth: 1.10,
            annual_frequency_growth: 1.0,
            months_per_generation: 18.0,
        }
    }

    /// A frozen envelope — the paper's default "constant memory traffic"
    /// analysis.
    pub fn constant() -> Self {
        BandwidthScenario {
            name: "constant envelope".to_string(),
            annual_pin_growth: 1.0,
            annual_frequency_growth: 1.0,
            months_per_generation: 18.0,
        }
    }

    /// An aggressive signalling scenario: pins +10%/yr *and* per-pin data
    /// rates +20%/yr (e.g. moving to faster DRAM interfaces each
    /// generation, as Niagara2 and POWER6 did).
    pub fn aggressive_signalling() -> Self {
        BandwidthScenario {
            name: "aggressive signalling (+10%/yr pins, +20%/yr rate)".to_string(),
            annual_pin_growth: 1.10,
            annual_frequency_growth: 1.20,
            months_per_generation: 18.0,
        }
    }

    /// Scenario name for reports.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The compound envelope growth per technology generation,
    /// `(pin_growth × frequency_growth)^(months/12)`.
    pub fn growth_per_generation(&self) -> f64 {
        let annual = self.annual_pin_growth * self.annual_frequency_growth;
        annual.powf(self.months_per_generation / 12.0)
    }

    /// The cumulative envelope factor after `generations` generations.
    pub fn envelope_after(&self, generations: u32) -> f64 {
        self.growth_per_generation().powi(generations as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Baseline;
    use crate::scaling::GenerationSweep;

    #[test]
    fn die_budgets_double() {
        assert_eq!(die_budget(1), 32.0);
        assert_eq!(die_budget(4), 256.0);
    }

    #[test]
    fn baseline_is_niagara2_like() {
        let b = paper_baseline();
        assert_eq!(b.cores(), 8.0);
        assert_eq!(b.total_ceas(), 16.0);
    }

    #[test]
    fn itrs_growth_factor() {
        let b = BandwidthScenario::itrs_2005().growth_per_generation();
        // 1.1^1.5 ≈ 1.1537 per generation.
        assert!((b - 1.1537).abs() < 1e-3, "{b}");
    }

    #[test]
    fn cumulative_envelope() {
        let s = BandwidthScenario::itrs_2005();
        let four = s.envelope_after(4);
        assert!((four - s.growth_per_generation().powi(4)).abs() < 1e-12);
        // Pins grow ~77% over four generations (6 years) — nowhere near
        // the 16x transistor growth.
        assert!(four > 1.7 && four < 1.8, "{four}");
    }

    #[test]
    fn itrs_envelope_buys_a_few_cores() {
        let constant = GenerationSweep::new(Baseline::niagara2_like())
            .run(4)
            .unwrap();
        let itrs = GenerationSweep::new(Baseline::niagara2_like())
            .with_bandwidth_growth_per_generation(
                BandwidthScenario::itrs_2005().growth_per_generation(),
            )
            .run(4)
            .unwrap();
        // More envelope, more cores — but still nowhere near proportional.
        assert!(itrs[3].supportable_cores > constant[3].supportable_cores);
        assert!(itrs[3].supportable_cores < itrs[3].ideal_cores / 2);
    }

    #[test]
    fn validation() {
        assert!(BandwidthScenario::new("x", 0.0, 1.0, 18.0).is_err());
        assert!(BandwidthScenario::new("x", 1.1, -1.0, 18.0).is_err());
        assert!(BandwidthScenario::new("x", 1.1, 1.0, 0.0).is_err());
        let ok = BandwidthScenario::new("custom", 1.05, 1.15, 24.0).unwrap();
        assert_eq!(ok.name(), "custom");
        assert!((ok.growth_per_generation() - (1.05f64 * 1.15).powi(2)).abs() < 1e-12);
    }

    #[test]
    fn named_scenarios_ordered() {
        let c = BandwidthScenario::constant().growth_per_generation();
        let i = BandwidthScenario::itrs_2005().growth_per_generation();
        let a = BandwidthScenario::aggressive_signalling().growth_per_generation();
        assert!(c < i && i < a);
    }
}
