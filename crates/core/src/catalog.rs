//! The technique catalogue of Table 2: each mechanism with its realistic /
//! pessimistic / optimistic parameter assumptions and the paper's
//! qualitative assessment (effectiveness, variability, complexity).

use crate::error::ModelError;
use crate::techniques::{Category, Technique};
use std::fmt;

/// Which end of a technique's assumption band to instantiate (the candle
/// bars of Figure 15).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AssumptionLevel {
    /// Lower end of the literature range.
    Pessimistic,
    /// The paper's main-line assumption.
    #[default]
    Realistic,
    /// Upper end of the literature range.
    Optimistic,
}

impl AssumptionLevel {
    /// All three levels, pessimistic first.
    pub const ALL: [AssumptionLevel; 3] = [
        AssumptionLevel::Pessimistic,
        AssumptionLevel::Realistic,
        AssumptionLevel::Optimistic,
    ];
}

impl fmt::Display for AssumptionLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AssumptionLevel::Pessimistic => "pessimistic",
            AssumptionLevel::Realistic => "realistic",
            AssumptionLevel::Optimistic => "optimistic",
        })
    }
}

/// Qualitative three-point rating used in Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rating {
    /// Low.
    Low,
    /// Medium.
    Medium,
    /// High.
    High,
}

impl fmt::Display for Rating {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Rating::Low => "Low",
            Rating::Medium => "Med.",
            Rating::High => "High",
        })
    }
}

/// Stable identifier for each catalogued technique, in the order of
/// Figure 15's x-axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TechniqueId {
    /// Cache compression (CC).
    CacheCompression,
    /// DRAM cache (DRAM).
    DramCache,
    /// 3D-stacked cache (3D).
    StackedCache,
    /// Unused-data filtering (Fltr).
    UnusedDataFilter,
    /// Smaller cores (SmCo).
    SmallerCores,
    /// Link compression (LC).
    LinkCompression,
    /// Sectored caches (Sect).
    SectoredCache,
    /// Small cache lines (SmCl).
    SmallCacheLines,
    /// Cache + link compression (CC/LC).
    CacheLinkCompression,
}

/// One row of Table 2: a technique, its assumption band, and the paper's
/// qualitative assessment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TechniqueProfile {
    id: TechniqueId,
    label: &'static str,
    name: &'static str,
    realistic: &'static str,
    pessimistic: &'static str,
    optimistic: &'static str,
    effectiveness: Rating,
    range: Rating,
    complexity: Rating,
}

impl TechniqueProfile {
    /// Stable identifier.
    pub fn id(&self) -> TechniqueId {
        self.id
    }

    /// Short figure-axis label (e.g. `"CC/LC"`).
    pub fn label(&self) -> &'static str {
        self.label
    }

    /// Full technique name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Human-readable assumption text for a level, as printed in Table 2.
    pub fn assumption_text(&self, level: AssumptionLevel) -> &'static str {
        match level {
            AssumptionLevel::Pessimistic => self.pessimistic,
            AssumptionLevel::Realistic => self.realistic,
            AssumptionLevel::Optimistic => self.optimistic,
        }
    }

    /// Expected benefit to CMP core scaling.
    pub fn effectiveness(&self) -> Rating {
        self.effectiveness
    }

    /// Variability of the benefit across workloads.
    pub fn range(&self) -> Rating {
        self.range
    }

    /// Estimated implementation cost/feasibility.
    pub fn complexity(&self) -> Rating {
        self.complexity
    }

    /// Instantiates the technique at an assumption level.
    ///
    /// # Errors
    ///
    /// Never fails for the built-in catalogue; the `Result` mirrors the
    /// technique constructors.
    pub fn technique(&self, level: AssumptionLevel) -> Result<Technique, ModelError> {
        use AssumptionLevel as L;
        match (self.id, level) {
            (TechniqueId::CacheCompression, L::Pessimistic) => Technique::cache_compression(1.25),
            (TechniqueId::CacheCompression, L::Realistic) => Technique::cache_compression(2.0),
            (TechniqueId::CacheCompression, L::Optimistic) => Technique::cache_compression(3.5),
            (TechniqueId::DramCache, L::Pessimistic) => Technique::dram_cache(4.0),
            (TechniqueId::DramCache, L::Realistic) => Technique::dram_cache(8.0),
            (TechniqueId::DramCache, L::Optimistic) => Technique::dram_cache(16.0),
            // Table 2 considers only the SRAM-layer variant for 3D.
            (TechniqueId::StackedCache, _) => Technique::stacked_cache(1),
            (TechniqueId::UnusedDataFilter, L::Pessimistic) => Technique::unused_data_filter(0.1),
            (TechniqueId::UnusedDataFilter, L::Realistic) => Technique::unused_data_filter(0.4),
            (TechniqueId::UnusedDataFilter, L::Optimistic) => Technique::unused_data_filter(0.8),
            (TechniqueId::SmallerCores, L::Pessimistic) => Technique::smaller_cores(1.0 / 9.0),
            (TechniqueId::SmallerCores, L::Realistic) => Technique::smaller_cores(1.0 / 40.0),
            (TechniqueId::SmallerCores, L::Optimistic) => Technique::smaller_cores(1.0 / 80.0),
            (TechniqueId::LinkCompression, L::Pessimistic) => Technique::link_compression(1.25),
            (TechniqueId::LinkCompression, L::Realistic) => Technique::link_compression(2.0),
            (TechniqueId::LinkCompression, L::Optimistic) => Technique::link_compression(3.5),
            (TechniqueId::SectoredCache, L::Pessimistic) => Technique::sectored_cache(0.1),
            (TechniqueId::SectoredCache, L::Realistic) => Technique::sectored_cache(0.4),
            (TechniqueId::SectoredCache, L::Optimistic) => Technique::sectored_cache(0.8),
            (TechniqueId::SmallCacheLines, L::Pessimistic) => Technique::small_cache_lines(0.1),
            (TechniqueId::SmallCacheLines, L::Realistic) => Technique::small_cache_lines(0.4),
            (TechniqueId::SmallCacheLines, L::Optimistic) => Technique::small_cache_lines(0.8),
            (TechniqueId::CacheLinkCompression, L::Pessimistic) => {
                Technique::cache_link_compression(1.25)
            }
            (TechniqueId::CacheLinkCompression, L::Realistic) => {
                Technique::cache_link_compression(2.0)
            }
            (TechniqueId::CacheLinkCompression, L::Optimistic) => {
                Technique::cache_link_compression(3.5)
            }
        }
    }

    /// The paper's category of the realistic instantiation.
    pub fn category(&self) -> Category {
        self.technique(AssumptionLevel::Realistic)
            .expect("catalogue parameters are valid")
            .category()
    }
}

/// The full Table 2 catalogue in Figure 15 order.
///
/// # Examples
///
/// ```
/// use bandwall_model::catalog::{catalog, AssumptionLevel};
///
/// let table = catalog();
/// assert_eq!(table.len(), 9);
/// assert_eq!(table[0].label(), "CC");
/// let dram = table.iter().find(|p| p.label() == "DRAM").unwrap();
/// assert_eq!(dram.assumption_text(AssumptionLevel::Realistic), "8x density");
/// ```
pub fn catalog() -> Vec<TechniqueProfile> {
    vec![
        TechniqueProfile {
            id: TechniqueId::CacheCompression,
            label: "CC",
            name: "Cache Compress",
            realistic: "2x compr.",
            pessimistic: "1.25x compr.",
            optimistic: "3.5x compr.",
            effectiveness: Rating::Medium,
            range: Rating::Low,
            complexity: Rating::Medium,
        },
        TechniqueProfile {
            id: TechniqueId::DramCache,
            label: "DRAM",
            name: "DRAM Cache",
            realistic: "8x density",
            pessimistic: "4x density",
            optimistic: "16x density",
            effectiveness: Rating::High,
            range: Rating::Medium,
            complexity: Rating::Low,
        },
        TechniqueProfile {
            id: TechniqueId::StackedCache,
            label: "3D",
            name: "3D-stacked Cache",
            realistic: "3D SRAM layer",
            pessimistic: "3D SRAM layer",
            optimistic: "3D SRAM layer",
            effectiveness: Rating::Medium,
            range: Rating::Low,
            complexity: Rating::High,
        },
        TechniqueProfile {
            id: TechniqueId::UnusedDataFilter,
            label: "Fltr",
            name: "Unused Data Filter",
            realistic: "40% unused data",
            pessimistic: "10% unused data",
            optimistic: "80% unused data",
            effectiveness: Rating::Medium,
            range: Rating::Medium,
            complexity: Rating::Medium,
        },
        TechniqueProfile {
            id: TechniqueId::SmallerCores,
            label: "SmCo",
            name: "Smaller Cores",
            realistic: "40x less area",
            pessimistic: "9x less area",
            optimistic: "80x less area",
            effectiveness: Rating::Low,
            range: Rating::Low,
            complexity: Rating::Low,
        },
        TechniqueProfile {
            id: TechniqueId::LinkCompression,
            label: "LC",
            name: "Link Compress",
            realistic: "2x compr.",
            pessimistic: "1.25x compr.",
            optimistic: "3.5x compr.",
            effectiveness: Rating::High,
            range: Rating::Medium,
            complexity: Rating::Low,
        },
        TechniqueProfile {
            id: TechniqueId::SectoredCache,
            label: "Sect",
            name: "Sectored Caches",
            realistic: "40% unused data",
            pessimistic: "10% unused data",
            optimistic: "80% unused data",
            effectiveness: Rating::Medium,
            range: Rating::High,
            complexity: Rating::Medium,
        },
        TechniqueProfile {
            id: TechniqueId::SmallCacheLines,
            label: "SmCl",
            name: "Smaller Cache Lines",
            realistic: "40% unused data",
            pessimistic: "10% unused data",
            optimistic: "80% unused data",
            effectiveness: Rating::High,
            range: Rating::High,
            complexity: Rating::Medium,
        },
        TechniqueProfile {
            id: TechniqueId::CacheLinkCompression,
            label: "CC/LC",
            name: "Cache+Link Compress",
            realistic: "2x compr.",
            pessimistic: "1.25x compr.",
            optimistic: "3.5x compr.",
            effectiveness: Rating::High,
            range: Rating::High,
            complexity: Rating::Low,
        },
    ]
}

/// Looks up a catalogue entry by its figure label.
///
/// # Examples
///
/// ```
/// use bandwall_model::catalog::profile;
/// assert!(profile("DRAM").is_some());
/// assert!(profile("nope").is_none());
/// ```
pub fn profile(label: &str) -> Option<TechniqueProfile> {
    catalog().into_iter().find(|p| p.label == label)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_has_nine_rows_in_figure_order() {
        let labels: Vec<&str> = catalog().iter().map(|p| p.label()).collect();
        assert_eq!(
            labels,
            ["CC", "DRAM", "3D", "Fltr", "SmCo", "LC", "Sect", "SmCl", "CC/LC"]
        );
    }

    #[test]
    fn every_profile_instantiates_at_every_level() {
        for p in catalog() {
            for level in AssumptionLevel::ALL {
                let t = p.technique(level).unwrap();
                assert_eq!(t.label(), p.label(), "{}", p.name());
            }
        }
    }

    #[test]
    fn table2_qualitative_ratings() {
        let dram = profile("DRAM").unwrap();
        assert_eq!(dram.effectiveness(), Rating::High);
        assert_eq!(dram.range(), Rating::Medium);
        assert_eq!(dram.complexity(), Rating::Low);
        let smco = profile("SmCo").unwrap();
        assert_eq!(smco.effectiveness(), Rating::Low);
        let threed = profile("3D").unwrap();
        assert_eq!(threed.complexity(), Rating::High);
    }

    #[test]
    fn assumption_texts_match_table2() {
        let cc = profile("CC").unwrap();
        assert_eq!(cc.assumption_text(AssumptionLevel::Realistic), "2x compr.");
        assert_eq!(
            cc.assumption_text(AssumptionLevel::Pessimistic),
            "1.25x compr."
        );
        assert_eq!(
            cc.assumption_text(AssumptionLevel::Optimistic),
            "3.5x compr."
        );
    }

    #[test]
    fn optimistic_at_least_as_good_as_pessimistic() {
        use crate::params::Baseline;
        use crate::scaling::ScalingProblem;
        for p in catalog() {
            let solve = |level| {
                ScalingProblem::new(Baseline::niagara2_like(), 32.0)
                    .with_technique(p.technique(level).unwrap())
                    .max_supportable_cores()
                    .unwrap()
            };
            let pess = solve(AssumptionLevel::Pessimistic);
            let real = solve(AssumptionLevel::Realistic);
            let opt = solve(AssumptionLevel::Optimistic);
            assert!(pess <= real && real <= opt, "{}", p.name());
        }
    }

    #[test]
    fn rating_display_and_order() {
        assert!(Rating::Low < Rating::Medium && Rating::Medium < Rating::High);
        assert_eq!(Rating::Medium.to_string(), "Med.");
    }

    #[test]
    fn level_display() {
        assert_eq!(AssumptionLevel::Realistic.to_string(), "realistic");
        assert_eq!(AssumptionLevel::default(), AssumptionLevel::Realistic);
    }

    #[test]
    fn categories_exposed() {
        use crate::techniques::Category;
        assert_eq!(profile("CC").unwrap().category(), Category::Indirect);
        assert_eq!(profile("LC").unwrap().category(), Category::Direct);
        assert_eq!(profile("SmCl").unwrap().category(), Category::Dual);
    }
}
