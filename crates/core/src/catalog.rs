//! The technique catalogue of Table 2, as a thin view over the
//! [`crate::descriptor`] registry: each mechanism with its realistic /
//! pessimistic / optimistic parameter assumptions and the paper's
//! qualitative assessment (effectiveness, variability, complexity).
//!
//! [`catalog`] yields exactly the paper's nine rows (the figure-15 and
//! Table 2 reproductions iterate it); [`extended_catalog`] additionally
//! includes every post-2009 technique registered since.

use crate::descriptor::{registry, TechniqueDescriptor};
use crate::error::ModelError;
use crate::techniques::{Category, Technique};
use std::fmt;

/// Which end of a technique's assumption band to instantiate (the candle
/// bars of Figure 15).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AssumptionLevel {
    /// Lower end of the literature range.
    Pessimistic,
    /// The paper's main-line assumption.
    #[default]
    Realistic,
    /// Upper end of the literature range.
    Optimistic,
}

impl AssumptionLevel {
    /// All three levels, pessimistic first.
    pub const ALL: [AssumptionLevel; 3] = [
        AssumptionLevel::Pessimistic,
        AssumptionLevel::Realistic,
        AssumptionLevel::Optimistic,
    ];
}

impl fmt::Display for AssumptionLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AssumptionLevel::Pessimistic => "pessimistic",
            AssumptionLevel::Realistic => "realistic",
            AssumptionLevel::Optimistic => "optimistic",
        })
    }
}

/// Qualitative three-point rating used in Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rating {
    /// Low.
    Low,
    /// Medium.
    Medium,
    /// High.
    High,
}

impl fmt::Display for Rating {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Rating::Low => "Low",
            Rating::Medium => "Med.",
            Rating::High => "High",
        })
    }
}

/// One row of the catalogue: a registered technique, its assumption
/// band, and its qualitative assessment — a view over one
/// [`TechniqueDescriptor`].
#[derive(Debug, Clone, Copy)]
pub struct TechniqueProfile {
    descriptor: &'static TechniqueDescriptor,
}

impl TechniqueProfile {
    /// Stable registry id (e.g. `"dram_cache"`).
    pub fn id(&self) -> &'static str {
        self.descriptor.id
    }

    /// The underlying registry descriptor.
    pub fn descriptor(&self) -> &'static TechniqueDescriptor {
        self.descriptor
    }

    /// Short figure-axis label (e.g. `"CC/LC"`).
    pub fn label(&self) -> &'static str {
        self.descriptor.label
    }

    /// Full technique name.
    pub fn name(&self) -> &'static str {
        self.descriptor.name
    }

    /// Human-readable assumption text for a level, as printed in Table 2.
    pub fn assumption_text(&self, level: AssumptionLevel) -> &'static str {
        self.descriptor.band(level).text
    }

    /// Expected benefit to CMP core scaling.
    pub fn effectiveness(&self) -> Rating {
        self.descriptor.effectiveness
    }

    /// Variability of the benefit across workloads.
    pub fn range(&self) -> Rating {
        self.descriptor.range
    }

    /// Estimated implementation cost/feasibility.
    pub fn complexity(&self) -> Rating {
        self.descriptor.complexity
    }

    /// Instantiates the technique at an assumption level.
    ///
    /// # Errors
    ///
    /// Never fails for registered techniques (their bands are
    /// registry-tested); the `Result` mirrors the technique constructors.
    pub fn technique(&self, level: AssumptionLevel) -> Result<Technique, ModelError> {
        self.descriptor.at(level)
    }

    /// The paper's category of this technique.
    pub fn category(&self) -> Category {
        self.descriptor.category
    }
}

impl PartialEq for TechniqueProfile {
    fn eq(&self, other: &Self) -> bool {
        self.descriptor.tag == other.descriptor.tag
    }
}

/// The paper's Table 2 catalogue — exactly nine rows, in Figure 15
/// order. Registered post-2009 techniques are deliberately excluded so
/// the paper-reproduction experiments keep their exact row sets; see
/// [`extended_catalog`] for everything.
///
/// # Examples
///
/// ```
/// use bandwall_model::catalog::{catalog, AssumptionLevel};
///
/// let table = catalog();
/// assert_eq!(table.len(), 9);
/// assert_eq!(table[0].label(), "CC");
/// let dram = table.iter().find(|p| p.label() == "DRAM").unwrap();
/// assert_eq!(dram.assumption_text(AssumptionLevel::Realistic), "8x density");
/// ```
pub fn catalog() -> Vec<TechniqueProfile> {
    registry()
        .iter()
        .filter(|d| d.paper)
        .map(|descriptor| TechniqueProfile { descriptor })
        .collect()
}

/// Every registered technique — the Table 2 rows followed by the
/// post-2009 extensions, in registry order.
///
/// # Examples
///
/// ```
/// use bandwall_model::catalog::{catalog, extended_catalog};
///
/// assert!(extended_catalog().len() > catalog().len());
/// assert!(extended_catalog().iter().any(|p| p.id() == "cxl_harvesting"));
/// ```
pub fn extended_catalog() -> Vec<TechniqueProfile> {
    registry()
        .iter()
        .map(|descriptor| TechniqueProfile { descriptor })
        .collect()
}

/// Looks up a catalogue entry (including extensions) by its figure
/// label.
///
/// # Examples
///
/// ```
/// use bandwall_model::catalog::profile;
/// assert!(profile("DRAM").is_some());
/// assert!(profile("nope").is_none());
/// ```
pub fn profile(label: &str) -> Option<TechniqueProfile> {
    extended_catalog().into_iter().find(|p| p.label() == label)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_has_nine_rows_in_figure_order() {
        let labels: Vec<&str> = catalog().iter().map(|p| p.label()).collect();
        assert_eq!(
            labels,
            ["CC", "DRAM", "3D", "Fltr", "SmCo", "LC", "Sect", "SmCl", "CC/LC"]
        );
    }

    #[test]
    fn extended_catalogue_appends_registered_techniques() {
        let ids: Vec<&str> = extended_catalog().iter().map(|p| p.id()).collect();
        assert!(ids.len() >= 11, "{ids:?}");
        assert_eq!(&ids[..2], &["cache_compression", "dram_cache"]);
        assert!(ids.contains(&"thermal_capped_3d"));
        assert!(ids.contains(&"cxl_harvesting"));
    }

    #[test]
    fn every_profile_instantiates_at_every_level() {
        for p in extended_catalog() {
            for level in AssumptionLevel::ALL {
                let t = p.technique(level).unwrap();
                assert_eq!(t.label(), p.label(), "{}", p.name());
            }
        }
    }

    #[test]
    fn table2_qualitative_ratings() {
        let dram = profile("DRAM").unwrap();
        assert_eq!(dram.effectiveness(), Rating::High);
        assert_eq!(dram.range(), Rating::Medium);
        assert_eq!(dram.complexity(), Rating::Low);
        let smco = profile("SmCo").unwrap();
        assert_eq!(smco.effectiveness(), Rating::Low);
        let threed = profile("3D").unwrap();
        assert_eq!(threed.complexity(), Rating::High);
    }

    #[test]
    fn assumption_texts_match_table2() {
        let cc = profile("CC").unwrap();
        assert_eq!(cc.assumption_text(AssumptionLevel::Realistic), "2x compr.");
        assert_eq!(
            cc.assumption_text(AssumptionLevel::Pessimistic),
            "1.25x compr."
        );
        assert_eq!(
            cc.assumption_text(AssumptionLevel::Optimistic),
            "3.5x compr."
        );
    }

    #[test]
    fn optimistic_at_least_as_good_as_pessimistic() {
        use crate::params::Baseline;
        use crate::scaling::ScalingProblem;
        for p in extended_catalog() {
            let solve = |level| {
                ScalingProblem::new(Baseline::niagara2_like(), 32.0)
                    .with_technique(p.technique(level).unwrap())
                    .max_supportable_cores()
                    .unwrap()
            };
            let pess = solve(AssumptionLevel::Pessimistic);
            let real = solve(AssumptionLevel::Realistic);
            let opt = solve(AssumptionLevel::Optimistic);
            assert!(pess <= real && real <= opt, "{}", p.name());
        }
    }

    #[test]
    fn rating_display_and_order() {
        assert!(Rating::Low < Rating::Medium && Rating::Medium < Rating::High);
        assert_eq!(Rating::Medium.to_string(), "Med.");
    }

    #[test]
    fn level_display() {
        assert_eq!(AssumptionLevel::Realistic.to_string(), "realistic");
        assert_eq!(AssumptionLevel::default(), AssumptionLevel::Realistic);
    }

    #[test]
    fn categories_exposed() {
        use crate::techniques::Category;
        assert_eq!(profile("CC").unwrap().category(), Category::Indirect);
        assert_eq!(profile("LC").unwrap().category(), Category::Direct);
        assert_eq!(profile("SmCl").unwrap().category(), Category::Dual);
        assert_eq!(profile("CXL").unwrap().category(), Category::Direct);
    }
}
