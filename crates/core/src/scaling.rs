//! Core-scaling under a memory-traffic envelope (Section 5).
//!
//! [`ScalingProblem`] answers the paper's central question: on a die of
//! `N₂` CEAs, how many cores can be placed so that total memory traffic
//! stays within `B×` the baseline's (Equation 7), optionally with a set of
//! bandwidth-conservation techniques applied? [`GenerationSweep`] iterates
//! the question across technology generations (the scaffolding behind
//! Figures 3, 15, 16, and 17).

use crate::effects::Effects;
use crate::error::ModelError;
use crate::params::Baseline;
use crate::techniques::{combine, Technique};
use bandwall_numerics::{brent, max_satisfying, Tolerance};

/// Relative slack granted when comparing traffic against the envelope, so
/// configurations that sit exactly on the boundary (e.g. 16 cores with link
/// compression 2× on a 32-CEA die) are counted as supportable despite
/// floating-point rounding.
const ENVELOPE_SLACK: f64 = 1e-9;

/// One core-scaling question: a die budget, a traffic envelope, and a set
/// of techniques.
///
/// # Examples
///
/// The headline base case (Section 5.1): a 32-CEA next-generation die
/// supports only 11 cores under a constant traffic envelope, or 13 if the
/// envelope optimistically grows 50%.
///
/// ```
/// use bandwall_model::{Baseline, ScalingProblem};
///
/// let base = Baseline::niagara2_like();
/// assert_eq!(ScalingProblem::new(base, 32.0).max_supportable_cores()?, 11);
/// assert_eq!(
///     ScalingProblem::new(base, 32.0)
///         .with_bandwidth_growth(1.5)
///         .max_supportable_cores()?,
///     13
/// );
/// # Ok::<(), bandwall_model::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingProblem {
    baseline: Baseline,
    total_ceas: f64,
    bandwidth_growth: f64,
    per_core_demand: f64,
    uncore_per_core: f64,
    techniques: Vec<Technique>,
}

impl ScalingProblem {
    /// Creates a problem for a die of `total_ceas` CEAs (N₂) under a
    /// constant traffic envelope (B = 1) and no techniques.
    ///
    /// Out-of-domain budgets (zero, negative, NaN) are accepted here and
    /// rejected with [`ModelError::InvalidParameter`] by every solving
    /// method, so adversarial configurations degrade into typed errors
    /// rather than panics or NaN propagation.
    pub fn new(baseline: Baseline, total_ceas: f64) -> Self {
        ScalingProblem {
            baseline,
            total_ceas,
            bandwidth_growth: 1.0,
            per_core_demand: 1.0,
            uncore_per_core: 0.0,
            techniques: Vec::new(),
        }
    }

    /// Sets the bandwidth-growth factor `B`: the envelope becomes
    /// `B × M₁` (Equation 6).
    #[must_use]
    pub fn with_bandwidth_growth(mut self, growth: f64) -> Self {
        self.bandwidth_growth = growth;
        self
    }

    /// Scales every core's traffic demand by `multiplier` (≥ 1), modelling
    /// multithreaded cores. Section 3 notes the study's single-threaded
    /// assumption *underestimates* the bandwidth wall because SMT cores
    /// stay less idle and generate more traffic per unit time; this knob
    /// quantifies that remark.
    ///
    /// Multipliers below 1 (or non-finite) are rejected with a typed
    /// error when the problem is solved.
    #[must_use]
    pub fn with_per_core_demand(mut self, multiplier: f64) -> Self {
        self.per_core_demand = multiplier;
        self
    }

    /// Charges each core `ceas` of uncore area (routers, links, buses) —
    /// the Section 6.1 caveat that interconnect grows with core count and
    /// caps the benefit of ever-smaller cores.
    ///
    /// Negative or non-finite overheads are rejected with a typed error
    /// when the problem is solved.
    #[must_use]
    pub fn with_uncore_overhead(mut self, ceas: f64) -> Self {
        self.uncore_per_core = ceas;
        self
    }

    /// Adds one technique.
    #[must_use]
    pub fn with_technique(mut self, technique: Technique) -> Self {
        self.techniques.push(technique);
        self
    }

    /// Adds a set of techniques.
    #[must_use]
    pub fn with_techniques<I>(mut self, techniques: I) -> Self
    where
        I: IntoIterator<Item = Technique>,
    {
        self.techniques.extend(techniques);
        self
    }

    /// The baseline configuration (generation 1).
    pub fn baseline(&self) -> &Baseline {
        &self.baseline
    }

    /// The die budget `N₂` in CEAs.
    pub fn total_ceas(&self) -> f64 {
        self.total_ceas
    }

    /// The bandwidth-growth factor `B`.
    pub fn bandwidth_growth(&self) -> f64 {
        self.bandwidth_growth
    }

    /// The applied techniques.
    pub fn techniques(&self) -> &[Technique] {
        &self.techniques
    }

    /// The per-core traffic-demand multiplier (1 = single-threaded).
    pub fn per_core_demand(&self) -> f64 {
        self.per_core_demand
    }

    /// The per-core uncore overhead in CEAs (0 = none).
    pub fn uncore_per_core(&self) -> f64 {
        self.uncore_per_core
    }

    /// The folded [`Effects`] of the applied techniques (including any
    /// uncore overhead configured on the problem).
    pub fn effects(&self) -> Effects {
        let mut effects = combine(&self.techniques);
        if self.uncore_per_core > 0.0 {
            effects.add_uncore_per_core(self.uncore_per_core);
        }
        effects
    }

    /// Checks the problem's own parameters, so every solving method turns
    /// out-of-domain configurations into [`ModelError::InvalidParameter`]
    /// instead of propagating NaN or panicking.
    fn validate(&self) -> Result<(), ModelError> {
        if !(self.total_ceas.is_finite() && self.total_ceas > 0.0) {
            return Err(ModelError::InvalidParameter {
                name: "total_ceas",
                value: self.total_ceas,
                constraint: "must be finite and positive",
            });
        }
        if !(self.bandwidth_growth.is_finite() && self.bandwidth_growth > 0.0) {
            return Err(ModelError::InvalidParameter {
                name: "bandwidth_growth",
                value: self.bandwidth_growth,
                constraint: "must be finite and positive",
            });
        }
        if !(self.per_core_demand.is_finite() && self.per_core_demand >= 1.0) {
            return Err(ModelError::InvalidParameter {
                name: "per_core_demand",
                value: self.per_core_demand,
                constraint: "must be finite and at least 1",
            });
        }
        if !(self.uncore_per_core.is_finite() && self.uncore_per_core >= 0.0) {
            return Err(ModelError::InvalidParameter {
                name: "uncore_per_core",
                value: self.uncore_per_core,
                constraint: "must be finite and non-negative",
            });
        }
        Ok(())
    }

    /// Relative traffic `M₂/M₁` when `cores` cores are placed on the die
    /// (Equation 5 with the technique effects of Section 6 folded in).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NoCacheArea`] when the configuration leaves no
    /// effective cache, and [`ModelError::InvalidParameter`] for a zero
    /// core count or an out-of-domain problem parameter.
    pub fn relative_traffic(&self, cores: u64) -> Result<f64, ModelError> {
        self.validate()?;
        self.relative_traffic_with(&self.effects(), cores)
    }

    fn relative_traffic_real(&self, effects: &Effects, cores: f64) -> Result<f64, ModelError> {
        if cores < 1.0 || !cores.is_finite() {
            return Err(ModelError::InvalidParameter {
                name: "cores",
                value: cores,
                constraint: "must be at least 1",
            });
        }
        let cache = effects.effective_cache_ceas(self.total_ceas, cores);
        if cache <= 0.0 {
            return Err(ModelError::NoCacheArea {
                cores: cores as u64,
                total_ceas: self.total_ceas,
            });
        }
        let cache_per_core = effects.capacity_factor() * cache / cores;
        let core_term = cores / self.baseline.cores();
        let cache_term = self
            .baseline
            .alpha()
            .dampen(cache_per_core / self.baseline.cache_per_core());
        let traffic = self.per_core_demand * core_term * cache_term / effects.traffic_divisor();
        if !traffic.is_finite() {
            return Err(ModelError::Numerical(format!(
                "relative traffic overflowed at {cores} cores"
            )));
        }
        Ok(traffic)
    }

    fn relative_traffic_with(&self, effects: &Effects, cores: u64) -> Result<f64, ModelError> {
        self.relative_traffic_real(effects, cores as f64)
    }

    /// The largest whole number of cores whose traffic stays within the
    /// envelope `B × M₁` — the quantity plotted in Figures 3–12 and 15–17.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Infeasible`] if even a single core exceeds the
    /// envelope (cannot happen for die budgets at or above the baseline's).
    pub fn max_supportable_cores(&self) -> Result<u64, ModelError> {
        self.validate()?;
        let effects = self.effects();
        let hi = effects.max_feasible_cores(self.total_ceas);
        if hi == 0 {
            return Err(ModelError::Infeasible);
        }
        let envelope = self.bandwidth_growth * (1.0 + ENVELOPE_SLACK);
        max_satisfying(1, hi, |p| {
            self.relative_traffic_with(&effects, p)
                .map(|t| t <= envelope)
                .unwrap_or(false)
        })
        .ok_or(ModelError::Infeasible)
    }

    /// The real-valued core count where traffic exactly meets the envelope
    /// (the crossover of Figure 2), found with Brent's method.
    ///
    /// Returns the feasibility bound when every feasible core count fits
    /// within the envelope.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Infeasible`] when one core already exceeds the
    /// envelope, or a numerical error from the root finder.
    pub fn crossover_cores(&self) -> Result<f64, ModelError> {
        self.validate()?;
        let effects = self.effects();
        let hi = effects.max_feasible_cores(self.total_ceas) as f64;
        if hi < 1.0 {
            return Err(ModelError::Infeasible);
        }
        let f = |p: f64| {
            self.relative_traffic_real(&effects, p)
                .map(|t| t - self.bandwidth_growth)
                .unwrap_or(f64::MAX)
        };
        if f(1.0) > 0.0 {
            return Err(ModelError::Infeasible);
        }
        // Traffic is monotonically increasing in the core count; if even
        // the feasibility bound fits, the answer is the bound itself.
        // Evaluate slightly inside the bound to dodge the zero-cache pole.
        let probe = if effects.effective_cache_ceas(self.total_ceas, hi) > 0.0 {
            hi
        } else {
            hi - 1e-6
        };
        if f(probe) <= 0.0 {
            return Ok(probe);
        }
        Ok(brent(f, 1.0, probe, Tolerance::default())?)
    }

    /// Fraction of the (core-die) area occupied by `cores` cores.
    pub fn core_area_fraction(&self, cores: u64) -> f64 {
        self.effects().core_area(cores as f64) / self.total_ceas
    }

    /// The *additional* direct traffic divisor (e.g. a link-compression
    /// ratio) that would make `cores` cores fit the envelope, on top of
    /// any techniques already applied. Values ≤ 1 mean the target already
    /// fits.
    ///
    /// # Errors
    ///
    /// Propagates domain errors from the traffic model.
    ///
    /// # Examples
    ///
    /// ```
    /// use bandwall_model::{Baseline, ScalingProblem};
    ///
    /// // Proportional scaling next generation needs exactly 2x —
    /// // which is why 2x link compression restores it (Figure 9).
    /// let p = ScalingProblem::new(Baseline::niagara2_like(), 32.0);
    /// assert!((p.required_traffic_divisor(16)? - 2.0).abs() < 1e-12);
    /// # Ok::<(), bandwall_model::ModelError>(())
    /// ```
    pub fn required_traffic_divisor(&self, cores: u64) -> Result<f64, ModelError> {
        Ok(self.relative_traffic(cores)? / self.bandwidth_growth)
    }

    /// The *additional* effective-cache-capacity factor (e.g. a cache
    /// compression ratio) that would make `cores` cores fit the envelope.
    /// Indirect factors are dampened by `-α`, so this is the direct
    /// divisor raised to `1/α`. Values ≤ 1 mean the target already fits.
    ///
    /// # Errors
    ///
    /// Propagates domain errors from the traffic model.
    ///
    /// # Examples
    ///
    /// ```
    /// use bandwall_model::{Baseline, ScalingProblem};
    ///
    /// // The Figure 8 discussion: proportional scaling needs the cache
    /// // per core to grow 4x (at α = 0.5), which freeing core area alone
    /// // can never deliver.
    /// let p = ScalingProblem::new(Baseline::niagara2_like(), 32.0);
    /// assert!((p.required_capacity_factor(16)? - 4.0).abs() < 1e-12);
    /// # Ok::<(), bandwall_model::ModelError>(())
    /// ```
    pub fn required_capacity_factor(&self, cores: u64) -> Result<f64, ModelError> {
        let divisor = self.required_traffic_divisor(cores)?;
        Ok(divisor.max(0.0).powf(1.0 / self.baseline.alpha().get()))
    }

    /// The core count proportional scaling would want: `P₁ × N₂/N₁`.
    pub fn proportional_cores(&self) -> u64 {
        (self.baseline.cores() * self.total_ceas / self.baseline.total_ceas()).round() as u64
    }

    /// Answers the problem in full: the supportable core count together
    /// with every derived quantity a structured report row needs
    /// (ideal cores, crossover, residual traffic, die-area split).
    ///
    /// # Errors
    ///
    /// Propagates [`ModelError::Infeasible`] and numerical errors from the
    /// underlying solvers.
    ///
    /// # Examples
    ///
    /// ```
    /// use bandwall_model::{Baseline, ScalingProblem};
    ///
    /// let solution = ScalingProblem::new(Baseline::niagara2_like(), 32.0).solve()?;
    /// assert_eq!(solution.supportable_cores, 11);
    /// assert_eq!(solution.ideal_cores, 16);
    /// assert!(solution.crossover_cores > 11.0 && solution.crossover_cores < 12.0);
    /// # Ok::<(), bandwall_model::ModelError>(())
    /// ```
    pub fn solve(&self) -> Result<ScalingSolution, ModelError> {
        let supportable_cores = self.max_supportable_cores()?;
        Ok(ScalingSolution {
            total_ceas: self.total_ceas,
            bandwidth_growth: self.bandwidth_growth,
            supportable_cores,
            ideal_cores: self.proportional_cores(),
            crossover_cores: self.crossover_cores()?,
            relative_traffic: self.relative_traffic(supportable_cores)?,
            core_area_fraction: self.core_area_fraction(supportable_cores),
        })
    }
}

/// A fully-characterised answer to one [`ScalingProblem`], computed by
/// [`ScalingProblem::solve`] — the structured result that experiment
/// reports turn into model/paper/delta rows.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingSolution {
    /// Die budget `N₂` in CEAs.
    pub total_ceas: f64,
    /// The bandwidth-growth factor `B` of the envelope.
    pub bandwidth_growth: f64,
    /// The largest whole core count whose traffic fits the envelope.
    pub supportable_cores: u64,
    /// Cores under proportional ("ideal") scaling.
    pub ideal_cores: u64,
    /// The real-valued core count where traffic exactly meets the
    /// envelope.
    pub crossover_cores: f64,
    /// Relative traffic `M₂/M₁` at the supportable core count.
    pub relative_traffic: f64,
    /// Fraction of die area the supportable cores occupy.
    pub core_area_fraction: f64,
}

impl ScalingSolution {
    /// Supportable cores as a fraction of the proportional ideal — the
    /// "scaling efficiency" the paper's figures visualise as the gap
    /// between the two curves.
    pub fn scaling_efficiency(&self) -> f64 {
        self.supportable_cores as f64 / self.ideal_cores as f64
    }
}

/// The outcome of one generation in a [`GenerationSweep`].
#[derive(Debug, Clone, PartialEq)]
pub struct GenerationResult {
    /// 1-based generation index (1 = next generation).
    pub generation: u32,
    /// Transistor-budget scaling ratio relative to the baseline (2^g).
    pub scaling_ratio: f64,
    /// Die budget N₂ in CEAs.
    pub total_ceas: f64,
    /// Cores under proportional ("ideal") scaling.
    pub ideal_cores: u64,
    /// Cores supportable under the traffic envelope.
    pub supportable_cores: u64,
    /// Fraction of die area the supportable cores occupy.
    pub core_area_fraction: f64,
}

/// Sweeps a technique set across technology generations, doubling the
/// transistor budget each step (Figures 3 and 15–17).
///
/// # Examples
///
/// ```
/// use bandwall_model::{Baseline, GenerationSweep};
///
/// let sweep = GenerationSweep::new(Baseline::niagara2_like());
/// let results = sweep.run(4)?;
/// // The paper's headline: 24 cores at 16× vs 128 ideal.
/// assert_eq!(results[3].supportable_cores, 24);
/// assert_eq!(results[3].ideal_cores, 128);
/// # Ok::<(), bandwall_model::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GenerationSweep {
    baseline: Baseline,
    techniques: Vec<Technique>,
    bandwidth_growth_per_generation: f64,
}

impl GenerationSweep {
    /// Creates a sweep with no techniques and a constant traffic envelope.
    pub fn new(baseline: Baseline) -> Self {
        GenerationSweep {
            baseline,
            techniques: Vec::new(),
            bandwidth_growth_per_generation: 1.0,
        }
    }

    /// Adds techniques applied at every generation.
    #[must_use]
    pub fn with_techniques<I>(mut self, techniques: I) -> Self
    where
        I: IntoIterator<Item = Technique>,
    {
        self.techniques.extend(techniques);
        self
    }

    /// Lets the envelope grow by `growth`× per generation (compounding).
    #[must_use]
    pub fn with_bandwidth_growth_per_generation(mut self, growth: f64) -> Self {
        self.bandwidth_growth_per_generation = growth;
        self
    }

    /// Runs the sweep for `generations` future generations.
    ///
    /// # Errors
    ///
    /// Propagates solver errors from any generation.
    pub fn run(&self, generations: u32) -> Result<Vec<GenerationResult>, ModelError> {
        let mut results = Vec::with_capacity(generations as usize);
        for g in 1..=generations {
            let ratio = 2f64.powi(g as i32);
            let total = self.baseline.total_ceas() * ratio;
            let problem = ScalingProblem::new(self.baseline, total)
                .with_techniques(self.techniques.iter().copied())
                .with_bandwidth_growth(self.bandwidth_growth_per_generation.powi(g as i32));
            let supportable = problem.max_supportable_cores()?;
            results.push(GenerationResult {
                generation: g,
                scaling_ratio: ratio,
                total_ceas: total,
                ideal_cores: problem.proportional_cores(),
                supportable_cores: supportable,
                core_area_fraction: problem.core_area_fraction(supportable),
            });
        }
        Ok(results)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Alpha;

    fn base_problem(n2: f64) -> ScalingProblem {
        ScalingProblem::new(Baseline::niagara2_like(), n2)
    }

    #[test]
    fn solve_bundles_every_headline_quantity() {
        let s = base_problem(32.0).solve().unwrap();
        assert_eq!(s.supportable_cores, 11);
        assert_eq!(s.ideal_cores, 16);
        assert!(s.crossover_cores > 11.0 && s.crossover_cores < 12.0);
        assert!(s.relative_traffic <= 1.0 + 1e-9);
        assert!((s.core_area_fraction - 11.0 / 32.0).abs() < 1e-12);
        assert!((s.scaling_efficiency() - 11.0 / 16.0).abs() < 1e-12);
        assert_eq!(s.total_ceas, 32.0);
        assert_eq!(s.bandwidth_growth, 1.0);
    }

    #[test]
    fn base_next_generation_supports_11_cores() {
        assert_eq!(base_problem(32.0).max_supportable_cores().unwrap(), 11);
    }

    #[test]
    fn fifty_percent_envelope_growth_supports_13() {
        let p = base_problem(32.0).with_bandwidth_growth(1.5);
        assert_eq!(p.max_supportable_cores().unwrap(), 13);
    }

    #[test]
    fn crossover_slightly_above_11() {
        let x = base_problem(32.0).crossover_cores().unwrap();
        assert!(x > 11.0 && x < 12.0, "crossover = {x}");
    }

    #[test]
    fn figure3_values() {
        // Constant traffic across generations: 1×..16× supportable cores.
        let sweep = GenerationSweep::new(Baseline::niagara2_like());
        let results = sweep.run(4).unwrap();
        let cores: Vec<u64> = results.iter().map(|r| r.supportable_cores).collect();
        assert_eq!(cores[3], 24, "16x generation must support 24 cores");
        // ~10% die area for cores at 16×.
        assert!(
            (results[3].core_area_fraction - 24.0 / 256.0).abs() < 1e-12,
            "area fraction {}",
            results[3].core_area_fraction
        );
        // Monotone non-decreasing supportable cores with die budget.
        assert!(cores.windows(2).all(|w| w[0] <= w[1]));
        let ideal: Vec<u64> = results.iter().map(|r| r.ideal_cores).collect();
        assert_eq!(ideal, [16, 32, 64, 128]);
    }

    #[test]
    fn dram_cache_16x_supports_47_cores() {
        // The conclusion's DRAM-cache headline number.
        let p = ScalingProblem::new(Baseline::niagara2_like(), 256.0)
            .with_technique(Technique::dram_cache(8.0).unwrap());
        assert_eq!(p.max_supportable_cores().unwrap(), 47);
    }

    #[test]
    fn full_combination_16x_supports_183_cores() {
        // CC/LC + DRAM + 3D + SmCl at the fourth generation: 183 cores on
        // 71% of the die (Section 6.4).
        let p = ScalingProblem::new(Baseline::niagara2_like(), 256.0).with_techniques([
            Technique::cache_link_compression(2.0).unwrap(),
            Technique::dram_cache(8.0).unwrap(),
            Technique::stacked_cache(1).unwrap(),
            Technique::small_cache_lines(0.4).unwrap(),
        ]);
        let cores = p.max_supportable_cores().unwrap();
        assert_eq!(cores, 183);
        let area = p.core_area_fraction(cores);
        assert!((area - 183.0 / 256.0).abs() < 1e-12);
        assert!(area > 0.70 && area < 0.72);
    }

    #[test]
    fn link_compression_2x_restores_proportional_scaling() {
        let p = ScalingProblem::new(Baseline::niagara2_like(), 32.0)
            .with_technique(Technique::link_compression(2.0).unwrap());
        assert_eq!(p.max_supportable_cores().unwrap(), 16);
    }

    #[test]
    fn cache_link_compression_2x_supports_18() {
        let p = ScalingProblem::new(Baseline::niagara2_like(), 32.0)
            .with_technique(Technique::cache_link_compression(2.0).unwrap());
        assert_eq!(p.max_supportable_cores().unwrap(), 18);
    }

    #[test]
    fn stacked_cache_variants_match_figure6() {
        let base = Baseline::niagara2_like();
        let sram =
            ScalingProblem::new(base, 32.0).with_technique(Technique::stacked_cache(1).unwrap());
        assert_eq!(sram.max_supportable_cores().unwrap(), 14);
        let dram8 = ScalingProblem::new(base, 32.0)
            .with_technique(Technique::stacked_dram_cache(1, 8.0).unwrap());
        assert_eq!(dram8.max_supportable_cores().unwrap(), 25);
        let dram16 = ScalingProblem::new(base, 32.0)
            .with_technique(Technique::stacked_dram_cache(1, 16.0).unwrap());
        assert_eq!(dram16.max_supportable_cores().unwrap(), 32);
    }

    #[test]
    fn effects_and_accessors() {
        let t = Technique::dram_cache(8.0).unwrap();
        let p = base_problem(32.0)
            .with_technique(t)
            .with_bandwidth_growth(1.2);
        assert_eq!(p.techniques(), &[t]);
        assert_eq!(p.total_ceas(), 32.0);
        assert_eq!(p.bandwidth_growth(), 1.2);
        assert_eq!(p.baseline(), &Baseline::niagara2_like());
        assert_eq!(p.effects().cache_density(), 8.0);
        assert_eq!(p.proportional_cores(), 16);
    }

    #[test]
    fn relative_traffic_errors() {
        let p = base_problem(32.0);
        assert!(matches!(
            p.relative_traffic(0).unwrap_err(),
            ModelError::InvalidParameter { .. }
        ));
        assert!(matches!(
            p.relative_traffic(32).unwrap_err(),
            ModelError::NoCacheArea { .. }
        ));
    }

    #[test]
    fn traffic_at_16_cores_doubles() {
        let p = base_problem(32.0);
        assert!((p.relative_traffic(16).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn alpha_sensitivity_matches_figure17_direction() {
        // Larger α supports more cores.
        let lo = ScalingProblem::new(Baseline::niagara2_like().with_alpha(Alpha::SPEC2006), 256.0);
        let hi = ScalingProblem::new(
            Baseline::niagara2_like().with_alpha(Alpha::COMMERCIAL_MAX),
            256.0,
        );
        let lo_cores = lo.max_supportable_cores().unwrap();
        let hi_cores = hi.max_supportable_cores().unwrap();
        assert!(hi_cores > lo_cores);
        // "In the baseline case, a large α enables almost twice as many
        // cores as a small α."
        let ratio = hi_cores as f64 / lo_cores as f64;
        assert!(ratio > 1.5 && ratio < 2.5, "ratio = {ratio}");
    }

    #[test]
    fn generation_sweep_with_bandwidth_growth() {
        let sweep = GenerationSweep::new(Baseline::niagara2_like())
            .with_bandwidth_growth_per_generation(1.5);
        let results = sweep.run(2).unwrap();
        assert_eq!(results[0].supportable_cores, 13);
        assert!(results[1].supportable_cores > 13);
    }

    #[test]
    fn crossover_with_all_feasible_returns_bound() {
        // An enormous envelope: every feasible core count fits.
        let p = base_problem(32.0).with_bandwidth_growth(1e9);
        let x = p.crossover_cores().unwrap();
        assert!(x >= 31.0 - 1e-3, "crossover = {x}");
    }

    #[test]
    fn multithreaded_cores_worsen_the_wall() {
        // Section 3: SMT cores generate more traffic per core, so fewer
        // cores fit the same envelope.
        let single = base_problem(32.0).max_supportable_cores().unwrap();
        let smt2 = base_problem(32.0)
            .with_per_core_demand(1.6)
            .max_supportable_cores()
            .unwrap();
        assert!(smt2 < single, "smt {smt2} vs single {single}");
        // Demand 1.0 is the identity.
        assert_eq!(
            base_problem(32.0)
                .with_per_core_demand(1.0)
                .max_supportable_cores()
                .unwrap(),
            single
        );
    }

    #[test]
    fn inverse_queries_recover_the_techniques() {
        let p = base_problem(32.0);
        // Applying exactly the required divisor makes the target fit.
        let divisor = p.required_traffic_divisor(16).unwrap();
        let fitted = base_problem(32.0)
            .with_technique(Technique::link_compression(divisor).unwrap())
            .max_supportable_cores()
            .unwrap();
        assert_eq!(fitted, 16);
        // Same for the capacity factor via cache compression.
        let factor = p.required_capacity_factor(16).unwrap();
        let fitted = base_problem(32.0)
            .with_technique(Technique::cache_compression(factor).unwrap())
            .max_supportable_cores()
            .unwrap();
        assert_eq!(fitted, 16);
        // An already-fitting target needs nothing.
        assert!(p.required_traffic_divisor(8).unwrap() <= 1.0);
    }

    #[test]
    fn uncore_overhead_caps_small_core_benefit() {
        // 80x smaller cores with and without per-core interconnect area.
        let small = Technique::smaller_cores(1.0 / 80.0).unwrap();
        let free = base_problem(32.0)
            .with_technique(small)
            .max_supportable_cores()
            .unwrap();
        let taxed = base_problem(32.0)
            .with_technique(small)
            .with_uncore_overhead(0.5)
            .max_supportable_cores()
            .unwrap();
        assert!(taxed < free, "taxed {taxed} vs free {free}");
        // Zero overhead is the identity.
        assert_eq!(
            base_problem(32.0)
                .with_uncore_overhead(0.0)
                .max_supportable_cores()
                .unwrap(),
            base_problem(32.0).max_supportable_cores().unwrap()
        );
    }

    #[test]
    fn smaller_cores_match_figure8_limit() {
        // Even infinitesimal cores cannot push past ~12 cores next gen.
        let base = Baseline::niagara2_like();
        for (frac, expected) in [(1.0 / 9.0, 12), (1.0 / 45.0, 12), (1.0 / 80.0, 12)] {
            let p = ScalingProblem::new(base, 32.0)
                .with_technique(Technique::smaller_cores(frac).unwrap());
            assert_eq!(
                p.max_supportable_cores().unwrap(),
                expected,
                "fraction {frac}"
            );
        }
    }
}
