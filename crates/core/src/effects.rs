//! The combined effect of bandwidth-conservation techniques on a CMP
//! configuration.
//!
//! Section 6 of the paper sorts techniques into three categories:
//!
//! * **indirect** — grow the *effective* cache capacity per core
//!   (multiplicative factor `F` in Equation 8);
//! * **direct** — shrink the traffic itself (a divisor on `M2/M1`);
//! * **dual** — both at once (Equation 12).
//!
//! Some techniques additionally reshape the die: DRAM caches multiply the
//! density of every cache CEA, 3D stacking adds whole cache-only die layers
//! (Equation 9), and smaller cores shrink the area each core occupies
//! (Equations 10–11). [`Effects`] folds any set of techniques into one
//! record with those five components, and computes the effective cache the
//! die provides at a candidate core count.

use crate::error::ModelError;

/// One cache-only die layer added by 3D stacking.
///
/// `density` is the layer's storage density relative to on-die SRAM
/// (1.0 for an SRAM layer, 8–16 for DRAM layers per the paper's sources).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StackedLayer {
    density: f64,
}

impl StackedLayer {
    /// Creates a layer with the given density relative to SRAM. Densities
    /// below 1 model derated layers (e.g. thermally throttled upper dies);
    /// user-facing `layer_density` parameters still require `>= 1` at the
    /// registry's validation layer.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] unless `density > 0`.
    pub fn new(density: f64) -> Result<Self, ModelError> {
        if density.is_finite() && density > 0.0 {
            Ok(StackedLayer { density })
        } else {
            Err(ModelError::InvalidParameter {
                name: "layer_density",
                value: density,
                constraint: "must be finite and > 0",
            })
        }
    }

    /// An SRAM cache layer (density 1×).
    pub fn sram() -> Self {
        StackedLayer { density: 1.0 }
    }

    /// Storage density relative to SRAM.
    pub fn density(&self) -> f64 {
        self.density
    }
}

/// Folded effect of a set of techniques on the traffic model.
///
/// The identity element ([`Effects::none`]) leaves the model exactly as in
/// Section 5; techniques accumulate multiplicatively, so folding is
/// order-independent.
///
/// # Examples
///
/// ```
/// use bandwall_model::effects::Effects;
///
/// let e = Effects::none();
/// assert_eq!(e.capacity_factor(), 1.0);
/// assert_eq!(e.traffic_divisor(), 1.0);
/// // A 32-CEA die with 11 cores leaves 21 CEAs of plain SRAM cache.
/// assert_eq!(e.effective_cache_ceas(32.0, 11.0), 21.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Effects {
    capacity_factor: f64,
    traffic_divisor: f64,
    cache_density: f64,
    stacked_layers: Vec<StackedLayer>,
    core_size_fraction: f64,
    uncore_per_core: f64,
}

impl Effects {
    /// The identity: no techniques applied.
    pub fn none() -> Self {
        Effects {
            capacity_factor: 1.0,
            traffic_divisor: 1.0,
            cache_density: 1.0,
            stacked_layers: Vec::new(),
            core_size_fraction: 1.0,
            uncore_per_core: 0.0,
        }
    }

    /// Multiplies the effective-cache-capacity factor `F` (Equation 8).
    ///
    /// # Panics
    ///
    /// Debug-asserts that `factor >= 1`; technique constructors validate
    /// before calling.
    pub(crate) fn scale_capacity(&mut self, factor: f64) {
        debug_assert!(factor >= 1.0);
        self.capacity_factor *= factor;
    }

    /// Multiplies the direct traffic divisor `L`.
    pub(crate) fn scale_traffic_divisor(&mut self, divisor: f64) {
        debug_assert!(divisor >= 1.0);
        self.traffic_divisor *= divisor;
    }

    /// Multiplies the density of *all* cache CEAs (on-die and stacked) —
    /// the DRAM-cache transform.
    pub(crate) fn scale_cache_density(&mut self, density: f64) {
        debug_assert!(density >= 1.0);
        self.cache_density *= density;
    }

    /// Adds a cache-only stacked die layer of `total_ceas` CEAs at the
    /// layer's own density (Equation 9).
    pub(crate) fn add_stacked_layer(&mut self, layer: StackedLayer) {
        self.stacked_layers.push(layer);
    }

    /// Multiplies the fraction of a CEA each core occupies (smaller cores,
    /// Equation 10).
    pub(crate) fn scale_core_size(&mut self, fraction: f64) {
        debug_assert!(fraction > 0.0 && fraction <= 1.0);
        self.core_size_fraction *= fraction;
    }

    /// Adds per-core uncore area (routers, links, buses) in CEAs — the
    /// paper's Section 6.1 caveat that "with increasingly smaller cores,
    /// the interconnection between cores becomes increasingly larger".
    pub(crate) fn add_uncore_per_core(&mut self, ceas: f64) {
        debug_assert!(ceas >= 0.0);
        self.uncore_per_core += ceas;
    }

    /// Per-core uncore area in CEAs.
    pub fn uncore_per_core(&self) -> f64 {
        self.uncore_per_core
    }

    /// Effective-capacity multiplier `F` applied to the cache per core.
    pub fn capacity_factor(&self) -> f64 {
        self.capacity_factor
    }

    /// Direct traffic divisor `L` applied to `M2/M1`.
    pub fn traffic_divisor(&self) -> f64 {
        self.traffic_divisor
    }

    /// Density multiplier applied to every cache CEA.
    pub fn cache_density(&self) -> f64 {
        self.cache_density
    }

    /// Stacked cache-only layers added by 3D stacking.
    pub fn stacked_layers(&self) -> &[StackedLayer] {
        &self.stacked_layers
    }

    /// Fraction of a CEA each core occupies (1.0 = full-size cores).
    pub fn core_size_fraction(&self) -> f64 {
        self.core_size_fraction
    }

    /// Die area (in CEAs) occupied by `cores` cores, including their
    /// per-core uncore share.
    pub fn core_area(&self, cores: f64) -> f64 {
        (self.core_size_fraction + self.uncore_per_core) * cores
    }

    /// Effective cache capacity, in *SRAM-CEA equivalents*, that a die of
    /// `total_ceas` CEAs provides when `cores` cores are placed on it.
    ///
    /// This combines the on-die cache (whatever area the cores do not use,
    /// at the global density) with every stacked layer (full-die area at
    /// `global density × layer density`), per Equations 9–10. The
    /// capacity *factor* `F` is deliberately not folded in here — it models
    /// better utilisation of the same storage, not more storage — callers
    /// apply it to the per-core ratio (Equation 8).
    ///
    /// Returns a non-positive value when the cores overflow the die; the
    /// solver treats that as infeasible.
    pub fn effective_cache_ceas(&self, total_ceas: f64, cores: f64) -> f64 {
        let on_die = total_ceas - self.core_area(cores);
        let stacked: f64 = self
            .stacked_layers
            .iter()
            .map(|layer| layer.density() * total_ceas)
            .sum();
        self.cache_density * (on_die + stacked)
    }

    /// Largest core count that still leaves strictly positive effective
    /// cache on a `total_ceas` die (the search bound for the solver).
    pub fn max_feasible_cores(&self, total_ceas: f64) -> u64 {
        // Cores must fit on the die and leave some cache somewhere. The
        // stacked layers contribute cache regardless of core count, but the
        // cores themselves can occupy at most the whole die.
        let area_bound = total_ceas / (self.core_size_fraction + self.uncore_per_core);
        let bound = if self.stacked_layers.is_empty() {
            // Need on-die cache: core area strictly below the die.
            let full = area_bound.floor();
            if self.core_area(full) >= total_ceas {
                full - 1.0
            } else {
                full
            }
        } else {
            area_bound.floor()
        };
        bound.max(0.0) as u64
    }
}

impl Default for Effects {
    fn default() -> Self {
        Effects::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_effects() {
        let e = Effects::none();
        assert_eq!(e.capacity_factor(), 1.0);
        assert_eq!(e.traffic_divisor(), 1.0);
        assert_eq!(e.cache_density(), 1.0);
        assert!(e.stacked_layers().is_empty());
        assert_eq!(e.core_size_fraction(), 1.0);
        assert_eq!(e.effective_cache_ceas(32.0, 12.0), 20.0);
        assert_eq!(Effects::default(), e);
    }

    #[test]
    fn dram_density_multiplies_all_cache() {
        let mut e = Effects::none();
        e.scale_cache_density(8.0);
        assert_eq!(e.effective_cache_ceas(32.0, 16.0), 8.0 * 16.0);
    }

    #[test]
    fn stacked_layer_adds_full_die_of_cache() {
        // Equation 9 with an SRAM layer: D·N + (N - P).
        let mut e = Effects::none();
        e.add_stacked_layer(StackedLayer::sram());
        assert_eq!(e.effective_cache_ceas(32.0, 14.0), 32.0 + (32.0 - 14.0));
    }

    #[test]
    fn stacked_dram_layer_uses_layer_density() {
        // Equation 9 with an 8× DRAM layer and SRAM on-die cache.
        let mut e = Effects::none();
        e.add_stacked_layer(StackedLayer::new(8.0).unwrap());
        assert_eq!(e.effective_cache_ceas(32.0, 25.0), 8.0 * 32.0 + 7.0);
    }

    #[test]
    fn global_density_applies_to_stacked_layers_too() {
        // DRAM caches + 3D: both dies get the density improvement.
        let mut e = Effects::none();
        e.scale_cache_density(8.0);
        e.add_stacked_layer(StackedLayer::sram());
        assert_eq!(
            e.effective_cache_ceas(256.0, 183.0),
            8.0 * (256.0 + 256.0 - 183.0)
        );
    }

    #[test]
    fn smaller_cores_free_on_die_area() {
        let mut e = Effects::none();
        e.scale_core_size(1.0 / 80.0);
        let cache = e.effective_cache_ceas(32.0, 12.0);
        assert!((cache - (32.0 - 12.0 / 80.0)).abs() < 1e-12);
        assert!((e.core_area(12.0) - 0.15).abs() < 1e-12);
    }

    #[test]
    fn max_feasible_cores_without_stack() {
        let e = Effects::none();
        // Full-size cores, no stack: need at least a sliver of cache.
        assert_eq!(e.max_feasible_cores(32.0), 31);
    }

    #[test]
    fn max_feasible_cores_with_stack_allows_full_die() {
        let mut e = Effects::none();
        e.add_stacked_layer(StackedLayer::sram());
        assert_eq!(e.max_feasible_cores(32.0), 32);
    }

    #[test]
    fn max_feasible_cores_with_small_cores() {
        let mut e = Effects::none();
        e.scale_core_size(0.5);
        assert_eq!(e.max_feasible_cores(32.0), 63);
    }

    #[test]
    fn layer_validation() {
        assert!(StackedLayer::new(0.5).is_ok(), "derated layers are legal");
        assert!(StackedLayer::new(0.0).is_err());
        assert!(StackedLayer::new(-1.0).is_err());
        assert!(StackedLayer::new(f64::NAN).is_err());
        assert_eq!(StackedLayer::sram().density(), 1.0);
        assert_eq!(StackedLayer::new(16.0).unwrap().density(), 16.0);
    }

    #[test]
    fn folding_is_multiplicative() {
        let mut e = Effects::none();
        e.scale_capacity(2.0);
        e.scale_capacity(1.5);
        assert!((e.capacity_factor() - 3.0).abs() < 1e-12);
        e.scale_traffic_divisor(2.0);
        e.scale_traffic_divisor(3.0);
        assert!((e.traffic_divisor() - 6.0).abs() < 1e-12);
    }
}
