//! Throughput under a saturated bandwidth envelope (the Section 1
//! argument, made quantitative).
//!
//! The paper's introduction argues: *"If the provided off-chip memory
//! bandwidth cannot sustain the rate at which memory requests are
//! generated, then the extra queuing delay for memory requests will force
//! the performance of the cores to decline until the rate of memory
//! requests matches the available off-chip bandwidth. At that point,
//! adding more cores no longer yields any additional throughput."*
//!
//! [`ThroughputModel`] captures exactly that: chip throughput rises
//! linearly with core count while the generated traffic fits the
//! envelope, then plateaus at the bandwidth-bound level — cores beyond
//! the [`crate::ScalingProblem`] crossover stall on the memory queue and
//! contribute nothing.

use crate::error::ModelError;
use crate::params::Baseline;
use crate::scaling::ScalingProblem;
use crate::techniques::Technique;

/// One point of the throughput curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThroughputPoint {
    /// Number of cores on the chip.
    pub cores: u64,
    /// Traffic the cores *want* to generate, relative to the envelope
    /// (>1 = saturated).
    pub demand_ratio: f64,
    /// Chip throughput relative to one unthrottled baseline core.
    pub throughput: f64,
    /// Per-core throughput (1.0 = unthrottled).
    pub per_core_throughput: f64,
    /// Fraction of the bandwidth envelope in use.
    pub bandwidth_utilization: f64,
}

/// Chip throughput as a function of core count under a fixed bandwidth
/// envelope.
///
/// Performance is assumed memory-bound at the margin: when the generated
/// traffic exceeds the envelope, cores are throttled by the ratio, which
/// is the steady state the paper describes (requests are queued until the
/// issue rate matches the service rate).
///
/// # Examples
///
/// ```
/// use bandwall_model::{Baseline, ThroughputModel};
///
/// let model = ThroughputModel::new(Baseline::niagara2_like(), 32.0);
/// let curve = model.curve(1..=28)?;
/// // Throughput grows while the envelope has headroom…
/// assert!(curve[9].throughput > curve[5].throughput);
/// // …but the 28-core point is no better than ~the saturation plateau.
/// let plateau = model.plateau_throughput()?;
/// assert!(curve.last().unwrap().throughput <= plateau * 1.01);
/// # Ok::<(), bandwall_model::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputModel {
    problem: ScalingProblem,
}

impl ThroughputModel {
    /// Creates a throughput model for a die of `total_ceas` under a
    /// constant envelope.
    pub fn new(baseline: Baseline, total_ceas: f64) -> Self {
        ThroughputModel {
            problem: ScalingProblem::new(baseline, total_ceas),
        }
    }

    /// Wraps an existing scaling problem (inherits its techniques and
    /// bandwidth growth).
    pub fn from_problem(problem: ScalingProblem) -> Self {
        ThroughputModel { problem }
    }

    /// Adds a technique (delegates to the underlying problem).
    #[must_use]
    pub fn with_technique(mut self, technique: Technique) -> Self {
        self.problem = self.problem.with_technique(technique);
        self
    }

    /// The underlying scaling problem.
    pub fn problem(&self) -> &ScalingProblem {
        &self.problem
    }

    /// Evaluates one core count.
    ///
    /// # Errors
    ///
    /// Propagates domain errors from the traffic model (e.g. no cache
    /// area left).
    pub fn at(&self, cores: u64) -> Result<ThroughputPoint, ModelError> {
        let envelope = self.problem.bandwidth_growth();
        let demand = self.problem.relative_traffic(cores)?;
        let demand_ratio = demand / envelope;
        // Saturated cores are throttled until issue rate == service rate.
        let per_core = demand_ratio.max(1.0).recip();
        Ok(ThroughputPoint {
            cores,
            demand_ratio,
            throughput: cores as f64 * per_core,
            per_core_throughput: per_core,
            bandwidth_utilization: demand_ratio.min(1.0),
        })
    }

    /// The whole curve over a range of core counts, skipping infeasible
    /// points (no cache area).
    ///
    /// # Errors
    ///
    /// Returns an error only if *no* point in the range is feasible.
    pub fn curve(
        &self,
        cores: impl IntoIterator<Item = u64>,
    ) -> Result<Vec<ThroughputPoint>, ModelError> {
        let points: Vec<ThroughputPoint> =
            cores.into_iter().filter_map(|p| self.at(p).ok()).collect();
        if points.is_empty() {
            return Err(ModelError::Infeasible);
        }
        Ok(points)
    }

    /// Throughput at the exact saturation point — the plateau every
    /// additional core converges to. Equal to the crossover core count
    /// (each running unthrottled).
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn plateau_throughput(&self) -> Result<f64, ModelError> {
        self.problem.crossover_cores()
    }

    /// The whole-core count that maximises chip throughput — the
    /// *balanced design*. Throughput rises linearly with cores below the
    /// crossover and declines beyond it (excess cores eat cache and raise
    /// per-core demand), so the optimum straddles the crossover.
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn optimal_cores(&self) -> Result<u64, ModelError> {
        let below = self.problem.max_supportable_cores()?;
        let candidates = [below, below + 1];
        let mut best = (below, 0.0f64);
        for p in candidates {
            if let Ok(point) = self.at(p) {
                if point.throughput > best.1 {
                    best = (p, point.throughput);
                }
            }
        }
        Ok(best.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ThroughputModel {
        ThroughputModel::new(Baseline::niagara2_like(), 32.0)
    }

    #[test]
    fn linear_region_below_crossover() {
        let m = model();
        for cores in 1..=11 {
            let p = m.at(cores).unwrap();
            assert!(p.demand_ratio <= 1.0 + 1e-9, "cores {cores}");
            assert!((p.throughput - cores as f64).abs() < 1e-9);
            assert_eq!(p.per_core_throughput, 1.0);
        }
    }

    #[test]
    fn saturated_region_plateaus() {
        let m = model();
        let plateau = m.plateau_throughput().unwrap();
        for cores in [13u64, 16, 20, 24, 28] {
            let p = m.at(cores).unwrap();
            assert!(p.per_core_throughput < 1.0, "cores {cores}");
            // Throughput never exceeds the plateau…
            assert!(p.throughput <= plateau + 1e-9, "cores {cores}");
            assert!((p.bandwidth_utilization - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn throughput_declines_beyond_saturation() {
        // Worse than flat: excess cores steal cache area, raising per-core
        // demand, so total throughput actually *falls* past the crossover
        // — the paper's "could have been allocated for more productive
        // use" remark.
        let m = model();
        let at_crossover = m.at(11).unwrap().throughput;
        let far_beyond = m.at(28).unwrap().throughput;
        assert!(far_beyond < at_crossover, "{far_beyond} vs {at_crossover}");
    }

    #[test]
    fn techniques_raise_the_plateau() {
        let base = model().plateau_throughput().unwrap();
        let with_lc = model()
            .with_technique(Technique::link_compression(2.0).unwrap())
            .plateau_throughput()
            .unwrap();
        assert!(with_lc > base * 1.3);
    }

    #[test]
    fn curve_skips_infeasible_points() {
        let m = model();
        let curve = m.curve(1..=40).unwrap();
        // Points at 32+ cores have no cache and are skipped.
        assert!(curve.iter().all(|p| p.cores < 32));
    }

    #[test]
    fn utilization_below_one_in_linear_region() {
        let p = model().at(8).unwrap();
        assert!(p.bandwidth_utilization < 1.0);
        assert!((p.demand_ratio - p.bandwidth_utilization).abs() < 1e-12);
    }

    #[test]
    fn optimal_cores_straddles_the_crossover() {
        let m = model();
        let optimal = m.optimal_cores().unwrap();
        let crossover = m.plateau_throughput().unwrap();
        assert!(
            (optimal as f64 - crossover).abs() <= 1.0,
            "optimal {optimal} vs crossover {crossover}"
        );
        // The optimum beats both neighbours.
        let best = m.at(optimal).unwrap().throughput;
        if optimal > 1 {
            assert!(m.at(optimal - 1).unwrap().throughput <= best + 1e-12);
        }
        assert!(m.at(optimal + 1).unwrap().throughput <= best + 1e-12);
    }

    #[test]
    fn from_problem_inherits_configuration() {
        let problem =
            ScalingProblem::new(Baseline::niagara2_like(), 32.0).with_bandwidth_growth(2.0);
        let m = ThroughputModel::from_problem(problem);
        // Envelope of 2 lifts the linear region to 16 cores.
        assert_eq!(m.at(16).unwrap().per_core_throughput, 1.0);
    }
}
