//! Canonical, order-independent encoding of a [`ScalingProblem`].
//!
//! The solver is pure and deterministic, which makes solved problems
//! perfect cache fodder — but only if two *equal* problems produce the
//! same key regardless of construction order. [`CanonicalProblem`]
//! provides that: an exact canonical encoding (technique set sorted,
//! float fields captured by bit pattern) usable as a hash-map key, plus
//! a 64-bit FNV-1a digest for sharding and logging.
//!
//! Equality on the encoding is exact, so a memoization cache keyed by
//! [`CanonicalProblem`] can never conflate two different problems — the
//! digest is a convenience, not the identity.

use crate::scaling::ScalingProblem;
use crate::techniques::Technique;

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Normalises a float for canonical encoding: `-0.0` folds onto `0.0`
/// (they compare equal, so they must encode equally) and every NaN folds
/// onto one canonical NaN bit pattern. All other values keep their exact
/// IEEE-754 bits, so distinct parameters never collide.
fn float_bits(v: f64) -> u64 {
    if v == 0.0 {
        0
    } else if v.is_nan() {
        f64::NAN.to_bits()
    } else {
        v.to_bits()
    }
}

/// Encodes one technique as a sortable word group: the registry
/// discriminant tag followed by its parameters' bit patterns (integer
/// parameters encode as their value, so `stacked_cache(2)` reads as
/// `[3, 2, bits(density)]`), zero-padded to at least three words so the
/// pre-registry encodings of the Table 2 techniques are preserved
/// byte-for-byte. Decoding stays unambiguous: every group starts with a
/// tag and each tag has a fixed parameter count.
fn technique_words(technique: &Technique) -> Vec<u64> {
    let descriptor = technique.descriptor();
    let mut words = Vec::with_capacity(3);
    words.push(descriptor.tag);
    for (spec, &value) in descriptor.params.iter().zip(technique.params()) {
        if spec.domain.is_integer() {
            // Integer-domain values are validated whole numbers well
            // inside u64 range; encode the value, not its float bits.
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            words.push(value as u64);
        } else {
            words.push(float_bits(value));
        }
    }
    while words.len() < 3 {
        words.push(0);
    }
    words
}

/// The exact canonical form of a [`ScalingProblem`]: every parameter's
/// bit pattern in a fixed field order, with the technique set sorted so
/// application order (which the model treats as commutative) cannot
/// produce distinct encodings.
///
/// Use it directly as a `HashMap` key for memoized solves; use
/// [`CanonicalProblem::digest`] when a compact 64-bit summary is enough
/// (shard selection, logging).
///
/// # Examples
///
/// ```
/// use bandwall_model::{Baseline, CanonicalProblem, ScalingProblem, Technique};
///
/// let dram = Technique::dram_cache(8.0)?;
/// let lc = Technique::link_compression(2.0)?;
/// let a = ScalingProblem::new(Baseline::niagara2_like(), 256.0)
///     .with_technique(dram)
///     .with_technique(lc);
/// let b = ScalingProblem::new(Baseline::niagara2_like(), 256.0)
///     .with_technique(lc)
///     .with_technique(dram);
/// assert_eq!(CanonicalProblem::of(&a), CanonicalProblem::of(&b));
/// # Ok::<(), bandwall_model::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CanonicalProblem {
    words: Vec<u64>,
}

impl CanonicalProblem {
    /// Canonicalises `problem`.
    pub fn of(problem: &ScalingProblem) -> Self {
        let baseline = problem.baseline();
        let mut words = vec![
            float_bits(baseline.cores()),
            float_bits(baseline.cache_ceas()),
            float_bits(baseline.alpha().get()),
            float_bits(problem.total_ceas()),
            float_bits(problem.bandwidth_growth()),
            float_bits(problem.per_core_demand()),
            float_bits(problem.uncore_per_core()),
        ];
        let mut techniques: Vec<Vec<u64>> =
            problem.techniques().iter().map(technique_words).collect();
        techniques.sort_unstable();
        for t in techniques {
            words.extend_from_slice(&t);
        }
        CanonicalProblem { words }
    }

    /// The 64-bit FNV-1a digest of the canonical encoding. Two equal
    /// problems always share a digest; unequal problems collide only
    /// with hash probability, so treat the digest as a summary and the
    /// [`CanonicalProblem`] itself as the identity.
    pub fn digest(&self) -> u64 {
        let mut h = FNV_OFFSET;
        for word in &self.words {
            for byte in word.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(FNV_PRIME);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{Alpha, Baseline};
    use crate::techniques::Technique;

    fn base(n2: f64) -> ScalingProblem {
        ScalingProblem::new(Baseline::niagara2_like(), n2)
    }

    #[test]
    fn equal_problems_encode_and_hash_equal() {
        let a = base(32.0).with_bandwidth_growth(1.5);
        let b = base(32.0).with_bandwidth_growth(1.5);
        assert_eq!(CanonicalProblem::of(&a), CanonicalProblem::of(&b));
        assert_eq!(
            CanonicalProblem::of(&a).digest(),
            CanonicalProblem::of(&b).digest()
        );
    }

    #[test]
    fn technique_order_is_irrelevant() {
        let t = [
            Technique::cache_link_compression(2.0).unwrap(),
            Technique::dram_cache(8.0).unwrap(),
            Technique::stacked_cache(1).unwrap(),
            Technique::small_cache_lines(0.4).unwrap(),
        ];
        let forward = base(256.0).with_techniques(t);
        let backward = base(256.0).with_techniques(t.iter().rev().copied());
        assert_eq!(
            CanonicalProblem::of(&forward),
            CanonicalProblem::of(&backward)
        );
    }

    #[test]
    fn every_field_feeds_the_encoding() {
        let reference = CanonicalProblem::of(&base(32.0));
        let variants = [
            base(64.0),
            base(32.0).with_bandwidth_growth(1.5),
            base(32.0).with_per_core_demand(1.6),
            base(32.0).with_uncore_overhead(0.5),
            base(32.0).with_technique(Technique::dram_cache(8.0).unwrap()),
            ScalingProblem::new(Baseline::niagara2_like().with_alpha(Alpha::SPEC2006), 32.0),
            ScalingProblem::new(
                Baseline::new(4.0, 12.0, Alpha::COMMERCIAL_AVERAGE).unwrap(),
                32.0,
            ),
        ];
        for (i, v) in variants.iter().enumerate() {
            assert_ne!(reference, CanonicalProblem::of(v), "variant {i}");
            assert_ne!(
                reference.digest(),
                CanonicalProblem::of(v).digest(),
                "variant {i} digest"
            );
        }
    }

    #[test]
    fn distinct_techniques_with_same_parameter_differ() {
        // Same parameter value, different mechanism: the tag separates them.
        let cc = base(32.0).with_technique(Technique::cache_compression(2.0).unwrap());
        let lc = base(32.0).with_technique(Technique::link_compression(2.0).unwrap());
        assert_ne!(CanonicalProblem::of(&cc), CanonicalProblem::of(&lc));
    }

    #[test]
    fn duplicate_techniques_are_preserved() {
        // Applying a technique twice is a different (stronger) problem
        // than applying it once; the multiset must distinguish them.
        let once = base(32.0).with_technique(Technique::link_compression(2.0).unwrap());
        let twice = once
            .clone()
            .with_technique(Technique::link_compression(2.0).unwrap());
        assert_ne!(CanonicalProblem::of(&once), CanonicalProblem::of(&twice));
    }

    #[test]
    fn negative_zero_folds_onto_zero() {
        let a = base(32.0).with_uncore_overhead(0.0);
        let b = base(32.0).with_uncore_overhead(-0.0);
        assert_eq!(CanonicalProblem::of(&a), CanonicalProblem::of(&b));
    }

    #[test]
    fn hash_map_key_round_trip() {
        use std::collections::HashMap;
        let mut cache: HashMap<CanonicalProblem, u64> = HashMap::new();
        let p = base(256.0).with_technique(Technique::dram_cache(8.0).unwrap());
        cache.insert(
            CanonicalProblem::of(&p),
            p.solve().unwrap().supportable_cores,
        );
        let again = base(256.0).with_technique(Technique::dram_cache(8.0).unwrap());
        assert_eq!(cache.get(&CanonicalProblem::of(&again)), Some(&47));
    }
}
