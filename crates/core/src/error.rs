//! Error type for the analytical model.

use std::fmt;

/// Errors surfaced by the bandwidth-wall model.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A parameter was outside its valid domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
        /// Human-readable constraint, e.g. `"must be positive"`.
        constraint: &'static str,
    },
    /// The configuration leaves no positive cache area, so the traffic model
    /// (which divides by the cache-per-core ratio) is undefined.
    NoCacheArea {
        /// Requested core count.
        cores: u64,
        /// Total die budget in CEAs.
        total_ceas: f64,
    },
    /// No core count in the feasible range satisfies the traffic envelope.
    Infeasible,
    /// A numerical sub-solver failed; carries the underlying message.
    Numerical(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidParameter {
                name,
                value,
                constraint,
            } => write!(f, "invalid parameter {name} = {value}: {constraint}"),
            ModelError::NoCacheArea { cores, total_ceas } => write!(
                f,
                "no cache area left with {cores} cores on a {total_ceas}-CEA die"
            ),
            ModelError::Infeasible => f.write_str("no core count satisfies the traffic envelope"),
            ModelError::Numerical(msg) => write!(f, "numerical solver failed: {msg}"),
        }
    }
}

impl std::error::Error for ModelError {}

impl From<bandwall_numerics::RootError> for ModelError {
    fn from(err: bandwall_numerics::RootError) -> Self {
        ModelError::Numerical(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants_nonempty() {
        let errs = [
            ModelError::InvalidParameter {
                name: "alpha",
                value: -1.0,
                constraint: "must be positive",
            },
            ModelError::NoCacheArea {
                cores: 32,
                total_ceas: 32.0,
            },
            ModelError::Infeasible,
            ModelError::Numerical("bracket".into()),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn root_error_converts() {
        let err: ModelError = bandwall_numerics::RootError::MaxIterations { best: 1.0 }.into();
        assert!(matches!(err, ModelError::Numerical(_)));
    }
}
