//! Multi-programmed workload mixes.
//!
//! The paper assumes one workload character per chip (a single `α` and
//! per-core traffic). Real CMPs run mixes — some cores execute
//! cache-sensitive commercial code, others SPEC-like compute. A
//! [`WorkloadMix`] assigns a share of the cores to each class, splits the
//! cache among the classes proportionally to their core counts, and sums
//! per-class traffic: a strict generalisation that degenerates to the
//! paper's model for a single-class mix.

use crate::error::ModelError;
use crate::params::{Alpha, Baseline};
use bandwall_numerics::max_satisfying;
use std::fmt;

/// One workload class in a mix.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadClass {
    name: String,
    alpha: Alpha,
    /// Per-core traffic at the baseline cache allocation, relative to the
    /// mix's reference workload (1.0 = same as baseline M0).
    base_traffic: f64,
    /// Share of the chip's cores running this class.
    core_share: f64,
}

impl WorkloadClass {
    /// Creates a class with its exponent, relative per-core baseline
    /// traffic, and core share.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] for non-positive traffic
    /// or share values.
    pub fn new(
        name: impl Into<String>,
        alpha: Alpha,
        base_traffic: f64,
        core_share: f64,
    ) -> Result<Self, ModelError> {
        if !(base_traffic.is_finite() && base_traffic > 0.0) {
            return Err(ModelError::InvalidParameter {
                name: "base_traffic",
                value: base_traffic,
                constraint: "must be finite and positive",
            });
        }
        if !(core_share.is_finite() && core_share > 0.0) {
            return Err(ModelError::InvalidParameter {
                name: "core_share",
                value: core_share,
                constraint: "must be finite and positive",
            });
        }
        Ok(WorkloadClass {
            name: name.into(),
            alpha,
            base_traffic,
            core_share,
        })
    }

    /// Class name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Class exponent.
    pub fn alpha(&self) -> Alpha {
        self.alpha
    }

    /// Relative per-core baseline traffic.
    pub fn base_traffic(&self) -> f64 {
        self.base_traffic
    }

    /// Core share (normalised by [`WorkloadMix`]).
    pub fn core_share(&self) -> f64 {
        self.core_share
    }
}

/// A weighted mix of workload classes sharing one chip.
///
/// # Examples
///
/// A half-commercial, half-SPEC chip supports more cores than a pure
/// commercial one would predict with the SPEC α and fewer than with the
/// commercial α:
///
/// ```
/// use bandwall_model::mix::{WorkloadClass, WorkloadMix};
/// use bandwall_model::{Alpha, Baseline};
///
/// let mix = WorkloadMix::new(
///     Baseline::niagara2_like(),
///     vec![
///         WorkloadClass::new("commercial", Alpha::COMMERCIAL_AVERAGE, 1.0, 0.5)?,
///         WorkloadClass::new("spec", Alpha::SPEC2006, 1.0, 0.5)?,
///     ],
/// )?;
/// let cores = mix.max_supportable_cores(32.0, 1.0)?;
/// assert!(cores < 11); // the SPEC half drags the chip below α=0.5's 11
/// # Ok::<(), bandwall_model::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadMix {
    baseline: Baseline,
    classes: Vec<WorkloadClass>,
}

impl WorkloadMix {
    /// Creates a mix over the given classes; shares are normalised.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] if no class is supplied.
    pub fn new(baseline: Baseline, classes: Vec<WorkloadClass>) -> Result<Self, ModelError> {
        if classes.is_empty() {
            return Err(ModelError::InvalidParameter {
                name: "classes",
                value: 0.0,
                constraint: "mix needs at least one class",
            });
        }
        Ok(WorkloadMix { baseline, classes })
    }

    /// The classes (shares as supplied; normalisation happens internally).
    pub fn classes(&self) -> &[WorkloadClass] {
        &self.classes
    }

    /// Total of the raw core shares.
    fn total_share(&self) -> f64 {
        self.classes.iter().map(|c| c.core_share).sum()
    }

    /// Relative chip traffic for `cores` cores on a die of `total_ceas`
    /// CEAs, with the cache split evenly per core (every class gets the
    /// same cache per core, as a shared-cache chip would).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NoCacheArea`] when no cache remains and
    /// [`ModelError::InvalidParameter`] for a zero core count.
    pub fn relative_traffic(&self, total_ceas: f64, cores: f64) -> Result<f64, ModelError> {
        if !(cores.is_finite() && cores >= 1.0) {
            return Err(ModelError::InvalidParameter {
                name: "cores",
                value: cores,
                constraint: "must be at least 1",
            });
        }
        let cache = total_ceas - cores;
        if cache <= 0.0 {
            return Err(ModelError::NoCacheArea {
                cores: cores as u64,
                total_ceas,
            });
        }
        let cache_per_core = cache / cores;
        let total_share = self.total_share();
        let s1 = self.baseline.cache_per_core();
        let mut traffic = 0.0;
        for class in &self.classes {
            let class_cores = cores * class.core_share / total_share;
            let per_core = class.base_traffic * class.alpha.dampen(cache_per_core / s1);
            traffic += class_cores * per_core;
        }
        // Normalise against the baseline chip running the same mix.
        let mut base = 0.0;
        for class in &self.classes {
            let class_cores = self.baseline.cores() * class.core_share / total_share;
            base += class_cores * class.base_traffic;
        }
        Ok(traffic / base)
    }

    /// Largest core count whose mixed traffic fits `envelope × M₁`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Infeasible`] when even one core exceeds the
    /// envelope.
    pub fn max_supportable_cores(&self, total_ceas: f64, envelope: f64) -> Result<u64, ModelError> {
        let hi = (total_ceas - 1.0).max(0.0) as u64;
        if hi == 0 {
            return Err(ModelError::Infeasible);
        }
        max_satisfying(1, hi, |p| {
            self.relative_traffic(total_ceas, p as f64)
                .map(|t| t <= envelope * (1.0 + 1e-9))
                .unwrap_or(false)
        })
        .ok_or(ModelError::Infeasible)
    }
}

impl fmt::Display for WorkloadMix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<String> = self
            .classes
            .iter()
            .map(|c| {
                format!(
                    "{} ({:.0}%)",
                    c.name,
                    100.0 * c.core_share / self.total_share()
                )
            })
            .collect();
        write!(f, "mix[{}]", names.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scaling::ScalingProblem;

    fn single_class_mix(alpha: Alpha) -> WorkloadMix {
        WorkloadMix::new(
            Baseline::niagara2_like(),
            vec![WorkloadClass::new("only", alpha, 1.0, 1.0).unwrap()],
        )
        .unwrap()
    }

    #[test]
    fn single_class_degenerates_to_scaling_problem() {
        for alpha in [
            Alpha::SPEC2006,
            Alpha::COMMERCIAL_AVERAGE,
            Alpha::COMMERCIAL_MAX,
        ] {
            let mix = single_class_mix(alpha);
            let expected = ScalingProblem::new(Baseline::niagara2_like().with_alpha(alpha), 32.0)
                .max_supportable_cores()
                .unwrap();
            assert_eq!(
                mix.max_supportable_cores(32.0, 1.0).unwrap(),
                expected,
                "{alpha}"
            );
        }
    }

    #[test]
    fn mixed_chip_lands_between_pure_chips() {
        let pure_spec = single_class_mix(Alpha::SPEC2006)
            .max_supportable_cores(64.0, 1.0)
            .unwrap();
        let pure_commercial = single_class_mix(Alpha::COMMERCIAL_AVERAGE)
            .max_supportable_cores(64.0, 1.0)
            .unwrap();
        let mixed = WorkloadMix::new(
            Baseline::niagara2_like(),
            vec![
                WorkloadClass::new("spec", Alpha::SPEC2006, 1.0, 0.5).unwrap(),
                WorkloadClass::new("comm", Alpha::COMMERCIAL_AVERAGE, 1.0, 0.5).unwrap(),
            ],
        )
        .unwrap()
        .max_supportable_cores(64.0, 1.0)
        .unwrap();
        assert!(
            mixed >= pure_spec && mixed <= pure_commercial,
            "{pure_spec} <= {mixed} <= {pure_commercial}"
        );
    }

    #[test]
    fn heavier_traffic_class_reduces_cores() {
        let balanced = WorkloadMix::new(
            Baseline::niagara2_like(),
            vec![WorkloadClass::new("x", Alpha::COMMERCIAL_AVERAGE, 1.0, 1.0).unwrap()],
        )
        .unwrap();
        let hungry = WorkloadMix::new(
            Baseline::niagara2_like(),
            vec![WorkloadClass::new("x", Alpha::COMMERCIAL_AVERAGE, 2.0, 1.0).unwrap()],
        )
        .unwrap();
        // Base traffic scales both M2 and M1 identically for a
        // single-class mix, so the *relative* wall is unchanged…
        assert_eq!(
            balanced.max_supportable_cores(32.0, 1.0).unwrap(),
            hungry.max_supportable_cores(32.0, 1.0).unwrap()
        );
        // …but in a mix, a hungry class shifts traffic toward itself.
        let skewed = WorkloadMix::new(
            Baseline::niagara2_like(),
            vec![
                WorkloadClass::new("hungry", Alpha::SPEC2006, 3.0, 0.5).unwrap(),
                WorkloadClass::new("light", Alpha::COMMERCIAL_AVERAGE, 1.0, 0.5).unwrap(),
            ],
        )
        .unwrap();
        let even = WorkloadMix::new(
            Baseline::niagara2_like(),
            vec![
                WorkloadClass::new("a", Alpha::SPEC2006, 1.0, 0.5).unwrap(),
                WorkloadClass::new("b", Alpha::COMMERCIAL_AVERAGE, 1.0, 0.5).unwrap(),
            ],
        )
        .unwrap();
        // The hungry-SPEC chip is at most as scalable as the even one.
        assert!(
            skewed.max_supportable_cores(64.0, 1.0).unwrap()
                <= even.max_supportable_cores(64.0, 1.0).unwrap()
        );
    }

    #[test]
    fn traffic_at_baseline_is_unity() {
        let mix = WorkloadMix::new(
            Baseline::niagara2_like(),
            vec![
                WorkloadClass::new("a", Alpha::SPEC2006, 2.0, 0.3).unwrap(),
                WorkloadClass::new("b", Alpha::COMMERCIAL_MAX, 0.5, 0.7).unwrap(),
            ],
        )
        .unwrap();
        let t = mix.relative_traffic(16.0, 8.0).unwrap();
        assert!((t - 1.0).abs() < 1e-12, "{t}");
    }

    #[test]
    fn validation() {
        assert!(WorkloadClass::new("x", Alpha::SPEC2006, 0.0, 1.0).is_err());
        assert!(WorkloadClass::new("x", Alpha::SPEC2006, 1.0, 0.0).is_err());
        assert!(WorkloadMix::new(Baseline::niagara2_like(), vec![]).is_err());
        let mix = single_class_mix(Alpha::COMMERCIAL_AVERAGE);
        assert!(mix.relative_traffic(32.0, 0.0).is_err());
        assert!(mix.relative_traffic(32.0, 32.0).is_err());
    }

    #[test]
    fn display_shows_shares() {
        let mix = WorkloadMix::new(
            Baseline::niagara2_like(),
            vec![
                WorkloadClass::new("oltp", Alpha::COMMERCIAL_MAX, 1.0, 3.0).unwrap(),
                WorkloadClass::new("spec", Alpha::SPEC2006, 1.0, 1.0).unwrap(),
            ],
        )
        .unwrap();
        let s = mix.to_string();
        assert!(s.contains("oltp (75%)") && s.contains("spec (25%)"), "{s}");
    }

    #[test]
    fn accessors() {
        let class = WorkloadClass::new("w", Alpha::SPEC2006, 1.5, 2.0).unwrap();
        assert_eq!(class.name(), "w");
        assert_eq!(class.alpha(), Alpha::SPEC2006);
        assert_eq!(class.base_traffic(), 1.5);
        assert_eq!(class.core_share(), 2.0);
        let mix = WorkloadMix::new(Baseline::niagara2_like(), vec![class.clone()]).unwrap();
        assert_eq!(mix.classes(), &[class]);
    }
}
