//! The CMP memory-traffic model (Section 4.2, Equations 3–5).
//!
//! Total chip traffic for a constant amount of work is
//! `M = P · M0 · (S/S0)^-α` (Equation 3): every core contributes the
//! per-core power law independently (threads are assumed not to share data;
//! the relaxation lives in [`crate::sharing`]). Comparing two
//! configurations, the baseline-specific constants cancel and
//! `M2/M1 = (P2/P1) · (S2/S1)^-α` (Equation 5).

use crate::error::ModelError;
use crate::params::Baseline;

/// Relative-traffic calculator anchored at a [`Baseline`].
///
/// # Examples
///
/// The worked example of Section 4.2: starting from 8 cores with 1 CEA of
/// cache each, reallocating 4 cache CEAs into 4 extra cores (12 cores,
/// S₂ = 1/3) multiplies traffic by ≈2.6×.
///
/// ```
/// use bandwall_model::{Baseline, TrafficModel};
///
/// let model = TrafficModel::new(Baseline::niagara2_like());
/// let ratio = model.relative_traffic(12.0, 1.0 / 3.0)?;
/// assert!((ratio - 2.598).abs() < 1e-3);
///
/// // Decomposition: 1.5× from more cores, 1.73× from less cache per core.
/// let (core_term, cache_term) = model.traffic_decomposition(12.0, 1.0 / 3.0)?;
/// assert!((core_term - 1.5).abs() < 1e-12);
/// assert!((cache_term - 1.732).abs() < 1e-3);
/// # Ok::<(), bandwall_model::ModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficModel {
    baseline: Baseline,
}

impl TrafficModel {
    /// Creates a traffic model for comparisons against `baseline`.
    pub fn new(baseline: Baseline) -> Self {
        TrafficModel { baseline }
    }

    /// The baseline this model compares against.
    pub fn baseline(&self) -> &Baseline {
        &self.baseline
    }

    /// Traffic of a configuration with `cores` cores and `cache_per_core`
    /// CEAs of cache per core, relative to the baseline (Equation 5).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] unless both arguments are
    /// finite and strictly positive.
    pub fn relative_traffic(&self, cores: f64, cache_per_core: f64) -> Result<f64, ModelError> {
        let (core_term, cache_term) = self.traffic_decomposition(cores, cache_per_core)?;
        Ok(core_term * cache_term)
    }

    /// Splits the relative traffic into its two factors: the core-count
    /// term `P2/P1` and the cache-dampening term `(S2/S1)^-α`.
    ///
    /// # Errors
    ///
    /// Same as [`TrafficModel::relative_traffic`].
    pub fn traffic_decomposition(
        &self,
        cores: f64,
        cache_per_core: f64,
    ) -> Result<(f64, f64), ModelError> {
        if !(cores.is_finite() && cores > 0.0) {
            return Err(ModelError::InvalidParameter {
                name: "cores",
                value: cores,
                constraint: "must be finite and positive",
            });
        }
        if !(cache_per_core.is_finite() && cache_per_core > 0.0) {
            return Err(ModelError::InvalidParameter {
                name: "cache_per_core",
                value: cache_per_core,
                constraint: "must be finite and positive",
            });
        }
        let core_term = cores / self.baseline.cores();
        let cache_term = self
            .baseline
            .alpha()
            .dampen(cache_per_core / self.baseline.cache_per_core());
        if !(core_term * cache_term).is_finite() {
            return Err(ModelError::Numerical(format!(
                "relative traffic overflowed at {cores} cores with {cache_per_core} CEAs/core"
            )));
        }
        Ok((core_term, cache_term))
    }

    /// Relative traffic for a die of `total_ceas` CEAs split as `cores`
    /// cores and `total_ceas - cores` cache (the Figure 2 curve).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NoCacheArea`] when `cores >= total_ceas` and
    /// propagates parameter validation errors.
    pub fn relative_traffic_on_die(&self, total_ceas: f64, cores: f64) -> Result<f64, ModelError> {
        let cache = total_ceas - cores;
        if cache <= 0.0 {
            return Err(ModelError::NoCacheArea {
                cores: cores as u64,
                total_ceas,
            });
        }
        self.relative_traffic(cores, cache / cores)
    }

    /// Absolute traffic (per unit of work) for `cores` cores with
    /// `cache_per_core` cache each, given the baseline per-core traffic
    /// `base_traffic_per_core` (Equation 3).
    ///
    /// # Errors
    ///
    /// Same as [`TrafficModel::relative_traffic`], plus rejects a
    /// non-finite or negative `base_traffic_per_core`.
    pub fn absolute_traffic(
        &self,
        cores: f64,
        cache_per_core: f64,
        base_traffic_per_core: f64,
    ) -> Result<f64, ModelError> {
        if !(base_traffic_per_core.is_finite() && base_traffic_per_core >= 0.0) {
            return Err(ModelError::InvalidParameter {
                name: "base_traffic_per_core",
                value: base_traffic_per_core,
                constraint: "must be finite and non-negative",
            });
        }
        let ratio = self.relative_traffic(cores, cache_per_core)?;
        Ok(ratio * self.baseline.cores() * base_traffic_per_core)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Alpha;

    fn model() -> TrafficModel {
        TrafficModel::new(Baseline::niagara2_like())
    }

    #[test]
    fn baseline_configuration_has_unit_traffic() {
        let m = model();
        assert!((m.relative_traffic(8.0, 1.0).unwrap() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn section_4_2_worked_example() {
        // 12 cores, 4 CEAs of cache → S2 = 1/3; traffic 2.6× the baseline.
        let m = model();
        let ratio = m.relative_traffic(12.0, (8.0 - 4.0) / 12.0).unwrap();
        assert!((ratio - 2.5981).abs() < 1e-4, "ratio = {ratio}");
        let (cores, cache) = m.traffic_decomposition(12.0, 1.0 / 3.0).unwrap();
        assert!((cores - 1.5).abs() < 1e-12);
        assert!((cache - 3f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn doubling_cores_and_cache_doubles_traffic() {
        // "Doubling the number of cores and the amount of cache ... results
        // in a corresponding doubling of off-chip memory traffic."
        let m = model();
        let ratio = m.relative_traffic(16.0, 1.0).unwrap();
        assert!((ratio - 2.0).abs() < 1e-12);
    }

    #[test]
    fn figure2_crossover_is_at_11_cores() {
        let m = model();
        // 11 cores on a 32-CEA die still fits the envelope; 12 does not.
        assert!(m.relative_traffic_on_die(32.0, 11.0).unwrap() <= 1.0);
        assert!(m.relative_traffic_on_die(32.0, 12.0).unwrap() > 1.0);
    }

    #[test]
    fn traffic_monotone_in_cores_on_fixed_die() {
        let m = model();
        let mut last = 0.0;
        for p in 1..=28 {
            let t = m.relative_traffic_on_die(32.0, p as f64).unwrap();
            assert!(t > last, "traffic not increasing at P = {p}");
            last = t;
        }
    }

    #[test]
    fn no_cache_area_rejected() {
        let m = model();
        assert!(matches!(
            m.relative_traffic_on_die(32.0, 32.0).unwrap_err(),
            ModelError::NoCacheArea { .. }
        ));
    }

    #[test]
    fn invalid_parameters_rejected() {
        let m = model();
        assert!(m.relative_traffic(0.0, 1.0).is_err());
        assert!(m.relative_traffic(8.0, 0.0).is_err());
        assert!(m.relative_traffic(f64::NAN, 1.0).is_err());
        assert!(m.absolute_traffic(8.0, 1.0, -1.0).is_err());
    }

    #[test]
    fn absolute_traffic_scales_with_base_rate() {
        let m = model();
        let t = m.absolute_traffic(8.0, 1.0, 0.05).unwrap();
        assert!((t - 8.0 * 0.05).abs() < 1e-12);
        let t2 = m.absolute_traffic(16.0, 1.0, 0.05).unwrap();
        assert!((t2 - 2.0 * t).abs() < 1e-12);
    }

    #[test]
    fn alpha_dampens_cache_benefit() {
        let low = TrafficModel::new(Baseline::niagara2_like().with_alpha(Alpha::SPEC2006));
        let high = TrafficModel::new(Baseline::niagara2_like().with_alpha(Alpha::COMMERCIAL_MAX));
        // Same configuration, more cache per core: high α benefits more.
        let rl = low.relative_traffic(8.0, 4.0).unwrap();
        let rh = high.relative_traffic(8.0, 4.0).unwrap();
        assert!(rh < rl);
    }
}
