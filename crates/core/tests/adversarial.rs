//! Adversarial-input tests: every public model entry point must be
//! panic-free and NaN-free over hostile inputs. Each call either
//! returns `Ok` with a finite value or a typed [`ModelError`] — never a
//! panic, never NaN/infinity smuggled through an `Ok`.

use bandwall_model::{Alpha, Baseline, MissRateCurve, ScalingProblem, Technique, TrafficModel};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Hostile scalar inputs: signs, zeros, subnormals, extremes, non-finite.
const ADVERSARIAL: [f64; 16] = [
    f64::NEG_INFINITY,
    -1e308,
    -1.0,
    -1e-308,
    -0.0,
    0.0,
    5e-324, // subnormal
    1e-308,
    1e-9,
    0.5,
    1.0,
    2.0,
    1e6,
    1e154,
    f64::INFINITY,
    f64::NAN,
];

/// Asserts the closure neither panics nor returns a non-finite `Ok`.
fn assert_total(context: &str, f: impl FnOnce() -> Result<f64, bandwall_model::ModelError>) {
    let outcome = catch_unwind(AssertUnwindSafe(f));
    match outcome {
        Err(_) => panic!("panicked: {context}"),
        Ok(Ok(v)) => assert!(v.is_finite(), "non-finite Ok({v}) from {context}"),
        Ok(Err(_)) => {} // typed rejection is the correct fate for bad inputs
    }
}

#[test]
fn alpha_rejects_out_of_domain_values_without_panicking() {
    for a in ADVERSARIAL {
        let outcome = catch_unwind(|| Alpha::new(a));
        let result = outcome.unwrap_or_else(|_| panic!("Alpha::new({a}) panicked"));
        if let Ok(alpha) = result {
            assert!(alpha.get().is_finite() && alpha.get() > 0.0);
        }
    }
}

#[test]
fn baseline_constructor_is_total() {
    for cores in ADVERSARIAL {
        for ceas in ADVERSARIAL {
            let outcome = catch_unwind(|| Baseline::new(cores, ceas, Alpha::COMMERCIAL_AVERAGE));
            assert!(
                outcome.is_ok(),
                "Baseline::new({cores}, {ceas}, ..) panicked"
            );
        }
    }
}

#[test]
fn power_law_is_total_over_adversarial_sizes() {
    for m0 in ADVERSARIAL {
        for c0 in ADVERSARIAL {
            let Ok(Ok(law)) =
                catch_unwind(|| MissRateCurve::new(m0, c0, Alpha::COMMERCIAL_AVERAGE))
            else {
                continue; // rejected construction (or the panic assert below catches it)
            };
            for size in ADVERSARIAL {
                assert_total(
                    &format!("miss_rate({size}) on MissRateCurve({m0}, {c0})"),
                    || law.miss_rate(size),
                );
                assert_total(&format!("traffic({size}, 0.4)"), || law.traffic(size, 0.4));
                assert_total(&format!("traffic_ratio({c0}, {size})"), || {
                    law.traffic_ratio(c0, size)
                });
            }
        }
    }
}

#[test]
fn traffic_model_is_total_over_adversarial_geometry() {
    let model = TrafficModel::new(Baseline::niagara2_like());
    for cores in ADVERSARIAL {
        for cache in ADVERSARIAL {
            assert_total(&format!("relative_traffic({cores}, {cache})"), || {
                model.relative_traffic(cores, cache)
            });
            assert_total(
                &format!("relative_traffic_on_die({cache}, {cores})"),
                || model.relative_traffic_on_die(cache, cores),
            );
        }
    }
}

#[test]
fn scaling_problem_is_total_over_adversarial_parameters() {
    for total_ceas in ADVERSARIAL {
        for knob in ADVERSARIAL {
            let problem = ScalingProblem::new(Baseline::niagara2_like(), total_ceas)
                .with_bandwidth_growth(knob)
                .with_per_core_demand(knob)
                .with_uncore_overhead(knob);
            assert_total(
                &format!("crossover_cores(n2={total_ceas}, knob={knob})"),
                || problem.crossover_cores(),
            );
            assert_total(
                &format!("relative_traffic(n2={total_ceas}, knob={knob})"),
                || problem.relative_traffic(7),
            );
            let outcome = catch_unwind(AssertUnwindSafe(|| problem.solve()));
            match outcome {
                Err(_) => panic!("solve(n2={total_ceas}, knob={knob}) panicked"),
                Ok(Ok(solution)) => {
                    assert!(solution.crossover_cores.is_finite());
                    assert!(solution.core_area_fraction.is_finite());
                }
                Ok(Err(_)) => {}
            }
            let outcome = catch_unwind(AssertUnwindSafe(|| problem.max_supportable_cores()));
            assert!(
                outcome.is_ok(),
                "max_supportable_cores(n2={total_ceas}, knob={knob}) panicked"
            );
        }
    }
}

#[test]
fn huge_core_counts_cannot_overflow_into_nan() {
    let problem = ScalingProblem::new(Baseline::niagara2_like(), 1e12);
    for cores in [1u64, 1 << 20, 1 << 40, u64::MAX / 2, u64::MAX] {
        assert_total(&format!("relative_traffic({cores})"), || {
            problem.relative_traffic(cores)
        });
    }
}

#[test]
fn adversarial_technique_parameters_are_rejected_not_propagated() {
    for v in ADVERSARIAL {
        for build in [
            Technique::cache_compression,
            Technique::dram_cache,
            Technique::unused_data_filter,
            Technique::smaller_cores,
            Technique::link_compression,
            Technique::sectored_cache,
            Technique::small_cache_lines,
            Technique::cache_link_compression,
        ] {
            let outcome = catch_unwind(|| build(v));
            let result = outcome.unwrap_or_else(|_| panic!("technique builder({v}) panicked"));
            if let Ok(t) = result {
                let problem =
                    ScalingProblem::new(Baseline::niagara2_like(), 32.0).with_technique(t);
                assert_total(&format!("solve with technique({v})"), || {
                    problem.solve().map(|s| s.crossover_cores)
                });
            }
        }
    }
}
