//! Regression pins for the complete Figure 15 and Figure 16 series.
//!
//! The root `tests/paper_numbers.rs` asserts the values the paper's prose
//! states; this file pins the *entire* computed series so any future
//! change to the technique algebra or solver is caught immediately.

use bandwall_model::combination::figure16_combinations;
use bandwall_model::{catalog, AssumptionLevel, Baseline, ScalingProblem};

fn solve(techniques: &[bandwall_model::Technique], generation: i32) -> u64 {
    ScalingProblem::new(Baseline::niagara2_like(), 16.0 * 2f64.powi(generation))
        .with_techniques(techniques.iter().copied())
        .max_supportable_cores()
        .unwrap()
}

#[test]
fn figure15_realistic_series() {
    // (label, cores at 2x/4x/8x/16x) — computed once, pinned forever.
    let expected: [(&str, [u64; 4]); 9] = [
        ("CC", [13, 18, 23, 30]),
        ("DRAM", [18, 26, 36, 47]),
        ("3D", [14, 19, 24, 31]),
        ("Fltr", [12, 17, 22, 28]),
        ("SmCo", [12, 15, 20, 25]),
        ("LC", [16, 22, 29, 38]),
        ("Sect", [14, 19, 26, 34]),
        ("SmCl", [16, 22, 30, 40]),
        ("CC/LC", [18, 26, 36, 47]),
    ];
    for profile in catalog() {
        let (_, series) = expected
            .iter()
            .find(|(label, _)| *label == profile.label())
            .expect("every catalogue entry is pinned");
        let technique = profile.technique(AssumptionLevel::Realistic).unwrap();
        for (g, &want) in (1..=4).zip(series) {
            assert_eq!(
                solve(&[technique], g),
                want,
                "{} at generation {g}",
                profile.label()
            );
        }
    }
}

#[test]
fn figure15_base_series() {
    let base: Vec<u64> = (1..=4).map(|g| solve(&[], g)).collect();
    assert_eq!(base, [11, 14, 19, 24]);
}

#[test]
fn figure16_realistic_series() {
    let expected: [[u64; 4]; 15] = [
        [32, 44, 58, 76],   // CC + DRAM + 3D
        [27, 43, 64, 88],   // CC/LC + DRAM
        [20, 27, 36, 46],   // CC + 3D + Fltr
        [21, 30, 41, 55],   // CC/LC + Fltr
        [32, 53, 72, 94],   // DRAM + 3D + LC
        [26, 42, 61, 83],   // DRAM + Fltr + LC
        [28, 46, 69, 96],   // DRAM + LC + Sect
        [25, 34, 44, 57],   // 3D + Fltr + LC
        [22, 33, 45, 61],   // SmCl + LC
        [25, 38, 55, 75],   // CC/LC + SmCl
        [32, 55, 75, 99],   // DRAM + 3D + SmCl
        [30, 55, 89, 132],  // CC/LC + DRAM + SmCl
        [32, 55, 75, 99],   // CC/LC + 3D + SmCl
        [32, 64, 88, 117],  // CC/LC + DRAM + 3D
        [32, 64, 128, 183], // CC/LC + DRAM + 3D + SmCl
    ];
    let combos = figure16_combinations(AssumptionLevel::Realistic).unwrap();
    assert_eq!(combos.len(), expected.len());
    for (combo, series) in combos.iter().zip(&expected) {
        for (g, &want) in (1..=4).zip(series) {
            assert_eq!(
                solve(combo.techniques(), g),
                want,
                "{} at generation {g}",
                combo.name()
            );
        }
    }
}

#[test]
fn figure17_series() {
    use bandwall_model::Alpha;
    let solve_alpha = |alpha: Alpha, labels: &[&str], g: i32| {
        let combo = bandwall_model::combination::Combination::from_labels(
            labels,
            AssumptionLevel::Realistic,
        )
        .unwrap();
        ScalingProblem::new(
            Baseline::niagara2_like().with_alpha(alpha),
            16.0 * 2f64.powi(g),
        )
        .with_techniques(combo.techniques().iter().copied())
        .max_supportable_cores()
        .unwrap()
    };
    // High α = 0.62.
    let hi = Alpha::COMMERCIAL_MAX;
    assert_eq!(solve_alpha(hi, &[], 4), 28);
    assert_eq!(solve_alpha(hi, &["DRAM"], 4), 60);
    assert_eq!(solve_alpha(hi, &["CC/LC", "DRAM"], 4), 108);
    assert_eq!(solve_alpha(hi, &["CC/LC", "DRAM", "3D"], 4), 152);
    // Low α = 0.25.
    let lo = Alpha::SPEC2006;
    assert_eq!(solve_alpha(lo, &[], 4), 15);
    assert_eq!(solve_alpha(lo, &["DRAM"], 4), 23);
    assert_eq!(solve_alpha(lo, &["CC/LC", "DRAM"], 4), 46);
    assert_eq!(solve_alpha(lo, &["CC/LC", "DRAM", "3D"], 4), 54);
}

#[test]
fn figure3_full_series() {
    let cores: Vec<u64> = (0..=7).map(|g| solve(&[], g)).collect();
    assert_eq!(cores, [8, 11, 14, 19, 24, 31, 39, 50]);
}
