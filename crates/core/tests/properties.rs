//! Property-style tests of the analytical model's invariants, driven by
//! a seeded [`Rng`] instead of an external property-testing framework.

use bandwall_model::techniques::combine;
use bandwall_model::{
    extended_catalog, Alpha, AssumptionLevel, Baseline, ScalingProblem, Technique, TrafficModel,
};
use bandwall_numerics::Rng;

const CASES: usize = 128;

fn any_alpha(rng: &mut Rng) -> Alpha {
    Alpha::new(0.1 + 1.1 * rng.gen_f64()).unwrap()
}

fn any_technique(rng: &mut Rng) -> Technique {
    match rng.gen_range(0..9u32) {
        0 => Technique::cache_compression(1.0 + 3.0 * rng.gen_f64()).unwrap(),
        1 => Technique::dram_cache(1.0 + 15.0 * rng.gen_f64()).unwrap(),
        2 => Technique::stacked_cache(rng.gen_range(1..3u32)).unwrap(),
        3 => Technique::unused_data_filter(0.9 * rng.gen_f64()).unwrap(),
        4 => Technique::smaller_cores(0.01 + 0.99 * rng.gen_f64()).unwrap(),
        5 => Technique::link_compression(1.0 + 3.0 * rng.gen_f64()).unwrap(),
        6 => Technique::sectored_cache(0.9 * rng.gen_f64()).unwrap(),
        7 => Technique::small_cache_lines(0.9 * rng.gen_f64()).unwrap(),
        _ => Technique::cache_link_compression(1.0 + 3.0 * rng.gen_f64()).unwrap(),
    }
}

/// Traffic strictly increases with core count on a fixed die.
#[test]
fn traffic_monotone_in_cores() {
    let mut rng = Rng::seed_from_u64(301);
    for _ in 0..CASES {
        let alpha = any_alpha(&mut rng);
        let n2 = 20.0 + 480.0 * rng.gen_f64();
        let model = TrafficModel::new(Baseline::niagara2_like().with_alpha(alpha));
        let mut last = 0.0;
        let max = (n2 - 1.0) as u64;
        for p in (1..max).step_by((max as usize / 16).max(1)) {
            let t = model.relative_traffic_on_die(n2, p as f64).unwrap();
            assert!(t > last, "traffic not increasing at {p}");
            last = t;
        }
    }
}

/// Traffic strictly decreases as cache per core grows.
#[test]
fn traffic_monotone_in_cache() {
    let mut rng = Rng::seed_from_u64(302);
    for _ in 0..CASES {
        let alpha = any_alpha(&mut rng);
        let cores = 1.0 + 99.0 * rng.gen_f64();
        let model = TrafficModel::new(Baseline::niagara2_like().with_alpha(alpha));
        let mut last = f64::MAX;
        for s in [0.25, 0.5, 1.0, 2.0, 4.0, 8.0] {
            let t = model.relative_traffic(cores, s).unwrap();
            assert!(t < last);
            last = t;
        }
    }
}

/// The baseline configuration always has relative traffic exactly 1.
#[test]
fn baseline_traffic_is_unity() {
    let mut rng = Rng::seed_from_u64(303);
    for _ in 0..CASES {
        let b = Baseline::niagara2_like().with_alpha(any_alpha(&mut rng));
        let model = TrafficModel::new(b);
        let t = model
            .relative_traffic(b.cores(), b.cache_per_core())
            .unwrap();
        assert!((t - 1.0).abs() < 1e-12);
    }
}

/// Supportable cores never decrease when the die budget doubles.
#[test]
fn cores_monotone_in_die_budget() {
    let mut rng = Rng::seed_from_u64(304);
    for _ in 0..CASES {
        let b = Baseline::niagara2_like().with_alpha(any_alpha(&mut rng));
        let t = any_technique(&mut rng);
        let mut last = 0;
        for g in 1..=4 {
            let n2 = 16.0 * 2f64.powi(g);
            let cores = ScalingProblem::new(b, n2)
                .with_technique(t)
                .max_supportable_cores()
                .unwrap();
            assert!(cores >= last, "{t}: {cores} < {last} at {n2} CEAs");
            last = cores;
        }
    }
}

/// Adding any technique never reduces the supportable core count.
#[test]
fn techniques_never_hurt() {
    let mut rng = Rng::seed_from_u64(305);
    for _ in 0..CASES {
        let b = Baseline::niagara2_like().with_alpha(any_alpha(&mut rng));
        let t = any_technique(&mut rng);
        let without = ScalingProblem::new(b, 64.0)
            .max_supportable_cores()
            .unwrap();
        let with = ScalingProblem::new(b, 64.0)
            .with_technique(t)
            .max_supportable_cores()
            .unwrap();
        assert!(with >= without, "{t} reduced cores: {with} < {without}");
    }
}

/// A larger bandwidth envelope never supports fewer cores.
#[test]
fn cores_monotone_in_envelope() {
    let mut rng = Rng::seed_from_u64(306);
    for _ in 0..CASES {
        let growth = 1.0 + 7.0 * rng.gen_f64();
        let base = ScalingProblem::new(Baseline::niagara2_like(), 64.0)
            .max_supportable_cores()
            .unwrap();
        let grown = ScalingProblem::new(Baseline::niagara2_like(), 64.0)
            .with_bandwidth_growth(growth)
            .max_supportable_cores()
            .unwrap();
        assert!(grown >= base);
    }
}

/// Any technique from the extended catalogue, at a random assumption
/// band — this covers the registered extensions alongside the paper's
/// nine rows, so every property below holds for future registry
/// additions by construction.
fn any_catalogue_technique(rng: &mut Rng) -> Technique {
    let profiles = extended_catalog();
    let profile = &profiles[rng.gen_range(0..profiles.len() as u32) as usize];
    let level = match rng.gen_range(0..3u32) {
        0 => AssumptionLevel::Pessimistic,
        1 => AssumptionLevel::Realistic,
        _ => AssumptionLevel::Optimistic,
    };
    profile
        .technique(level)
        .expect("catalogue bands instantiate")
}

/// `combine` over the extended catalogue is invariant under any
/// permutation of the technique set: the scalar effects agree to
/// relative rounding error and the stacked layers form the same
/// multiset.
#[test]
fn extended_catalogue_combine_is_order_invariant() {
    let mut rng = Rng::seed_from_u64(311);
    for _ in 0..CASES {
        let count = 2 + rng.gen_range(0..5u32) as usize;
        let set: Vec<Technique> = (0..count)
            .map(|_| any_catalogue_technique(&mut rng))
            .collect();
        let reference = combine(&set);
        let mut shuffled = set.clone();
        for _ in 0..3 {
            for i in (1..shuffled.len()).rev() {
                let j = rng.gen_range(0..(i as u32 + 1)) as usize;
                shuffled.swap(i, j);
            }
            let permuted = combine(&shuffled);
            let close = |a: f64, b: f64| (a - b).abs() <= 1e-9 * a.abs().max(1.0);
            assert!(
                close(reference.capacity_factor(), permuted.capacity_factor()),
                "capacity_factor diverged under permutation: {set:?}"
            );
            assert!(
                close(reference.traffic_divisor(), permuted.traffic_divisor()),
                "traffic_divisor diverged under permutation: {set:?}"
            );
            assert!(
                close(reference.cache_density(), permuted.cache_density()),
                "cache_density diverged under permutation: {set:?}"
            );
            assert!(
                close(
                    reference.core_size_fraction(),
                    permuted.core_size_fraction()
                ),
                "core_size_fraction diverged under permutation: {set:?}"
            );
            assert!(
                close(reference.uncore_per_core(), permuted.uncore_per_core()),
                "uncore_per_core diverged under permutation: {set:?}"
            );
            let densities = |effects: &bandwall_model::Effects| {
                let mut d: Vec<f64> = effects
                    .stacked_layers()
                    .iter()
                    .map(|layer| layer.density())
                    .collect();
                d.sort_by(f64::total_cmp);
                d
            };
            assert_eq!(
                densities(&reference),
                densities(&permuted),
                "stacked layers diverged under permutation: {set:?}"
            );
        }
    }
}

/// Applying any combination from the extended catalogue never increases
/// traffic and never drives it to zero or below: the with-techniques to
/// without-techniques traffic ratio stays in (0, 1].
#[test]
fn extended_catalogue_traffic_ratio_stays_in_unit_interval() {
    let mut rng = Rng::seed_from_u64(312);
    for _ in 0..CASES {
        let baseline = Baseline::niagara2_like().with_alpha(any_alpha(&mut rng));
        let count = 1 + rng.gen_range(0..4u32) as usize;
        let set: Vec<Technique> = (0..count)
            .map(|_| any_catalogue_technique(&mut rng))
            .collect();
        let cores = 2 + u64::from(rng.gen_range(0..30u32));
        let without = ScalingProblem::new(baseline, 64.0)
            .relative_traffic(cores)
            .unwrap();
        let with = ScalingProblem::new(baseline, 64.0)
            .with_techniques(set.clone())
            .relative_traffic(cores)
            .unwrap();
        let ratio = with / without;
        assert!(
            ratio > 0.0 && ratio <= 1.0 + 1e-9,
            "{set:?} at {cores} cores: traffic ratio {ratio} outside (0, 1]"
        );
    }
}

/// Technique-effect folding is order-independent.
#[test]
fn effects_commute() {
    let mut rng = Rng::seed_from_u64(307);
    for _ in 0..CASES {
        let a = any_technique(&mut rng);
        let b = any_technique(&mut rng);
        let c = any_technique(&mut rng);
        let fwd = combine(&[a, b, c]);
        let rev = combine(&[c, b, a]);
        assert!((fwd.capacity_factor() - rev.capacity_factor()).abs() < 1e-9);
        assert!((fwd.traffic_divisor() - rev.traffic_divisor()).abs() < 1e-9);
        assert!((fwd.cache_density() - rev.cache_density()).abs() < 1e-9);
        assert!((fwd.core_size_fraction() - rev.core_size_fraction()).abs() < 1e-9);
        assert_eq!(fwd.stacked_layers().len(), rev.stacked_layers().len());
    }
}

/// The supportable-core answer is the floor of the real crossover
/// (when the crossover is interior).
#[test]
fn integer_answer_matches_crossover() {
    let mut rng = Rng::seed_from_u64(308);
    for _ in 0..CASES {
        let b = Baseline::niagara2_like().with_alpha(any_alpha(&mut rng));
        let g = rng.gen_range(1..5u32);
        let n2 = 16.0 * 2f64.powi(g as i32);
        let p = ScalingProblem::new(b, n2);
        let integer = p.max_supportable_cores().unwrap();
        let crossover = p.crossover_cores().unwrap();
        assert!(
            integer == crossover.floor() as u64 || (crossover - integer as f64).abs() < 1e-6,
            "integer {integer} vs crossover {crossover}"
        );
    }
}

/// Relative traffic at the supportable count fits the envelope, and
/// exceeds it one core later.
#[test]
fn supportable_is_tight() {
    let mut rng = Rng::seed_from_u64(309);
    for _ in 0..CASES {
        let b = Baseline::niagara2_like().with_alpha(any_alpha(&mut rng));
        let t = any_technique(&mut rng);
        let p = ScalingProblem::new(b, 128.0).with_technique(t);
        let cores = p.max_supportable_cores().unwrap();
        assert!(p.relative_traffic(cores).unwrap() <= 1.0 + 1e-6);
        if let Ok(next) = p.relative_traffic(cores + 1) {
            assert!(next > 1.0 - 1e-9, "{t}: not tight at {cores}");
        }
    }
}

/// Larger alpha never supports fewer cores (cache helps more).
#[test]
fn cores_monotone_in_alpha() {
    let mut rng = Rng::seed_from_u64(310);
    for _ in 0..CASES {
        let lo = 0.1 + 0.5 * rng.gen_f64();
        let delta = 0.01 + 0.49 * rng.gen_f64();
        let cores_at = |a: f64| {
            ScalingProblem::new(
                Baseline::niagara2_like().with_alpha(Alpha::new(a).unwrap()),
                128.0,
            )
            .max_supportable_cores()
            .unwrap()
        };
        assert!(cores_at(lo + delta) >= cores_at(lo));
    }
}
