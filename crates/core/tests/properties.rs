//! Property-based tests of the analytical model's invariants.

use bandwall_model::techniques::combine;
use bandwall_model::{Alpha, Baseline, ScalingProblem, Technique, TrafficModel};
use proptest::prelude::*;

fn any_alpha() -> impl Strategy<Value = Alpha> {
    (0.1f64..1.2).prop_map(|a| Alpha::new(a).unwrap())
}

fn any_technique() -> impl Strategy<Value = Technique> {
    prop_oneof![
        (1.0f64..4.0).prop_map(|r| Technique::cache_compression(r).unwrap()),
        (1.0f64..16.0).prop_map(|d| Technique::dram_cache(d).unwrap()),
        (1u32..3).prop_map(|l| Technique::stacked_cache(l).unwrap()),
        (0.0f64..0.9).prop_map(|f| Technique::unused_data_filter(f).unwrap()),
        (0.01f64..1.0).prop_map(|f| Technique::smaller_cores(f).unwrap()),
        (1.0f64..4.0).prop_map(|r| Technique::link_compression(r).unwrap()),
        (0.0f64..0.9).prop_map(|f| Technique::sectored_cache(f).unwrap()),
        (0.0f64..0.9).prop_map(|f| Technique::small_cache_lines(f).unwrap()),
        (1.0f64..4.0).prop_map(|r| Technique::cache_link_compression(r).unwrap()),
    ]
}

proptest! {
    /// Traffic strictly increases with core count on a fixed die.
    #[test]
    fn traffic_monotone_in_cores(alpha in any_alpha(), n2 in 20.0f64..500.0) {
        let model = TrafficModel::new(Baseline::niagara2_like().with_alpha(alpha));
        let mut last = 0.0;
        let max = (n2 - 1.0) as u64;
        for p in (1..max).step_by((max as usize / 16).max(1)) {
            let t = model.relative_traffic_on_die(n2, p as f64).unwrap();
            prop_assert!(t > last, "traffic not increasing at {p}");
            last = t;
        }
    }

    /// Traffic strictly decreases as cache per core grows.
    #[test]
    fn traffic_monotone_in_cache(alpha in any_alpha(), cores in 1.0f64..100.0) {
        let model = TrafficModel::new(Baseline::niagara2_like().with_alpha(alpha));
        let mut last = f64::MAX;
        for s in [0.25, 0.5, 1.0, 2.0, 4.0, 8.0] {
            let t = model.relative_traffic(cores, s).unwrap();
            prop_assert!(t < last);
            last = t;
        }
    }

    /// The baseline configuration always has relative traffic exactly 1.
    #[test]
    fn baseline_traffic_is_unity(alpha in any_alpha()) {
        let b = Baseline::niagara2_like().with_alpha(alpha);
        let model = TrafficModel::new(b);
        let t = model.relative_traffic(b.cores(), b.cache_per_core()).unwrap();
        prop_assert!((t - 1.0).abs() < 1e-12);
    }

    /// Supportable cores never decrease when the die budget doubles.
    #[test]
    fn cores_monotone_in_die_budget(alpha in any_alpha(), t in any_technique()) {
        let b = Baseline::niagara2_like().with_alpha(alpha);
        let mut last = 0;
        for g in 1..=4 {
            let n2 = 16.0 * 2f64.powi(g);
            let cores = ScalingProblem::new(b, n2)
                .with_technique(t)
                .max_supportable_cores()
                .unwrap();
            prop_assert!(cores >= last, "{t}: {cores} < {last} at {n2} CEAs");
            last = cores;
        }
    }

    /// Adding any technique never reduces the supportable core count.
    #[test]
    fn techniques_never_hurt(alpha in any_alpha(), t in any_technique()) {
        let b = Baseline::niagara2_like().with_alpha(alpha);
        let without = ScalingProblem::new(b, 64.0).max_supportable_cores().unwrap();
        let with = ScalingProblem::new(b, 64.0)
            .with_technique(t)
            .max_supportable_cores()
            .unwrap();
        prop_assert!(with >= without, "{t} reduced cores: {with} < {without}");
    }

    /// A larger bandwidth envelope never supports fewer cores.
    #[test]
    fn cores_monotone_in_envelope(growth in 1.0f64..8.0) {
        let base = ScalingProblem::new(Baseline::niagara2_like(), 64.0)
            .max_supportable_cores()
            .unwrap();
        let grown = ScalingProblem::new(Baseline::niagara2_like(), 64.0)
            .with_bandwidth_growth(growth)
            .max_supportable_cores()
            .unwrap();
        prop_assert!(grown >= base);
    }

    /// Technique-effect folding is order-independent.
    #[test]
    fn effects_commute(
        a in any_technique(),
        b in any_technique(),
        c in any_technique(),
    ) {
        let fwd = combine(&[a, b, c]);
        let rev = combine(&[c, b, a]);
        prop_assert!((fwd.capacity_factor() - rev.capacity_factor()).abs() < 1e-9);
        prop_assert!((fwd.traffic_divisor() - rev.traffic_divisor()).abs() < 1e-9);
        prop_assert!((fwd.cache_density() - rev.cache_density()).abs() < 1e-9);
        prop_assert!((fwd.core_size_fraction() - rev.core_size_fraction()).abs() < 1e-9);
        prop_assert_eq!(fwd.stacked_layers().len(), rev.stacked_layers().len());
    }

    /// The supportable-core answer is the floor of the real crossover
    /// (when the crossover is interior).
    #[test]
    fn integer_answer_matches_crossover(alpha in any_alpha(), g in 1u32..5) {
        let b = Baseline::niagara2_like().with_alpha(alpha);
        let n2 = 16.0 * 2f64.powi(g as i32);
        let p = ScalingProblem::new(b, n2);
        let integer = p.max_supportable_cores().unwrap();
        let crossover = p.crossover_cores().unwrap();
        prop_assert!(
            integer == crossover.floor() as u64 || (crossover - integer as f64).abs() < 1e-6,
            "integer {integer} vs crossover {crossover}"
        );
    }

    /// Relative traffic at the supportable count fits the envelope, and
    /// exceeds it one core later.
    #[test]
    fn supportable_is_tight(alpha in any_alpha(), t in any_technique()) {
        let b = Baseline::niagara2_like().with_alpha(alpha);
        let p = ScalingProblem::new(b, 128.0).with_technique(t);
        let cores = p.max_supportable_cores().unwrap();
        prop_assert!(p.relative_traffic(cores).unwrap() <= 1.0 + 1e-6);
        if let Ok(next) = p.relative_traffic(cores + 1) {
            prop_assert!(next > 1.0 - 1e-9, "{t}: not tight at {cores}");
        }
    }

    /// Larger alpha never supports fewer cores (cache helps more).
    #[test]
    fn cores_monotone_in_alpha(lo in 0.1f64..0.6, delta in 0.01f64..0.5) {
        let cores_at = |a: f64| {
            ScalingProblem::new(
                Baseline::niagara2_like().with_alpha(Alpha::new(a).unwrap()),
                128.0,
            )
            .max_supportable_cores()
            .unwrap()
        };
        prop_assert!(cores_at(lo + delta) >= cores_at(lo));
    }
}
