//! Binary-level tests for `bandwall bench` and for the `--seed`/`--jobs`
//! determinism contract of `bandwall run`.

use std::process::Command;

fn bandwall(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_bandwall"))
        .args(args)
        .output()
        .expect("bandwall runs")
}

#[test]
fn bench_list_names_every_group() {
    let out = bandwall(&["bench", "--list"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    let groups: Vec<&str> = stdout.lines().collect();
    assert_eq!(groups, ["sim_engine", "compress", "experiments", "serve"]);
}

#[test]
fn bench_rejects_unknown_group_and_bad_flags() {
    let out = bandwall(&["bench", "no_such_group"]);
    assert!(!out.status.success());
    assert!(String::from_utf8(out.stderr)
        .unwrap()
        .contains("unknown bench group"));

    let out = bandwall(&["bench", "--iters", "0"]);
    assert!(!out.status.success());
}

#[test]
fn bench_json_and_snapshot_match_the_schema() {
    let dir = std::env::temp_dir().join("bandwall_bench_cli_test");
    let _ = std::fs::remove_dir_all(&dir);
    let out = bandwall(&[
        "bench",
        "sim_engine",
        "--warmup",
        "0",
        "--iters",
        "2",
        "--accesses",
        "3000",
        "--format",
        "json",
        "--snapshot",
        dir.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Stdout: one JSON array holding the group report.
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.starts_with("[{\"id\":\"bench_sim_engine\""));
    assert!(stdout.trim_end().ends_with("]"));
    assert_eq!(stdout.matches('{').count(), stdout.matches('}').count());

    // Snapshot: the machine-readable bandwall-bench/3 document.
    let snap = std::fs::read_to_string(dir.join("BENCH_sim_engine.json")).unwrap();
    for key in [
        "\"schema\":\"bandwall-bench/3\"",
        "\"group\":\"sim_engine\"",
        "\"warmup\":0",
        "\"iters\":2",
        "\"accesses\":3000",
        "\"host_parallelism\":",
        "\"results\":[",
        "\"id\":\"fig14_sim_seq\"",
        "\"id\":\"fig14_sim_par4\"",
        "\"median_ns\":",
        "\"p10_ns\":",
        "\"p90_ns\":",
        "\"p99_ns\":",
        "\"items_per_sec\":",
        "\"speedup_vs_sequential\":",
    ] {
        assert!(snap.contains(key), "snapshot missing {key}: {snap}");
    }
    assert_eq!(snap.matches('{').count(), snap.matches('}').count());
    assert_eq!(snap.matches('[').count(), snap.matches(']').count());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn run_output_is_independent_of_jobs() {
    // The determinism contract: with a fixed --seed, the emitted reports
    // are byte-identical whatever --jobs is. Seeds are derived at
    // registry construction (before any threading) and reports are
    // emitted in registry order, so scheduling cannot leak into output.
    let subset = [
        "coherence_study",
        "validate_writeback",
        "fig14_parsec_sharing",
    ];
    let run = |jobs: &str| {
        let mut args = vec!["run"];
        args.extend(subset);
        args.extend(["--seed", "7", "--jobs", jobs, "--format", "json"]);
        let out = bandwall(&args);
        assert!(out.status.success(), "jobs {jobs}");
        String::from_utf8(out.stdout).unwrap()
    };
    let serial = run("1");
    let parallel = run("8");
    assert_eq!(serial, parallel, "--jobs must never change the output");
    // All three reports present, in registry order.
    for id in subset {
        assert!(serial.contains(&format!("\"id\":\"{id}\"")), "{id} missing");
    }
}
