//! Golden-report tests: the registry's headline numbers must keep
//! matching the paper's anchors, and report rendering must stay
//! deterministic.

use bandwall_experiments::registry::{find, registry, registry_with_seed};

fn metric(id: &str, name: &str) -> (f64, Option<f64>) {
    let report = find(id)
        .unwrap_or_else(|| panic!("{id} not registered"))
        .run()
        .expect("golden experiment succeeds");
    let m = report
        .get_metric(name)
        .unwrap_or_else(|| panic!("{id} has no metric {name}"));
    (m.model, m.paper)
}

#[test]
fn fig02_supports_eleven_cores_at_2x() {
    let (model, paper) = metric("fig02_traffic_vs_cores", "supportable_cores");
    assert_eq!(model, 11.0);
    assert_eq!(paper, Some(11.0));
}

#[test]
fn fig02_bandwidth_growth_supports_thirteen_cores() {
    let (model, paper) = metric("fig02_traffic_vs_cores", "supportable_cores_b1_5");
    assert_eq!(model, 13.0);
    assert_eq!(paper, Some(13.0));
}

#[test]
fn fig03_supports_twenty_four_cores_at_16x() {
    let (model, paper) = metric("fig03_die_allocation", "supportable_cores_16x");
    assert_eq!(model, 24.0);
    assert_eq!(paper, Some(24.0));
}

#[test]
fn fig15_dram_cache_supports_forty_seven_cores_at_16x() {
    let (model, paper) = metric("fig15_technique_sweep", "dram_realistic_16x");
    assert_eq!(model, 47.0);
    assert_eq!(paper, Some(47.0));
}

#[test]
fn fig16_full_combination_supports_183_cores_at_16x() {
    let (model, paper) = metric("fig16_combinations", "full_combination_16x");
    assert_eq!(model, 183.0);
    assert_eq!(paper, Some(183.0));
    let (area, paper_area) = metric("fig16_combinations", "full_combination_area_fraction");
    assert!((area - 0.71).abs() < 0.05, "area fraction {area}");
    assert_eq!(paper_area, Some(0.71));
}

#[test]
fn fig13_required_sharing_matches_paper() {
    for (cores, expected) in [(16, 0.40), (32, 0.63), (64, 0.77), (128, 0.86)] {
        let (model, paper) = metric("fig13_data_sharing", &format!("required_fsh_{cores}"));
        assert!(
            (model - expected).abs() < 0.015,
            "fsh for {cores} cores: {model} vs {expected}"
        );
        assert_eq!(paper, Some(expected));
    }
}

#[test]
fn combo_sim_composition_agrees_with_model_algebra() {
    use bandwall_experiments::experiments::combo_sim::TOLERANCE;
    let (measured, predicted) = metric("combo_sim", "traffic_ratio_combined");
    let predicted = predicted.expect("model prediction recorded as the paper value");
    assert!(measured > 1.0, "composition must save traffic: {measured}");
    assert!(
        (measured - predicted).abs() / predicted < TOLERANCE,
        "combined ratio {measured:.3} vs model product {predicted:.3}"
    );
}

#[test]
fn analytic_reports_are_byte_stable_across_runs() {
    // Two fresh registry instances must render identical JSON for the
    // deterministic (analytic and fixed-seed simulator) experiments.
    for id in [
        "fig02_traffic_vs_cores",
        "fig03_die_allocation",
        "fig15_technique_sweep",
        "fig16_combinations",
        "table2_summary",
        "mixed_workloads",
    ] {
        let a = find(id).unwrap().run().expect("golden experiment succeeds");
        let b = find(id).unwrap().run().expect("golden experiment succeeds");
        assert_eq!(a.to_json(), b.to_json(), "{id} JSON not byte-stable");
        assert_eq!(a.to_ascii(), b.to_ascii(), "{id} ASCII not byte-stable");
        assert_eq!(a.to_csv(), b.to_csv(), "{id} CSV not byte-stable");
    }
}

#[test]
fn every_report_has_id_matching_registry_and_renders() {
    // Cheap structural sweep over the analytic experiments (skip the
    // long simulator-backed ones to keep debug-mode tests quick).
    let analytic = [
        "fig02_traffic_vs_cores",
        "fig03_die_allocation",
        "fig04_cache_compression",
        "fig05_dram_cache",
        "fig06_3d_cache",
        "fig07_filtering",
        "fig08_smaller_cores",
        "fig09_link_compression",
        "fig10_sectored",
        "fig11_small_lines",
        "fig12_cache_link",
        "fig13_data_sharing",
        "fig15_technique_sweep",
        "fig16_combinations",
        "fig17_alpha_sensitivity",
        "table2_summary",
        "roadmap_scenarios",
        "mixed_workloads",
    ];
    for id in analytic {
        let report = find(id).unwrap().run().expect("golden experiment succeeds");
        assert_eq!(report.id, id);
        let json = report.to_json();
        assert!(json.starts_with(&format!("{{\"id\":\"{id}\"")));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(report.to_ascii().contains(&report.figure));
        assert!(report.to_csv().starts_with(&format!("experiment,{id}\n")));
    }
}

#[test]
fn all_registry_reports_are_byte_stable_and_well_formed() {
    // Full-coverage stability sweep: every one of the 32 registry
    // experiments — simulator-backed ones included — must succeed and
    // render byte-identical JSON across two fresh registry instances.
    // This is the blanket determinism guarantee the narrower golden
    // tests anchor with specific values.
    let first = registry();
    let second = registry();
    assert_eq!(first.len(), second.len());
    for (a, b) in first.iter().zip(&second) {
        let id = a.id();
        let ra = a.run().unwrap_or_else(|e| panic!("{id} failed: {e}"));
        let rb = b.run().unwrap_or_else(|e| panic!("{id} failed: {e}"));
        let json = ra.to_json();
        assert_eq!(json, rb.to_json(), "{id} JSON not byte-stable");
        assert!(json.starts_with(&format!("{{\"id\":\"{id}\"")), "{id}");
        assert_eq!(json.matches('{').count(), json.matches('}').count(), "{id}");
        assert_eq!(json.matches('[').count(), json.matches(']').count(), "{id}");
        assert!(!ra.is_failure(), "{id}");
    }
}

#[test]
fn committed_golden_baselines_match_current_reports_byte_for_byte() {
    // Every committed baseline under tests/golden/ must match a fresh
    // run byte-for-byte, and every registry experiment must have one.
    // This pins the 30 historical reports against regressions while the
    // registry grows, and forces new experiments to commit a baseline.
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    let mut baselines: Vec<String> = std::fs::read_dir(&dir)
        .expect("tests/golden exists")
        .map(|entry| entry.unwrap().path())
        .filter(|path| path.extension().and_then(|e| e.to_str()) == Some("json"))
        .map(|path| path.file_stem().unwrap().to_str().unwrap().to_owned())
        .collect();
    baselines.sort();
    let mut registered: Vec<String> = registry().iter().map(|e| e.id().to_owned()).collect();
    registered.sort();
    assert_eq!(
        baselines, registered,
        "tests/golden/ must hold exactly one baseline per registry experiment"
    );
    for id in &baselines {
        let committed = std::fs::read_to_string(dir.join(format!("{id}.json"))).unwrap();
        let report = find(id).unwrap().run().expect("golden experiment succeeds");
        assert_eq!(
            report.to_json(),
            committed,
            "{id} drifted from its committed baseline; regenerate with \
             `bandwall run {id} --format json --out crates/bench/tests/golden` \
             only if the change is intended"
        );
    }
}

#[test]
fn seeded_registry_changes_simulator_seeds_only() {
    // With an explicit seed the analytic experiments are unchanged,
    // while seeded experiments still run and produce the same shape.
    let default_reg = registry();
    let seeded = registry_with_seed(Some(12345));
    assert_eq!(default_reg.len(), seeded.len());
    let a = seeded
        .iter()
        .find(|e| e.id() == "fig02_traffic_vs_cores")
        .unwrap()
        .run()
        .expect("golden experiment succeeds");
    let b = default_reg
        .iter()
        .find(|e| e.id() == "fig02_traffic_vs_cores")
        .unwrap()
        .run()
        .expect("golden experiment succeeds");
    assert_eq!(a.to_json(), b.to_json());
}
