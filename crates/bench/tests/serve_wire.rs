//! Wire-level integration tests for `bandwall serve`: real TCP sockets
//! against an in-process [`Server`], covering the failure modes the
//! service promises to survive — malformed requests, oversized bodies,
//! slow clients, mid-request disconnects, queue saturation, deadline
//! overruns, and graceful drain.

use bandwall_experiments::fault::ChaosSpec;
use bandwall_experiments::serve::loadgen::Client;
use bandwall_experiments::serve::{ServeConfig, Server};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// A config bound to an ephemeral port with CI-friendly timeouts.
fn test_config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        shards: 1,
        queue_capacity: 8,
        deadline: Duration::from_secs(2),
        read_timeout: Duration::from_millis(400),
        cache_capacity: 1024,
        chaos: None,
    }
}

fn start(config: ServeConfig) -> (Server, SocketAddr) {
    let server = Server::start(config).expect("server starts");
    let addr = server.addr();
    (server, addr)
}

fn stop(server: Server) -> bandwall_experiments::serve::StatsSnapshot {
    server.shutdown_handle().shutdown();
    server.join()
}

/// Sends raw bytes and returns everything the server replies before
/// closing (or `None` if the server just hangs up).
fn raw_roundtrip(addr: &SocketAddr, bytes: &[u8]) -> Option<String> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream.write_all(bytes).expect("send");
    let mut reply = Vec::new();
    let _ = stream.read_to_end(&mut reply);
    if reply.is_empty() {
        None
    } else {
        Some(String::from_utf8(reply).expect("UTF-8 reply"))
    }
}

#[test]
fn health_and_readiness_probes_answer() {
    let (server, addr) = start(test_config());
    let mut client = Client::connect(&addr).unwrap();
    let health = client.request("GET", "/healthz", None).unwrap();
    assert_eq!(health.status, 200);
    assert_eq!(health.body, "{\"status\":\"ok\"}");
    let ready = client.request("GET", "/readyz", None).unwrap();
    assert_eq!(ready.status, 200);
    drop(client);
    stop(server);
}

#[test]
fn malformed_json_gets_invalid_request() {
    let (server, addr) = start(test_config());
    let mut client = Client::connect(&addr).unwrap();
    for body in ["{", "[]", "{\"total_ceas\":\"many\"}", "{\"bogus\":1}"] {
        let response = client.request("POST", "/solve", Some(body)).unwrap();
        assert_eq!(response.status, 400, "body {body:?}: {}", response.body);
        assert!(
            response.body.contains("\"kind\":\"invalid_request\""),
            "body {body:?}: {}",
            response.body
        );
    }
    // The connection survives invalid requests (keep-alive).
    let ok = client.request("GET", "/healthz", None).unwrap();
    assert_eq!(ok.status, 200);
    drop(client);
    stop(server);
}

#[test]
fn malformed_head_gets_invalid_request() {
    let (server, addr) = start(test_config());
    let reply = raw_roundtrip(&addr, b"NOT-HTTP nonsense\r\n\r\n").expect("a reply");
    assert!(reply.starts_with("HTTP/1.1 400"), "{reply}");
    assert!(reply.contains("\"kind\":\"invalid_request\""), "{reply}");
    stop(server);
}

#[test]
fn oversized_body_is_rejected_not_read() {
    let (server, addr) = start(test_config());
    // Declare 10 MiB; the server must refuse from the header alone.
    let head = "POST /solve HTTP/1.1\r\ncontent-length: 10485760\r\n\r\n";
    let reply = raw_roundtrip(&addr, head.as_bytes()).expect("a reply");
    assert!(reply.starts_with("HTTP/1.1 413"), "{reply}");
    assert!(reply.contains("\"kind\":\"invalid_request\""), "{reply}");
    stop(server);
}

#[test]
fn oversized_head_is_rejected() {
    let (server, addr) = start(test_config());
    let mut request = b"GET /healthz HTTP/1.1\r\nx-padding: ".to_vec();
    request.extend(std::iter::repeat_n(b'a', 16 * 1024));
    request.extend(b"\r\n\r\n");
    let reply = raw_roundtrip(&addr, &request).expect("a reply");
    assert!(reply.starts_with("HTTP/1.1 413"), "{reply}");
    stop(server);
}

#[test]
fn slow_loris_is_timed_out() {
    let (server, addr) = start(test_config());
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    // Send half a request head, then stall past the read timeout.
    stream.write_all(b"GET /healthz HT").expect("send");
    let started = Instant::now();
    let mut reply = Vec::new();
    let _ = stream.read_to_end(&mut reply);
    let reply = String::from_utf8(reply).unwrap();
    assert!(reply.starts_with("HTTP/1.1 408"), "{reply}");
    assert!(
        started.elapsed() < Duration::from_secs(4),
        "timeout should fire near the 400ms read window, took {:?}",
        started.elapsed()
    );
    stop(server);
}

#[test]
fn mid_request_disconnect_is_survived() {
    let (server, addr) = start(test_config());
    {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(b"POST /solve HTTP/1.1\r\ncontent-length: 500\r\n\r\n{\"tot")
            .expect("send");
        // Drop mid-body: the worker sees EOF and must move on.
    }
    // The server still serves the next client promptly.
    let mut client = Client::connect(&addr).unwrap();
    let ok = client.request("GET", "/healthz", None).unwrap();
    assert_eq!(ok.status, 200);
    drop(client);
    stop(server);
}

#[test]
fn concurrent_clients_all_get_correct_answers() {
    let (server, addr) = start(ServeConfig {
        workers: 4,
        queue_capacity: 64,
        ..test_config()
    });
    let threads: Vec<_> = (0..8)
        .map(|i| {
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).unwrap();
                for j in 0..25 {
                    let body = format!("{{\"total_ceas\":{}}}", 32 + (i * 25 + j) % 7);
                    let response = client.request("POST", "/solve", Some(&body)).unwrap();
                    assert_eq!(response.status, 200, "{}", response.body);
                    assert!(response.body.contains("\"supportable_cores\""));
                }
            })
        })
        .collect();
    for thread in threads {
        thread.join().expect("client thread");
    }
    let stats = stop(server);
    assert_eq!(stats.served_ok, 200);
    assert_eq!(stats.internal, 0);
    assert_eq!(stats.worker_respawns, 0, "no chaos, no respawns");
}

#[test]
fn saturated_queue_sheds_immediately_with_overloaded() {
    // One worker stuck behind injected 300ms delays on every request and
    // a queue of 1: further connections must be shed at accept time.
    let (server, addr) = start(ServeConfig {
        workers: 1,
        queue_capacity: 1,
        deadline: Duration::from_secs(10),
        chaos: Some(ChaosSpec::parse("panic=0,worker=0,delay=1:300").unwrap()),
        ..test_config()
    });
    // Keep the worker and the queue saturated with slow solves for the
    // whole probe window: each busy client loops connect → slow solve →
    // drop, tolerating its own shed replies, so there is no moment when
    // the backlog drains out from under the probe.
    let busy_until = Instant::now() + Duration::from_secs(3);
    let busy: Vec<_> = (0..6)
        .map(|i| {
            std::thread::spawn(move || {
                while Instant::now() < busy_until {
                    let Ok(mut client) = Client::connect(&addr) else {
                        continue;
                    };
                    let body = format!("{{\"total_ceas\":{}}}", 40 + i);
                    let _ = client.request("POST", "/solve", Some(&body));
                }
            })
        })
        .collect();
    // While the backlog exists (one 300ms solve at a time, several
    // waiting), probing must observe a shed. An individual probe can
    // race a momentarily free queue slot under scheduling noise, so
    // probe repeatedly; each probe that IS shed must come back with the
    // structured `overloaded` envelope, never a silent close or a hang.
    let probing_started = Instant::now();
    let mut saw_shed = false;
    while probing_started.elapsed() < Duration::from_millis(2_500) {
        let started = Instant::now();
        let reply = raw_roundtrip(&addr, b"GET /healthz HTTP/1.1\r\nconnection: close\r\n\r\n")
            .expect("a reply, never a silent close");
        assert!(
            started.elapsed() < Duration::from_secs(3),
            "probe hung for {:?}",
            started.elapsed()
        );
        if reply.starts_with("HTTP/1.1 503") {
            assert!(reply.contains("\"kind\":\"overloaded\""), "{reply}");
            saw_shed = true;
            break;
        }
        // Admitted and answered: the queue momentarily had room.
        assert!(reply.starts_with("HTTP/1.1 200"), "{reply}");
    }
    assert!(saw_shed, "a saturated queue never shed a connection");
    for thread in busy {
        let _ = thread.join();
    }
    let stats = stop(server);
    assert!(stats.shed >= 1, "at least one connection shed: {stats:?}");
}

#[test]
fn deadline_overrun_gets_504() {
    // Injected 300ms delay on every request with a 50ms deadline: every
    // solve must come back as deadline_exceeded, not hang.
    let (server, addr) = start(ServeConfig {
        workers: 1,
        deadline: Duration::from_millis(50),
        chaos: Some(ChaosSpec::parse("panic=0,worker=0,delay=1:300").unwrap()),
        ..test_config()
    });
    let mut client = Client::connect(&addr).unwrap();
    let response = client
        .request("POST", "/solve", Some("{\"total_ceas\":32}"))
        .unwrap();
    assert_eq!(response.status, 504, "{}", response.body);
    assert!(
        response.body.contains("\"kind\":\"deadline_exceeded\""),
        "{}",
        response.body
    );
    drop(client);
    let stats = stop(server);
    assert!(stats.deadline_exceeded >= 1);
}

#[test]
fn memoized_replies_are_byte_identical() {
    let (server, addr) = start(test_config());
    let mut client = Client::connect(&addr).unwrap();
    let body = "{\"total_ceas\":256,\"techniques\":[{\"kind\":\"dram_cache\",\"density\":8}]}";
    let cold = client.request("POST", "/solve", Some(body)).unwrap();
    assert_eq!(cold.status, 200);
    assert_eq!(cold.cache.as_deref(), Some("miss"));
    for _ in 0..5 {
        let warm = client.request("POST", "/solve", Some(body)).unwrap();
        assert_eq!(warm.status, 200);
        assert_eq!(warm.cache.as_deref(), Some("hit"));
        assert_eq!(warm.body, cold.body, "memoized reply drifted");
    }
    // A semantically-identical but textually-different request hits too:
    // the cache key is the canonical problem, not the request bytes.
    let reordered = "{\"techniques\":[{\"density\":8,\"kind\":\"dram_cache\"}],\"total_ceas\":256}";
    let warm = client.request("POST", "/solve", Some(reordered)).unwrap();
    assert_eq!(warm.cache.as_deref(), Some("hit"));
    assert_eq!(warm.body, cold.body);
    drop(client);
    let stats = stop(server);
    assert_eq!(stats.cache_misses, 1);
    assert!(stats.cache_hits >= 6);
}

#[test]
fn graceful_drain_finishes_in_flight_work_and_closes_the_port() {
    let (server, addr) = start(ServeConfig {
        workers: 2,
        // Slow every request a bit so shutdown provably races in-flight
        // work and loses.
        chaos: Some(ChaosSpec::parse("panic=0,worker=0,delay=1:150").unwrap()),
        deadline: Duration::from_secs(10),
        ..test_config()
    });
    let in_flight: Vec<_> = (0..2)
        .map(|i| {
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).unwrap();
                let body = format!("{{\"total_ceas\":{}}}", 60 + i);
                client.request("POST", "/solve", Some(&body)).unwrap()
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(50));
    let handle = server.shutdown_handle();
    handle.shutdown();
    // In-flight requests complete with real answers, not resets.
    for thread in in_flight {
        let response = thread.join().expect("in-flight client");
        assert_eq!(response.status, 200, "{}", response.body);
    }
    let stats = server.join();
    assert_eq!(stats.served_ok, 2);
    // After join the port is closed: connecting must fail.
    assert!(
        TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err(),
        "port should be closed after drain"
    );
}

#[test]
fn unknown_endpoint_and_wrong_method_are_structured_errors() {
    let (server, addr) = start(test_config());
    let mut client = Client::connect(&addr).unwrap();
    let missing = client.request("GET", "/nope", None).unwrap();
    assert_eq!(missing.status, 404);
    assert!(missing.body.contains("\"kind\":\"not_found\""));
    let wrong = client.request("GET", "/solve", None).unwrap();
    assert_eq!(wrong.status, 405);
    assert!(wrong.body.contains("\"kind\":\"invalid_request\""));
    drop(client);
    stop(server);
}

#[test]
fn versioned_solve_alias_is_byte_identical_to_legacy() {
    let (server, addr) = start(test_config());
    let mut client = Client::connect(&addr).unwrap();
    let body = r#"{"total_ceas":256,"techniques":[{"kind":"dram_cache","density":8}]}"#;
    let legacy = client.request("POST", "/solve", Some(body)).unwrap();
    let versioned = client.request("POST", "/v1/solve", Some(body)).unwrap();
    assert_eq!(legacy.status, 200);
    assert_eq!(versioned.status, 200);
    assert_eq!(
        legacy.body, versioned.body,
        "alias and versioned replies must not drift"
    );
    // Same parser, same renderer, same memo entry: the alias warmed the
    // cache for the versioned path.
    assert_eq!(legacy.cache.as_deref(), Some("miss"));
    assert_eq!(versioned.cache.as_deref(), Some("hit"));
    drop(client);
    stop(server);
}

#[test]
fn named_sweeps_match_the_registry_tables() {
    use bandwall_experiments::sweep::{named_sweep, sweep_block};
    let (server, addr) = start(test_config());
    let mut client = Client::connect(&addr).unwrap();
    // The acceptance bar: at least two catalogue sweeps must return the
    // same core counts over the wire as the registry figures compute.
    for name in ["fig04_cache_compression", "fig05_dram_cache"] {
        let variants = named_sweep(name).expect("catalogue sweep resolves");
        let (_, expected_cores) = sweep_block(&variants).expect("registry sweep solves");
        let response = client
            .request(
                "POST",
                "/v1/sweep",
                Some(&format!("{{\"sweep\":\"{name}\"}}")),
            )
            .unwrap();
        assert_eq!(response.status, 200, "{name}: {}", response.body);
        let wire_cores: Vec<u64> = response
            .body
            .split("\"supportable_cores\":")
            .skip(1)
            .map(|rest| {
                rest.split(',')
                    .next()
                    .and_then(|n| n.parse().ok())
                    .expect("integer core count")
            })
            .collect();
        assert_eq!(
            wire_cores, expected_cores,
            "{name}: wire sweep drifted from the registry table"
        );
        for variant in &variants {
            assert!(
                response
                    .body
                    .contains(&format!("\"label\":\"{}\"", variant.label)),
                "{name}: row label '{}' missing from {}",
                variant.label,
                response.body
            );
        }
    }
    drop(client);
    stop(server);
}

#[test]
fn memoized_sweeps_are_byte_identical_and_hit_after_warmup() {
    let (server, addr) = start(test_config());
    let mut client = Client::connect(&addr).unwrap();
    let body = r#"{"sweep":"fig06_3d_cache"}"#;
    let first = client.request("POST", "/v1/sweep", Some(body)).unwrap();
    assert_eq!(first.status, 200);
    assert_eq!(first.cache.as_deref(), Some("miss"));
    let second = client.request("POST", "/v1/sweep", Some(body)).unwrap();
    assert_eq!(second.status, 200);
    assert_eq!(
        second.cache.as_deref(),
        Some("hit"),
        "every variant should hit after the warming sweep"
    );
    assert_eq!(first.body, second.body, "memoized sweep drifted");
    // A sweep variant's solve shares the memo entry with /v1/solve.
    let solve = client
        .request("POST", "/v1/solve", Some(r#"{"total_ceas":32}"#))
        .unwrap();
    assert_eq!(solve.status, 200);
    assert_eq!(
        solve.cache.as_deref(),
        Some("hit"),
        "the sweep's base variant should have warmed the solve cache"
    );
    drop(client);
    stop(server);
}

#[test]
fn oversized_sweeps_and_batches_get_413() {
    let (server, addr) = start(test_config());
    let mut client = Client::connect(&addr).unwrap();
    let variants: Vec<String> = (0..65).map(|i| format!("{{\"label\":\"v{i}\"}}")).collect();
    let sweep = format!("{{\"variants\":[{}]}}", variants.join(","));
    let response = client.request("POST", "/v1/sweep", Some(&sweep)).unwrap();
    assert_eq!(response.status, 413, "{}", response.body);
    assert!(response.body.contains("\"kind\":\"invalid_request\""));

    let jobs: Vec<&str> = (0..33)
        .map(|_| r#"{"kind":"sweep","sweep":"fig10_sectored"}"#)
        .collect();
    let batch = format!("{{\"jobs\":[{}]}}", jobs.join(","));
    let response = client.request("POST", "/v1/batch", Some(&batch)).unwrap();
    assert_eq!(response.status, 413, "{}", response.body);
    assert!(response.body.contains("\"kind\":\"invalid_request\""));
    // The connection survives the rejections.
    assert_eq!(client.request("GET", "/healthz", None).unwrap().status, 200);
    drop(client);
    stop(server);
}

#[test]
fn batch_partial_failure_keeps_every_slot_in_order() {
    use bandwall_experiments::serve::json::Json;
    let (server, addr) = start(test_config());
    let mut client = Client::connect(&addr).unwrap();
    let body = r#"{"jobs":[
        {"kind":"solve","problem":{"total_ceas":32}},
        {"kind":"warp_drive"},
        {"kind":"sweep","sweep":"fig04_cache_compression"},
        {"kind":"solve","problem":{"total_ceas":-1}}
    ]}"#;
    let response = client.request("POST", "/v1/batch", Some(body)).unwrap();
    assert_eq!(response.status, 200, "{}", response.body);
    let doc = Json::parse(&response.body).expect("well-formed batch reply");
    let results = doc
        .as_obj()
        .and_then(|o| o.get("result"))
        .and_then(Json::as_obj)
        .and_then(|o| o.get("results"))
        .and_then(Json::as_arr)
        .expect("results array");
    assert_eq!(results.len(), 4, "one slot per job, in request order");
    let statuses: Vec<&str> = results
        .iter()
        .map(|slot| {
            slot.as_obj()
                .and_then(|o| o.get("status"))
                .and_then(Json::as_str)
                .expect("slot status")
        })
        .collect();
    assert_eq!(statuses, ["ok", "error", "ok", "error"]);
    // The good solve carries a result; the bad kind names itself.
    assert!(response.body.contains("\"supportable_cores\":11"));
    assert!(response.body.contains("unknown job kind 'warp_drive'"));
    assert!(response.body.contains("model error"));
    drop(client);
    stop(server);
}

#[test]
fn techniques_endpoint_lists_the_catalogue() {
    let (server, addr) = start(test_config());
    let mut client = Client::connect(&addr).unwrap();
    let response = client.request("GET", "/v1/techniques", None).unwrap();
    assert_eq!(response.status, 200);
    for label in [
        "CC", "DRAM", "3D", "Fltr", "SmCo", "LC", "Sect", "SmCl", "CC/LC", "3D/T", "CXL",
    ] {
        assert!(
            response.body.contains(&format!("\"label\":\"{label}\"")),
            "missing {label} in {}",
            response.body
        );
    }
    assert!(response.body.contains("\"sweeps\":["));
    assert!(response.body.contains("fig12_cache_link"));
    // Registry extensions surface in both lists with no wire-layer edits.
    assert!(response.body.contains("\"id\":\"thermal_capped_3d\""));
    assert!(response.body.contains("\"id\":\"cxl_harvesting\""));
    // Wrong method on a versioned path is a structured 405.
    let post = client
        .request("POST", "/v1/techniques", Some("{}"))
        .unwrap();
    assert_eq!(post.status, 405);
    assert!(post.body.contains("\"kind\":\"invalid_request\""));
    drop(client);
    stop(server);
}

#[test]
fn every_advertised_technique_round_trips_through_a_custom_sweep() {
    use bandwall_experiments::serve::json::Json;
    use std::collections::BTreeMap;

    /// Re-serializes a flat technique spec ({"kind": "...", field: num})
    /// exactly as a client would echo it back.
    fn render_flat(obj: &BTreeMap<String, Json>) -> String {
        let fields: Vec<String> = obj
            .iter()
            .map(|(key, value)| {
                if let Some(text) = value.as_str() {
                    format!("\"{key}\":\"{text}\"")
                } else {
                    format!("\"{key}\":{}", value.as_num().expect("numeric field"))
                }
            })
            .collect();
        format!("{{{}}}", fields.join(","))
    }

    let (server, addr) = start(test_config());
    let mut client = Client::connect(&addr).unwrap();
    let listing = client.request("GET", "/v1/techniques", None).unwrap();
    assert_eq!(listing.status, 200);
    let doc = Json::parse(&listing.body).expect("well-formed listing");
    let techniques = doc
        .as_obj()
        .and_then(|o| o.get("result"))
        .and_then(Json::as_obj)
        .and_then(|o| o.get("techniques"))
        .and_then(Json::as_arr)
        .expect("techniques array");
    assert!(
        techniques.len() >= 11,
        "the extended catalogue is advertised: {}",
        listing.body
    );
    // Every advertised entry, at every assumption band, must be
    // acceptable as a custom /v1/sweep variant exactly as listed — the
    // listing and the validator are views of the same registry.
    for entry in techniques {
        let obj = entry.as_obj().expect("technique object");
        let id = obj.get("id").and_then(Json::as_str).expect("technique id");
        for level in ["pessimistic", "realistic", "optimistic"] {
            let spec = obj
                .get("assumptions")
                .and_then(Json::as_obj)
                .and_then(|bands| bands.get(level))
                .and_then(Json::as_obj)
                .and_then(|band| band.get("technique"))
                .and_then(Json::as_obj)
                .unwrap_or_else(|| panic!("{id}: no {level} technique spec"));
            let body = format!(
                "{{\"variants\":[{{\"label\":\"base\"}},\
                 {{\"label\":\"{id}\",\"technique\":{}}}]}}",
                render_flat(spec)
            );
            let response = client.request("POST", "/v1/sweep", Some(&body)).unwrap();
            assert_eq!(response.status, 200, "{id} {level}: {}", response.body);
            assert!(
                response.body.contains(&format!("\"label\":\"{id}\"")),
                "{id} {level}: variant row missing from {}",
                response.body
            );
        }
    }
    drop(client);
    stop(server);
}

#[test]
fn sharded_server_serves_all_endpoints_and_drains() {
    let (server, addr) = start(ServeConfig {
        workers: 4,
        shards: 4,
        queue_capacity: 16,
        ..test_config()
    });
    let clients: Vec<_> = (0..4)
        .map(|salt| {
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).unwrap();
                for i in 0..25 {
                    let body = format!("{{\"total_ceas\":{}}}", 40 + (salt * 25 + i) % 60);
                    let solve = client.request("POST", "/v1/solve", Some(&body)).unwrap();
                    assert_eq!(solve.status, 200, "{}", solve.body);
                }
                let sweep = client
                    .request("POST", "/v1/sweep", Some(r#"{"sweep":"fig07_filtering"}"#))
                    .unwrap();
                assert_eq!(sweep.status, 200, "{}", sweep.body);
            })
        })
        .collect();
    for client in clients {
        client.join().expect("sharded client");
    }
    let stats = stop(server);
    assert_eq!(stats.served_ok, 4 * 26);
    assert_eq!(stats.internal, 0);
    assert_eq!(stats.shed, 0, "16 queued connections never overflow");
    // The port is closed after the drain.
    assert!(TcpStream::connect_timeout(&addr, Duration::from_millis(300)).is_err());
}
