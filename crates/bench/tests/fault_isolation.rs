//! End-to-end fault-isolation tests on the `bandwall` binary: a
//! deliberately failing experiment (injected via `BANDWALL_FAULT_INJECT`)
//! must produce its own structured failure report while every other
//! registry entry completes, in registry order, with exit status 1.

use std::process::Command;

fn bandwall() -> Command {
    Command::new(env!("CARGO_BIN_EXE_bandwall"))
}

/// Extracts the `"id"` of every report in a JSON array of reports.
fn report_ids(json: &str) -> Vec<String> {
    json.match_indices("{\"id\":\"")
        .map(|(i, pat)| {
            let start = i + pat.len();
            let end = json[start..].find('"').unwrap() + start;
            json[start..end].to_string()
        })
        .collect()
}

#[test]
fn injected_panic_fails_alone_while_the_batch_survives() {
    let out = bandwall()
        .args(["run", "--all", "--jobs", "2", "--format", "json"])
        .env("BANDWALL_FAULT_INJECT", "panic")
        .output()
        .expect("bandwall runs");
    assert_eq!(out.status.code(), Some(1), "a failed batch must exit 1");

    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.starts_with('['));
    assert!(stdout.ends_with("]\n"));

    // The injected experiment leads, then the full registry in order.
    let expected: Vec<String> = std::iter::once("fault_inject".to_string())
        .chain(
            bandwall_experiments::registry::registry()
                .iter()
                .map(|e| e.id().to_string()),
        )
        .collect();
    assert_eq!(report_ids(&stdout), expected, "registry order must hold");

    // Exactly one failure, and it is the injected one, with the panic
    // message captured into its structured error.
    assert_eq!(stdout.matches("\"status\":\"failed\"").count(), 1);
    let failure_pos = stdout.find("\"status\":\"failed\"").unwrap();
    let fault_pos = stdout.find("\"id\":\"fault_inject\"").unwrap();
    let next_report = stdout[fault_pos..]
        .find("{\"id\":\"")
        .map(|i| i + fault_pos)
        .unwrap();
    assert!(
        failure_pos > fault_pos && failure_pos < next_report,
        "the failure status must belong to the fault_inject report"
    );
    assert!(stdout.contains("experiment panicked: injected panic"));
}

#[test]
fn injected_error_is_reported_and_fail_fast_skips_the_rest() {
    let out = bandwall()
        .args([
            "run",
            "fault_inject",
            "fig03_die_allocation",
            "--jobs",
            "1",
            "--fail-fast",
            "--format",
            "json",
        ])
        .env("BANDWALL_FAULT_INJECT", "error")
        .output()
        .expect("bandwall runs");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).unwrap();
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert_eq!(report_ids(&stdout), vec!["fault_inject"]);
    assert!(stdout.contains("numerical failure: injected error"));
    assert!(stderr.contains("skipped fig03_die_allocation (--fail-fast)"));
}

#[test]
fn timeout_converts_a_hang_into_a_failure_report() {
    let out = bandwall()
        .args(["run", "fault_inject", "--timeout", "1", "--format", "json"])
        .env("BANDWALL_FAULT_INJECT", "hang")
        .output()
        .expect("bandwall runs");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("\"status\":\"failed\""));
    assert!(stdout.contains("exceeded the 1s deadline"));
}

#[test]
fn without_injection_the_registry_is_unchanged_and_exits_zero() {
    let out = bandwall()
        .args(["run", "fig03_die_allocation", "--format", "json"])
        .env_remove("BANDWALL_FAULT_INJECT")
        .output()
        .expect("bandwall runs");
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert_eq!(report_ids(&stdout), vec!["fig03_die_allocation"]);
    assert!(!stdout.contains("\"status\""));
}
