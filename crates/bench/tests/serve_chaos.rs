//! Chaos soak for `bandwall serve`: thousands of requests against a
//! server that is actively injecting handler panics, worker deaths, and
//! delays. The service contract under chaos:
//!
//! * every request gets a well-formed JSON reply or an explicit
//!   shed/timeout — never a hang, never garbage;
//! * every `500 internal` is an *injected* panic (the message says so);
//!   the organic error rate is zero;
//! * worker deaths are respawned by the supervisor and the server keeps
//!   serving;
//! * after the soak, SIGTERM-equivalent drain completes and the final
//!   counters balance.

use bandwall_experiments::fault::ChaosSpec;
use bandwall_experiments::serve::loadgen::Client;
use bandwall_experiments::serve::{ServeConfig, Server};
use std::time::Duration;

/// One soak client: issues `requests` solves, opening a fresh
/// connection every `reconnect_every` requests (workers are
/// run-to-completion, so connection churn is what routes load across
/// workers — and what gives the between-connections worker fault point
/// chances to fire). Returns (ok, internal, other_error) counts and
/// panics on any reply that violates the contract.
fn soak_client(
    addr: std::net::SocketAddr,
    requests: usize,
    reconnect_every: usize,
    salt: usize,
) -> (u64, u64, u64) {
    let mut ok = 0;
    let mut internal = 0;
    let mut other = 0;
    let mut client: Option<Client> = None;
    for i in 0..requests {
        if i % reconnect_every == 0 {
            client = None;
        }
        if client.is_none() {
            client = Some(Client::connect(&addr).expect("reconnect"));
        }
        let body = format!("{{\"total_ceas\":{}}}", 24 + (salt * 31 + i) % 101);
        let result = client
            .as_mut()
            .unwrap()
            .request("POST", "/solve", Some(&body));
        let response = match result {
            Ok(response) => response,
            Err(_) => {
                // A worker death can sever the socket mid-request; a
                // reconnect must always succeed while the server lives.
                client = None;
                continue;
            }
        };
        match response.status {
            200 => {
                assert!(
                    response.body.contains("\"supportable_cores\""),
                    "malformed ok body: {}",
                    response.body
                );
                ok += 1;
            }
            500 => {
                // The one ironclad rule: organic failures are zero, so
                // every internal error must self-identify as injected.
                assert!(
                    response.body.contains("injected chaos"),
                    "organic internal error: {}",
                    response.body
                );
                internal += 1;
            }
            503 | 504 | 408 => other += 1,
            status => panic!("unexpected status {status}: {}", response.body),
        }
        if response.close {
            client = None;
        }
    }
    (ok, internal, other)
}

#[test]
fn soak_under_standard_chaos_never_breaks_the_contract() {
    // ~12k requests across 3 clients under the standard chaos spec
    // (1% handler panics, 0.1% worker deaths per connection, 2% delays).
    // Short delays and a generous deadline keep the soak fast while
    // still exercising every fault path.
    let spec = ChaosSpec::parse("panic=0.01,worker=0.001,delay=0.02:2,seed=42").unwrap();
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 3,
        shards: 1,
        queue_capacity: 64,
        deadline: Duration::from_secs(5),
        read_timeout: Duration::from_secs(2),
        cache_capacity: 64,
        chaos: Some(spec),
    })
    .expect("server starts");
    let addr = server.addr();

    const CLIENTS: usize = 3;
    const REQUESTS: usize = 4_000;
    let threads: Vec<_> = (0..CLIENTS)
        .map(|salt| std::thread::spawn(move || soak_client(addr, REQUESTS, 100, salt)))
        .collect();
    let mut ok = 0;
    let mut internal = 0;
    let mut other = 0;
    for thread in threads {
        let (o, i, e) = thread.join().expect("soak client panicked");
        ok += o;
        internal += i;
        other += e;
    }

    server.shutdown_handle().shutdown();
    let stats = server.join();

    // The soak really ran at scale and mostly succeeded.
    assert!(
        ok >= (CLIENTS * REQUESTS) as u64 * 9 / 10,
        "too few successes: {ok} ok, {internal} injected internals, {other} other"
    );
    // Injected panics actually fired (1% of ~12k is ~120)...
    assert!(internal > 0, "chaos never fired a handler panic");
    // ...and every one was contained: the server-side counter matches
    // what clients saw plus nothing (no hidden internal errors).
    assert_eq!(stats.internal, internal, "internal errors unaccounted for");
    // Drain was clean: the counters balance and nothing hung. (Worker
    // deaths are per-connection and thus rare here — the respawn path
    // has its own dedicated storm test below.)
    assert!(
        stats.served_ok >= ok,
        "server counted fewer oks than clients saw"
    );
}

#[test]
fn worker_death_storm_is_survived_by_the_supervisor() {
    // A brutal spec: ~1 in 7 connections kills its worker on the way
    // out. With one connection per request, the supervisor must keep
    // respawning and the server must keep answering.
    let spec = ChaosSpec::parse("panic=0,worker=0.15,delay=0:1,seed=7").unwrap();
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        shards: 1,
        queue_capacity: 32,
        deadline: Duration::from_secs(5),
        read_timeout: Duration::from_secs(2),
        cache_capacity: 64,
        chaos: Some(spec),
    })
    .expect("server starts");
    let addr = server.addr();

    let (ok, internal, other) = soak_client(addr, 150, 1, 0);
    assert!(
        ok >= 120,
        "server stopped answering under worker churn: {ok} ok, {other} other"
    );
    assert_eq!(internal, 0, "worker deaths must never surface as 500s");

    server.shutdown_handle().shutdown();
    let stats = server.join();
    assert!(
        stats.worker_respawns > 0,
        "supervisor never respawned: {stats:?}"
    );
    assert_eq!(stats.internal, 0);
}

#[test]
fn batch_soak_under_chaos_keeps_the_partial_failure_contract() {
    // Batches under the standard chaos spec. The contract extends the
    // solve one: a 200 batch reply always carries one slot per job with
    // job-level failures contained in place, and every 500 is an
    // injected panic — chaos must never collapse a batch into a
    // malformed or truncated reply.
    let spec = ChaosSpec::parse("panic=0.02,worker=0.002,delay=0.02:2,seed=9").unwrap();
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        shards: 2,
        queue_capacity: 32,
        deadline: Duration::from_secs(5),
        read_timeout: Duration::from_secs(2),
        cache_capacity: 64,
        chaos: Some(spec),
    })
    .expect("server starts");
    let addr = server.addr();

    let mut ok = 0;
    let mut internal = 0;
    let mut client: Option<Client> = None;
    for i in 0..800 {
        if client.is_none() {
            client = Some(Client::connect(&addr).expect("reconnect"));
        }
        let body = format!(
            "{{\"jobs\":[{{\"kind\":\"solve\",\"problem\":{{\"total_ceas\":{}}}}},\
             {{\"kind\":\"bogus\"}},\
             {{\"kind\":\"sweep\",\"sweep\":\"fig04_cache_compression\"}}]}}",
            24 + i % 101
        );
        let result = client
            .as_mut()
            .unwrap()
            .request("POST", "/v1/batch", Some(&body));
        let response = match result {
            Ok(response) => response,
            Err(_) => {
                client = None;
                continue;
            }
        };
        match response.status {
            200 => {
                // Every slot present, the bad kind contained in place.
                assert_eq!(
                    response.body.matches("\"status\":").count(),
                    4, // top-level ok + three job slots
                    "slot went missing: {}",
                    response.body
                );
                assert!(
                    response.body.contains("unknown job kind 'bogus'"),
                    "bad-job envelope lost: {}",
                    response.body
                );
                ok += 1;
            }
            500 => {
                assert!(
                    response.body.contains("injected chaos"),
                    "organic internal error: {}",
                    response.body
                );
                internal += 1;
            }
            503 | 504 | 408 => {}
            status => panic!("unexpected status {status}: {}", response.body),
        }
        if response.close {
            client = None;
        }
    }

    server.shutdown_handle().shutdown();
    let stats = server.join();
    assert!(ok >= 700, "too few batch successes: {ok} ok");
    assert!(internal > 0, "chaos never fired inside a batch");
    assert_eq!(stats.internal, internal, "internal errors unaccounted for");
}
