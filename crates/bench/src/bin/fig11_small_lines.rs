//! Figure 11 — Increase in on-chip cores enabled by smaller cache lines.
//!
//! Paper reference: a dual technique (Equation 12) — the realistic 40%
//! unused data restores proportional scaling (16 cores); optimistically
//! (80%) it goes well beyond.

use bandwall_experiments::{header, sweep::{run_next_generation_sweep, Variant}};
use bandwall_model::Technique;

fn main() {
    header("Figure 11", "Cores enabled by smaller cache lines");
    let mut variants = vec![Variant::new("0% unused", None, Some(11))];
    for (fraction, paper) in [(0.1, None), (0.2, None), (0.4, Some(16)), (0.8, None)] {
        variants.push(Variant::new(
            format!("{:.0}% unused", fraction * 100.0),
            Some(Technique::small_cache_lines(fraction).expect("valid")),
            paper,
        ));
    }
    run_next_generation_sweep(&variants);
    println!();
    println!("dual effect: unused words cost neither bandwidth nor cache capacity");
}
