//! Figure 11 — Increase in on-chip cores enabled by smaller cache lines.
//!
//! Paper reference: a dual technique (Equation 12) — the realistic 40%
//! unused data restores proportional scaling (16 cores); optimistically
//! (80%) it goes well beyond.

fn main() {
    bandwall_experiments::registry::run_main("fig11_small_lines");
}
