//! Supporting experiment (Section 6.3) — line-size sweep behind the
//! "Smaller Cache Lines" technique.
//!
//! The technique's premise: with limited spatial locality, large lines
//! waste both bandwidth (unused words cross the link) and capacity
//! (unused words occupy the cache). This experiment runs a workload that
//! touches only the first two words (16 bytes) of each 64-byte region
//! through caches built with 16/32/64/128-byte lines and measures actual
//! off-chip traffic.

use bandwall_cache_sim::{CacheConfig, TwoLevelHierarchy};
use bandwall_experiments::{header, render::Table};
use bandwall_trace::{StackDistanceTrace, TraceSource};

const ACCESSES: usize = 250_000;

fn traffic_for_line_size(line: u64) -> (u64, f64) {
    let mut h = TwoLevelHierarchy::new(
        CacheConfig::new(4 << 10, line, 2).expect("valid L1"),
        CacheConfig::new(128 << 10, line, 8).expect("valid L2"),
    );
    // Spatial locality limited to the first 2 words of each 64-byte
    // region, regardless of the cache's line size.
    let mut trace = StackDistanceTrace::builder(0.5)
        .seed(17)
        .line_size(64)
        .touched_words(2)
        .max_distance(1 << 14)
        .build();
    for a in trace.iter().take(ACCESSES) {
        h.access_from(a.thread(), a.address(), a.kind().is_write());
    }
    let bytes = h.memory_traffic().total_bytes();
    (bytes, bytes as f64 / ACCESSES as f64)
}

fn main() {
    header(
        "Validation (Sec. 6.3)",
        "off-chip traffic vs cache-line size (16 useful bytes per region)",
    );
    let mut table = Table::new(&["line size", "total traffic", "bytes/access", "vs 64 B"]);
    let reference = traffic_for_line_size(64).0 as f64;
    for line in [16u64, 32, 64, 128] {
        let (bytes, per_access) = traffic_for_line_size(line);
        table.row_owned(vec![
            format!("{line} B"),
            format!("{} KB", bytes / 1024),
            format!("{per_access:.1}"),
            format!("{:.2}x", bytes as f64 / reference),
        ]);
    }
    table.print();
    println!();
    println!("shrinking lines toward the useful footprint cuts traffic directly (and");
    println!("frees capacity), exactly the dual benefit Equation 12 models; note the");
    println!("64->128 B step nearly doubles traffic for no gain");
}
