//! Supporting experiment (Section 6.3) — line-size sweep behind the
//! "Smaller Cache Lines" technique.
//!
//! The technique's premise: with limited spatial locality, large lines
//! waste both bandwidth (unused words cross the link) and capacity
//! (unused words occupy the cache). This experiment runs a workload that
//! touches only the first two words (16 bytes) of each 64-byte region
//! through caches built with 16/32/64/128-byte lines and measures actual
//! off-chip traffic.

fn main() {
    bandwall_experiments::registry::run_main("validate_line_size");
}
