//! Figure 2 — Memory traffic as the number of CMP cores varies in the
//! next technology generation (32 CEAs).
//!
//! Paper reference: with a constant envelope the crossover sits at 11
//! cores (37.5% growth instead of the proportional 100%); a 50% larger
//! envelope allows 13 cores.

use bandwall_experiments::{die_budget, header, paper_baseline, render::{bar, Table}};
use bandwall_model::{ScalingProblem, TrafficModel};

fn main() {
    header("Figure 2", "Memory traffic vs number of cores (next generation)");
    let baseline = paper_baseline();
    let model = TrafficModel::new(baseline);
    let n2 = die_budget(1);

    let mut table = Table::new(&["cores", "normalized traffic", "", "within envelope"]);
    for cores in (2..=28).step_by(2) {
        let traffic = model
            .relative_traffic_on_die(n2, cores as f64)
            .expect("cache area remains");
        table.row_owned(vec![
            cores.to_string(),
            format!("{traffic:.3}"),
            bar(traffic, 8.0, 40),
            if traffic <= 1.0 { "yes" } else { "no" }.to_string(),
        ]);
    }
    table.print();
    println!();

    let constant = ScalingProblem::new(baseline, n2);
    let optimistic = ScalingProblem::new(baseline, n2).with_bandwidth_growth(1.5);
    println!(
        "crossover (B = 1.0): {:.2} cores -> {} supportable   [paper: 11]",
        constant.crossover_cores().unwrap(),
        constant.max_supportable_cores().unwrap()
    );
    println!(
        "crossover (B = 1.5): {:.2} cores -> {} supportable   [paper: 13]",
        optimistic.crossover_cores().unwrap(),
        optimistic.max_supportable_cores().unwrap()
    );
    println!(
        "proportional scaling would want {} cores",
        constant.proportional_cores()
    );
}
