//! Figure 2 — Memory traffic as the number of CMP cores varies in the
//! next technology generation (32 CEAs).
//!
//! Paper reference: with a constant envelope the crossover sits at 11
//! cores (37.5% growth instead of the proportional 100%); a 50% larger
//! envelope allows 13 cores.

fn main() {
    bandwall_experiments::registry::run_main("fig02_traffic_vs_cores");
}
