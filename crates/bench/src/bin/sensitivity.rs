//! Supporting experiment — sensitivity of the core-scaling conclusions.
//!
//! Two analyses beyond the paper's figures:
//!
//! 1. **Monte Carlo over α** — Figure 1 shows per-workload α scattered
//!    between 0.25 and 0.62. Sampling α from that empirical spread gives
//!    a *distribution* of supportable cores per generation instead of a
//!    point estimate.
//! 2. **Multithreaded cores** — Section 3 notes the single-threaded-core
//!    assumption underestimates the wall; sweeping a per-core demand
//!    multiplier quantifies by how much.

use bandwall_experiments::{die_budget, header, paper_baseline, render::Table, GENERATION_LABELS};
use bandwall_model::{Alpha, ScalingProblem};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SAMPLES: usize = 2000;

/// Samples α from a truncated normal around the commercial average.
fn sample_alpha(rng: &mut StdRng) -> f64 {
    // Box–Muller; mean 0.48, sd 0.09, truncated to the observed [0.2, 0.8].
    loop {
        let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        let alpha = 0.48 + 0.09 * z;
        if (0.2..=0.8).contains(&alpha) {
            return alpha;
        }
    }
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

fn main() {
    header("Sensitivity", "Monte Carlo over α, and multithreaded-core demand");
    let mut rng = StdRng::seed_from_u64(20260706);

    println!("Monte Carlo over α ({SAMPLES} samples, α ~ N(0.48, 0.09) truncated):");
    let mut table = Table::new(&["generation", "p10", "median", "p90", "point est. (α=0.5)"]);
    for (g, label) in (1..=4u32).zip(GENERATION_LABELS) {
        let mut cores: Vec<u64> = (0..SAMPLES)
            .map(|_| {
                let alpha = Alpha::new(sample_alpha(&mut rng)).expect("in range");
                ScalingProblem::new(paper_baseline().with_alpha(alpha), die_budget(g))
                    .max_supportable_cores()
                    .expect("feasible")
            })
            .collect();
        cores.sort_unstable();
        let point = ScalingProblem::new(paper_baseline(), die_budget(g))
            .max_supportable_cores()
            .unwrap();
        table.row_owned(vec![
            label.to_string(),
            percentile(&cores, 0.10).to_string(),
            percentile(&cores, 0.50).to_string(),
            percentile(&cores, 0.90).to_string(),
            point.to_string(),
        ]);
    }
    table.print();

    println!("\nmultithreaded cores (per-core demand multiplier, 32-CEA die):");
    let mut smt = Table::new(&["demand multiplier", "supportable cores"]);
    for demand in [1.0, 1.25, 1.5, 2.0, 3.0, 4.0] {
        let cores = ScalingProblem::new(paper_baseline(), die_budget(1))
            .with_per_core_demand(demand)
            .max_supportable_cores()
            .unwrap();
        smt.row_owned(vec![format!("{demand}x"), cores.to_string()]);
    }
    smt.print();
    println!();
    println!("workload variability moves the answer by only a few cores per generation;");
    println!("SMT-style demand, however, tightens the wall quickly — the paper's");
    println!("single-threaded assumption is indeed optimistic");
}
