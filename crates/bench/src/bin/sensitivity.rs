//! Supporting experiment — sensitivity of the core-scaling conclusions.
//!
//! Two analyses beyond the paper's figures:
//!
//! 1. **Monte Carlo over α** — Figure 1 shows per-workload α scattered
//!    between 0.25 and 0.62. Sampling α from that empirical spread gives
//!    a *distribution* of supportable cores per generation instead of a
//!    point estimate.
//! 2. **Multithreaded cores** — Section 3 notes the single-threaded-core
//!    assumption underestimates the wall; sweeping a per-core demand
//!    multiplier quantifies by how much.

fn main() {
    bandwall_experiments::registry::run_main("sensitivity");
}
