//! Figure 13 — Impact of data sharing on the memory-traffic requirement.
//!
//! Normalized traffic vs fraction of shared data for proportionally
//! scaled chips of 16/32/64/128 cores (shared L2, Equations 13–14), plus
//! the shared fraction needed to hold traffic at the baseline level.
//!
//! Paper reference: constant traffic requires fsh ≈ 40%, 63%, 77%, 86%
//! for the four generations.

use bandwall_experiments::{header, paper_baseline, render::Table};
use bandwall_model::sharing::SharingModel;

fn main() {
    header("Figure 13", "Impact of data sharing on traffic");
    let model = SharingModel::new(paper_baseline());
    let configs = [16.0, 32.0, 64.0, 128.0];

    let mut table = Table::new(&[
        "fsh", "16 cores", "32 cores", "64 cores", "128 cores",
    ]);
    for i in 0..=10 {
        let fsh = i as f64 / 10.0;
        let mut row = vec![format!("{fsh:.1}")];
        for &cores in &configs {
            let traffic = model
                .relative_traffic(cores, cores, fsh)
                .expect("valid configuration");
            row.push(format!("{:.0}%", traffic * 100.0));
        }
        table.row_owned(row);
    }
    table.print();

    println!();
    let mut req = Table::new(&["cores", "required fsh", "paper"]);
    for (&cores, paper) in configs.iter().zip(["40%", "63%", "77%", "86%"]) {
        let fsh = model
            .required_shared_fraction(cores, cores, 1.0)
            .expect("solver")
            .expect("reachable");
        req.row_owned(vec![
            format!("{cores:.0}"),
            format!("{:.1}%", fsh * 100.0),
            paper.to_string(),
        ]);
    }
    req.print();
    println!();
    println!("holding traffic constant under proportional scaling demands ever more sharing");
}
