//! Figure 13 — Impact of data sharing on the memory-traffic requirement.
//!
//! Normalized traffic vs fraction of shared data for proportionally
//! scaled chips of 16/32/64/128 cores (shared L2, Equations 13–14), plus
//! the shared fraction needed to hold traffic at the baseline level.
//!
//! Paper reference: constant traffic requires fsh ≈ 40%, 63%, 77%, 86%
//! for the four generations.

fn main() {
    bandwall_experiments::registry::run_main("fig13_data_sharing");
}
