//! Figure 15 — Core scaling with every individual technique across four
//! future technology generations, with pessimistic/realistic/optimistic
//! candle ranges (Table 2 assumption bands).
//!
//! Paper reference: indirect techniques (CC, 3D, Fltr, SmCo) trail the
//! direct (LC, Sect) and dual (SmCl, CC/LC) ones; DRAM caches are the
//! indirect exception thanks to their 8× density.

use bandwall_experiments::{die_budget, header, paper_baseline, render::Table, GENERATIONS, GENERATION_LABELS};
use bandwall_model::{catalog, AssumptionLevel, ScalingProblem};

fn solve(technique: Option<bandwall_model::Technique>, generation: u32) -> u64 {
    let mut problem = ScalingProblem::new(paper_baseline(), die_budget(generation));
    if let Some(t) = technique {
        problem = problem.with_technique(t);
    }
    problem.max_supportable_cores().expect("feasible")
}

fn main() {
    header(
        "Figure 15",
        "Core scaling per technique, four generations (realistic [pess..opt])",
    );
    let mut table = Table::new(&["technique", GENERATION_LABELS[0], GENERATION_LABELS[1], GENERATION_LABELS[2], GENERATION_LABELS[3]]);

    // IDEAL: proportional scaling.
    table.row_owned(
        std::iter::once("IDEAL".to_string())
            .chain(GENERATIONS.iter().map(|&g| {
                let p = ScalingProblem::new(paper_baseline(), die_budget(g));
                p.proportional_cores().to_string()
            }))
            .collect(),
    );
    // BASE: no techniques.
    table.row_owned(
        std::iter::once("BASE".to_string())
            .chain(GENERATIONS.iter().map(|&g| solve(None, g).to_string()))
            .collect(),
    );
    for profile in catalog() {
        let mut row = vec![profile.label().to_string()];
        for &g in &GENERATIONS {
            let real = solve(Some(profile.technique(AssumptionLevel::Realistic).unwrap()), g);
            let pess = solve(
                Some(profile.technique(AssumptionLevel::Pessimistic).unwrap()),
                g,
            );
            let opt = solve(
                Some(profile.technique(AssumptionLevel::Optimistic).unwrap()),
                g,
            );
            row.push(format!("{real} [{pess}..{opt}]"));
        }
        table.row_owned(row);
    }
    table.print();
    println!();
    println!("paper anchors: BASE 16x = 24; DRAM realistic 16x = 47; IDEAL 16x = 128");
    println!("ordering: dual >= direct >= indirect (DRAM excepted via its 8x density)");
}
