//! Figure 15 — Core scaling with every individual technique across four
//! future technology generations, with pessimistic/realistic/optimistic
//! candle ranges (Table 2 assumption bands).
//!
//! Paper reference: indirect techniques (CC, 3D, Fltr, SmCo) trail the
//! direct (LC, Sect) and dual (SmCl, CC/LC) ones; DRAM caches are the
//! indirect exception thanks to their 8× density.

fn main() {
    bandwall_experiments::registry::run_main("fig15_technique_sweep");
}
