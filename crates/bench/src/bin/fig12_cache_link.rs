//! Figure 12 — Increase in on-chip cores enabled by cache+link
//! compression.
//!
//! Paper reference: compressed data both on the link and in the L2 — a
//! moderate 2.0× ratio already yields super-proportional scaling
//! (18 cores).

use bandwall_experiments::{header, sweep::{run_next_generation_sweep, Variant}};
use bandwall_model::Technique;

fn main() {
    header("Figure 12", "Cores enabled by cache+link compression");
    let mut variants = vec![Variant::new("No Compress", None, Some(11))];
    for (ratio, paper) in [
        (1.25, None),
        (1.5, None),
        (1.75, None),
        (2.0, Some(18)),
        (2.5, None),
        (3.0, None),
        (3.5, None),
        (4.0, None),
    ] {
        variants.push(Variant::new(
            format!("{ratio}x"),
            Some(Technique::cache_link_compression(ratio).expect("valid")),
            paper,
        ));
    }
    run_next_generation_sweep(&variants);
}
