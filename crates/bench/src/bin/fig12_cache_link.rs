//! Figure 12 — Increase in on-chip cores enabled by cache+link
//! compression.
//!
//! Paper reference: compressed data both on the link and in the L2 — a
//! moderate 2.0× ratio already yields super-proportional scaling
//! (18 cores).

fn main() {
    bandwall_experiments::registry::run_main("fig12_cache_link");
}
