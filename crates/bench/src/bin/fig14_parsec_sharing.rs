//! Figure 14 — Data-sharing behaviour in PARSEC-like workloads.
//!
//! Runs the PARSEC-like multithreaded traces on the shared-L2 CMP
//! simulator and reports, at each core count, the fraction of evicted L2
//! lines that were accessed by two or more cores during residency.
//!
//! Paper reference: the fraction *declines* with core count
//! (≈17.3% → 16.2% → 15.2% for 4/8/16 cores) — the opposite of the trend
//! Figure 13 shows is needed — because each added thread brings its own
//! private working set while the shared set stays put.
//!
//! Run with `--release`; the simulation covers ~1M accesses.

fn main() {
    bandwall_experiments::registry::run_main("fig14_parsec_sharing");
}
