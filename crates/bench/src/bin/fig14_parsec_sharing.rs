//! Figure 14 — Data-sharing behaviour in PARSEC-like workloads.
//!
//! Runs the PARSEC-like multithreaded traces on the shared-L2 CMP
//! simulator and reports, at each core count, the fraction of evicted L2
//! lines that were accessed by two or more cores during residency.
//!
//! Paper reference: the fraction *declines* with core count
//! (≈17.3% → 16.2% → 15.2% for 4/8/16 cores) — the opposite of the trend
//! Figure 13 shows is needed — because each added thread brings its own
//! private working set while the shared set stays put.
//!
//! Run with `--release`; the simulation covers ~1M accesses.

use bandwall_cache_sim::{CacheConfig, CmpSystem, L2Organization};
use bandwall_experiments::{header, render::Table};
use bandwall_trace::{ParsecLikeTrace, TraceSource};

const ACCESSES: usize = 400_000;

fn shared_fraction(cores: u16) -> f64 {
    let mut cmp = CmpSystem::new(
        cores,
        CacheConfig::new(512, 64, 2).expect("valid L1"),
        CacheConfig::new(512 << 10, 64, 8).expect("valid L2"),
        L2Organization::Shared,
    );
    let mut trace = ParsecLikeTrace::builder_with_regions(cores, 4000, 1500)
        .shared_access_fraction(0.4)
        .seed(2026)
        .build();
    for access in trace.iter().take(ACCESSES) {
        cmp.access(access);
    }
    cmp.sharing().expect("shared L2 tracks sharing").shared_fraction()
}

fn main() {
    header("Figure 14", "Shared-line fraction at eviction (PARSEC-like)");
    let mut table = Table::new(&["cores", "% shared cache lines", "paper"]);
    for (cores, paper) in [(4u16, "17.3%"), (8, "16.2%"), (16, "15.2%")] {
        let f = shared_fraction(cores);
        table.row_owned(vec![
            cores.to_string(),
            format!("{:.1}%", f * 100.0),
            paper.to_string(),
        ]);
    }
    table.print();
    println!();
    println!("workload: constant 4000-line shared region + 1500 private lines per thread");
    println!("(problem scaling); shared-L2 CMP with per-line sharer tracking at eviction");
    println!("the declining trend is the paper's point; absolute levels depend on the");
    println!("synthetic workload calibration");
}
