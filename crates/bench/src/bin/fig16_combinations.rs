//! Figure 16 — Core scaling with combinations of techniques across four
//! future technology generations (realistic assumptions).
//!
//! Paper reference: the full combination CC/LC + DRAM + 3D + SmCl reaches
//! 183 cores at the fourth generation (vs 128 proportional) — the
//! bandwidth wall can be pushed back several generations when techniques
//! are stacked.

use bandwall_experiments::{die_budget, header, paper_baseline, render::Table, GENERATIONS, GENERATION_LABELS};
use bandwall_model::combination::figure16_combinations;
use bandwall_model::{AssumptionLevel, ScalingProblem};

fn main() {
    header("Figure 16", "Core scaling with technique combinations");
    let combos = figure16_combinations(AssumptionLevel::Realistic).expect("catalog labels");
    let mut table = Table::new(&[
        "combination",
        GENERATION_LABELS[0],
        GENERATION_LABELS[1],
        GENERATION_LABELS[2],
        GENERATION_LABELS[3],
    ]);
    // IDEAL and BASE rows first, as in the figure.
    table.row_owned(
        std::iter::once("IDEAL".to_string())
            .chain(GENERATIONS.iter().map(|&g| {
                ScalingProblem::new(paper_baseline(), die_budget(g))
                    .proportional_cores()
                    .to_string()
            }))
            .collect(),
    );
    table.row_owned(
        std::iter::once("BASE".to_string())
            .chain(GENERATIONS.iter().map(|&g| {
                ScalingProblem::new(paper_baseline(), die_budget(g))
                    .max_supportable_cores()
                    .unwrap()
                    .to_string()
            }))
            .collect(),
    );
    for combo in &combos {
        let mut row = vec![combo.name().to_string()];
        for &g in &GENERATIONS {
            let cores = ScalingProblem::new(paper_baseline(), die_budget(g))
                .with_techniques(combo.techniques().iter().copied())
                .max_supportable_cores()
                .unwrap();
            row.push(cores.to_string());
        }
        table.row_owned(row);
    }
    table.print();
    println!();
    let full = combos.last().expect("15 combinations");
    let p = ScalingProblem::new(paper_baseline(), die_budget(4))
        .with_techniques(full.techniques().iter().copied());
    let cores = p.max_supportable_cores().unwrap();
    println!(
        "headline: {} at 16x -> {} cores on {:.0}% of the die   [paper: 183 cores, 71%]",
        full.name(),
        cores,
        p.core_area_fraction(cores) * 100.0
    );
}
