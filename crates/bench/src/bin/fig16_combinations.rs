//! Figure 16 — Core scaling with combinations of techniques across four
//! future technology generations (realistic assumptions).
//!
//! Paper reference: the full combination CC/LC + DRAM + 3D + SmCl reaches
//! 183 cores at the fourth generation (vs 128 proportional) — the
//! bandwidth wall can be pushed back several generations when techniques
//! are stacked.

fn main() {
    bandwall_experiments::registry::run_main("fig16_combinations");
}
