//! `bandwall` — the unified experiment runner.
//!
//! One binary over the whole registry, replacing 29 per-figure binaries
//! for day-to-day use (those remain as thin aliases):
//!
//! ```text
//! bandwall list                         # every experiment id + title
//! bandwall run fig02_traffic_vs_cores   # one experiment, ASCII
//! bandwall run --all --format json      # everything, as a JSON array
//! bandwall run --all --out reports/     # one file per experiment
//! bandwall run --all --jobs 8           # run experiments concurrently
//! bandwall run --all --seed 7           # re-seed every simulation
//! ```
//!
//! Experiments run concurrently (`--jobs`, default: available
//! parallelism) but reports are always emitted in registry order, so
//! output is deterministic regardless of scheduling.

use std::io::Write as _;
use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use bandwall_experiments::registry::{registry_with_seed, Experiment};
use bandwall_experiments::report::Report;

const USAGE: &str = "\
bandwall — unified runner for the bandwidth-wall experiment registry

USAGE:
    bandwall list
    bandwall run <id>... [OPTIONS]
    bandwall run --all [OPTIONS]

OPTIONS:
    --format <ascii|csv|json>   output format (default: ascii)
    --out <DIR>                 write one file per experiment into DIR
                                instead of printing to stdout
    --jobs <N>                  worker threads (default: available
                                parallelism, capped at the experiment
                                count)
    --seed <N>                  derive a fresh seed for every seeded
                                experiment (default: historical seeds,
                                byte-compatible with the legacy binaries)
    -h, --help                  show this help
";

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Ascii,
    Csv,
    Json,
}

impl Format {
    fn parse(s: &str) -> Result<Self, String> {
        match s {
            "ascii" => Ok(Format::Ascii),
            "csv" => Ok(Format::Csv),
            "json" => Ok(Format::Json),
            other => Err(format!("unknown format '{other}' (ascii|csv|json)")),
        }
    }

    fn extension(self) -> &'static str {
        match self {
            Format::Ascii => "txt",
            Format::Csv => "csv",
            Format::Json => "json",
        }
    }

    fn render(self, report: &Report) -> String {
        match self {
            Format::Ascii => report.to_ascii(),
            Format::Csv => report.to_csv(),
            Format::Json => report.to_json(),
        }
    }
}

struct RunArgs {
    ids: Vec<String>,
    all: bool,
    format: Format,
    out: Option<std::path::PathBuf>,
    jobs: Option<usize>,
    seed: Option<u64>,
}

fn parse_run_args(args: &[String]) -> Result<RunArgs, String> {
    let mut run = RunArgs {
        ids: Vec::new(),
        all: false,
        format: Format::Ascii,
        out: None,
        jobs: None,
        seed: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--all" => run.all = true,
            "--format" => {
                let v = it.next().ok_or("--format needs a value")?;
                run.format = Format::parse(v)?;
            }
            "--out" => {
                let v = it.next().ok_or("--out needs a directory")?;
                run.out = Some(v.into());
            }
            "--jobs" => {
                let v = it.next().ok_or("--jobs needs a count")?;
                let n: usize = v.parse().map_err(|_| format!("bad --jobs value '{v}'"))?;
                if n == 0 {
                    return Err("--jobs must be at least 1".into());
                }
                run.jobs = Some(n);
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                run.seed = Some(v.parse().map_err(|_| format!("bad --seed value '{v}'"))?);
            }
            flag if flag.starts_with('-') => return Err(format!("unknown option '{flag}'")),
            id => run.ids.push(id.to_string()),
        }
    }
    if run.all && !run.ids.is_empty() {
        return Err("pass either --all or explicit ids, not both".into());
    }
    if !run.all && run.ids.is_empty() {
        return Err("nothing to run: pass experiment ids or --all".into());
    }
    Ok(run)
}

/// Runs `selected` concurrently on `jobs` scoped threads; reports come
/// back in input order regardless of which thread finished first.
fn run_parallel(selected: &[Box<dyn Experiment>], jobs: usize) -> Vec<Report> {
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Report>>> = selected.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(selected.len()) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(experiment) = selected.get(i) else {
                    break;
                };
                let report = experiment.run();
                *slots[i].lock().unwrap() = Some(report);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("worker filled every slot")
        })
        .collect()
}

fn emit(reports: &[Report], format: Format, out: Option<&std::path::Path>) -> Result<(), String> {
    match out {
        Some(dir) => {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
            for report in reports {
                let path = dir.join(format!("{}.{}", report.id, format.extension()));
                std::fs::write(&path, format.render(report))
                    .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
                println!("wrote {}", path.display());
            }
        }
        None => {
            let stdout = std::io::stdout();
            let mut w = stdout.lock();
            let rendered: Result<(), std::io::Error> = (|| {
                match format {
                    Format::Json => {
                        // One valid JSON document: an array of reports.
                        w.write_all(b"[")?;
                        for (i, report) in reports.iter().enumerate() {
                            if i > 0 {
                                w.write_all(b",")?;
                            }
                            w.write_all(report.to_json().as_bytes())?;
                        }
                        w.write_all(b"]\n")?;
                    }
                    Format::Ascii | Format::Csv => {
                        for (i, report) in reports.iter().enumerate() {
                            if i > 0 {
                                w.write_all(b"\n")?;
                            }
                            w.write_all(format.render(report).as_bytes())?;
                        }
                    }
                }
                Ok(())
            })();
            rendered.map_err(|e| format!("stdout: {e}"))?;
        }
    }
    Ok(())
}

fn cmd_list() {
    let reg = registry_with_seed(None);
    let width = reg.iter().map(|e| e.id().len()).max().unwrap_or(0);
    for e in &reg {
        println!("{:width$}  {} — {}", e.id(), e.figure(), e.title());
    }
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let run = parse_run_args(args)?;
    let reg = registry_with_seed(run.seed);
    let selected: Vec<Box<dyn Experiment>> = if run.all {
        reg
    } else {
        let mut by_id: Vec<Option<Box<dyn Experiment>>> = reg.into_iter().map(Some).collect();
        let mut picked = Vec::new();
        for id in &run.ids {
            let found = by_id
                .iter_mut()
                .find(|slot| slot.as_deref().is_some_and(|e| e.id() == id));
            match found {
                Some(slot) => picked.push(slot.take().unwrap()),
                None => {
                    return Err(format!(
                        "unknown experiment id '{id}' (see `bandwall list`)"
                    ))
                }
            }
        }
        picked
    };
    let jobs = run.jobs.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(usize::from)
            .unwrap_or(1)
    });
    let reports = run_parallel(&selected, jobs);
    emit(&reports, run.format, run.out.as_deref())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => {
            cmd_list();
            ExitCode::SUCCESS
        }
        Some("run") => match cmd_run(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("bandwall: {e}");
                ExitCode::FAILURE
            }
        },
        Some("-h" | "--help") | None => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("bandwall: unknown command '{other}'\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}
