//! `bandwall` — the unified experiment runner.
//!
//! One binary over the whole registry, replacing 29 per-figure binaries
//! for day-to-day use (those remain as thin aliases):
//!
//! ```text
//! bandwall list                         # every experiment id + title
//! bandwall run fig02_traffic_vs_cores   # one experiment, ASCII
//! bandwall run --all --format json      # everything, as a JSON array
//! bandwall run --all --out reports/     # one file per experiment
//! bandwall run --all --jobs 8           # run experiments concurrently
//! bandwall run --all --seed 7           # re-seed every simulation
//! bandwall run --all --timeout 120      # per-experiment deadline
//! ```
//!
//! Experiments run concurrently (`--jobs`, default: available
//! parallelism) but reports are always emitted in registry order, so
//! output is deterministic regardless of scheduling.
//!
//! Runs are fault-isolated: a panicking, erroring, or (with `--timeout`)
//! hanging experiment becomes a structured failure report in its
//! registry slot while every other experiment completes normally
//! (`--keep-going`, the default). `--fail-fast` stops claiming new
//! experiments after the first failure. The process exits 1 when any
//! report is a failure.

use std::io::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

use bandwall_experiments::error::ExperimentError;
use bandwall_experiments::fault::ChaosSpec;
use bandwall_experiments::perf::{run_group, BenchGroup, BenchOptions, GROUPS};
use bandwall_experiments::registry::{registry_with_seed, Experiment};
use bandwall_experiments::report::Report;
use bandwall_experiments::serve::loadgen::{
    run_against, EndpointSelection, LoadgenOptions, MixWeights,
};
use bandwall_experiments::serve::{ServeConfig, Server, StatsSnapshot};

const USAGE: &str = "\
bandwall — unified runner for the bandwidth-wall experiment registry

USAGE:
    bandwall list
    bandwall run <id>... [OPTIONS]
    bandwall run --all [OPTIONS]
    bandwall bench [GROUP]... [BENCH OPTIONS]
    bandwall bench --list
    bandwall serve [SERVE OPTIONS]
    bandwall loadgen [LOADGEN OPTIONS]

OPTIONS:
    --format <ascii|csv|json>   output format (default: ascii)
    --out <DIR>                 write one file per experiment into DIR
                                instead of printing to stdout (each file
                                is written to a .tmp path then renamed,
                                so readers never see partial reports)
    --jobs <N>                  worker threads (default: available
                                parallelism, capped at the experiment
                                count)
    --seed <N>                  derive a fresh seed for every seeded
                                experiment (default: historical seeds,
                                byte-compatible with the legacy binaries)
    --timeout <SECS>            per-experiment wall-clock deadline; an
                                overrunning experiment becomes a failure
                                report (default: no deadline)
    --keep-going                run every experiment even after failures,
                                reporting each failure in place (default)
    --fail-fast                 stop claiming new experiments after the
                                first failure; unstarted experiments are
                                skipped with a note on stderr
    -h, --help                  show this help

BENCH OPTIONS:
    --list                      list bench groups and exit
    --warmup <N>                untimed runs per kernel (default: 1)
    --iters <N>                 timed samples per kernel (default: 5)
    --accesses <N>              simulated accesses per sample
                                (default: 400000)
    --quick                     CI smoke preset: 1 warmup, 3 iters,
                                60000 accesses
    --format <ascii|csv|json>   output format (default: ascii)
    --out <DIR>                 write one report file per group into DIR
    --snapshot <DIR>            additionally write machine-readable
                                BENCH_<group>.json snapshots into DIR
    --floor <ID=RATE>           fail (exit 1) if kernel ID's median
                                throughput drops below RATE items/s;
                                repeatable, checked after all groups ran

    With no GROUP arguments, every group runs.

SERVE OPTIONS:
    --addr <HOST:PORT>          bind address (default: 127.0.0.1:8787;
                                port 0 picks an ephemeral port)
    --workers <N>               worker threads (default: 2)
    --shards <N>                admission shards, each with its own
                                acceptor thread and queue; clamped to
                                the worker count (default: 1)
    --queue <N>                 bounded request-queue capacity, divided
                                across the shards; the excess is shed
                                with an `overloaded` reply (default: 64)
    --deadline-ms <MS>          per-request deadline; overruns reply
                                504 `deadline_exceeded` (default: 2000)
    --read-timeout-ms <MS>      socket read/write window and keep-alive
                                idle limit (default: 5000)
    --cache-capacity <N>        memoized-solve cache entries, 0 to
                                disable (default: 4096)
    --chaos [SPEC]              inject faults: panic=P,worker=P,
                                delay=P:MS,seed=N (default spec:
                                panic=0.01,worker=0.001,delay=0.02:2)

    SIGTERM/SIGINT stop accepting, drain in-flight requests, print a
    stats summary, and exit 0.

LOADGEN OPTIONS:
    --addr <HOST:PORT>          server to drive (default: 127.0.0.1:8787)
    --connections <N>           concurrent connections in the
                                throughput batch (default: 4)
    --requests <N>              requests per kernel (default: 2000)
    --quick                     CI smoke preset: 2 connections,
                                200 requests
    --endpoint <NAME>           exercise only one POST endpoint's
                                kernels: solve, sweep, or batch
                                (default: all)
    --mix <SPEC>                weighted endpoint mix on one connection,
                                e.g. solve=7,sweep=2,batch=1; reports
                                per-endpoint latency percentiles
    --floor <ID=RATE>           fail (exit 1) if kernel ID's median
                                throughput drops below RATE requests/s;
                                repeatable
    --format <ascii|csv|json>   output format (default: ascii)
    --out <DIR>                 write the report into DIR
    --snapshot <DIR>            write a BENCH_serve.json snapshot

EXIT STATUS:
    0 when every selected experiment succeeds, 1 when any fails.
";

#[derive(Debug, Clone, Copy, PartialEq)]
enum Format {
    Ascii,
    Csv,
    Json,
}

impl Format {
    fn parse(s: &str) -> Result<Self, String> {
        match s {
            "ascii" => Ok(Format::Ascii),
            "csv" => Ok(Format::Csv),
            "json" => Ok(Format::Json),
            other => Err(format!("unknown format '{other}' (ascii|csv|json)")),
        }
    }

    fn extension(self) -> &'static str {
        match self {
            Format::Ascii => "txt",
            Format::Csv => "csv",
            Format::Json => "json",
        }
    }

    fn render(self, report: &Report) -> String {
        match self {
            Format::Ascii => report.to_ascii(),
            Format::Csv => report.to_csv(),
            Format::Json => report.to_json(),
        }
    }
}

#[derive(Debug)]
struct RunArgs {
    ids: Vec<String>,
    all: bool,
    format: Format,
    out: Option<std::path::PathBuf>,
    jobs: Option<usize>,
    seed: Option<u64>,
    timeout: Option<u64>,
    fail_fast: bool,
}

fn parse_run_args(args: &[String]) -> Result<RunArgs, String> {
    let mut run = RunArgs {
        ids: Vec::new(),
        all: false,
        format: Format::Ascii,
        out: None,
        jobs: None,
        seed: None,
        timeout: None,
        fail_fast: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--all" => run.all = true,
            "--format" => {
                let v = it.next().ok_or("--format needs a value")?;
                run.format = Format::parse(v)?;
            }
            "--out" => {
                let v = it.next().ok_or("--out needs a directory")?;
                run.out = Some(v.into());
            }
            "--jobs" => {
                let v = it.next().ok_or("--jobs needs a count")?;
                let n: usize = v.parse().map_err(|_| format!("bad --jobs value '{v}'"))?;
                if n == 0 {
                    return Err("--jobs must be at least 1".into());
                }
                run.jobs = Some(n);
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                run.seed = Some(v.parse().map_err(|_| format!("bad --seed value '{v}'"))?);
            }
            "--timeout" => {
                let v = it.next().ok_or("--timeout needs a value in seconds")?;
                let secs: u64 = v
                    .parse()
                    .map_err(|_| format!("bad --timeout value '{v}'"))?;
                if secs == 0 {
                    return Err("--timeout must be at least 1 second".into());
                }
                run.timeout = Some(secs);
            }
            "--fail-fast" => run.fail_fast = true,
            "--keep-going" => run.fail_fast = false,
            flag if flag.starts_with('-') => return Err(format!("unknown option '{flag}'")),
            id => run.ids.push(id.to_string()),
        }
    }
    if run.all && !run.ids.is_empty() {
        return Err("pass either --all or explicit ids, not both".into());
    }
    if !run.all && run.ids.is_empty() {
        return Err("nothing to run: pass experiment ids or --all".into());
    }
    Ok(run)
}

/// Extracts the human-readable message from a panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs one experiment with panics contained: a panic unwinds into a
/// structured failure report instead of taking down the worker.
fn run_caught(experiment: &dyn Experiment) -> Report {
    match catch_unwind(AssertUnwindSafe(|| experiment.run_to_report())) {
        Ok(report) => report,
        Err(payload) => Report::failure(
            experiment.id(),
            experiment.figure(),
            experiment.title(),
            ExperimentError::Panicked(panic_message(payload)),
        ),
    }
}

/// Runs one experiment under an optional wall-clock deadline. With a
/// deadline the run happens on a dedicated watchdog thread; on overrun
/// the thread is abandoned (it cannot be killed) and a timeout failure
/// report takes its registry slot.
fn run_guarded(experiment: &Arc<dyn Experiment>, timeout: Option<Duration>) -> Report {
    let Some(limit) = timeout else {
        return run_caught(experiment.as_ref());
    };
    let (tx, rx) = mpsc::channel();
    let worker = Arc::clone(experiment);
    std::thread::spawn(move || {
        // A send error just means the watchdog gave up waiting.
        let _ = tx.send(run_caught(worker.as_ref()));
    });
    match rx.recv_timeout(limit) {
        Ok(report) => report,
        Err(mpsc::RecvTimeoutError::Timeout) => Report::failure(
            experiment.id(),
            experiment.figure(),
            experiment.title(),
            ExperimentError::TimedOut {
                limit_secs: limit.as_secs(),
            },
        ),
        Err(mpsc::RecvTimeoutError::Disconnected) => Report::failure(
            experiment.id(),
            experiment.figure(),
            experiment.title(),
            ExperimentError::WorkerDied,
        ),
    }
}

/// Runs `selected` concurrently on `jobs` scoped threads; reports come
/// back in input order regardless of which thread finished first.
///
/// Fault isolation: each run is wrapped in [`run_guarded`], so panics,
/// typed errors, and deadline overruns all land as failure reports in
/// their own slot. Slot mutexes are read through poison recovery, so
/// even a panic in the harness itself (between run and store) cannot
/// cascade. With `fail_fast`, workers stop claiming new experiments
/// after the first failure; unclaimed experiments are reported on
/// stderr and omitted from the output.
fn run_parallel(
    selected: &[Arc<dyn Experiment>],
    jobs: usize,
    timeout: Option<Duration>,
    fail_fast: bool,
) -> Vec<Report> {
    let next = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    let slots: Vec<Mutex<Option<Report>>> = selected.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(selected.len()) {
            scope.spawn(|| loop {
                if fail_fast && stop.load(Ordering::Relaxed) {
                    break;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(experiment) = selected.get(i) else {
                    break;
                };
                let report = run_guarded(experiment, timeout);
                if report.is_failure() {
                    stop.store(true, Ordering::Relaxed);
                }
                *slots[i].lock().unwrap_or_else(|p| p.into_inner()) = Some(report);
            });
        }
    });
    let mut reports = Vec::with_capacity(selected.len());
    for (slot, experiment) in slots.into_iter().zip(selected) {
        match slot.into_inner().unwrap_or_else(|p| p.into_inner()) {
            Some(report) => reports.push(report),
            None if fail_fast => {
                eprintln!("bandwall: skipped {} (--fail-fast)", experiment.id());
            }
            None => {
                // The worker claimed this slot but never stored a report:
                // it died outside the contained run.
                reports.push(Report::failure(
                    experiment.id(),
                    experiment.figure(),
                    experiment.title(),
                    ExperimentError::WorkerDied,
                ));
            }
        }
    }
    reports
}

/// Writes `contents` to `path` atomically: the bytes land in a `.tmp`
/// sibling first and are renamed into place, so a crash mid-write never
/// leaves a truncated report behind.
fn write_atomic(path: &std::path::Path, contents: &str) -> Result<(), String> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    std::fs::write(&tmp, contents).map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, path)
        .map_err(|e| format!("cannot rename {} to {}: {e}", tmp.display(), path.display()))
}

fn emit(reports: &[Report], format: Format, out: Option<&std::path::Path>) -> Result<(), String> {
    match out {
        Some(dir) => {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
            for report in reports {
                let path = dir.join(format!("{}.{}", report.id, format.extension()));
                write_atomic(&path, &format.render(report))?;
                println!("wrote {}", path.display());
            }
        }
        None => {
            let stdout = std::io::stdout();
            let mut w = stdout.lock();
            let rendered: Result<(), std::io::Error> = (|| {
                match format {
                    Format::Json => {
                        // One valid JSON document: an array of reports.
                        w.write_all(b"[")?;
                        for (i, report) in reports.iter().enumerate() {
                            if i > 0 {
                                w.write_all(b",")?;
                            }
                            w.write_all(report.to_json().as_bytes())?;
                        }
                        w.write_all(b"]\n")?;
                    }
                    Format::Ascii | Format::Csv => {
                        for (i, report) in reports.iter().enumerate() {
                            if i > 0 {
                                w.write_all(b"\n")?;
                            }
                            w.write_all(format.render(report).as_bytes())?;
                        }
                    }
                }
                Ok(())
            })();
            rendered.map_err(|e| format!("stdout: {e}"))?;
        }
    }
    Ok(())
}

fn cmd_list() {
    let reg = registry_with_seed(None);
    let width = reg.iter().map(|e| e.id().len()).max().unwrap_or(0);
    for e in &reg {
        println!("{:width$}  {} — {}", e.id(), e.figure(), e.title());
    }
}

/// Runs the selected experiments; `Ok(true)` means at least one failed.
fn cmd_run(args: &[String]) -> Result<bool, String> {
    let run = parse_run_args(args)?;
    let reg = registry_with_seed(run.seed);
    let selected: Vec<Arc<dyn Experiment>> = if run.all {
        reg.into_iter().map(Arc::from).collect()
    } else {
        let mut by_id: Vec<Option<Box<dyn Experiment>>> = reg.into_iter().map(Some).collect();
        let mut picked = Vec::new();
        for id in &run.ids {
            let found = by_id
                .iter_mut()
                .find(|slot| slot.as_deref().is_some_and(|e| e.id() == id));
            match found {
                Some(slot) => picked.push(Arc::from(slot.take().unwrap())),
                None => {
                    return Err(format!(
                        "unknown experiment id '{id}' (see `bandwall list`)"
                    ))
                }
            }
        }
        picked
    };
    let jobs = run.jobs.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(usize::from)
            .unwrap_or(1)
    });
    let timeout = run.timeout.map(Duration::from_secs);
    let reports = run_parallel(&selected, jobs, timeout, run.fail_fast);
    emit(&reports, run.format, run.out.as_deref())?;
    let failed = reports.iter().filter(|r| r.is_failure()).count();
    let skipped = selected.len() - reports.len();
    if failed > 0 || skipped > 0 {
        eprintln!(
            "bandwall: {failed} of {} experiments failed{}",
            selected.len(),
            if skipped > 0 {
                format!(", {skipped} skipped")
            } else {
                String::new()
            }
        );
    }
    Ok(failed > 0 || skipped > 0)
}

#[derive(Debug)]
struct BenchArgs {
    groups: Vec<String>,
    list: bool,
    options: BenchOptions,
    format: Format,
    out: Option<std::path::PathBuf>,
    snapshot: Option<std::path::PathBuf>,
    floors: Vec<(String, f64)>,
}

fn parse_bench_args(args: &[String]) -> Result<BenchArgs, String> {
    let mut bench = BenchArgs {
        groups: Vec::new(),
        list: false,
        options: BenchOptions::standard(),
        format: Format::Ascii,
        out: None,
        snapshot: None,
        floors: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--list" => bench.list = true,
            "--quick" => bench.options = BenchOptions::quick(),
            "--warmup" => {
                let v = it.next().ok_or("--warmup needs a count")?;
                bench.options.warmup =
                    v.parse().map_err(|_| format!("bad --warmup value '{v}'"))?;
            }
            "--iters" => {
                let v = it.next().ok_or("--iters needs a count")?;
                let n: usize = v.parse().map_err(|_| format!("bad --iters value '{v}'"))?;
                if n == 0 {
                    return Err("--iters must be at least 1".into());
                }
                bench.options.iters = n;
            }
            "--accesses" => {
                let v = it.next().ok_or("--accesses needs a count")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("bad --accesses value '{v}'"))?;
                if n == 0 {
                    return Err("--accesses must be at least 1".into());
                }
                bench.options.accesses = n;
            }
            "--format" => {
                let v = it.next().ok_or("--format needs a value")?;
                bench.format = Format::parse(v)?;
            }
            "--out" => {
                let v = it.next().ok_or("--out needs a directory")?;
                bench.out = Some(v.into());
            }
            "--snapshot" => {
                let v = it.next().ok_or("--snapshot needs a directory")?;
                bench.snapshot = Some(v.into());
            }
            "--floor" => {
                let v = it.next().ok_or("--floor needs ID=RATE")?;
                let (id, rate) = v
                    .split_once('=')
                    .ok_or_else(|| format!("bad --floor '{v}' (expected ID=RATE)"))?;
                let rate: f64 = rate
                    .parse()
                    .map_err(|_| format!("bad --floor rate '{rate}'"))?;
                if !rate.is_finite() || rate <= 0.0 {
                    return Err("--floor rate must be positive".into());
                }
                bench.floors.push((id.to_string(), rate));
            }
            flag if flag.starts_with('-') => return Err(format!("unknown option '{flag}'")),
            group => bench.groups.push(group.to_string()),
        }
    }
    for group in &bench.groups {
        if !GROUPS.contains(&group.as_str()) {
            return Err(format!(
                "unknown bench group '{group}' (see `bandwall bench --list`)"
            ));
        }
    }
    Ok(bench)
}

fn cmd_bench(args: &[String]) -> Result<(), String> {
    let bench = parse_bench_args(args)?;
    if bench.list {
        for group in GROUPS {
            println!("{group}");
        }
        return Ok(());
    }
    let selected: Vec<&str> = if bench.groups.is_empty() {
        GROUPS.to_vec()
    } else {
        bench.groups.iter().map(String::as_str).collect()
    };
    let mut reports = Vec::with_capacity(selected.len());
    let mut groups = Vec::with_capacity(selected.len());
    for name in selected {
        eprintln!("bandwall: benching {name}...");
        let group = run_group(name, &bench.options)?;
        if let Some(dir) = &bench.snapshot {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
            let path = dir.join(group.snapshot_filename());
            write_atomic(&path, &group.snapshot_json())?;
            eprintln!("bandwall: wrote {}", path.display());
        }
        reports.push(group.to_report());
        groups.push(group);
    }
    emit(&reports, bench.format, bench.out.as_deref())?;
    check_floors(&bench.floors, &groups)
}

/// The `--floor` regression gate: every floor must name a kernel that
/// ran, and that kernel's median throughput must meet the rate.
fn check_floors(floors: &[(String, f64)], groups: &[BenchGroup]) -> Result<(), String> {
    for (id, rate) in floors {
        let result = groups
            .iter()
            .flat_map(|g| &g.results)
            .find(|r| r.id == *id)
            .ok_or_else(|| format!("--floor {id}: no such kernel ran"))?;
        let actual = result.items_per_sec();
        if actual < *rate {
            return Err(format!(
                "--floor {id}: throughput {actual:.0} {}/s is below the floor {rate:.0}",
                result.unit
            ));
        }
        eprintln!(
            "bandwall: floor {id}: {actual:.0} {}/s >= {rate:.0} ok",
            result.unit
        );
    }
    Ok(())
}

/// Minimal signal handling for `bandwall serve`, kept in the binary
/// because the library forbids `unsafe`. On unix, SIGINT/SIGTERM flip
/// one atomic flag that the serve loop polls; elsewhere the install is
/// a no-op and ctrl-c falls back to the platform default.
mod signals {
    use std::sync::atomic::{AtomicBool, Ordering};

    static REQUESTED: AtomicBool = AtomicBool::new(false);

    /// Whether a shutdown signal has arrived.
    pub fn requested() -> bool {
        REQUESTED.load(Ordering::Relaxed)
    }

    #[cfg(unix)]
    pub fn install() {
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        extern "C" fn on_signal(_signum: i32) {
            REQUESTED.store(true, Ordering::Relaxed);
        }
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        // SAFETY: `signal(2)` with a handler that only stores to an
        // atomic is async-signal-safe; both signums are valid.
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }

    #[cfg(not(unix))]
    pub fn install() {}
}

#[derive(Debug)]
struct ServeArgs {
    config: ServeConfig,
}

fn parse_serve_args(args: &[String]) -> Result<ServeArgs, String> {
    let mut config = ServeConfig::default();
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => {
                let v = it.next().ok_or("--addr needs HOST:PORT")?;
                config.addr = v.clone();
            }
            "--workers" => {
                let v = it.next().ok_or("--workers needs a count")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("bad --workers value '{v}'"))?;
                if n == 0 {
                    return Err("--workers must be at least 1".into());
                }
                config.workers = n;
            }
            "--shards" => {
                let v = it.next().ok_or("--shards needs a count")?;
                let n: usize = v.parse().map_err(|_| format!("bad --shards value '{v}'"))?;
                if n == 0 {
                    return Err("--shards must be at least 1".into());
                }
                config.shards = n;
            }
            "--queue" => {
                let v = it.next().ok_or("--queue needs a capacity")?;
                let n: usize = v.parse().map_err(|_| format!("bad --queue value '{v}'"))?;
                if n == 0 {
                    return Err("--queue must be at least 1".into());
                }
                config.queue_capacity = n;
            }
            "--deadline-ms" => {
                let v = it.next().ok_or("--deadline-ms needs a value")?;
                let ms: u64 = v
                    .parse()
                    .map_err(|_| format!("bad --deadline-ms value '{v}'"))?;
                if ms == 0 {
                    return Err("--deadline-ms must be at least 1".into());
                }
                config.deadline = Duration::from_millis(ms);
            }
            "--read-timeout-ms" => {
                let v = it.next().ok_or("--read-timeout-ms needs a value")?;
                let ms: u64 = v
                    .parse()
                    .map_err(|_| format!("bad --read-timeout-ms value '{v}'"))?;
                if ms == 0 {
                    return Err("--read-timeout-ms must be at least 1".into());
                }
                config.read_timeout = Duration::from_millis(ms);
            }
            "--cache-capacity" => {
                let v = it.next().ok_or("--cache-capacity needs a count")?;
                config.cache_capacity = v
                    .parse()
                    .map_err(|_| format!("bad --cache-capacity value '{v}'"))?;
            }
            "--chaos" => {
                // The spec value is optional: a bare `--chaos` means the
                // standard spec; anything not starting with `-` is parsed.
                let spec = match it.peek() {
                    Some(v) if !v.starts_with('-') => {
                        let v = it.next().expect("peeked value");
                        ChaosSpec::parse(v)?
                    }
                    _ => ChaosSpec::standard(),
                };
                config.chaos = Some(spec);
            }
            flag if flag.starts_with('-') => return Err(format!("unknown option '{flag}'")),
            other => return Err(format!("unexpected argument '{other}'")),
        }
    }
    Ok(ServeArgs { config })
}

/// Renders the final serve counters as one JSON line for scripts.
fn stats_json(stats: &StatsSnapshot) -> String {
    format!(
        "{{\"connections\":{},\"served_ok\":{},\"shed\":{},\
         \"invalid_request\":{},\"not_found\":{},\"not_ready\":{},\
         \"deadline_exceeded\":{},\"internal\":{},\"worker_respawns\":{},\
         \"cache_hits\":{},\"cache_misses\":{}}}",
        stats.connections,
        stats.served_ok,
        stats.shed,
        stats.invalid_request,
        stats.not_found,
        stats.not_ready,
        stats.deadline_exceeded,
        stats.internal,
        stats.worker_respawns,
        stats.cache_hits,
        stats.cache_misses,
    )
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let serve = parse_serve_args(args)?;
    signals::install();
    let chaos = serve.config.chaos.is_some();
    let server = Server::start(serve.config).map_err(|e| format!("starting server: {e}"))?;
    eprintln!(
        "bandwall: serving on {}{} (SIGTERM/SIGINT to drain)",
        server.addr(),
        if chaos { " with chaos injection" } else { "" }
    );
    while !signals::requested() {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("bandwall: draining...");
    server.shutdown_handle().shutdown();
    let stats = server.join();
    println!("{}", stats_json(&stats));
    eprintln!(
        "bandwall: drained; {} ok, {} shed, {} deadline-exceeded, {} respawns",
        stats.served_ok, stats.shed, stats.deadline_exceeded, stats.worker_respawns
    );
    Ok(())
}

#[derive(Debug)]
struct LoadgenArgs {
    addr: String,
    options: LoadgenOptions,
    format: Format,
    out: Option<std::path::PathBuf>,
    snapshot: Option<std::path::PathBuf>,
    floors: Vec<(String, f64)>,
}

fn parse_loadgen_args(args: &[String]) -> Result<LoadgenArgs, String> {
    let mut loadgen = LoadgenArgs {
        addr: "127.0.0.1:8787".to_string(),
        options: LoadgenOptions::standard(),
        format: Format::Ascii,
        out: None,
        snapshot: None,
        floors: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => {
                let v = it.next().ok_or("--addr needs HOST:PORT")?;
                loadgen.addr = v.clone();
            }
            "--quick" => {
                let (endpoint, mix) = (loadgen.options.endpoint, loadgen.options.mix);
                loadgen.options = LoadgenOptions::quick();
                loadgen.options.endpoint = endpoint;
                loadgen.options.mix = mix;
            }
            "--endpoint" => {
                let v = it.next().ok_or("--endpoint needs a value")?;
                loadgen.options.endpoint = EndpointSelection::parse(v)?;
            }
            "--mix" => {
                let v = it.next().ok_or("--mix needs a spec like solve=7,sweep=2")?;
                loadgen.options.mix = Some(MixWeights::parse(v)?);
            }
            "--floor" => {
                let v = it.next().ok_or("--floor needs ID=RATE")?;
                let (id, rate) = v
                    .split_once('=')
                    .ok_or_else(|| format!("bad --floor '{v}' (expected ID=RATE)"))?;
                let rate: f64 = rate
                    .parse()
                    .map_err(|_| format!("bad --floor rate '{rate}'"))?;
                if rate <= 0.0 {
                    return Err("--floor rate must be positive".into());
                }
                loadgen.floors.push((id.to_string(), rate));
            }
            "--connections" => {
                let v = it.next().ok_or("--connections needs a count")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("bad --connections value '{v}'"))?;
                if n == 0 {
                    return Err("--connections must be at least 1".into());
                }
                loadgen.options.connections = n;
            }
            "--requests" => {
                let v = it.next().ok_or("--requests needs a count")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("bad --requests value '{v}'"))?;
                if n == 0 {
                    return Err("--requests must be at least 1".into());
                }
                loadgen.options.requests = n;
            }
            "--format" => {
                let v = it.next().ok_or("--format needs a value")?;
                loadgen.format = Format::parse(v)?;
            }
            "--out" => {
                let v = it.next().ok_or("--out needs a directory")?;
                loadgen.out = Some(v.into());
            }
            "--snapshot" => {
                let v = it.next().ok_or("--snapshot needs a directory")?;
                loadgen.snapshot = Some(v.into());
            }
            flag if flag.starts_with('-') => return Err(format!("unknown option '{flag}'")),
            other => return Err(format!("unexpected argument '{other}'")),
        }
    }
    Ok(loadgen)
}

fn cmd_loadgen(args: &[String]) -> Result<(), String> {
    use std::net::ToSocketAddrs;
    let loadgen = parse_loadgen_args(args)?;
    let addr = loadgen
        .addr
        .to_socket_addrs()
        .map_err(|e| format!("resolving '{}': {e}", loadgen.addr))?
        .next()
        .ok_or_else(|| format!("'{}' resolves to no address", loadgen.addr))?;
    eprintln!(
        "bandwall: driving {addr} with {} connections, {} requests per kernel...",
        loadgen.options.connections, loadgen.options.requests
    );
    let results = run_against(&addr, &loadgen.options)?;
    // Wrap the results as a `serve` bench group so --format/--out/
    // --snapshot behave exactly like `bandwall bench serve`. The bench
    // options record the loadgen shape in the snapshot provenance:
    // iters = requests per kernel, accesses = total request budget.
    let group = BenchGroup {
        group: "serve".to_string(),
        options: BenchOptions {
            warmup: 0,
            iters: loadgen.options.requests,
            accesses: loadgen.options.requests * loadgen.options.connections,
        },
        host_parallelism: std::thread::available_parallelism()
            .map(usize::from)
            .unwrap_or(1),
        results,
    };
    if let Some(dir) = &loadgen.snapshot {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        let path = dir.join(group.snapshot_filename());
        write_atomic(&path, &group.snapshot_json())?;
        eprintln!("bandwall: wrote {}", path.display());
    }
    emit(&[group.to_report()], loadgen.format, loadgen.out.as_deref())?;
    let groups = [group];
    check_floors(&loadgen.floors, &groups)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => {
            cmd_list();
            ExitCode::SUCCESS
        }
        Some("run") => match cmd_run(&args[1..]) {
            Ok(false) => ExitCode::SUCCESS,
            Ok(true) => ExitCode::FAILURE,
            Err(e) => {
                eprintln!("bandwall: {e}");
                ExitCode::FAILURE
            }
        },
        Some("bench") => match cmd_bench(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("bandwall: {e}");
                ExitCode::FAILURE
            }
        },
        Some("serve") => match cmd_serve(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("bandwall: {e}");
                ExitCode::FAILURE
            }
        },
        Some("loadgen") => match cmd_loadgen(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("bandwall: {e}");
                ExitCode::FAILURE
            }
        },
        Some("-h" | "--help") | None => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("bandwall: unknown command '{other}'\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_ids_and_flags() {
        let run = parse_run_args(&args(&[
            "fig02_traffic_vs_cores",
            "--format",
            "json",
            "--jobs",
            "3",
            "--seed",
            "7",
            "--timeout",
            "120",
            "--fail-fast",
        ]))
        .unwrap();
        assert_eq!(run.ids, vec!["fig02_traffic_vs_cores"]);
        assert!(!run.all);
        assert!(run.format == Format::Json);
        assert_eq!(run.jobs, Some(3));
        assert_eq!(run.seed, Some(7));
        assert_eq!(run.timeout, Some(120));
        assert!(run.fail_fast);
    }

    #[test]
    fn keep_going_is_the_default_and_overrides_fail_fast() {
        let run = parse_run_args(&args(&["--all"])).unwrap();
        assert!(!run.fail_fast);
        let run = parse_run_args(&args(&["--all", "--fail-fast", "--keep-going"])).unwrap();
        assert!(!run.fail_fast);
    }

    #[test]
    fn rejects_jobs_zero() {
        let err = parse_run_args(&args(&["--all", "--jobs", "0"])).unwrap_err();
        assert!(err.contains("--jobs must be at least 1"));
    }

    #[test]
    fn rejects_timeout_zero() {
        let err = parse_run_args(&args(&["--all", "--timeout", "0"])).unwrap_err();
        assert!(err.contains("--timeout must be at least 1 second"));
    }

    #[test]
    fn rejects_unknown_format() {
        let err = parse_run_args(&args(&["--all", "--format", "yaml"])).unwrap_err();
        assert!(err.contains("unknown format 'yaml'"));
    }

    #[test]
    fn rejects_all_mixed_with_ids() {
        let err = parse_run_args(&args(&["--all", "fig01_power_law"])).unwrap_err();
        assert!(err.contains("not both"));
    }

    #[test]
    fn rejects_empty_selection_and_missing_values() {
        assert!(parse_run_args(&[]).unwrap_err().contains("nothing to run"));
        for flag in ["--format", "--out", "--jobs", "--seed", "--timeout"] {
            let err = parse_run_args(&args(&["--all", flag])).unwrap_err();
            assert!(err.contains(flag), "missing-value error for {flag}: {err}");
        }
    }

    #[test]
    fn rejects_unknown_option() {
        let err = parse_run_args(&args(&["--all", "--frmat", "json"])).unwrap_err();
        assert!(err.contains("unknown option '--frmat'"));
    }

    struct Panicker;
    impl Experiment for Panicker {
        fn id(&self) -> &'static str {
            "panicker"
        }
        fn figure(&self) -> &'static str {
            "Test"
        }
        fn title(&self) -> &'static str {
            "panics"
        }
        fn run(&self) -> Result<Report, ExperimentError> {
            panic!("boom: {}", 6 * 7)
        }
    }

    struct Sleeper;
    impl Experiment for Sleeper {
        fn id(&self) -> &'static str {
            "sleeper"
        }
        fn figure(&self) -> &'static str {
            "Test"
        }
        fn title(&self) -> &'static str {
            "hangs"
        }
        fn run(&self) -> Result<Report, ExperimentError> {
            std::thread::sleep(Duration::from_secs(600));
            Err(ExperimentError::Numerical("woke up".into()))
        }
    }

    struct Succeeder;
    impl Experiment for Succeeder {
        fn id(&self) -> &'static str {
            "succeeder"
        }
        fn figure(&self) -> &'static str {
            "Test"
        }
        fn title(&self) -> &'static str {
            "works"
        }
        fn run(&self) -> Result<Report, ExperimentError> {
            Ok(Report::new(self.id(), self.figure(), self.title()))
        }
    }

    #[test]
    fn run_caught_contains_panics() {
        let report = run_caught(&Panicker);
        assert!(report.is_failure());
        assert!(report.error.as_deref().unwrap().contains("boom: 42"));
    }

    #[test]
    fn run_guarded_times_out_hung_experiments() {
        let experiment: Arc<dyn Experiment> = Arc::new(Sleeper);
        let report = run_guarded(&experiment, Some(Duration::from_millis(50)));
        assert!(report.is_failure());
        assert!(report.error.as_deref().unwrap().contains("deadline"));
    }

    #[test]
    fn run_parallel_keeps_going_and_preserves_order() {
        let selected: Vec<Arc<dyn Experiment>> =
            vec![Arc::new(Succeeder), Arc::new(Panicker), Arc::new(Succeeder)];
        let reports = run_parallel(&selected, 2, None, false);
        assert_eq!(reports.len(), 3);
        assert_eq!(reports[0].id, "succeeder");
        assert!(!reports[0].is_failure());
        assert_eq!(reports[1].id, "panicker");
        assert!(reports[1].is_failure());
        assert!(!reports[2].is_failure());
    }

    #[test]
    fn run_parallel_fail_fast_skips_unclaimed_work() {
        // One worker: the panicker fails first, so the trailing
        // experiments are never claimed.
        let selected: Vec<Arc<dyn Experiment>> =
            vec![Arc::new(Panicker), Arc::new(Succeeder), Arc::new(Succeeder)];
        let reports = run_parallel(&selected, 1, None, true);
        assert_eq!(reports.len(), 1);
        assert!(reports[0].is_failure());
    }

    #[test]
    fn parses_bench_flags() {
        let bench = parse_bench_args(&args(&[
            "sim_engine",
            "--warmup",
            "2",
            "--iters",
            "7",
            "--accesses",
            "1000",
            "--format",
            "json",
        ]))
        .unwrap();
        assert_eq!(bench.groups, vec!["sim_engine"]);
        assert_eq!(bench.options.warmup, 2);
        assert_eq!(bench.options.iters, 7);
        assert_eq!(bench.options.accesses, 1000);
        assert!(bench.format == Format::Json);
    }

    #[test]
    fn bench_quick_preset_and_overrides_compose() {
        // --quick then --iters: the explicit flag wins.
        let bench = parse_bench_args(&args(&["--quick", "--iters", "9"])).unwrap();
        assert_eq!(bench.options.warmup, 1);
        assert_eq!(bench.options.accesses, 60_000);
        assert_eq!(bench.options.iters, 9);
    }

    #[test]
    fn bench_rejects_bad_input() {
        assert!(parse_bench_args(&args(&["no_such_group"]))
            .unwrap_err()
            .contains("unknown bench group"));
        assert!(parse_bench_args(&args(&["--iters", "0"]))
            .unwrap_err()
            .contains("at least 1"));
        assert!(parse_bench_args(&args(&["--accesses", "0"]))
            .unwrap_err()
            .contains("at least 1"));
        assert!(parse_bench_args(&args(&["--frmat"]))
            .unwrap_err()
            .contains("unknown option"));
    }

    #[test]
    fn parses_floor_flags() {
        let bench = parse_bench_args(&args(&[
            "--floor",
            "compressed_sim_seq=16000000",
            "--floor",
            "fig14_sim_seq=2.5e6",
        ]))
        .unwrap();
        assert_eq!(bench.floors.len(), 2);
        assert_eq!(bench.floors[0].0, "compressed_sim_seq");
        assert!((bench.floors[0].1 - 16e6).abs() < 1.0);
        assert!((bench.floors[1].1 - 2.5e6).abs() < 1.0);

        for bad in [
            &["--floor"][..],
            &["--floor", "no_equals"],
            &["--floor", "id=-5"],
            &["--floor", "id=abc"],
        ] {
            assert!(parse_bench_args(&args(bad)).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn floor_gate_passes_and_fails_on_median_throughput() {
        use bandwall_experiments::perf::BenchResult;
        // 1000 items in 1 ms = 1M items/s.
        let group = BenchGroup {
            group: "sim_engine".into(),
            options: BenchOptions::quick(),
            host_parallelism: 1,
            results: vec![BenchResult::from_samples(
                "k",
                "kernel",
                1,
                1_000,
                "accesses",
                vec![1_000_000],
            )],
        };
        let groups = [group];
        assert!(check_floors(&[("k".into(), 0.9e6)], &groups).is_ok());
        let err = check_floors(&[("k".into(), 1.1e6)], &groups).unwrap_err();
        assert!(err.contains("below the floor"), "{err}");
        let err = check_floors(&[("missing".into(), 1.0)], &groups).unwrap_err();
        assert!(err.contains("no such kernel"), "{err}");
    }

    #[test]
    fn parses_serve_flags() {
        let serve = parse_serve_args(&args(&[
            "--addr",
            "0.0.0.0:9000",
            "--workers",
            "8",
            "--queue",
            "16",
            "--deadline-ms",
            "750",
            "--read-timeout-ms",
            "1500",
            "--cache-capacity",
            "0",
        ]))
        .unwrap();
        assert_eq!(serve.config.addr, "0.0.0.0:9000");
        assert_eq!(serve.config.workers, 8);
        assert_eq!(serve.config.queue_capacity, 16);
        assert_eq!(serve.config.deadline, Duration::from_millis(750));
        assert_eq!(serve.config.read_timeout, Duration::from_millis(1500));
        assert_eq!(serve.config.cache_capacity, 0);
        assert!(serve.config.chaos.is_none());
    }

    #[test]
    fn serve_chaos_spec_is_optional() {
        // Bare --chaos: the standard spec.
        let serve = parse_serve_args(&args(&["--chaos"])).unwrap();
        assert_eq!(serve.config.chaos, Some(ChaosSpec::standard()));
        // Bare --chaos followed by another flag still works.
        let serve = parse_serve_args(&args(&["--chaos", "--workers", "3"])).unwrap();
        assert_eq!(serve.config.chaos, Some(ChaosSpec::standard()));
        assert_eq!(serve.config.workers, 3);
        // An explicit spec overrides fields.
        let serve = parse_serve_args(&args(&["--chaos", "panic=0.5,seed=9"])).unwrap();
        let spec = serve.config.chaos.unwrap();
        assert!((spec.handler_panic - 0.5).abs() < 1e-12);
        assert_eq!(spec.seed, 9);
    }

    #[test]
    fn serve_rejects_bad_input() {
        assert!(parse_serve_args(&args(&["--workers", "0"]))
            .unwrap_err()
            .contains("at least 1"));
        assert!(parse_serve_args(&args(&["--queue", "0"]))
            .unwrap_err()
            .contains("at least 1"));
        assert!(parse_serve_args(&args(&["--deadline-ms", "0"]))
            .unwrap_err()
            .contains("at least 1"));
        assert!(parse_serve_args(&args(&["--chaos", "panic=nope"])).is_err());
        assert!(parse_serve_args(&args(&["--bogus"]))
            .unwrap_err()
            .contains("unknown option"));
        assert!(parse_serve_args(&args(&["stray"]))
            .unwrap_err()
            .contains("unexpected argument"));
    }

    #[test]
    fn parses_loadgen_flags() {
        let loadgen = parse_loadgen_args(&args(&[
            "--addr",
            "10.0.0.1:8080",
            "--connections",
            "6",
            "--requests",
            "500",
            "--format",
            "json",
        ]))
        .unwrap();
        assert_eq!(loadgen.addr, "10.0.0.1:8080");
        assert_eq!(loadgen.options.connections, 6);
        assert_eq!(loadgen.options.requests, 500);
        assert!(loadgen.format == Format::Json);
        assert_eq!(loadgen.options.endpoint, EndpointSelection::All);
        assert!(loadgen.options.mix.is_none());
        assert!(loadgen.floors.is_empty());
    }

    #[test]
    fn parses_serve_shards_flag() {
        let serve = parse_serve_args(&args(&["--shards", "4", "--workers", "8"])).unwrap();
        assert_eq!(serve.config.shards, 4);
        assert!(parse_serve_args(&args(&["--shards", "0"]))
            .unwrap_err()
            .contains("at least 1"));
        assert!(parse_serve_args(&args(&["--shards", "many"])).is_err());
    }

    #[test]
    fn parses_loadgen_endpoint_mix_and_floor_flags() {
        let loadgen = parse_loadgen_args(&args(&["--endpoint", "sweep"])).unwrap();
        assert_eq!(loadgen.options.endpoint, EndpointSelection::Sweep);
        // --quick after --endpoint keeps the selection.
        let loadgen = parse_loadgen_args(&args(&["--endpoint", "batch", "--quick"])).unwrap();
        assert_eq!(loadgen.options.endpoint, EndpointSelection::Batch);
        assert_eq!(loadgen.options.requests, 200);

        let loadgen = parse_loadgen_args(&args(&["--mix", "solve=7,sweep=2,batch=1"])).unwrap();
        let mix = loadgen.options.mix.unwrap();
        assert_eq!((mix.solve, mix.sweep, mix.batch), (7, 2, 1));

        let loadgen =
            parse_loadgen_args(&args(&["--floor", "serve_healthz=5000", "--floor", "x=1"]))
                .unwrap();
        assert_eq!(loadgen.floors.len(), 2);
        assert_eq!(loadgen.floors[0].0, "serve_healthz");
        assert!((loadgen.floors[0].1 - 5000.0).abs() < 1e-9);

        for bad in [
            &["--endpoint", "warp"][..],
            &["--mix", "solve=x"],
            &["--mix", "warp=1"],
            &["--mix", "solve=0,sweep=0,batch=0"],
            &["--floor", "no_equals"],
            &["--floor", "id=-5"],
        ] {
            assert!(parse_loadgen_args(&args(bad)).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn loadgen_quick_preset_and_overrides_compose() {
        let loadgen = parse_loadgen_args(&args(&["--quick", "--requests", "50"])).unwrap();
        assert_eq!(loadgen.options.connections, 2);
        assert_eq!(loadgen.options.requests, 50);
    }

    #[test]
    fn loadgen_rejects_bad_input() {
        assert!(parse_loadgen_args(&args(&["--connections", "0"]))
            .unwrap_err()
            .contains("at least 1"));
        assert!(parse_loadgen_args(&args(&["--requests", "0"]))
            .unwrap_err()
            .contains("at least 1"));
        assert!(parse_loadgen_args(&args(&["stray"]))
            .unwrap_err()
            .contains("unexpected argument"));
    }

    #[test]
    fn stats_json_is_well_formed() {
        let stats = StatsSnapshot {
            connections: 10,
            served_ok: 8,
            shed: 1,
            invalid_request: 1,
            not_found: 0,
            not_ready: 0,
            deadline_exceeded: 0,
            internal: 0,
            worker_respawns: 0,
            cache_hits: 4,
            cache_misses: 4,
        };
        let line = stats_json(&stats);
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"served_ok\":8"));
        assert!(line.contains("\"cache_hits\":4"));
    }

    #[test]
    fn write_atomic_replaces_contents() {
        let dir = std::env::temp_dir().join("bandwall_write_atomic_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("report.json");
        write_atomic(&path, "{\"a\":1}").unwrap();
        write_atomic(&path, "{\"a\":2}").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"a\":2}");
        assert!(!path.with_extension("json.tmp").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
