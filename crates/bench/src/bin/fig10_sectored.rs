//! Figure 10 — Increase in on-chip cores enabled by sectored caches.
//!
//! Paper reference: fetching only referenced sectors removes the unused
//! share of each line from the link. More potent than unused-data
//! *filtering* (Figure 7), especially at high unused fractions, because
//! the effect is direct.

use bandwall_experiments::{header, sweep::{run_next_generation_sweep, Variant}};
use bandwall_model::Technique;

fn main() {
    header("Figure 10", "Cores enabled by sectored caches");
    let mut variants = vec![Variant::new("0% unused", None, Some(11))];
    for (fraction, paper) in [(0.1, None), (0.2, None), (0.4, Some(14)), (0.8, None)] {
        variants.push(Variant::new(
            format!("{:.0}% unused", fraction * 100.0),
            Some(Technique::sectored_cache(fraction).expect("valid")),
            paper,
        ));
    }
    run_next_generation_sweep(&variants);
    println!();
    println!("compare Figure 7: the same unused fractions help more when applied directly");
}
