//! Figure 10 — Increase in on-chip cores enabled by sectored caches.
//!
//! Paper reference: fetching only referenced sectors removes the unused
//! share of each line from the link. More potent than unused-data
//! *filtering* (Figure 7), especially at high unused fractions, because
//! the effect is direct.

fn main() {
    bandwall_experiments::registry::run_main("fig10_sectored");
}
