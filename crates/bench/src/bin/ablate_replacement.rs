//! Ablation (DESIGN.md) — does the replacement policy change the fitted
//! power-law exponent?
//!
//! The power law of cache misses is an LRU-stack property; hardware uses
//! approximations. This experiment runs the same α = 0.5 workload through
//! set-associative caches of several sizes under LRU, tree-PLRU, FIFO,
//! and random replacement, fits α to each miss curve, and reports how
//! much the approximation costs.

use bandwall_cache_sim::{Cache, CacheConfig, ReplacementPolicy};
use bandwall_experiments::{header, render::Table};
use bandwall_numerics::PowerLawFit;
use bandwall_trace::{StackDistanceTrace, TraceSource};

const ACCESSES: usize = 250_000;
const WARMUP: usize = 50_000;

fn miss_rate(policy: ReplacementPolicy, capacity: u64, trace_seed: u64) -> f64 {
    let config = CacheConfig::new(capacity, 64, 8)
        .expect("valid geometry")
        .with_policy(policy)
        .with_policy_seed(7);
    let mut cache = Cache::new(config);
    let mut trace = StackDistanceTrace::builder(0.5)
        .seed(trace_seed)
        .max_distance(1 << 15)
        .build();
    for a in trace.iter().take(WARMUP) {
        cache.access(a.address(), a.kind().is_write());
    }
    let before = cache.stats().misses();
    let before_accesses = cache.stats().accesses();
    for a in trace.iter().take(ACCESSES) {
        cache.access(a.address(), a.kind().is_write());
    }
    (cache.stats().misses() - before) as f64
        / (cache.stats().accesses() - before_accesses) as f64
}

fn main() {
    header(
        "Ablation",
        "replacement policy vs fitted power-law exponent (true α = 0.5)",
    );
    let capacities: Vec<u64> = (13..=18).map(|i| 1u64 << i).collect(); // 8 KB..256 KB
    let mut table = Table::new(&["policy", "fitted α", "R²", "miss@8K", "miss@256K"]);
    for policy in [
        ReplacementPolicy::Lru,
        ReplacementPolicy::TreePlru,
        ReplacementPolicy::Fifo,
        ReplacementPolicy::Random,
    ] {
        let rates: Vec<f64> = capacities
            .iter()
            .map(|&c| miss_rate(policy, c, 31))
            .collect();
        let xs: Vec<f64> = capacities.iter().map(|&c| c as f64).collect();
        let fit = PowerLawFit::fit(&xs, &rates).expect("positive rates");
        table.row_owned(vec![
            policy.to_string(),
            format!("{:.3}", fit.alpha),
            format!("{:.3}", fit.r_squared),
            format!("{:.3}", rates[0]),
            format!("{:.3}", rates[rates.len() - 1]),
        ]);
    }
    table.print();
    println!();
    println!("the power law survives the hardware approximations: the fitted exponent");
    println!("moves only slightly from LRU to PLRU/FIFO/random, so the model's α is");
    println!("robust to the cache's actual replacement policy");
}
