//! Ablation (DESIGN.md) — does the replacement policy change the fitted
//! power-law exponent?
//!
//! The power law of cache misses is an LRU-stack property; hardware uses
//! approximations. This experiment runs the same α = 0.5 workload through
//! set-associative caches of several sizes under LRU, tree-PLRU, FIFO,
//! and random replacement, fits α to each miss curve, and reports how
//! much the approximation costs.

fn main() {
    bandwall_experiments::registry::run_main("ablate_replacement");
}
