//! Figure 4 — Increase in on-chip cores enabled by cache compression
//! (32 CEAs, constant traffic).
//!
//! Paper reference: 1.3×/1.7×/2.0×/2.5×/3.0× compression yields
//! 11/12/13/14/14 cores; Table 2 marks 1.25× pessimistic, 2× realistic,
//! 3.5× optimistic.

fn main() {
    bandwall_experiments::registry::run_main("fig04_cache_compression");
}
