//! Figure 4 — Increase in on-chip cores enabled by cache compression
//! (32 CEAs, constant traffic).
//!
//! Paper reference: 1.3×/1.7×/2.0×/2.5×/3.0× compression yields
//! 11/12/13/14/14 cores; Table 2 marks 1.25× pessimistic, 2× realistic,
//! 3.5× optimistic.

use bandwall_experiments::{header, sweep::{run_next_generation_sweep, Variant}};
use bandwall_model::Technique;

fn main() {
    header("Figure 4", "Cores enabled by cache compression");
    let ratios = [1.25, 1.5, 1.75, 2.0, 2.5, 3.0, 3.5, 4.0];
    let paper = [None, None, None, Some(13), Some(14), Some(14), None, None];
    let mut variants = vec![Variant::new("No Compress", None, Some(11))];
    for (&r, &p) in ratios.iter().zip(&paper) {
        variants.push(Variant::new(
            format!("{r}x"),
            Some(Technique::cache_compression(r).expect("valid ratio")),
            p,
        ));
    }
    run_next_generation_sweep(&variants);
    println!();
    println!("assumption bands (Table 2): pessimistic 1.25x, realistic 2x, optimistic 3.5x");
}
