//! Supporting experiment (Section 4.2) — write-backs as a fraction of
//! misses across cache sizes.
//!
//! The model's `(1 + rwb)` cancellation relies on the observation that
//! "the number of write backs tends to be an application-specific
//! constant fraction of its number of cache misses, across different
//! cache sizes". This binary measures `rwb` on the simulator across a
//! range of L2 sizes for two write intensities.

fn main() {
    bandwall_experiments::registry::run_main("validate_writeback");
}
