//! Supporting experiment (Section 4.2) — write-backs as a fraction of
//! misses across cache sizes.
//!
//! The model's `(1 + rwb)` cancellation relies on the observation that
//! "the number of write backs tends to be an application-specific
//! constant fraction of its number of cache misses, across different
//! cache sizes". This binary measures `rwb` on the simulator across a
//! range of L2 sizes for two write intensities.

use bandwall_cache_sim::{CacheConfig, TwoLevelHierarchy};
use bandwall_experiments::{header, render::Table};
use bandwall_trace::{StackDistanceTrace, TraceSource};

fn rwb(l2_kb: u64, write_fraction: f64) -> (f64, f64) {
    let mut h = TwoLevelHierarchy::new(
        CacheConfig::new(4 << 10, 64, 2).expect("valid L1"),
        CacheConfig::new(l2_kb << 10, 64, 8).expect("valid L2"),
    );
    let mut trace = StackDistanceTrace::builder(0.5)
        .seed(99)
        .write_fraction(write_fraction)
        .max_distance(1 << 15)
        .build();
    for a in trace.iter().take(300_000) {
        h.access_from(a.thread(), a.address(), a.kind().is_write());
    }
    (
        h.l2().stats().writeback_ratio(),
        h.l2().stats().miss_rate(),
    )
}

fn main() {
    header(
        "Validation (Sec. 4.2)",
        "write-back ratio rwb across cache sizes",
    );
    for wf in [0.1, 0.3] {
        println!("\nwrite fraction = {wf}");
        let mut table = Table::new(&["L2 size", "rwb (writebacks/miss)", "L2 miss rate"]);
        for l2_kb in [16u64, 32, 64, 128, 256] {
            let (ratio, miss) = rwb(l2_kb, wf);
            table.row_owned(vec![
                format!("{l2_kb} KB"),
                format!("{ratio:.3}"),
                format!("{miss:.3}"),
            ]);
        }
        table.print();
    }
    println!();
    println!("rwb moves far less than the miss rate as the cache scales, supporting");
    println!("the paper's cancellation of (1 + rwb) in traffic ratios (Equation 2)");
}
