//! Figure 8 — Increase in on-chip cores enabled by smaller cores.
//!
//! Paper reference: the benefit saturates quickly — even infinitesimal
//! cores cannot exceed ~12–13 next-generation cores, because freeing core
//! area at most doubles the cache per core while proportional scaling
//! needs 4×.

use bandwall_experiments::{header, paper_baseline, sweep::{run_next_generation_sweep, Variant}};
use bandwall_model::{ScalingProblem, Technique};

fn main() {
    header("Figure 8", "Cores enabled by smaller cores");
    let mut variants = vec![Variant::new("1x (full-size)", None, Some(11))];
    for reduction in [9.0, 45.0, 80.0] {
        variants.push(Variant::new(
            format!("{reduction:.0}x smaller"),
            Some(Technique::smaller_cores(1.0 / reduction).expect("valid")),
            None,
        ));
    }
    run_next_generation_sweep(&variants);

    // The limit case the paper derives analytically: cores of zero area
    // leave all 32 CEAs as cache, and (P/8)·(32/P)^-0.5 = 1 at P ≈ 12.7.
    let p = ScalingProblem::new(paper_baseline(), 32.0)
        .with_technique(Technique::smaller_cores(1e-6).expect("valid"));
    println!();
    println!(
        "limit (infinitesimal cores): {} cores — cache per core can at most double",
        p.max_supportable_cores().unwrap()
    );

    // The paper's caveat: "with increasingly smaller cores, the
    // interconnection between cores becomes increasingly larger".
    let taxed = ScalingProblem::new(paper_baseline(), 32.0)
        .with_technique(Technique::smaller_cores(1.0 / 80.0).expect("valid"))
        .with_uncore_overhead(0.5);
    println!(
        "with 0.5 CEA/core of interconnect, 80x-smaller cores support only {}",
        taxed.max_supportable_cores().unwrap()
    );
}
