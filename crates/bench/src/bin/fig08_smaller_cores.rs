//! Figure 8 — Increase in on-chip cores enabled by smaller cores.
//!
//! Paper reference: the benefit saturates quickly — even infinitesimal
//! cores cannot exceed ~12–13 next-generation cores, because freeing core
//! area at most doubles the cache per core while proportional scaling
//! needs 4×.

fn main() {
    bandwall_experiments::registry::run_main("fig08_smaller_cores");
}
