//! Figure 6 — Increase in on-chip cores enabled by 3D-stacked caches.
//!
//! Paper reference: no-3D 11 cores; one stacked SRAM die 14; stacked DRAM
//! dies at 8×/16× density 25/32 — super-proportional scaling.

fn main() {
    bandwall_experiments::registry::run_main("fig06_3d_cache");
}
