//! Figure 6 — Increase in on-chip cores enabled by 3D-stacked caches.
//!
//! Paper reference: no-3D 11 cores; one stacked SRAM die 14; stacked DRAM
//! dies at 8×/16× density 25/32 — super-proportional scaling.

use bandwall_experiments::{header, sweep::{run_next_generation_sweep, Variant}};
use bandwall_model::Technique;

fn main() {
    header("Figure 6", "Cores enabled by 3D-stacked caches");
    let variants = vec![
        Variant::new("No 3D Cache", None, Some(11)),
        Variant::new(
            "3D SRAM",
            Some(Technique::stacked_cache(1).expect("valid")),
            Some(14),
        ),
        Variant::new(
            "3D DRAM (8x)",
            Some(Technique::stacked_dram_cache(1, 8.0).expect("valid")),
            Some(25),
        ),
        Variant::new(
            "3D DRAM (16x)",
            Some(Technique::stacked_dram_cache(1, 16.0).expect("valid")),
            Some(32),
        ),
    ];
    run_next_generation_sweep(&variants);
}
