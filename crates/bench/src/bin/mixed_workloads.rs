//! Extension experiment — core scaling for multi-programmed workload
//! mixes.
//!
//! The paper assumes one workload character per chip; a consolidation
//! server runs a blend. This experiment sweeps the commercial/SPEC blend
//! ratio and shows the supportable core count interpolating between the
//! two pure chips — non-linearly, because the cache-insensitive SPEC
//! share (α = 0.25) drags the chip harder than its share suggests.

fn main() {
    bandwall_experiments::registry::run_main("mixed_workloads");
}
