//! Extension experiment — core scaling for multi-programmed workload
//! mixes.
//!
//! The paper assumes one workload character per chip; a consolidation
//! server runs a blend. This experiment sweeps the commercial/SPEC blend
//! ratio and shows the supportable core count interpolating between the
//! two pure chips — non-linearly, because the cache-insensitive SPEC
//! share (α = 0.25) drags the chip harder than its share suggests.

use bandwall_experiments::{die_budget, header, paper_baseline, render::Table, GENERATION_LABELS};
use bandwall_model::mix::{WorkloadClass, WorkloadMix};
use bandwall_model::Alpha;

fn mix(commercial_share: f64) -> WorkloadMix {
    let mut classes = Vec::new();
    if commercial_share > 0.0 {
        classes.push(
            WorkloadClass::new(
                "commercial",
                Alpha::COMMERCIAL_AVERAGE,
                1.0,
                commercial_share,
            )
            .expect("valid class"),
        );
    }
    if commercial_share < 1.0 {
        classes.push(
            WorkloadClass::new("spec", Alpha::SPEC2006, 1.0, 1.0 - commercial_share)
                .expect("valid class"),
        );
    }
    WorkloadMix::new(paper_baseline(), classes).expect("non-empty mix")
}

fn main() {
    header(
        "Mixed workloads",
        "supportable cores vs commercial/SPEC blend (constant envelope)",
    );
    let mut table = Table::new(&[
        "commercial share",
        GENERATION_LABELS[0],
        GENERATION_LABELS[1],
        GENERATION_LABELS[2],
        GENERATION_LABELS[3],
    ]);
    for share in [1.0, 0.75, 0.5, 0.25, 0.0] {
        let m = mix(share);
        let mut row = vec![format!("{:.0}%", share * 100.0)];
        for g in 1..=4u32 {
            row.push(
                m.max_supportable_cores(die_budget(g), 1.0)
                    .expect("feasible")
                    .to_string(),
            );
        }
        table.row_owned(row);
    }
    table.print();
    println!();
    println!("pure commercial (α=0.5) vs pure SPEC (α=0.25) anchors match Figure 17's");
    println!("BASE rows; blends interpolate, weighted toward the insensitive class");
}
