//! Figure 9 — Increase in on-chip cores enabled by link compression.
//!
//! Paper reference: a direct technique — 2× link compression restores
//! exact proportional scaling (16 cores); higher ratios go
//! super-proportional (~20 at 3.5×).

fn main() {
    bandwall_experiments::registry::run_main("fig09_link_compression");
}
