//! Figure 9 — Increase in on-chip cores enabled by link compression.
//!
//! Paper reference: a direct technique — 2× link compression restores
//! exact proportional scaling (16 cores); higher ratios go
//! super-proportional (~20 at 3.5×).

use bandwall_experiments::{header, sweep::{run_next_generation_sweep, Variant}};
use bandwall_model::Technique;

fn main() {
    header("Figure 9", "Cores enabled by link compression");
    let mut variants = vec![Variant::new("No Compress", None, Some(11))];
    for (ratio, paper) in [
        (1.25, None),
        (1.5, None),
        (1.75, None),
        (2.0, Some(16)),
        (2.5, None),
        (3.0, None),
        (3.5, None),
        (4.0, None),
    ] {
        variants.push(Variant::new(
            format!("{ratio}x"),
            Some(Technique::link_compression(ratio).expect("valid")),
            paper,
        ));
    }
    run_next_generation_sweep(&variants);
    println!();
    println!("direct techniques divide the traffic itself — no -α dampening");
}
