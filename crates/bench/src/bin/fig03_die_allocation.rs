//! Figure 3 — Die-area allocation for cores and the number of
//! supportable cores under a constant memory-traffic requirement.
//!
//! Paper reference: at 16× scaling only ~10% of the die can go to cores
//! (24 cores vs 128 proportional); the core share keeps shrinking at
//! every further generation.

fn main() {
    bandwall_experiments::registry::run_main("fig03_die_allocation");
}
