//! Figure 3 — Die-area allocation for cores and the number of
//! supportable cores under a constant memory-traffic requirement.
//!
//! Paper reference: at 16× scaling only ~10% of the die can go to cores
//! (24 cores vs 128 proportional); the core share keeps shrinking at
//! every further generation.

use bandwall_experiments::{header, paper_baseline, render::Table};
use bandwall_model::ScalingProblem;

fn main() {
    header("Figure 3", "Die allocation vs scaling ratio (constant traffic)");
    let baseline = paper_baseline();

    let mut table = Table::new(&[
        "scaling",
        "total CEAs",
        "supportable cores",
        "ideal cores",
        "% area for cores",
    ]);
    for g in 0..=7u32 {
        let ratio = 2f64.powi(g as i32);
        let n2 = baseline.total_ceas() * ratio;
        let problem = ScalingProblem::new(baseline, n2);
        let cores = problem.max_supportable_cores().unwrap();
        table.row_owned(vec![
            format!("{}x", ratio as u64),
            format!("{n2:.0}"),
            cores.to_string(),
            problem.proportional_cores().to_string(),
            format!("{:.1}%", problem.core_area_fraction(cores) * 100.0),
        ]);
    }
    table.print();
    println!();
    println!("paper anchors: 16x -> 24 cores on ~10% of the die (vs 128 proportional)");
}
