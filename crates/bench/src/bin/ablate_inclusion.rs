//! Ablation (DESIGN.md) — inclusion policy vs off-chip traffic.
//!
//! The analytical model counts cache capacity in CEAs without caring how
//! the hierarchy divides it. This ablation checks that assumption:
//! non-inclusive, inclusive, and exclusive L1/L2 arrangements of the same
//! silicon are simulated across working-set sizes. Exclusive caching
//! behaves like a slightly larger cache (L1+L2 distinct lines), inclusive
//! like a slightly smaller one — second-order effects next to the
//! capacity itself, which is what the model captures.

use bandwall_cache_sim::{CacheConfig, InclusionPolicy, TwoLevelHierarchy};
use bandwall_experiments::{header, render::Table};
use bandwall_trace::{TraceSource, ZipfTrace};

const ACCESSES: usize = 150_000;

fn traffic(inclusion: InclusionPolicy, working_set_lines: usize) -> u64 {
    let mut h = TwoLevelHierarchy::new(
        CacheConfig::new(8 << 10, 64, 4).expect("valid L1"), // 128 lines
        CacheConfig::new(32 << 10, 64, 8).expect("valid L2"), // 512 lines
    )
    .with_inclusion(inclusion);
    let mut trace = ZipfTrace::builder(working_set_lines, 0.3)
        .seed(42)
        .build();
    for a in trace.iter().take(ACCESSES) {
        h.access(a.address(), a.kind().is_write());
    }
    h.memory_traffic().total_bytes()
}

fn main() {
    header(
        "Ablation",
        "inclusion policy vs off-chip traffic (8 KB L1 + 32 KB L2)",
    );
    let mut table = Table::new(&[
        "working set",
        "non-inclusive",
        "inclusive",
        "exclusive",
        "excl/incl",
    ]);
    for ws in [256usize, 512, 640, 768, 1024, 2048] {
        let ni = traffic(InclusionPolicy::NonInclusive, ws);
        let inc = traffic(InclusionPolicy::Inclusive, ws);
        let exc = traffic(InclusionPolicy::Exclusive, ws);
        table.row_owned(vec![
            format!("{} KB", ws * 64 / 1024),
            format!("{} KB", ni / 1024),
            format!("{} KB", inc / 1024),
            format!("{} KB", exc / 1024),
            format!("{:.2}", exc as f64 / inc as f64),
        ]);
    }
    table.print();
    println!();
    println!("exclusive wins most around working sets between L2 and L1+L2 capacity;");
    println!("the spread is small next to capacity scaling itself, supporting the");
    println!("model's CEA-counting abstraction");
}
