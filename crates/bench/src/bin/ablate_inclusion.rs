//! Ablation (DESIGN.md) — inclusion policy vs off-chip traffic.
//!
//! The analytical model counts cache capacity in CEAs without caring how
//! the hierarchy divides it. This ablation checks that assumption:
//! non-inclusive, inclusive, and exclusive L1/L2 arrangements of the same
//! silicon are simulated across working-set sizes. Exclusive caching
//! behaves like a slightly larger cache (L1+L2 distinct lines), inclusive
//! like a slightly smaller one — second-order effects next to the
//! capacity itself, which is what the model captures.

fn main() {
    bandwall_experiments::registry::run_main("ablate_inclusion");
}
