//! Table 2 — Summary of memory-traffic reduction techniques: assumption
//! bands plus the paper's qualitative effectiveness / variability /
//! complexity assessment, alongside the solved next-generation core
//! counts for each band.

use bandwall_experiments::{die_budget, header, paper_baseline, render::Table};
use bandwall_model::{catalog, AssumptionLevel, ScalingProblem};

fn main() {
    header("Table 2", "Summary of memory-traffic reduction techniques");
    let mut table = Table::new(&[
        "Technique",
        "Label",
        "Realistic",
        "Pessimistic",
        "Optimistic",
        "Effect.",
        "Range",
        "Complex.",
        "cores @2x (P/R/O)",
    ]);
    for profile in catalog() {
        let cores: Vec<String> = AssumptionLevel::ALL
            .iter()
            .map(|&level| {
                ScalingProblem::new(paper_baseline(), die_budget(1))
                    .with_technique(profile.technique(level).unwrap())
                    .max_supportable_cores()
                    .unwrap()
                    .to_string()
            })
            .collect();
        table.row_owned(vec![
            profile.name().to_string(),
            profile.label().to_string(),
            profile.assumption_text(AssumptionLevel::Realistic).to_string(),
            profile
                .assumption_text(AssumptionLevel::Pessimistic)
                .to_string(),
            profile
                .assumption_text(AssumptionLevel::Optimistic)
                .to_string(),
            profile.effectiveness().to_string(),
            profile.range().to_string(),
            profile.complexity().to_string(),
            cores.join("/"),
        ]);
    }
    table.print();
    println!();
    println!("category reminder: CC/DRAM/3D/Fltr/SmCo indirect; LC/Sect direct; SmCl, CC/LC dual");
}
