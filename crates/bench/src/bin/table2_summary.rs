//! Table 2 — Summary of memory-traffic reduction techniques: assumption
//! bands plus the paper's qualitative effectiveness / variability /
//! complexity assessment, alongside the solved next-generation core
//! counts for each band.

fn main() {
    bandwall_experiments::registry::run_main("table2_summary");
}
