//! Extension experiment — how close does a real spatial-footprint
//! predictor get to the paper's sectored-cache oracle?
//!
//! Figure 10 assumes sectored caches fetch exactly the referenced
//! sectors. A last-footprint predictor (per the paper's citations
//! [9, 17, 21]) learns each line's footprint from its previous residency.
//! This experiment compares demand-fetch sectoring, the predictor, and
//! the oracle assumption, and feeds the measured savings back into the
//! core-scaling model.

fn main() {
    bandwall_experiments::registry::run_main("predictor_study");
}
