//! Extension experiment — how close does a real spatial-footprint
//! predictor get to the paper's sectored-cache oracle?
//!
//! Figure 10 assumes sectored caches fetch exactly the referenced
//! sectors. A last-footprint predictor (per the paper's citations
//! [9, 17, 21]) learns each line's footprint from its previous residency.
//! This experiment compares demand-fetch sectoring, the predictor, and
//! the oracle assumption, and feeds the measured savings back into the
//! core-scaling model.

use bandwall_cache_sim::{CacheConfig, PredictiveSectoredCache, SectoredCache};
use bandwall_experiments::{header, paper_baseline, render::Table};
use bandwall_model::{ScalingProblem, Technique};
use bandwall_trace::{StackDistanceTrace, TraceSource};

const ACCESSES: usize = 300_000;

fn workload() -> StackDistanceTrace {
    // Touches 5 of 8 words per line over a line's lifetime (37.5% unused).
    StackDistanceTrace::builder(0.5)
        .seed(61)
        .touched_words(5)
        .max_distance(1 << 13)
        .build()
}

fn main() {
    header(
        "Predictor study",
        "sectored-cache fetch savings: demand vs predictor vs oracle",
    );
    let config = CacheConfig::new(64 << 10, 64, 8).expect("valid geometry");

    let mut demand = SectoredCache::new(config, 8);
    let mut trace = workload();
    for a in trace.iter().take(ACCESSES) {
        demand.access(a.address(), a.kind().is_write());
    }

    let mut predictive = PredictiveSectoredCache::new(config, 8);
    let mut trace = workload();
    for a in trace.iter().take(ACCESSES) {
        predictive.access(a.address(), a.kind().is_write());
    }

    let oracle_savings = 0.375; // the static unused fraction

    let mut table = Table::new(&[
        "scheme",
        "fetch savings",
        "misses",
        "overfetch",
        "model cores @2x",
    ]);
    let cores_for = |savings: f64| {
        ScalingProblem::new(paper_baseline(), 32.0)
            .with_technique(Technique::sectored_cache(savings).expect("valid"))
            .max_supportable_cores()
            .unwrap()
            .to_string()
    };
    table.row_owned(vec![
        "demand-fetch sectors".to_string(),
        format!("{:.1}%", demand.fetch_savings() * 100.0),
        demand.stats().misses().to_string(),
        "-".to_string(),
        cores_for(demand.fetch_savings()),
    ]);
    table.row_owned(vec![
        "last-footprint predictor".to_string(),
        format!("{:.1}%", predictive.fetch_savings() * 100.0),
        predictive.stats().misses().to_string(),
        format!("{:.1}%", predictive.overfetch_fraction() * 100.0),
        cores_for(predictive.fetch_savings()),
    ]);
    table.row_owned(vec![
        "oracle (paper assumption)".to_string(),
        format!("{:.1}%", oracle_savings * 100.0),
        "-".to_string(),
        "0.0%".to_string(),
        cores_for(oracle_savings),
    ]);
    table.print();
    println!();
    println!("demand fetching over-saves (short residencies touch few sectors) at the");
    println!("price of extra sector misses; the predictor recovers most of those misses");
    println!("while keeping savings near the oracle's — Figure 10's assumption is");
    println!("implementable, as the paper's citations claim");
}
