//! Figure 7 — Increase in on-chip cores enabled by filtering unused data
//! from the cache.
//!
//! Paper reference: at the realistic 40% unused data the benefit is one
//! extra core (12); the optimistic 80% reaches proportional scaling (16).

fn main() {
    bandwall_experiments::registry::run_main("fig07_filtering");
}
