//! Figure 7 — Increase in on-chip cores enabled by filtering unused data
//! from the cache.
//!
//! Paper reference: at the realistic 40% unused data the benefit is one
//! extra core (12); the optimistic 80% reaches proportional scaling (16).

use bandwall_experiments::{header, sweep::{run_next_generation_sweep, Variant}};
use bandwall_model::Technique;

fn main() {
    header("Figure 7", "Cores enabled by unused-data filtering");
    let mut variants = vec![Variant::new("No Filtering", None, Some(11))];
    for (fraction, paper) in [(0.1, None), (0.2, None), (0.4, Some(12)), (0.8, Some(16))] {
        variants.push(Variant::new(
            format!("{:.0}% unused", fraction * 100.0),
            Some(Technique::unused_data_filter(fraction).expect("valid")),
            paper,
        ));
    }
    run_next_generation_sweep(&variants);
    println!();
    println!("indirect benefit only: the capacity gain is dampened by the -α exponent");
}
