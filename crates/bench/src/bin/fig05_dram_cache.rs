//! Figure 5 — Increase in on-chip cores enabled by DRAM caches.
//!
//! Paper reference: SRAM baseline 11 cores; DRAM L2 at 4×/8×/16× density
//! reaches 16/18/21 — proportional scaling already at the conservative 4×.

fn main() {
    bandwall_experiments::registry::run_main("fig05_dram_cache");
}
