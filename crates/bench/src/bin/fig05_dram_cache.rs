//! Figure 5 — Increase in on-chip cores enabled by DRAM caches.
//!
//! Paper reference: SRAM baseline 11 cores; DRAM L2 at 4×/8×/16× density
//! reaches 16/18/21 — proportional scaling already at the conservative 4×.

use bandwall_experiments::{header, sweep::{run_next_generation_sweep, Variant}};
use bandwall_model::Technique;

fn main() {
    header("Figure 5", "Cores enabled by DRAM caches");
    let variants = vec![
        Variant::new("SRAM L2", None, Some(11)),
        Variant::new(
            "DRAM L2 (4x)",
            Some(Technique::dram_cache(4.0).expect("valid")),
            Some(16),
        ),
        Variant::new(
            "DRAM L2 (8x)",
            Some(Technique::dram_cache(8.0).expect("valid")),
            Some(18),
        ),
        Variant::new(
            "DRAM L2 (16x)",
            Some(Technique::dram_cache(16.0).expect("valid")),
            Some(21),
        ),
    ];
    run_next_generation_sweep(&variants);
    println!();
    println!("proportional scaling target: 16 cores — met by the conservative 4x density");
}
