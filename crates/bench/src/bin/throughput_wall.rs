//! Supporting experiment (Section 1) — the throughput plateau behind the
//! bandwidth wall, shown two independent ways:
//!
//! 1. the analytical [`ThroughputModel`]: cores beyond the traffic
//!    crossover are throttled until their request rate matches the
//!    envelope;
//! 2. a closed-loop discrete-event simulation of cores sharing one
//!    bandwidth-limited DRAM channel.
//!
//! Both show chip throughput rising linearly, then pinning at a plateau
//! set by bandwidth — "adding more cores to the chip no longer yields any
//! additional throughput".

use bandwall_cache_sim::{simulate_throughput, ThroughputSimConfig};
use bandwall_experiments::{header, paper_baseline, render::{bar, Table}};
use bandwall_model::ThroughputModel;

fn main() {
    header("Throughput wall", "chip throughput vs core count (analytic + simulated)");

    println!("analytic model (32-CEA die, constant envelope):");
    let model = ThroughputModel::new(paper_baseline(), 32.0);
    let mut table = Table::new(&["cores", "chip throughput", "", "per-core", "BW util"]);
    for p in model.curve((2..=30).step_by(2)).expect("feasible points") {
        table.row_owned(vec![
            p.cores.to_string(),
            format!("{:.2}", p.throughput),
            bar(p.throughput, 12.0, 24),
            format!("{:.2}", p.per_core_throughput),
            format!("{:.0}%", p.bandwidth_utilization * 100.0),
        ]);
    }
    table.print();
    println!(
        "plateau: {:.2} baseline-core equivalents (the Figure 2 crossover)",
        model.plateau_throughput().unwrap()
    );

    println!("\nclosed-loop simulation (shared DRAM channel, 4 B/cycle, 200-cycle latency):");
    let mut sim_table = Table::new(&["cores", "IPC", "", "queue delay", "BW util"]);
    for cores in [1u16, 2, 4, 8, 12, 16, 24, 32] {
        let result = simulate_throughput(ThroughputSimConfig {
            cores,
            misses_per_instruction: 0.02,
            line_bytes: 64,
            bytes_per_cycle: 4.0,
            access_latency: 200,
            instructions_per_core: 200_000,
        });
        sim_table.row_owned(vec![
            cores.to_string(),
            format!("{:.2}", result.ipc),
            bar(result.ipc, 4.0, 24),
            format!("{:.0} cyc", result.average_queue_delay),
            format!("{:.0}%", result.channel_utilization * 100.0),
        ]);
    }
    sim_table.print();
    println!();
    println!("bandwidth bound: 4 B/cycle / (0.02 miss/instr x 64 B) = 3.13 IPC —");
    println!("the simulated plateau; queueing delay explodes exactly at saturation");
}
