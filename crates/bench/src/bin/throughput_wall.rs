//! Supporting experiment (Section 1) — the throughput plateau behind the
//! bandwidth wall, shown two independent ways:
//!
//! 1. the analytical `ThroughputModel`: cores beyond the traffic
//!    crossover are throttled until their request rate matches the
//!    envelope;
//! 2. a closed-loop discrete-event simulation of cores sharing one
//!    bandwidth-limited DRAM channel.
//!
//! Both show chip throughput rising linearly, then pinning at a plateau
//! set by bandwidth — "adding more cores to the chip no longer yields any
//! additional throughput".

fn main() {
    bandwall_experiments::registry::run_main("throughput_wall");
}
