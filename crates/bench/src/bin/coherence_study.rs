//! Extension experiment (Section 6.3, footnote 1) — private coherent
//! caches vs a shared cache under data sharing.
//!
//! The paper's footnote: with private caches a shared block is replicated
//! at every sharer, so sharing reclaims no capacity (only fetch traffic).
//! This experiment runs the PARSEC-like workload on (a) a shared L2 and
//! (b) private caches kept coherent by a full-map MSI directory, sweeping
//! the shared-access fraction, and reports off-chip traffic plus the
//! coherence activity the analytical model abstracts away.

fn main() {
    bandwall_experiments::registry::run_main("coherence_study");
}
