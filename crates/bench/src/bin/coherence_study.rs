//! Extension experiment (Section 6.3, footnote 1) — private coherent
//! caches vs a shared cache under data sharing.
//!
//! The paper's footnote: with private caches a shared block is replicated
//! at every sharer, so sharing reclaims no capacity (only fetch traffic).
//! This experiment runs the PARSEC-like workload on (a) a shared L2 and
//! (b) private caches kept coherent by a full-map MSI directory, sweeping
//! the shared-access fraction, and reports off-chip traffic plus the
//! coherence activity the analytical model abstracts away.

use bandwall_cache_sim::{CacheConfig, CmpSystem, CoherentCmp, L2Organization};
use bandwall_experiments::{header, render::Table};
use bandwall_trace::{ParsecLikeTrace, TraceSource};

const CORES: u16 = 8;
const ACCESSES: usize = 300_000;

fn trace(shared_fraction: f64) -> ParsecLikeTrace {
    ParsecLikeTrace::builder_with_regions(CORES, 2000, 1500)
        .shared_access_fraction(shared_fraction)
        .seed(91)
        .build()
}

fn main() {
    header(
        "Coherence study",
        "shared L2 vs private MSI caches under data sharing (8 cores)",
    );
    let mut table = Table::new(&[
        "shared accesses",
        "shared-L2 traffic",
        "private-MSI traffic",
        "ratio",
        "invalidations",
        "c2c transfers",
    ]);
    for fsh in [0.0, 0.2, 0.4, 0.6] {
        // Shared L2: one 512 KB cache.
        let mut shared = CmpSystem::new(
            CORES,
            CacheConfig::new(512, 64, 2).expect("valid L1"),
            CacheConfig::new(512 << 10, 64, 8).expect("valid L2"),
            L2Organization::Shared,
        );
        let mut t = trace(fsh);
        for a in t.iter().take(ACCESSES) {
            shared.access(a);
        }
        // Private MSI: eight 64 KB caches (same total silicon).
        let mut private = CoherentCmp::new(CORES, CacheConfig::new(64 << 10, 64, 8).unwrap());
        let mut t = trace(fsh);
        for a in t.iter().take(ACCESSES) {
            private.access(a);
        }
        let s = shared.memory_traffic().total_bytes();
        let p = private.memory_traffic().total_bytes();
        table.row_owned(vec![
            format!("{:.0}%", fsh * 100.0),
            format!("{} KB", s / 1024),
            format!("{} KB", p / 1024),
            format!("{:.2}", p as f64 / s as f64),
            private.coherence().invalidations().to_string(),
            private.coherence().cache_to_cache_transfers().to_string(),
        ]);
    }
    table.print();
    println!();
    println!("replication makes private caches fall further behind as sharing grows —");
    println!("the capacity effect footnote 1 describes; MSI keeps the extra traffic on");
    println!("chip (cache-to-cache) but cannot recover the wasted capacity");
}
