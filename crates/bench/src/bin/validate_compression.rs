//! Supporting experiment (Sections 6.1–6.3) — deriving the compression
//! ratios the model assumes.
//!
//! The paper takes cache-compression ratios of 1.4–2.1× (commercial),
//! 1.7–2.4× (integer), 1.0–1.3× (floating-point) and ~2× link
//! compression from the literature. Here the actual engines (FPC, BDI,
//! zero-RLE, value-locality dictionary) run over synthetic value streams
//! with those workloads' value mixes, reproducing the parameter regime
//! instead of assuming it.

use bandwall_compress::{evaluate, Bdi, BestOf, Compressor, Fpc, LinkCompressor, ZeroRle};
use bandwall_experiments::{header, render::Table};
use bandwall_trace::values::{LineValueGenerator, ValueProfile};

const LINES: u64 = 4000;

fn ratios(profile: ValueProfile) -> Vec<(String, f64)> {
    let values = LineValueGenerator::new(profile, 77);
    let lines: Vec<Vec<u8>> = (0..LINES).map(|l| values.line_bytes(l * 64, 64)).collect();
    let engines: Vec<Box<dyn Compressor>> = vec![
        Box::new(Fpc::new()),
        Box::new(Bdi::new()),
        Box::new(ZeroRle::new()),
        Box::new(BestOf::standard()),
    ];
    let mut out = Vec::new();
    for engine in &engines {
        let stats = evaluate(engine.as_ref(), lines.iter().map(|l| l.as_slice()));
        out.push((engine.name().to_string(), stats.ratio()));
    }
    // The streaming link compressor sees the same lines as a stream.
    let mut link = LinkCompressor::new();
    for line in &lines {
        link.transfer(line);
    }
    out.push(("Link-dict".to_string(), link.stats().ratio()));
    out
}

fn main() {
    header(
        "Validation (Sec. 6.1-6.3)",
        "compression ratios derived from real engines",
    );
    let profiles = [
        (ValueProfile::commercial(), "paper: 1.4-2.1x (cache), ~2x (link)"),
        (ValueProfile::integer(), "paper: 1.7-2.4x"),
        (ValueProfile::floating_point(), "paper: 1.0-1.3x"),
    ];
    for (profile, note) in profiles {
        println!("\nvalue profile: {}   [{note}]", profile.name());
        let mut table = Table::new(&["engine", "compression ratio"]);
        for (name, ratio) in ratios(profile) {
            table.row_owned(vec![name, format!("{ratio:.2}x")]);
        }
        table.print();
    }
    println!();
    println!("these measured ratios justify Table 2's pessimistic/realistic/optimistic");
    println!("bands (1.25x / 2x / 3.5x) used by Figures 4, 9, and 12");
}
