//! Supporting experiment (Sections 6.1–6.3) — deriving the compression
//! ratios the model assumes.
//!
//! The paper takes cache-compression ratios of 1.4–2.1× (commercial),
//! 1.7–2.4× (integer), 1.0–1.3× (floating-point) and ~2× link
//! compression from the literature. Here the actual engines (FPC, BDI,
//! zero-RLE, value-locality dictionary) run over synthetic value streams
//! with those workloads' value mixes, reproducing the parameter regime
//! instead of assuming it.

fn main() {
    bandwall_experiments::registry::run_main("validate_compression");
}
