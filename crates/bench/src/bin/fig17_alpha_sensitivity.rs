//! Figure 17 — Core scaling with select techniques for a high and a low
//! workload exponent α.
//!
//! Paper reference: α = 0.62 (OLTP-4) vs α = 0.25 (SPEC 2006 aggregate).
//! In the base case the large α supports almost twice the cores; with
//! techniques applied, the gap widens — a small α blocks proportional
//! scaling while a large α permits super-proportional scaling.

use bandwall_experiments::{die_budget, header, paper_baseline, render::Table, GENERATIONS, GENERATION_LABELS};
use bandwall_model::combination::Combination;
use bandwall_model::{Alpha, AssumptionLevel, ScalingProblem};

fn main() {
    header("Figure 17", "Core scaling for high and low α");
    let groups: Vec<(&str, Vec<&str>)> = vec![
        ("BASE", vec![]),
        ("DRAM", vec!["DRAM"]),
        ("CC/LC + DRAM", vec!["CC/LC", "DRAM"]),
        ("CC/LC + DRAM + 3D", vec!["CC/LC", "DRAM", "3D"]),
    ];
    let alphas = [
        ("α = 0.62", Alpha::COMMERCIAL_MAX),
        ("α = 0.25", Alpha::SPEC2006),
    ];

    for (alpha_label, alpha) in alphas {
        println!("\n--- {alpha_label} ---");
        let baseline = paper_baseline().with_alpha(alpha);
        let mut table = Table::new(&[
            "configuration",
            GENERATION_LABELS[0],
            GENERATION_LABELS[1],
            GENERATION_LABELS[2],
            GENERATION_LABELS[3],
        ]);
        table.row_owned(
            std::iter::once("IDEAL".to_string())
                .chain(GENERATIONS.iter().map(|&g| {
                    ScalingProblem::new(baseline, die_budget(g))
                        .proportional_cores()
                        .to_string()
                }))
                .collect(),
        );
        for (name, labels) in &groups {
            let combo =
                Combination::from_labels(labels, AssumptionLevel::Realistic).expect("labels");
            let mut row = vec![name.to_string()];
            for &g in &GENERATIONS {
                let cores = ScalingProblem::new(baseline, die_budget(g))
                    .with_techniques(combo.techniques().iter().copied())
                    .max_supportable_cores()
                    .unwrap();
                row.push(cores.to_string());
            }
            table.row_owned(row);
        }
        table.print();
    }

    println!();
    let hi = ScalingProblem::new(paper_baseline().with_alpha(Alpha::COMMERCIAL_MAX), 256.0)
        .max_supportable_cores()
        .unwrap();
    let lo = ScalingProblem::new(paper_baseline().with_alpha(Alpha::SPEC2006), 256.0)
        .max_supportable_cores()
        .unwrap();
    println!(
        "base case at 16x: α=0.62 -> {hi} cores vs α=0.25 -> {lo} cores ({:.1}x)",
        hi as f64 / lo as f64
    );
}
