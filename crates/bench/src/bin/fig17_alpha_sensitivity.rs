//! Figure 17 — Core scaling with select techniques for a high and a low
//! workload exponent α.
//!
//! Paper reference: α = 0.62 (OLTP-4) vs α = 0.25 (SPEC 2006 aggregate).
//! In the base case the large α supports almost twice the cores; with
//! techniques applied, the gap widens — a small α blocks proportional
//! scaling while a large α permits super-proportional scaling.

fn main() {
    bandwall_experiments::registry::run_main("fig17_alpha_sensitivity");
}
