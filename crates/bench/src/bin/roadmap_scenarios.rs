//! Supporting experiment (Section 1) — core scaling under realistic
//! bandwidth-growth roadmaps.
//!
//! The paper's headline analysis freezes the envelope (B = 1). This
//! experiment re-runs the four-generation sweep under the ITRS pin
//! projection the paper cites (+10%/year → ~1.15x per generation) and an
//! aggressive signalling scenario, showing that even optimistic envelope
//! growth leaves core scaling far below proportional.

use bandwall_experiments::{header, paper_baseline, render::Table, GENERATION_LABELS};
use bandwall_model::roadmap::BandwidthScenario;
use bandwall_model::GenerationSweep;

fn main() {
    header("Roadmap scenarios", "core scaling under envelope-growth projections");
    let scenarios = [
        BandwidthScenario::constant(),
        BandwidthScenario::itrs_2005(),
        BandwidthScenario::aggressive_signalling(),
    ];
    let mut table = Table::new(&[
        "scenario",
        "B/gen",
        GENERATION_LABELS[0],
        GENERATION_LABELS[1],
        GENERATION_LABELS[2],
        GENERATION_LABELS[3],
    ]);
    // Proportional reference row.
    table.row(&["IDEAL (proportional)", "-", "16", "32", "64", "128"]);
    for scenario in &scenarios {
        let results = GenerationSweep::new(paper_baseline())
            .with_bandwidth_growth_per_generation(scenario.growth_per_generation())
            .run(4)
            .expect("sweep");
        let mut row = vec![
            scenario.name().to_string(),
            format!("{:.3}", scenario.growth_per_generation()),
        ];
        row.extend(results.iter().map(|r| r.supportable_cores.to_string()));
        table.row_owned(row);
    }
    table.print();
    println!();
    println!("even the aggressive scenario (pins +10%/yr and rates +20%/yr) leaves the");
    println!("fourth generation far short of the 128-core proportional target");
}
