//! Supporting experiment (Section 1) — core scaling under realistic
//! bandwidth-growth roadmaps.
//!
//! The paper's headline analysis freezes the envelope (B = 1). This
//! experiment re-runs the four-generation sweep under the ITRS pin
//! projection the paper cites (+10%/year → ~1.15x per generation) and an
//! aggressive signalling scenario, showing that even optimistic envelope
//! growth leaves core scaling far below proportional.

fn main() {
    bandwall_experiments::registry::run_main("roadmap_scenarios");
}
