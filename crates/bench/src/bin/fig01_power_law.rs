//! Figure 1 — Normalized cache miss rate as a function of cache size.
//!
//! Runs the thirteen synthetic Figure 1 workloads (seven commercial, six
//! SPEC-like) through the exact reuse-distance profiler, normalises each
//! miss-rate curve to its smallest cache size, and fits the power law
//! `m = m0 · (C/C0)^-α` in log–log space.
//!
//! Paper reference: commercial α averages 0.48 (min 0.36 = OLTP-2, max
//! 0.62 = OLTP-4); the SPEC 2006 aggregate fits α = 0.25; individual SPEC
//! applications fit less well (discrete working sets).

fn main() {
    bandwall_experiments::registry::run_main("fig01_power_law");
}
