//! Figure 1 — Normalized cache miss rate as a function of cache size.
//!
//! Runs the thirteen synthetic Figure 1 workloads (seven commercial, six
//! SPEC-like) through the exact reuse-distance profiler, normalises each
//! miss-rate curve to its smallest cache size, and fits the power law
//! `m = m0 · (C/C0)^-α` in log–log space.
//!
//! Paper reference: commercial α averages 0.48 (min 0.36 = OLTP-2, max
//! 0.62 = OLTP-4); the SPEC 2006 aggregate fits α = 0.25; individual SPEC
//! applications fit less well (discrete working sets).

use bandwall_experiments::{header, render::Table};
use bandwall_numerics::PowerLawFit;
use bandwall_trace::suites::{commercial_suite, spec_suite};
use bandwall_trace::{MissRateProbe, StackDistanceTrace, TraceSource, WorkingSetTrace};

const BURN_IN: usize = 80_000;
const MEASURE: usize = 400_000;

/// Cache sizes probed, in 64-byte lines (8 KB … 4 MB).
fn capacities() -> Vec<usize> {
    (7..=16).map(|i| 1usize << i).collect()
}

/// Exact measurement for stack-distance traces: warm the probe with the
/// generator's full footprint so there is no compulsory-miss floor.
fn measure_commercial(trace: &mut StackDistanceTrace, caps: &[usize]) -> Vec<f64> {
    let mut probe = MissRateProbe::new(caps);
    trace.warm_probe(&mut probe);
    for a in trace.iter().take(MEASURE) {
        probe.observe(a.address() / 64);
    }
    probe.miss_rates()
}

/// Burn-in measurement for the discrete-working-set traces.
fn measure_spec(trace: &mut WorkingSetTrace, caps: &[usize]) -> Vec<f64> {
    let mut probe = MissRateProbe::new(caps);
    for a in trace.iter().take(BURN_IN) {
        probe.observe(a.address() / 64);
    }
    probe.reset_counts();
    for a in trace.iter().take(MEASURE) {
        probe.observe(a.address() / 64);
    }
    probe.miss_rates()
}

fn main() {
    header("Figure 1", "Normalized miss rate vs cache size (power-law fits)");
    let caps = capacities();
    let cap_kb: Vec<String> = caps.iter().map(|c| format!("{}K", c * 64 / 1024)).collect();

    let mut table = Table::new(&["workload", "fitted α", "R²", "paper α"]);
    let mut commercial_alphas = Vec::new();
    let mut spec_curves: Vec<Vec<f64>> = Vec::new();

    for trace in &mut commercial_suite(2026) {
        let rates = measure_commercial(trace, &caps);
        let xs: Vec<f64> = caps.iter().map(|&c| c as f64).collect();
        let fit = PowerLawFit::fit(&xs, &rates).expect("positive rates");
        commercial_alphas.push(fit.alpha);
        table.row_owned(vec![
            trace.name().to_string(),
            format!("{:.3}", fit.alpha),
            format!("{:.3}", fit.r_squared),
            format!("{:.2} (configured)", trace.alpha()),
        ]);
    }
    for trace in &mut spec_suite(2026) {
        let rates = measure_spec(trace, &caps);
        spec_curves.push(rates);
    }
    // SPEC aggregate: average the curves, then fit.
    let n = spec_curves.len() as f64;
    let avg: Vec<f64> = (0..caps.len())
        .map(|i| spec_curves.iter().map(|c| c[i]).sum::<f64>() / n)
        .collect();
    let xs: Vec<f64> = caps.iter().map(|&c| c as f64).collect();
    let spec_fit = PowerLawFit::fit(&xs, &avg).expect("positive rates");
    let avg_alpha = commercial_alphas.iter().sum::<f64>() / commercial_alphas.len() as f64;
    let min_alpha = commercial_alphas.iter().cloned().fold(f64::MAX, f64::min);
    let max_alpha = commercial_alphas.iter().cloned().fold(f64::MIN, f64::max);

    table.row_owned(vec![
        "Commercial (AVG)".to_string(),
        format!("{avg_alpha:.3}"),
        String::new(),
        "0.48".to_string(),
    ]);
    table.row_owned(vec![
        "SPEC 2006 (AVG)".to_string(),
        format!("{:.3}", spec_fit.alpha),
        format!("{:.3}", spec_fit.r_squared),
        "0.25".to_string(),
    ]);
    table.print();

    println!();
    println!("probed cache sizes: {}", cap_kb.join(" "));
    println!(
        "commercial α: avg {:.3} (paper 0.48), min {:.3} (paper 0.36), max {:.3} (paper 0.62)",
        avg_alpha, min_alpha, max_alpha
    );
    println!(
        "SPEC aggregate α: {:.3} (paper 0.25)",
        spec_fit.alpha
    );
}
