//! Plain-text rendering: aligned tables and ASCII bar charts.

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Left-aligned (labels).
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// An aligned plain-text table.
///
/// # Examples
///
/// ```
/// use bandwall_experiments::render::Table;
///
/// let mut t = Table::new(&["technique", "cores"]);
/// t.row(&["DRAM", "18"]);
/// t.row(&["3D", "14"]);
/// let out = t.render();
/// assert!(out.contains("DRAM"));
/// assert!(out.lines().count() >= 4);
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; missing cells render empty, extra cells are kept.
    pub fn row(&mut self, cells: &[&str]) -> &mut Self {
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
        self
    }

    /// Appends a row of owned strings.
    pub fn row_owned(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Renders the table with a header underline; the first column is
    /// left-aligned, the rest right-aligned.
    pub fn render(&self) -> String {
        let columns = self
            .rows
            .iter()
            .map(Vec::len)
            .chain([self.headers.len()])
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; columns];
        let all_rows = std::iter::once(&self.headers).chain(&self.rows);
        for row in all_rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let emit = |out: &mut String, row: &[String]| {
            for (i, width) in widths.iter().enumerate() {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                let align = if i == 0 { Align::Left } else { Align::Right };
                let pad = width - cell.chars().count();
                match align {
                    Align::Left => {
                        out.push_str(cell);
                        out.extend(std::iter::repeat_n(' ', pad));
                    }
                    Align::Right => {
                        out.extend(std::iter::repeat_n(' ', pad));
                        out.push_str(cell);
                    }
                }
                if i + 1 < widths.len() {
                    out.push_str("  ");
                }
            }
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        emit(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (columns.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            emit(&mut out, row);
        }
        out
    }

    /// Renders and prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Renders a horizontal ASCII bar of `value` scaled so `max` spans
/// `width` characters.
///
/// # Examples
///
/// ```
/// use bandwall_experiments::render::bar;
///
/// assert_eq!(bar(5.0, 10.0, 10), "#####");
/// assert_eq!(bar(10.0, 10.0, 10), "##########");
/// assert_eq!(bar(0.0, 10.0, 10), "");
/// ```
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 || value <= 0.0 {
        return String::new();
    }
    let n = ((value / max) * width as f64).round() as usize;
    "#".repeat(n.min(width))
}

/// Formats a float with `digits` decimals, trimming to a compact form.
pub fn fnum(value: f64, digits: usize) -> String {
    format!("{value:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["a", "1"]);
        t.row(&["longer", "12345"]);
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        // Header and underline present.
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with('-'));
        // Numbers right-aligned: the ones digit lines up.
        let pos1 = lines[2].rfind('1').unwrap();
        let pos5 = lines[3].rfind('5').unwrap();
        assert_eq!(pos1, pos5);
    }

    #[test]
    fn table_handles_ragged_rows() {
        let mut t = Table::new(&["a"]);
        t.row(&["x", "extra"]);
        t.row(&[]);
        let out = t.render();
        assert_eq!(out.lines().count(), 4);
    }

    #[test]
    fn row_owned_works() {
        let mut t = Table::new(&["a"]);
        t.row_owned(vec!["1".to_string()]);
        assert!(t.render().contains('1'));
    }

    #[test]
    fn bars_scale() {
        assert_eq!(bar(2.5, 10.0, 20), "#####");
        assert_eq!(bar(20.0, 10.0, 10), "##########", "clamped at width");
        assert_eq!(bar(1.0, 0.0, 10), "");
    }

    #[test]
    fn fnum_formats() {
        assert_eq!(fnum(1.23456, 2), "1.23");
        assert_eq!(fnum(2.0, 0), "2");
    }
}
