//! Figure 9 — Increase in on-chip cores enabled by link compression.
//!
//! Paper reference: a direct technique — 2× link compression restores
//! exact proportional scaling (16 cores); higher ratios go
//! super-proportional (~20 at 3.5×).

use crate::error::ExperimentError;
use crate::registry::Experiment;
use crate::report::Report;
use crate::sweep::{add_paper_metrics, sweep_block, CatalogueSweep, Variant};

/// Figure 9: cores enabled by link compression.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fig09LinkCompression;

/// The figure's declared sweep (also served by `POST /v1/sweep`).
pub fn sweep() -> CatalogueSweep {
    let mut sweep = CatalogueSweep::base("No Compress", Some(11));
    for (ratio, paper) in [
        (1.25, None),
        (1.5, None),
        (1.75, None),
        (2.0, Some(16)),
        (2.5, None),
        (3.0, None),
        (3.5, None),
        (4.0, None),
    ] {
        sweep = sweep.point(format!("{ratio}x"), "link_compression", &[ratio], paper);
    }
    sweep
}

/// The figure's sweep points, base first.
pub fn variants() -> Vec<Variant> {
    sweep().into_variants()
}

impl Experiment for Fig09LinkCompression {
    fn id(&self) -> &'static str {
        "fig09_link_compression"
    }

    fn figure(&self) -> &'static str {
        "Figure 9"
    }

    fn title(&self) -> &'static str {
        "Cores enabled by link compression"
    }

    fn sweep(&self) -> Option<CatalogueSweep> {
        Some(sweep())
    }

    fn run(&self) -> Result<Report, ExperimentError> {
        let mut report = Report::new(self.id(), self.figure(), self.title());
        let variants = variants();
        let (table, results) = sweep_block(&variants)?;
        report.table(table);
        report.blank();
        report.note("direct techniques divide the traffic itself — no -α dampening");
        add_paper_metrics(&mut report, &variants, &results);
        Ok(report)
    }
}
