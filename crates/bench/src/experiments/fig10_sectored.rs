//! Figure 10 — Increase in on-chip cores enabled by sectored caches.
//!
//! Paper reference: fetching only referenced sectors removes the unused
//! share of each line from the link. More potent than unused-data
//! *filtering* (Figure 7), especially at high unused fractions, because
//! the effect is direct.

use crate::error::ExperimentError;
use crate::registry::Experiment;
use crate::report::Report;
use crate::sweep::{add_paper_metrics, sweep_block, CatalogueSweep, Variant};

/// Figure 10: cores enabled by sectored caches.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fig10Sectored;

/// The figure's declared sweep (also served by `POST /v1/sweep`).
pub fn sweep() -> CatalogueSweep {
    let mut sweep = CatalogueSweep::base("0% unused", Some(11));
    for (fraction, paper) in [(0.1, None), (0.2, None), (0.4, Some(14)), (0.8, None)] {
        sweep = sweep.point(
            format!("{:.0}% unused", fraction * 100.0),
            "sectored_cache",
            &[fraction],
            paper,
        );
    }
    sweep
}

/// The figure's sweep points, base first.
pub fn variants() -> Vec<Variant> {
    sweep().into_variants()
}

impl Experiment for Fig10Sectored {
    fn id(&self) -> &'static str {
        "fig10_sectored"
    }

    fn figure(&self) -> &'static str {
        "Figure 10"
    }

    fn title(&self) -> &'static str {
        "Cores enabled by sectored caches"
    }

    fn sweep(&self) -> Option<CatalogueSweep> {
        Some(sweep())
    }

    fn run(&self) -> Result<Report, ExperimentError> {
        let mut report = Report::new(self.id(), self.figure(), self.title());
        let variants = variants();
        let (table, results) = sweep_block(&variants)?;
        report.table(table);
        report.blank();
        report.note("compare Figure 7: the same unused fractions help more when applied directly");
        add_paper_metrics(&mut report, &variants, &results);
        Ok(report)
    }
}
