//! Figure 4 — Increase in on-chip cores enabled by cache compression
//! (32 CEAs, constant traffic).
//!
//! Paper reference: 1.3×/1.7×/2.0×/2.5×/3.0× compression yields
//! 11/12/13/14/14 cores; Table 2 marks 1.25× pessimistic, 2× realistic,
//! 3.5× optimistic.

use crate::error::ExperimentError;
use crate::registry::Experiment;
use crate::report::Report;
use crate::sweep::{add_paper_metrics, sweep_block, CatalogueSweep, Variant};

/// Figure 4: cores enabled by cache compression.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fig04CacheCompression;

/// The figure's declared sweep (also served by `POST /v1/sweep`).
pub fn sweep() -> CatalogueSweep {
    let ratios = [1.25, 1.5, 1.75, 2.0, 2.5, 3.0, 3.5, 4.0];
    let paper = [None, None, None, Some(13), Some(14), Some(14), None, None];
    let mut sweep = CatalogueSweep::base("No Compress", Some(11));
    for (&r, &p) in ratios.iter().zip(&paper) {
        sweep = sweep.point(format!("{r}x"), "cache_compression", &[r], p);
    }
    sweep
}

/// The figure's sweep points, base first.
pub fn variants() -> Vec<Variant> {
    sweep().into_variants()
}

impl Experiment for Fig04CacheCompression {
    fn id(&self) -> &'static str {
        "fig04_cache_compression"
    }

    fn figure(&self) -> &'static str {
        "Figure 4"
    }

    fn title(&self) -> &'static str {
        "Cores enabled by cache compression"
    }

    fn sweep(&self) -> Option<CatalogueSweep> {
        Some(sweep())
    }

    fn run(&self) -> Result<Report, ExperimentError> {
        let mut report = Report::new(self.id(), self.figure(), self.title());
        let variants = variants();
        let (table, results) = sweep_block(&variants)?;
        report.table(table);
        report.blank();
        report.note("assumption bands (Table 2): pessimistic 1.25x, realistic 2x, optimistic 3.5x");
        add_paper_metrics(&mut report, &variants, &results);
        Ok(report)
    }
}
