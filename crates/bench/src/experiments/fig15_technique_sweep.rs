//! Figure 15 — Core scaling with every individual technique across four
//! future technology generations, with pessimistic/realistic/optimistic
//! candle ranges (Table 2 assumption bands).
//!
//! Paper reference: indirect techniques (CC, 3D, Fltr, SmCo) trail the
//! direct (LC, Sect) and dual (SmCl, CC/LC) ones; DRAM caches are the
//! indirect exception thanks to their 8× density.

use crate::error::ExperimentError;
use crate::registry::Experiment;
use crate::report::{Report, TableBlock, Value};
use crate::{die_budget, paper_baseline, GENERATIONS, GENERATION_LABELS};
use bandwall_model::{catalog, AssumptionLevel, ScalingProblem};

fn solve(
    technique: Option<bandwall_model::Technique>,
    generation: u32,
) -> Result<u64, ExperimentError> {
    let mut problem = ScalingProblem::new(paper_baseline(), die_budget(generation));
    if let Some(t) = technique {
        problem = problem.with_technique(t);
    }
    Ok(problem.max_supportable_cores()?)
}

/// Figure 15: per-technique candle sweep across four generations.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fig15TechniqueSweep;

impl Experiment for Fig15TechniqueSweep {
    fn id(&self) -> &'static str {
        "fig15_technique_sweep"
    }

    fn figure(&self) -> &'static str {
        "Figure 15"
    }

    fn title(&self) -> &'static str {
        "Core scaling per technique, four generations (realistic [pess..opt])"
    }

    fn run(&self) -> Result<Report, ExperimentError> {
        let mut report = Report::new(self.id(), self.figure(), self.title());
        let mut table = TableBlock::new(&[
            "technique",
            GENERATION_LABELS[0],
            GENERATION_LABELS[1],
            GENERATION_LABELS[2],
            GENERATION_LABELS[3],
        ]);

        // IDEAL: proportional scaling.
        table.push_row(
            std::iter::once(Value::text("IDEAL"))
                .chain(GENERATIONS.iter().map(|&g| {
                    let p = ScalingProblem::new(paper_baseline(), die_budget(g));
                    Value::int(p.proportional_cores())
                }))
                .collect(),
        );
        // BASE: no techniques.
        let mut base_row = vec![Value::text("BASE")];
        for &g in &GENERATIONS {
            base_row.push(Value::int(solve(None, g)?));
        }
        table.push_row(base_row);
        for profile in catalog() {
            let mut row = vec![Value::text(profile.label())];
            for &g in &GENERATIONS {
                let real = solve(Some(profile.technique(AssumptionLevel::Realistic)?), g)?;
                let pess = solve(Some(profile.technique(AssumptionLevel::Pessimistic)?), g)?;
                let opt = solve(Some(profile.technique(AssumptionLevel::Optimistic)?), g)?;
                row.push(Value::fmt(format!("{real} [{pess}..{opt}]"), real as f64));
                if g == 4 && profile.label() == "DRAM" {
                    report.metric("dram_realistic_16x", real as f64, Some(47.0));
                }
            }
            table.push_row(row);
        }
        report.metric("base_16x", solve(None, 4)? as f64, Some(24.0));
        report.metric(
            "ideal_16x",
            ScalingProblem::new(paper_baseline(), die_budget(4)).proportional_cores() as f64,
            Some(128.0),
        );
        report.table(table);
        report.blank();
        report.note("paper anchors: BASE 16x = 24; DRAM realistic 16x = 47; IDEAL 16x = 128");
        report.note("ordering: dual >= direct >= indirect (DRAM excepted via its 8x density)");
        Ok(report)
    }
}
