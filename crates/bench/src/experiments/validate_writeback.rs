//! Supporting experiment (Section 4.2) — write-backs as a fraction of
//! misses across cache sizes.
//!
//! The model's `(1 + rwb)` cancellation relies on the observation that
//! "the number of write backs tends to be an application-specific
//! constant fraction of its number of cache misses, across different
//! cache sizes". This experiment measures `rwb` on the simulator across
//! a range of L2 sizes for two write intensities.

use crate::error::ExperimentError;
use crate::registry::Experiment;
use crate::report::{Report, TableBlock, Value};
use bandwall_cache_sim::{CacheConfig, TwoLevelHierarchy};
use bandwall_trace::{StackDistanceTrace, TraceSource};

/// Write-back ratio validation on the two-level hierarchy simulator.
#[derive(Debug, Clone)]
pub struct ValidateWriteback {
    /// Trace seed (historical default 99).
    pub seed: u64,
}

impl ValidateWriteback {
    fn rwb(&self, l2_kb: u64, write_fraction: f64) -> (f64, f64) {
        let mut h = TwoLevelHierarchy::new(
            CacheConfig::new(4 << 10, 64, 2).expect("valid L1"),
            CacheConfig::new(l2_kb << 10, 64, 8).expect("valid L2"),
        );
        let mut trace = StackDistanceTrace::builder(0.5)
            .seed(self.seed)
            .write_fraction(write_fraction)
            .max_distance(1 << 15)
            .build();
        for a in trace.iter().take(300_000) {
            h.access_from(a.thread(), a.address(), a.kind().is_write());
        }
        (h.l2().stats().writeback_ratio(), h.l2().stats().miss_rate())
    }
}

impl Experiment for ValidateWriteback {
    fn id(&self) -> &'static str {
        "validate_writeback"
    }

    fn figure(&self) -> &'static str {
        "Validation (Sec. 4.2)"
    }

    fn title(&self) -> &'static str {
        "write-back ratio rwb across cache sizes"
    }

    fn run(&self) -> Result<Report, ExperimentError> {
        let mut report = Report::new(self.id(), self.figure(), self.title());
        for wf in [0.1, 0.3] {
            report.blank();
            report.note(format!("write fraction = {wf}"));
            let mut table = TableBlock::new(&["L2 size", "rwb (writebacks/miss)", "L2 miss rate"]);
            for l2_kb in [16u64, 32, 64, 128, 256] {
                let (ratio, miss) = self.rwb(l2_kb, wf);
                table.push_row(vec![
                    Value::fmt(format!("{l2_kb} KB"), l2_kb as f64),
                    Value::float(ratio, 3),
                    Value::float(miss, 3),
                ]);
                if l2_kb == 256 {
                    report.metric(format!("rwb_256K[wf={wf}]"), ratio, None);
                }
            }
            report.table(table);
        }
        report.blank();
        report.note("rwb moves far less than the miss rate as the cache scales, supporting");
        report.note("the paper's cancellation of (1 + rwb) in traffic ratios (Equation 2)");
        Ok(report)
    }
}
