//! Ablation (DESIGN.md) — does the replacement policy change the fitted
//! power-law exponent?
//!
//! The power law of cache misses is an LRU-stack property; hardware uses
//! approximations. This experiment runs the same α = 0.5 workload through
//! set-associative caches of several sizes under LRU, tree-PLRU, FIFO,
//! and random replacement, fits α to each miss curve, and reports how
//! much the approximation costs.

use crate::error::ExperimentError;
use crate::registry::Experiment;
use crate::report::{Report, TableBlock, Value};
use bandwall_cache_sim::{Cache, CacheConfig, ReplacementPolicy};
use bandwall_numerics::PowerLawFit;
use bandwall_trace::{StackDistanceTrace, TraceSource};

const ACCESSES: usize = 250_000;
const WARMUP: usize = 50_000;

/// Replacement-policy ablation on the single-cache simulator.
#[derive(Debug, Clone)]
pub struct AblateReplacement {
    /// Trace seed (historical default 31).
    pub trace_seed: u64,
    /// Random-policy seed (historical default 7).
    pub policy_seed: u64,
}

impl AblateReplacement {
    fn miss_rate(&self, policy: ReplacementPolicy, capacity: u64) -> f64 {
        let config = CacheConfig::new(capacity, 64, 8)
            .expect("valid geometry")
            .with_policy(policy)
            .with_policy_seed(self.policy_seed);
        let mut cache = Cache::new(config);
        let mut trace = StackDistanceTrace::builder(0.5)
            .seed(self.trace_seed)
            .max_distance(1 << 15)
            .build();
        for a in trace.iter().take(WARMUP) {
            cache.access(a.address(), a.kind().is_write());
        }
        let before = cache.stats().misses();
        let before_accesses = cache.stats().accesses();
        for a in trace.iter().take(ACCESSES) {
            cache.access(a.address(), a.kind().is_write());
        }
        (cache.stats().misses() - before) as f64
            / (cache.stats().accesses() - before_accesses) as f64
    }
}

impl Experiment for AblateReplacement {
    fn id(&self) -> &'static str {
        "ablate_replacement"
    }

    fn figure(&self) -> &'static str {
        "Ablation"
    }

    fn title(&self) -> &'static str {
        "replacement policy vs fitted power-law exponent (true α = 0.5)"
    }

    fn run(&self) -> Result<Report, ExperimentError> {
        let mut report = Report::new(self.id(), self.figure(), self.title());
        let capacities: Vec<u64> = (13..=18).map(|i| 1u64 << i).collect(); // 8 KB..256 KB
        let mut table = TableBlock::new(&["policy", "fitted α", "R²", "miss@8K", "miss@256K"]);
        for policy in [
            ReplacementPolicy::Lru,
            ReplacementPolicy::TreePlru,
            ReplacementPolicy::Fifo,
            ReplacementPolicy::Random,
        ] {
            let rates: Vec<f64> = capacities
                .iter()
                .map(|&c| self.miss_rate(policy, c))
                .collect();
            let xs: Vec<f64> = capacities.iter().map(|&c| c as f64).collect();
            let fit = PowerLawFit::fit(&xs, &rates)?;
            report.metric(format!("fitted_alpha[{policy}]"), fit.alpha, Some(0.5));
            table.push_row(vec![
                Value::text(policy.to_string()),
                Value::float(fit.alpha, 3),
                Value::float(fit.r_squared, 3),
                Value::float(rates[0], 3),
                Value::float(rates[rates.len() - 1], 3),
            ]);
        }
        report.table(table);
        report.blank();
        report.note("the power law survives the hardware approximations: the fitted exponent");
        report.note("moves only slightly from LRU to PLRU/FIFO/random, so the model's α is");
        report.note("robust to the cache's actual replacement policy");
        Ok(report)
    }
}
