//! Supporting experiment (Section 1) — the throughput plateau behind the
//! bandwidth wall, shown two independent ways:
//!
//! 1. the analytical `ThroughputModel`: cores beyond the traffic
//!    crossover are throttled until their request rate matches the
//!    envelope;
//! 2. a closed-loop discrete-event simulation of cores sharing one
//!    bandwidth-limited DRAM channel.
//!
//! Both show chip throughput rising linearly, then pinning at a plateau
//! set by bandwidth — "adding more cores to the chip no longer yields any
//! additional throughput".

use crate::error::ExperimentError;
use crate::paper_baseline;
use crate::registry::Experiment;
use crate::report::{Report, TableBlock, Value};
use bandwall_cache_sim::{simulate_throughput, ThroughputSimConfig};
use bandwall_model::ThroughputModel;

/// Throughput-wall study: analytic plateau plus closed-loop simulation.
#[derive(Debug, Clone, Copy, Default)]
pub struct ThroughputWall;

impl Experiment for ThroughputWall {
    fn id(&self) -> &'static str {
        "throughput_wall"
    }

    fn figure(&self) -> &'static str {
        "Throughput wall"
    }

    fn title(&self) -> &'static str {
        "chip throughput vs core count (analytic + simulated)"
    }

    fn run(&self) -> Result<Report, ExperimentError> {
        let mut report = Report::new(self.id(), self.figure(), self.title());

        let model = ThroughputModel::new(paper_baseline(), 32.0);
        let mut table = TableBlock::new(&["cores", "chip throughput", "", "per-core", "BW util"])
            .with_title("analytic model (32-CEA die, constant envelope):");
        for p in model.curve((2..=30).step_by(2))? {
            table.push_row(vec![
                Value::int(p.cores),
                Value::fmt(format!("{:.2}", p.throughput), p.throughput),
                Value::bar(p.throughput, 12.0, 24),
                Value::fmt(
                    format!("{:.2}", p.per_core_throughput),
                    p.per_core_throughput,
                ),
                Value::fmt(
                    format!("{:.0}%", p.bandwidth_utilization * 100.0),
                    p.bandwidth_utilization,
                ),
            ]);
        }
        report.table(table);
        let plateau = model.plateau_throughput()?;
        report.note(format!(
            "plateau: {plateau:.2} baseline-core equivalents (the Figure 2 crossover)"
        ));
        report.metric("plateau_throughput", plateau, None);

        report.blank();
        let mut sim_table = TableBlock::new(&["cores", "IPC", "", "queue delay", "BW util"])
            .with_title(
                "closed-loop simulation (shared DRAM channel, 4 B/cycle, 200-cycle latency):",
            );
        for cores in [1u16, 2, 4, 8, 12, 16, 24, 32] {
            let result = simulate_throughput(ThroughputSimConfig {
                cores,
                misses_per_instruction: 0.02,
                line_bytes: 64,
                bytes_per_cycle: 4.0,
                access_latency: 200,
                instructions_per_core: 200_000,
            });
            sim_table.push_row(vec![
                Value::int(cores as u64),
                Value::fmt(format!("{:.2}", result.ipc), result.ipc),
                Value::bar(result.ipc, 4.0, 24),
                Value::fmt(
                    format!("{:.0} cyc", result.average_queue_delay),
                    result.average_queue_delay,
                ),
                Value::fmt(
                    format!("{:.0}%", result.channel_utilization * 100.0),
                    result.channel_utilization,
                ),
            ]);
        }
        report.table(sim_table);
        report.blank();
        report.note("bandwidth bound: 4 B/cycle / (0.02 miss/instr x 64 B) = 3.13 IPC —");
        report.note("the simulated plateau; queueing delay explodes exactly at saturation");
        Ok(report)
    }
}
