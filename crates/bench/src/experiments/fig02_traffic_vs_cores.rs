//! Figure 2 — Memory traffic as the number of CMP cores varies in the
//! next technology generation (32 CEAs).
//!
//! Paper reference: with a constant envelope the crossover sits at 11
//! cores (37.5% growth instead of the proportional 100%); a 50% larger
//! envelope allows 13 cores.

use crate::error::ExperimentError;
use crate::registry::Experiment;
use crate::report::{Report, TableBlock, Value};
use crate::{die_budget, paper_baseline};
use bandwall_model::{ScalingProblem, TrafficModel};

/// Figure 2: normalized traffic vs core count on the next-generation die.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fig02TrafficVsCores;

impl Experiment for Fig02TrafficVsCores {
    fn id(&self) -> &'static str {
        "fig02_traffic_vs_cores"
    }

    fn figure(&self) -> &'static str {
        "Figure 2"
    }

    fn title(&self) -> &'static str {
        "Memory traffic vs number of cores (next generation)"
    }

    fn run(&self) -> Result<Report, ExperimentError> {
        let mut report = Report::new(self.id(), self.figure(), self.title());
        let baseline = paper_baseline();
        let model = TrafficModel::new(baseline);
        let n2 = die_budget(1);

        let mut table = TableBlock::new(&["cores", "normalized traffic", "", "within envelope"]);
        for cores in (2..=28).step_by(2) {
            let traffic = model.relative_traffic_on_die(n2, cores as f64)?;
            table.push_row(vec![
                Value::int(cores),
                Value::float(traffic, 3),
                Value::bar(traffic, 8.0, 40),
                Value::text(if traffic <= 1.0 { "yes" } else { "no" }),
            ]);
        }
        report.table(table);
        report.blank();

        let constant = ScalingProblem::new(baseline, n2).solve()?;
        let optimistic = ScalingProblem::new(baseline, n2)
            .with_bandwidth_growth(1.5)
            .solve()?;
        report.note(format!(
            "crossover (B = 1.0): {:.2} cores -> {} supportable   [paper: 11]",
            constant.crossover_cores, constant.supportable_cores
        ));
        report.note(format!(
            "crossover (B = 1.5): {:.2} cores -> {} supportable   [paper: 13]",
            optimistic.crossover_cores, optimistic.supportable_cores
        ));
        report.note(format!(
            "proportional scaling would want {} cores",
            constant.ideal_cores
        ));

        report.metric(
            "supportable_cores",
            constant.supportable_cores as f64,
            Some(11.0),
        );
        report.metric(
            "supportable_cores_b1_5",
            optimistic.supportable_cores as f64,
            Some(13.0),
        );
        report.metric("crossover_cores", constant.crossover_cores, None);
        report.metric("ideal_cores", constant.ideal_cores as f64, Some(16.0));
        Ok(report)
    }
}
