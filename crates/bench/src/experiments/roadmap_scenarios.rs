//! Supporting experiment (Section 1) — core scaling under realistic
//! bandwidth-growth roadmaps.
//!
//! The paper's headline analysis freezes the envelope (B = 1). This
//! experiment re-runs the four-generation sweep under the ITRS pin
//! projection the paper cites (+10%/year → ~1.15x per generation) and an
//! aggressive signalling scenario, showing that even optimistic envelope
//! growth leaves core scaling far below proportional.

use crate::error::ExperimentError;
use crate::registry::Experiment;
use crate::report::{Report, TableBlock, Value};
use crate::{paper_baseline, GENERATION_LABELS};
use bandwall_model::roadmap::BandwidthScenario;
use bandwall_model::GenerationSweep;

/// Roadmap scenarios: envelope-growth projections vs core scaling.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoadmapScenarios;

impl Experiment for RoadmapScenarios {
    fn id(&self) -> &'static str {
        "roadmap_scenarios"
    }

    fn figure(&self) -> &'static str {
        "Roadmap scenarios"
    }

    fn title(&self) -> &'static str {
        "core scaling under envelope-growth projections"
    }

    fn run(&self) -> Result<Report, ExperimentError> {
        let mut report = Report::new(self.id(), self.figure(), self.title());
        let scenarios = [
            BandwidthScenario::constant(),
            BandwidthScenario::itrs_2005(),
            BandwidthScenario::aggressive_signalling(),
        ];
        let mut table = TableBlock::new(&[
            "scenario",
            "B/gen",
            GENERATION_LABELS[0],
            GENERATION_LABELS[1],
            GENERATION_LABELS[2],
            GENERATION_LABELS[3],
        ]);
        // Proportional reference row.
        table.push_row(vec![
            Value::text("IDEAL (proportional)"),
            Value::text("-"),
            Value::text("16"),
            Value::text("32"),
            Value::text("64"),
            Value::text("128"),
        ]);
        for scenario in &scenarios {
            let results = GenerationSweep::new(paper_baseline())
                .with_bandwidth_growth_per_generation(scenario.growth_per_generation())
                .run(4)?;
            let mut row = vec![
                Value::text(scenario.name()),
                Value::fmt(
                    format!("{:.3}", scenario.growth_per_generation()),
                    scenario.growth_per_generation(),
                ),
            ];
            row.extend(results.iter().map(|r| Value::int(r.supportable_cores)));
            if let Some(last) = results.last() {
                report.metric(
                    format!("cores_16x[{}]", scenario.name()),
                    last.supportable_cores as f64,
                    None,
                );
            }
            table.push_row(row);
        }
        report.table(table);
        report.blank();
        report.note("even the aggressive scenario (pins +10%/yr and rates +20%/yr) leaves the");
        report.note("fourth generation far short of the 128-core proportional target");
        Ok(report)
    }
}
