//! Fault-injection experiment, present in the registry only when the
//! `BANDWALL_FAULT_INJECT` environment variable is set. It exists to
//! exercise the harness's fault-isolation machinery end to end: a run
//! that panics, errors, or hangs must produce a structured failure
//! report without disturbing the other experiments in the batch.
//!
//! Modes (the variable's value, case-sensitive):
//!
//! * `panic` — unwinds with a deliberate panic message;
//! * `error` — returns a typed [`ExperimentError::Numerical`];
//! * `hang`  — sleeps far past any reasonable deadline (exercises
//!   `--timeout`);
//! * anything else — succeeds with a one-metric report, so the
//!   variable's plumbing itself can be smoke-tested.

use crate::error::ExperimentError;
use crate::fault::Fault;
use crate::registry::Experiment;
use crate::report::Report;
use std::time::Duration;

/// Environment variable that injects this experiment into the registry.
pub const FAULT_INJECT_ENV: &str = "BANDWALL_FAULT_INJECT";

/// The injected experiment; `mode` is the environment variable's value.
#[derive(Debug, Clone)]
pub struct FaultInject {
    /// Failure mode: `panic`, `error`, `hang`, or anything else (succeed).
    pub mode: String,
}

/// Returns the injected experiment when [`FAULT_INJECT_ENV`] is set.
pub fn from_env() -> Option<FaultInject> {
    std::env::var(FAULT_INJECT_ENV)
        .ok()
        .map(|mode| FaultInject { mode })
}

impl Experiment for FaultInject {
    fn id(&self) -> &'static str {
        "fault_inject"
    }

    fn figure(&self) -> &'static str {
        "Fault injection"
    }

    fn title(&self) -> &'static str {
        "deliberate failure for harness testing (BANDWALL_FAULT_INJECT)"
    }

    fn run(&self) -> Result<Report, ExperimentError> {
        // The three failure modes are expressed as shared [`Fault`]s —
        // the same vocabulary `bandwall serve --chaos` injects — so the
        // batch and online paths contain identical faults.
        let fault = match self.mode.as_str() {
            "panic" => Fault::Panic("injected panic (BANDWALL_FAULT_INJECT=panic)".into()),
            "error" => Fault::Error("injected error (BANDWALL_FAULT_INJECT=error)".into()),
            // Far past any deadline a test would set; the watchdog
            // abandons the thread, so the sleep never finishes.
            "hang" => Fault::Sleep(Duration::from_secs(3600)),
            other => {
                let mut report = Report::new(self.id(), self.figure(), self.title());
                report.note(format!("fault injection in pass-through mode: {other}"));
                report.metric("injected", 1.0, None);
                return Ok(report);
            }
        };
        fault.trigger()?;
        Err(ExperimentError::Numerical(
            "hang mode returned unexpectedly".to_string(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_mode_returns_typed_error() {
        let e = FaultInject {
            mode: "error".into(),
        };
        assert!(matches!(e.run(), Err(ExperimentError::Numerical(_))));
    }

    #[test]
    fn panic_mode_panics() {
        let e = FaultInject {
            mode: "panic".into(),
        };
        let caught = std::panic::catch_unwind(|| e.run());
        assert!(caught.is_err());
    }

    #[test]
    fn pass_through_mode_succeeds() {
        let e = FaultInject { mode: "ok".into() };
        let report = e.run().unwrap();
        assert_eq!(report.id, "fault_inject");
        assert!(!report.is_failure());
    }

    #[test]
    fn run_to_report_folds_error_into_failure() {
        let e = FaultInject {
            mode: "error".into(),
        };
        let report = e.run_to_report();
        assert!(report.is_failure());
        assert!(report.error.as_deref().unwrap().contains("injected error"));
    }
}
