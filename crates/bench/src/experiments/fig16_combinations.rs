//! Figure 16 — Core scaling with combinations of techniques across four
//! future technology generations (realistic assumptions).
//!
//! Paper reference: the full combination CC/LC + DRAM + 3D + SmCl reaches
//! 183 cores at the fourth generation (vs 128 proportional) — the
//! bandwidth wall can be pushed back several generations when techniques
//! are stacked.

use crate::error::ExperimentError;
use crate::registry::Experiment;
use crate::report::{Report, TableBlock, Value};
use crate::{die_budget, paper_baseline, GENERATIONS, GENERATION_LABELS};
use bandwall_model::combination::figure16_combinations;
use bandwall_model::{AssumptionLevel, ScalingProblem};

/// Figure 16: technique combinations across four generations.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fig16Combinations;

impl Experiment for Fig16Combinations {
    fn id(&self) -> &'static str {
        "fig16_combinations"
    }

    fn figure(&self) -> &'static str {
        "Figure 16"
    }

    fn title(&self) -> &'static str {
        "Core scaling with technique combinations"
    }

    fn run(&self) -> Result<Report, ExperimentError> {
        let mut report = Report::new(self.id(), self.figure(), self.title());
        let combos = figure16_combinations(AssumptionLevel::Realistic)?;
        let mut table = TableBlock::new(&[
            "combination",
            GENERATION_LABELS[0],
            GENERATION_LABELS[1],
            GENERATION_LABELS[2],
            GENERATION_LABELS[3],
        ]);
        // IDEAL and BASE rows first, as in the figure.
        table.push_row(
            std::iter::once(Value::text("IDEAL"))
                .chain(GENERATIONS.iter().map(|&g| {
                    Value::int(
                        ScalingProblem::new(paper_baseline(), die_budget(g)).proportional_cores(),
                    )
                }))
                .collect(),
        );
        let mut base_row = vec![Value::text("BASE")];
        for &g in &GENERATIONS {
            base_row.push(Value::int(
                ScalingProblem::new(paper_baseline(), die_budget(g)).max_supportable_cores()?,
            ));
        }
        table.push_row(base_row);
        for combo in &combos {
            let mut row = vec![Value::text(combo.name())];
            for &g in &GENERATIONS {
                let cores = ScalingProblem::new(paper_baseline(), die_budget(g))
                    .with_techniques(combo.techniques().iter().copied())
                    .max_supportable_cores()?;
                row.push(Value::int(cores));
            }
            table.push_row(row);
        }
        report.table(table);
        report.blank();
        let full = combos.last().expect("15 combinations");
        let solution = ScalingProblem::new(paper_baseline(), die_budget(4))
            .with_techniques(full.techniques().iter().copied())
            .solve()?;
        report.note(format!(
            "headline: {} at 16x -> {} cores on {:.0}% of the die   [paper: 183 cores, 71%]",
            full.name(),
            solution.supportable_cores,
            solution.core_area_fraction * 100.0
        ));
        report.metric(
            "full_combination_16x",
            solution.supportable_cores as f64,
            Some(183.0),
        );
        report.metric(
            "full_combination_area_fraction",
            solution.core_area_fraction,
            Some(0.71),
        );
        Ok(report)
    }
}
