//! Supporting experiment (Sections 6.1–6.3) — deriving the compression
//! ratios the model assumes.
//!
//! The paper takes cache-compression ratios of 1.4–2.1× (commercial),
//! 1.7–2.4× (integer), 1.0–1.3× (floating-point) and ~2× link
//! compression from the literature. Here the actual engines (FPC, BDI,
//! zero-RLE, value-locality dictionary) run over synthetic value streams
//! with those workloads' value mixes, reproducing the parameter regime
//! instead of assuming it.

use crate::error::ExperimentError;
use crate::registry::Experiment;
use crate::report::{Report, TableBlock, Value};
use bandwall_compress::{evaluate, Bdi, BestOf, Compressor, Fpc, LinkCompressor, ZeroRle};
use bandwall_trace::values::{LineValueGenerator, ValueProfile};

const LINES: u64 = 4000;

/// Compression-ratio validation against the real engines.
#[derive(Debug, Clone)]
pub struct ValidateCompression {
    /// Value-stream seed (historical default 77).
    pub seed: u64,
}

impl ValidateCompression {
    fn ratios(&self, profile: ValueProfile) -> Vec<(String, f64)> {
        let values = LineValueGenerator::new(profile, self.seed);
        let lines: Vec<Vec<u8>> = (0..LINES).map(|l| values.line_bytes(l * 64, 64)).collect();
        let engines: Vec<Box<dyn Compressor>> = vec![
            Box::new(Fpc::new()),
            Box::new(Bdi::new()),
            Box::new(ZeroRle::new()),
            Box::new(BestOf::standard()),
        ];
        let mut out = Vec::new();
        for engine in &engines {
            let stats = evaluate(engine.as_ref(), lines.iter().map(|l| l.as_slice()));
            out.push((engine.name().to_string(), stats.ratio()));
        }
        // The streaming link compressor sees the same lines as a stream.
        let mut link = LinkCompressor::new();
        for line in &lines {
            link.transfer(line);
        }
        out.push(("Link-dict".to_string(), link.stats().ratio()));
        out
    }
}

impl Experiment for ValidateCompression {
    fn id(&self) -> &'static str {
        "validate_compression"
    }

    fn figure(&self) -> &'static str {
        "Validation (Sec. 6.1-6.3)"
    }

    fn title(&self) -> &'static str {
        "compression ratios derived from real engines"
    }

    fn run(&self) -> Result<Report, ExperimentError> {
        let mut report = Report::new(self.id(), self.figure(), self.title());
        let profiles = [
            (
                ValueProfile::commercial(),
                "paper: 1.4-2.1x (cache), ~2x (link)",
            ),
            (ValueProfile::integer(), "paper: 1.7-2.4x"),
            (ValueProfile::floating_point(), "paper: 1.0-1.3x"),
        ];
        for (profile, note) in profiles {
            let profile_name = profile.name().to_string();
            report.blank();
            report.note(format!("value profile: {profile_name}   [{note}]"));
            let mut table = TableBlock::new(&["engine", "compression ratio"]);
            for (name, ratio) in self.ratios(profile) {
                report.metric(format!("ratio[{profile_name}][{name}]"), ratio, None);
                table.push_row(vec![
                    Value::text(name),
                    Value::fmt(format!("{ratio:.2}x"), ratio),
                ]);
            }
            report.table(table);
        }
        report.blank();
        report.note("these measured ratios justify Table 2's pessimistic/realistic/optimistic");
        report.note("bands (1.25x / 2x / 3.5x) used by Figures 4, 9, and 12");
        Ok(report)
    }
}
