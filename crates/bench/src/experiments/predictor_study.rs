//! Extension experiment — how close does a real spatial-footprint
//! predictor get to the paper's sectored-cache oracle?
//!
//! Figure 10 assumes sectored caches fetch exactly the referenced
//! sectors. A last-footprint predictor (per the paper's citations
//! [9, 17, 21]) learns each line's footprint from its previous residency.
//! This experiment compares demand-fetch sectoring, the predictor, and
//! the oracle assumption, and feeds the measured savings back into the
//! core-scaling model.

use crate::error::ExperimentError;
use crate::paper_baseline;
use crate::registry::Experiment;
use crate::report::{Report, TableBlock, Value};
use bandwall_cache_sim::{CacheConfig, PredictiveSectoredCache, SectoredCache};
use bandwall_model::{ScalingProblem, Technique};
use bandwall_trace::{StackDistanceTrace, TraceSource};

const ACCESSES: usize = 300_000;

/// Predictor study: demand vs predictive vs oracle sector fetching.
#[derive(Debug, Clone)]
pub struct PredictorStudy {
    /// Trace seed (historical default 61).
    pub seed: u64,
}

impl PredictorStudy {
    fn workload(&self) -> StackDistanceTrace {
        // Touches 5 of 8 words per line over a line's lifetime (37.5% unused).
        StackDistanceTrace::builder(0.5)
            .seed(self.seed)
            .touched_words(5)
            .max_distance(1 << 13)
            .build()
    }
}

fn cores_for(savings: f64) -> Result<u64, ExperimentError> {
    Ok(ScalingProblem::new(paper_baseline(), 32.0)
        .with_technique(Technique::sectored_cache(savings)?)
        .max_supportable_cores()?)
}

impl Experiment for PredictorStudy {
    fn id(&self) -> &'static str {
        "predictor_study"
    }

    fn figure(&self) -> &'static str {
        "Predictor study"
    }

    fn title(&self) -> &'static str {
        "sectored-cache fetch savings: demand vs predictor vs oracle"
    }

    fn run(&self) -> Result<Report, ExperimentError> {
        let mut report = Report::new(self.id(), self.figure(), self.title());
        let config = CacheConfig::new(64 << 10, 64, 8).expect("valid geometry");

        let mut demand = SectoredCache::new(config, 8);
        let mut trace = self.workload();
        for a in trace.iter().take(ACCESSES) {
            demand.access(a.address(), a.kind().is_write());
        }

        let mut predictive = PredictiveSectoredCache::new(config, 8);
        let mut trace = self.workload();
        for a in trace.iter().take(ACCESSES) {
            predictive.access(a.address(), a.kind().is_write());
        }

        let oracle_savings = 0.375; // the static unused fraction

        let mut table = TableBlock::new(&[
            "scheme",
            "fetch savings",
            "misses",
            "overfetch",
            "model cores @2x",
        ]);
        table.push_row(vec![
            Value::text("demand-fetch sectors"),
            Value::fmt(
                format!("{:.1}%", demand.fetch_savings() * 100.0),
                demand.fetch_savings(),
            ),
            Value::int(demand.stats().misses()),
            Value::text("-"),
            Value::int(cores_for(demand.fetch_savings())?),
        ]);
        table.push_row(vec![
            Value::text("last-footprint predictor"),
            Value::fmt(
                format!("{:.1}%", predictive.fetch_savings() * 100.0),
                predictive.fetch_savings(),
            ),
            Value::int(predictive.stats().misses()),
            Value::fmt(
                format!("{:.1}%", predictive.overfetch_fraction() * 100.0),
                predictive.overfetch_fraction(),
            ),
            Value::int(cores_for(predictive.fetch_savings())?),
        ]);
        table.push_row(vec![
            Value::text("oracle (paper assumption)"),
            Value::fmt(format!("{:.1}%", oracle_savings * 100.0), oracle_savings),
            Value::text("-"),
            Value::text("0.0%"),
            Value::int(cores_for(oracle_savings)?),
        ]);
        report.metric(
            "predictor_fetch_savings",
            predictive.fetch_savings(),
            Some(oracle_savings),
        );
        report.table(table);
        report.blank();
        report.note("demand fetching over-saves (short residencies touch few sectors) at the");
        report.note("price of extra sector misses; the predictor recovers most of those misses");
        report.note("while keeping savings near the oracle's — Figure 10's assumption is");
        report.note("implementable, as the paper's citations claim");
        Ok(report)
    }
}
