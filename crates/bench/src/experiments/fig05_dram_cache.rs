//! Figure 5 — Increase in on-chip cores enabled by DRAM caches.
//!
//! Paper reference: SRAM baseline 11 cores; DRAM L2 at 4×/8×/16× density
//! reaches 16/18/21 — proportional scaling already at the conservative 4×.

use crate::error::ExperimentError;
use crate::registry::Experiment;
use crate::report::Report;
use crate::sweep::{add_paper_metrics, sweep_block, Variant};
use bandwall_model::Technique;

/// Figure 5: cores enabled by DRAM caches.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fig05DramCache;

/// The figure's sweep points (also served by `POST /v1/sweep`).
pub fn variants() -> Vec<Variant> {
    vec![
        Variant::new("SRAM L2", None, Some(11)),
        Variant::new(
            "DRAM L2 (4x)",
            Some(Technique::dram_cache(4.0).expect("valid")),
            Some(16),
        ),
        Variant::new(
            "DRAM L2 (8x)",
            Some(Technique::dram_cache(8.0).expect("valid")),
            Some(18),
        ),
        Variant::new(
            "DRAM L2 (16x)",
            Some(Technique::dram_cache(16.0).expect("valid")),
            Some(21),
        ),
    ]
}

impl Experiment for Fig05DramCache {
    fn id(&self) -> &'static str {
        "fig05_dram_cache"
    }

    fn figure(&self) -> &'static str {
        "Figure 5"
    }

    fn title(&self) -> &'static str {
        "Cores enabled by DRAM caches"
    }

    fn run(&self) -> Result<Report, ExperimentError> {
        let mut report = Report::new(self.id(), self.figure(), self.title());
        let variants = variants();
        let (table, results) = sweep_block(&variants)?;
        report.table(table);
        report.blank();
        report.note("proportional scaling target: 16 cores — met by the conservative 4x density");
        add_paper_metrics(&mut report, &variants, &results);
        Ok(report)
    }
}
