//! Figure 5 — Increase in on-chip cores enabled by DRAM caches.
//!
//! Paper reference: SRAM baseline 11 cores; DRAM L2 at 4×/8×/16× density
//! reaches 16/18/21 — proportional scaling already at the conservative 4×.

use crate::error::ExperimentError;
use crate::registry::Experiment;
use crate::report::Report;
use crate::sweep::{add_paper_metrics, sweep_block, CatalogueSweep, Variant};

/// Figure 5: cores enabled by DRAM caches.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fig05DramCache;

/// The figure's declared sweep (also served by `POST /v1/sweep`).
pub fn sweep() -> CatalogueSweep {
    CatalogueSweep::base("SRAM L2", Some(11))
        .point("DRAM L2 (4x)", "dram_cache", &[4.0], Some(16))
        .point("DRAM L2 (8x)", "dram_cache", &[8.0], Some(18))
        .point("DRAM L2 (16x)", "dram_cache", &[16.0], Some(21))
}

/// The figure's sweep points, base first.
pub fn variants() -> Vec<Variant> {
    sweep().into_variants()
}

impl Experiment for Fig05DramCache {
    fn id(&self) -> &'static str {
        "fig05_dram_cache"
    }

    fn figure(&self) -> &'static str {
        "Figure 5"
    }

    fn title(&self) -> &'static str {
        "Cores enabled by DRAM caches"
    }

    fn sweep(&self) -> Option<CatalogueSweep> {
        Some(sweep())
    }

    fn run(&self) -> Result<Report, ExperimentError> {
        let mut report = Report::new(self.id(), self.figure(), self.title());
        let variants = variants();
        let (table, results) = sweep_block(&variants)?;
        report.table(table);
        report.blank();
        report.note("proportional scaling target: 16 cores — met by the conservative 4x density");
        add_paper_metrics(&mut report, &variants, &results);
        Ok(report)
    }
}
