//! Figure 3 — Die-area allocation for cores and the number of
//! supportable cores under a constant memory-traffic requirement.
//!
//! Paper reference: at 16× scaling only ~10% of the die can go to cores
//! (24 cores vs 128 proportional); the core share keeps shrinking at
//! every further generation.

use crate::error::ExperimentError;
use crate::paper_baseline;
use crate::registry::Experiment;
use crate::report::{Report, TableBlock, Value};
use bandwall_model::ScalingProblem;

/// Figure 3: supportable cores and die split across eight generations.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fig03DieAllocation;

impl Experiment for Fig03DieAllocation {
    fn id(&self) -> &'static str {
        "fig03_die_allocation"
    }

    fn figure(&self) -> &'static str {
        "Figure 3"
    }

    fn title(&self) -> &'static str {
        "Die allocation vs scaling ratio (constant traffic)"
    }

    fn run(&self) -> Result<Report, ExperimentError> {
        let mut report = Report::new(self.id(), self.figure(), self.title());
        let baseline = paper_baseline();

        let mut table = TableBlock::new(&[
            "scaling",
            "total CEAs",
            "supportable cores",
            "ideal cores",
            "% area for cores",
        ]);
        for g in 0..=7u32 {
            let ratio = 2f64.powi(g as i32);
            let n2 = baseline.total_ceas() * ratio;
            let solution = ScalingProblem::new(baseline, n2).solve()?;
            table.push_row(vec![
                Value::fmt(format!("{}x", ratio as u64), ratio),
                Value::fmt(format!("{n2:.0}"), n2),
                Value::int(solution.supportable_cores),
                Value::int(solution.ideal_cores),
                Value::fmt(
                    format!("{:.1}%", solution.core_area_fraction * 100.0),
                    solution.core_area_fraction,
                ),
            ]);
            if g == 4 {
                report.metric(
                    "supportable_cores_16x",
                    solution.supportable_cores as f64,
                    Some(24.0),
                );
                report.metric("ideal_cores_16x", solution.ideal_cores as f64, Some(128.0));
                report.metric(
                    "core_area_fraction_16x",
                    solution.core_area_fraction,
                    Some(0.10),
                );
            }
        }
        report.table(table);
        report.blank();
        report.note("paper anchors: 16x -> 24 cores on ~10% of the die (vs 128 proportional)");
        Ok(report)
    }
}
