//! Registry extension — CXL idle-I/O bandwidth harvesting, after
//! Kadiyala & Daglis (arXiv 2511.12349).
//!
//! CXL attaches memory over the chip's I/O links, so whenever those
//! links sit idle their bandwidth can be harvested for memory traffic.
//! With I/O links provisioned at `io_bandwidth_ratio` of the memory
//! envelope and idle `idle_fraction` of the time, the off-chip envelope
//! effectively grows by `1 + io_bandwidth_ratio × idle_fraction` — a
//! *direct* technique in the paper's taxonomy, dividing relative
//! traffic exactly like extra provisioned bandwidth.
//!
//! The technique is a pure registry addition
//! (`bandwall_model::descriptor`): no solver, sweep, or wire-layer code
//! knows about it beyond this declaration.

use crate::error::ExperimentError;
use crate::registry::Experiment;
use crate::report::Report;
use crate::sweep::{add_paper_metrics, sweep_block, CatalogueSweep, Variant};
use crate::{die_budget, paper_baseline};
use bandwall_model::{ScalingProblem, Technique};

/// Registry extension: CXL idle-I/O bandwidth harvesting.
#[derive(Debug, Clone, Copy, Default)]
pub struct CxlHarvesting;

/// The experiment's declared sweep (also served by `POST /v1/sweep`):
/// the registry entry's three assumption bands plus a generously
/// provisioned half-idle point.
pub fn sweep() -> CatalogueSweep {
    CatalogueSweep::base("No CXL", Some(11))
        .point("0.25x I/O, 25% idle", "cxl_harvesting", &[0.25, 0.25], None)
        .point("0.5x I/O, 50% idle", "cxl_harvesting", &[0.5, 0.5], None)
        .point("1x I/O, 50% idle", "cxl_harvesting", &[1.0, 0.5], None)
        .point("1x I/O, 80% idle", "cxl_harvesting", &[1.0, 0.8], None)
}

/// The experiment's sweep points, base first.
pub fn variants() -> Vec<Variant> {
    sweep().into_variants()
}

impl Experiment for CxlHarvesting {
    fn id(&self) -> &'static str {
        "cxl_harvesting"
    }

    fn figure(&self) -> &'static str {
        "Registry extension"
    }

    fn title(&self) -> &'static str {
        "CXL idle-I/O bandwidth harvesting"
    }

    fn sweep(&self) -> Option<CatalogueSweep> {
        Some(sweep())
    }

    fn run(&self) -> Result<Report, ExperimentError> {
        let mut report = Report::new(self.id(), self.figure(), self.title());
        let variants = variants();
        let (table, results) = sweep_block(&variants)?;
        report.table(table);
        report.blank();
        report.note(
            "direct technique: harvested idle I/O divides relative traffic, \
             exactly like provisioning that much extra bandwidth",
        );
        report.note("after Kadiyala & Daglis, arXiv 2511.12349");
        add_paper_metrics(&mut report, &variants, &results);
        // Cross-check against the paper's own algebra: harvesting 1x I/O
        // links that idle half the time is a 1.5x traffic divisor, so it
        // must support exactly as many cores as 1.5x link compression.
        let problem = ScalingProblem::new(paper_baseline(), die_budget(1));
        let via_cxl = problem
            .clone()
            .with_technique(Technique::from_registry("cxl_harvesting", &[1.0, 0.5])?)
            .max_supportable_cores()?;
        let via_link = problem
            .with_technique(Technique::link_compression(1.5)?)
            .max_supportable_cores()?;
        report.metric("cores_cxl_1x_50pct", via_cxl as f64, Some(via_link as f64));
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harvesting_matches_equivalent_link_compression() {
        let report = CxlHarvesting.run().unwrap();
        let m = report.get_metric("cores_cxl_1x_50pct").unwrap();
        assert_eq!(Some(m.model), m.paper, "cxl(1, 0.5) must equal lc(1.5)");
    }

    #[test]
    fn harvesting_is_monotone_in_both_parameters() {
        let (_, results) = sweep_block(&variants()).unwrap();
        assert!(
            results.windows(2).all(|w| w[0] <= w[1]),
            "stronger harvesting must not lose cores: {results:?}"
        );
        assert!(results[4] > results[0], "optimistic band must help");
    }
}
