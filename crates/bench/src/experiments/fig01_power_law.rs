//! Figure 1 — Normalized cache miss rate as a function of cache size.
//!
//! Runs the thirteen synthetic Figure 1 workloads (seven commercial, six
//! SPEC-like) through the exact reuse-distance profiler, normalises each
//! miss-rate curve to its smallest cache size, and fits the power law
//! `m = m0 · (C/C0)^-α` in log–log space.
//!
//! Paper reference: commercial α averages 0.48 (min 0.36 = OLTP-2, max
//! 0.62 = OLTP-4); the SPEC 2006 aggregate fits α = 0.25; individual SPEC
//! applications fit less well (discrete working sets).

use crate::error::ExperimentError;
use crate::registry::Experiment;
use crate::report::{Report, TableBlock, Value};
use bandwall_numerics::PowerLawFit;
use bandwall_trace::suites::{commercial_suite, spec_suite};
use bandwall_trace::{MissRateProbe, StackDistanceTrace, TraceSource, WorkingSetTrace};

const BURN_IN: usize = 80_000;
const MEASURE: usize = 400_000;

/// Cache sizes probed, in 64-byte lines (8 KB … 4 MB).
fn capacities() -> Vec<usize> {
    (7..=16).map(|i| 1usize << i).collect()
}

/// Exact measurement for stack-distance traces: warm the probe with the
/// generator's full footprint so there is no compulsory-miss floor.
fn measure_commercial(trace: &mut StackDistanceTrace, caps: &[usize]) -> Vec<f64> {
    let mut probe = MissRateProbe::new(caps);
    trace.warm_probe(&mut probe);
    for a in trace.iter().take(MEASURE) {
        probe.observe(a.address() / 64);
    }
    probe.miss_rates()
}

/// Burn-in measurement for the discrete-working-set traces.
fn measure_spec(trace: &mut WorkingSetTrace, caps: &[usize]) -> Vec<f64> {
    let mut probe = MissRateProbe::new(caps);
    for a in trace.iter().take(BURN_IN) {
        probe.observe(a.address() / 64);
    }
    probe.reset_counts();
    for a in trace.iter().take(MEASURE) {
        probe.observe(a.address() / 64);
    }
    probe.miss_rates()
}

/// Figure 1: power-law fits of the synthetic workload suites.
#[derive(Debug, Clone)]
pub struct Fig01PowerLaw {
    /// Suite seed (historical default 2026).
    pub seed: u64,
}

impl Experiment for Fig01PowerLaw {
    fn id(&self) -> &'static str {
        "fig01_power_law"
    }

    fn figure(&self) -> &'static str {
        "Figure 1"
    }

    fn title(&self) -> &'static str {
        "Normalized miss rate vs cache size (power-law fits)"
    }

    fn run(&self) -> Result<Report, ExperimentError> {
        let mut report = Report::new(self.id(), self.figure(), self.title());
        let caps = capacities();
        let cap_kb: Vec<String> = caps.iter().map(|c| format!("{}K", c * 64 / 1024)).collect();

        let mut table = TableBlock::new(&["workload", "fitted α", "R²", "paper α"]);
        let mut commercial_alphas = Vec::new();
        let mut spec_curves: Vec<Vec<f64>> = Vec::new();

        for trace in &mut commercial_suite(self.seed) {
            let rates = measure_commercial(trace, &caps);
            let xs: Vec<f64> = caps.iter().map(|&c| c as f64).collect();
            let fit = PowerLawFit::fit(&xs, &rates)?;
            commercial_alphas.push(fit.alpha);
            table.push_row(vec![
                Value::text(trace.name()),
                Value::float(fit.alpha, 3),
                Value::float(fit.r_squared, 3),
                Value::fmt(format!("{:.2} (configured)", trace.alpha()), trace.alpha()),
            ]);
        }
        for trace in &mut spec_suite(self.seed) {
            let rates = measure_spec(trace, &caps);
            spec_curves.push(rates);
        }
        // SPEC aggregate: average the curves, then fit.
        let n = spec_curves.len() as f64;
        let avg: Vec<f64> = (0..caps.len())
            .map(|i| spec_curves.iter().map(|c| c[i]).sum::<f64>() / n)
            .collect();
        let xs: Vec<f64> = caps.iter().map(|&c| c as f64).collect();
        let spec_fit = PowerLawFit::fit(&xs, &avg)?;
        let avg_alpha = commercial_alphas.iter().sum::<f64>() / commercial_alphas.len() as f64;
        let min_alpha = commercial_alphas.iter().cloned().fold(f64::MAX, f64::min);
        let max_alpha = commercial_alphas.iter().cloned().fold(f64::MIN, f64::max);

        table.push_row(vec![
            Value::text("Commercial (AVG)"),
            Value::float(avg_alpha, 3),
            Value::empty(),
            Value::fmt("0.48", 0.48),
        ]);
        table.push_row(vec![
            Value::text("SPEC 2006 (AVG)"),
            Value::float(spec_fit.alpha, 3),
            Value::float(spec_fit.r_squared, 3),
            Value::fmt("0.25", 0.25),
        ]);
        report.table(table);

        report.blank();
        report.note(format!("probed cache sizes: {}", cap_kb.join(" ")));
        report.note(format!(
            "commercial α: avg {:.3} (paper 0.48), min {:.3} (paper 0.36), max {:.3} (paper 0.62)",
            avg_alpha, min_alpha, max_alpha
        ));
        report.note(format!(
            "SPEC aggregate α: {:.3} (paper 0.25)",
            spec_fit.alpha
        ));

        report.metric("commercial_alpha_avg", avg_alpha, Some(0.48));
        report.metric("commercial_alpha_min", min_alpha, Some(0.36));
        report.metric("commercial_alpha_max", max_alpha, Some(0.62));
        report.metric("spec_alpha", spec_fit.alpha, Some(0.25));
        Ok(report)
    }
}
