//! Figure 14 — Data-sharing behaviour in PARSEC-like workloads.
//!
//! Runs the PARSEC-like multithreaded traces on the shared-L2 CMP
//! simulator and reports, at each core count, the fraction of evicted L2
//! lines that were accessed by two or more cores during residency.
//!
//! Paper reference: the fraction *declines* with core count
//! (≈17.3% → 16.2% → 15.2% for 4/8/16 cores) — the opposite of the trend
//! Figure 13 shows is needed — because each added thread brings its own
//! private working set while the shared set stays put.
//!
//! Run with `--release`; the simulation covers ~1M accesses.

use crate::error::ExperimentError;
use crate::registry::Experiment;
use crate::report::{Report, TableBlock, Value};
use bandwall_cache_sim::{CacheConfig, CmpSimConfig, FillSpec, L2Organization};
use bandwall_trace::ParsecLikeTrace;

const ACCESSES: usize = 400_000;

/// Figure 14: shared-line fraction at eviction on the CMP simulator.
#[derive(Debug, Clone)]
pub struct Fig14ParsecSharing {
    /// Trace seed (historical default 2026).
    pub seed: u64,
}

impl Fig14ParsecSharing {
    fn shared_fraction(&self, cores: u16) -> f64 {
        let sim = CmpSimConfig {
            cores,
            l1: CacheConfig::new(512, 64, 2).expect("valid L1"),
            l2: CacheConfig::new(512 << 10, 64, 8).expect("valid L2"),
            organization: L2Organization::Shared,
            l2_fill: FillSpec::FullLine,
            flush: false,
        };
        let mut trace = ParsecLikeTrace::builder_with_regions(cores, 4000, 1500)
            .shared_access_fraction(0.4)
            .seed(self.seed)
            .build();
        // The banked engine is bit-identical at every thread count, so
        // threading never moves the reported numbers.
        let threads = std::thread::available_parallelism()
            .map(usize::from)
            .unwrap_or(1);
        let stats = sim
            .run(&mut trace, ACCESSES, threads)
            .expect("valid geometry");
        stats
            .sharing
            .expect("shared L2 tracks sharing")
            .shared_fraction()
    }
}

impl Experiment for Fig14ParsecSharing {
    fn id(&self) -> &'static str {
        "fig14_parsec_sharing"
    }

    fn figure(&self) -> &'static str {
        "Figure 14"
    }

    fn title(&self) -> &'static str {
        "Shared-line fraction at eviction (PARSEC-like)"
    }

    fn run(&self) -> Result<Report, ExperimentError> {
        let mut report = Report::new(self.id(), self.figure(), self.title());
        let mut table = TableBlock::new(&["cores", "% shared cache lines", "paper"]);
        for (cores, paper) in [(4u16, 0.173), (8, 0.162), (16, 0.152)] {
            let f = self.shared_fraction(cores);
            table.push_row(vec![
                Value::int(cores as u64),
                Value::fmt(format!("{:.1}%", f * 100.0), f),
                Value::fmt(format!("{:.1}%", paper * 100.0), paper),
            ]);
            report.metric(format!("shared_fraction_{cores}"), f, Some(paper));
        }
        report.table(table);
        report.blank();
        report.note("workload: constant 4000-line shared region + 1500 private lines per thread");
        report.note("(problem scaling); shared-L2 CMP with per-line sharer tracking at eviction");
        report.note("the declining trend is the paper's point; absolute levels depend on the");
        report.note("synthetic workload calibration");
        Ok(report)
    }
}
