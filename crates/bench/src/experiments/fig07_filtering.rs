//! Figure 7 — Increase in on-chip cores enabled by filtering unused data
//! from the cache.
//!
//! Paper reference: at the realistic 40% unused data the benefit is one
//! extra core (12); the optimistic 80% reaches proportional scaling (16).

use crate::error::ExperimentError;
use crate::registry::Experiment;
use crate::report::Report;
use crate::sweep::{add_paper_metrics, sweep_block, CatalogueSweep, Variant};

/// Figure 7: cores enabled by unused-data filtering.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fig07Filtering;

/// The figure's declared sweep (also served by `POST /v1/sweep`).
pub fn sweep() -> CatalogueSweep {
    let mut sweep = CatalogueSweep::base("No Filtering", Some(11));
    for (fraction, paper) in [(0.1, None), (0.2, None), (0.4, Some(12)), (0.8, Some(16))] {
        sweep = sweep.point(
            format!("{:.0}% unused", fraction * 100.0),
            "unused_data_filter",
            &[fraction],
            paper,
        );
    }
    sweep
}

/// The figure's sweep points, base first.
pub fn variants() -> Vec<Variant> {
    sweep().into_variants()
}

impl Experiment for Fig07Filtering {
    fn id(&self) -> &'static str {
        "fig07_filtering"
    }

    fn figure(&self) -> &'static str {
        "Figure 7"
    }

    fn title(&self) -> &'static str {
        "Cores enabled by unused-data filtering"
    }

    fn sweep(&self) -> Option<CatalogueSweep> {
        Some(sweep())
    }

    fn run(&self) -> Result<Report, ExperimentError> {
        let mut report = Report::new(self.id(), self.figure(), self.title());
        let variants = variants();
        let (table, results) = sweep_block(&variants)?;
        report.table(table);
        report.blank();
        report.note("indirect benefit only: the capacity gain is dampened by the -α exponent");
        add_paper_metrics(&mut report, &variants, &results);
        Ok(report)
    }
}
