//! Extension experiment (Section 6.3, footnote 1) — private coherent
//! caches vs a shared cache under data sharing.
//!
//! The paper's footnote: with private caches a shared block is replicated
//! at every sharer, so sharing reclaims no capacity (only fetch traffic).
//! This experiment runs the PARSEC-like workload on (a) a shared L2 and
//! (b) private caches kept coherent by a full-map MSI directory, sweeping
//! the shared-access fraction, and reports off-chip traffic plus the
//! coherence activity the analytical model abstracts away.

use crate::error::ExperimentError;
use crate::registry::Experiment;
use crate::report::{Report, TableBlock, Value};
use bandwall_cache_sim::{CacheConfig, CmpSystem, CoherentCmp, L2Organization};
use bandwall_trace::{ParsecLikeTrace, TraceSource};

const CORES: u16 = 8;
const ACCESSES: usize = 300_000;

/// Coherence study: shared L2 vs private MSI caches.
#[derive(Debug, Clone)]
pub struct CoherenceStudy {
    /// Trace seed (historical default 91).
    pub seed: u64,
}

impl CoherenceStudy {
    fn trace(&self, shared_fraction: f64) -> ParsecLikeTrace {
        ParsecLikeTrace::builder_with_regions(CORES, 2000, 1500)
            .shared_access_fraction(shared_fraction)
            .seed(self.seed)
            .build()
    }
}

impl Experiment for CoherenceStudy {
    fn id(&self) -> &'static str {
        "coherence_study"
    }

    fn figure(&self) -> &'static str {
        "Coherence study"
    }

    fn title(&self) -> &'static str {
        "shared L2 vs private MSI caches under data sharing (8 cores)"
    }

    fn run(&self) -> Result<Report, ExperimentError> {
        let mut report = Report::new(self.id(), self.figure(), self.title());
        let mut table = TableBlock::new(&[
            "shared accesses",
            "shared-L2 traffic",
            "private-MSI traffic",
            "ratio",
            "invalidations",
            "c2c transfers",
        ]);
        for fsh in [0.0, 0.2, 0.4, 0.6] {
            // Shared L2: one 512 KB cache.
            let mut shared = CmpSystem::new(
                CORES,
                CacheConfig::new(512, 64, 2).expect("valid L1"),
                CacheConfig::new(512 << 10, 64, 8).expect("valid L2"),
                L2Organization::Shared,
            );
            let mut t = self.trace(fsh);
            for a in t.iter().take(ACCESSES) {
                shared.access(a);
            }
            // Private MSI: eight 64 KB caches (same total silicon).
            let mut private = CoherentCmp::new(CORES, CacheConfig::new(64 << 10, 64, 8).unwrap());
            let mut t = self.trace(fsh);
            for a in t.iter().take(ACCESSES) {
                private.access(a);
            }
            let s = shared.memory_traffic().total_bytes();
            let p = private.memory_traffic().total_bytes();
            let ratio = p as f64 / s as f64;
            table.push_row(vec![
                Value::fmt(format!("{:.0}%", fsh * 100.0), fsh),
                Value::fmt(format!("{} KB", s / 1024), (s / 1024) as f64),
                Value::fmt(format!("{} KB", p / 1024), (p / 1024) as f64),
                Value::fmt(format!("{ratio:.2}"), ratio),
                Value::int(private.coherence().invalidations()),
                Value::int(private.coherence().cache_to_cache_transfers()),
            ]);
            report.metric(
                format!("private_over_shared[{:.0}%]", fsh * 100.0),
                ratio,
                None,
            );
        }
        report.table(table);
        report.blank();
        report.note("replication makes private caches fall further behind as sharing grows —");
        report.note("the capacity effect footnote 1 describes; MSI keeps the extra traffic on");
        report.note("chip (cache-to-cache) but cannot recover the wasted capacity");
        Ok(report)
    }
}
