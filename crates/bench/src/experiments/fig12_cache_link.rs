//! Figure 12 — Increase in on-chip cores enabled by cache+link
//! compression.
//!
//! Paper reference: compressed data both on the link and in the L2 — a
//! moderate 2.0× ratio already yields super-proportional scaling
//! (18 cores).

use crate::error::ExperimentError;
use crate::registry::Experiment;
use crate::report::Report;
use crate::sweep::{add_paper_metrics, sweep_block, CatalogueSweep, Variant};

/// Figure 12: cores enabled by cache+link compression.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fig12CacheLink;

/// The figure's declared sweep (also served by `POST /v1/sweep`).
pub fn sweep() -> CatalogueSweep {
    let mut sweep = CatalogueSweep::base("No Compress", Some(11));
    for (ratio, paper) in [
        (1.25, None),
        (1.5, None),
        (1.75, None),
        (2.0, Some(18)),
        (2.5, None),
        (3.0, None),
        (3.5, None),
        (4.0, None),
    ] {
        sweep = sweep.point(
            format!("{ratio}x"),
            "cache_link_compression",
            &[ratio],
            paper,
        );
    }
    sweep
}

/// The figure's sweep points, base first.
pub fn variants() -> Vec<Variant> {
    sweep().into_variants()
}

impl Experiment for Fig12CacheLink {
    fn id(&self) -> &'static str {
        "fig12_cache_link"
    }

    fn figure(&self) -> &'static str {
        "Figure 12"
    }

    fn title(&self) -> &'static str {
        "Cores enabled by cache+link compression"
    }

    fn sweep(&self) -> Option<CatalogueSweep> {
        Some(sweep())
    }

    fn run(&self) -> Result<Report, ExperimentError> {
        let mut report = Report::new(self.id(), self.figure(), self.title());
        let variants = variants();
        let (table, results) = sweep_block(&variants)?;
        report.table(table);
        add_paper_metrics(&mut report, &variants, &results);
        Ok(report)
    }
}
