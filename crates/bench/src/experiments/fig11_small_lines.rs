//! Figure 11 — Increase in on-chip cores enabled by smaller cache lines.
//!
//! Paper reference: a dual technique (Equation 12) — the realistic 40%
//! unused data restores proportional scaling (16 cores); optimistically
//! (80%) it goes well beyond.

use crate::error::ExperimentError;
use crate::registry::Experiment;
use crate::report::Report;
use crate::sweep::{add_paper_metrics, sweep_block, CatalogueSweep, Variant};

/// Figure 11: cores enabled by smaller cache lines.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fig11SmallLines;

/// The figure's declared sweep (also served by `POST /v1/sweep`).
pub fn sweep() -> CatalogueSweep {
    let mut sweep = CatalogueSweep::base("0% unused", Some(11));
    for (fraction, paper) in [(0.1, None), (0.2, None), (0.4, Some(16)), (0.8, None)] {
        sweep = sweep.point(
            format!("{:.0}% unused", fraction * 100.0),
            "small_cache_lines",
            &[fraction],
            paper,
        );
    }
    sweep
}

/// The figure's sweep points, base first.
pub fn variants() -> Vec<Variant> {
    sweep().into_variants()
}

impl Experiment for Fig11SmallLines {
    fn id(&self) -> &'static str {
        "fig11_small_lines"
    }

    fn figure(&self) -> &'static str {
        "Figure 11"
    }

    fn title(&self) -> &'static str {
        "Cores enabled by smaller cache lines"
    }

    fn sweep(&self) -> Option<CatalogueSweep> {
        Some(sweep())
    }

    fn run(&self) -> Result<Report, ExperimentError> {
        let mut report = Report::new(self.id(), self.figure(), self.title());
        let variants = variants();
        let (table, results) = sweep_block(&variants)?;
        report.table(table);
        report.blank();
        report.note("dual effect: unused words cost neither bandwidth nor cache capacity");
        add_paper_metrics(&mut report, &variants, &results);
        Ok(report)
    }
}
