//! Ablation (DESIGN.md) — inclusion policy vs off-chip traffic.
//!
//! The analytical model counts cache capacity in CEAs without caring how
//! the hierarchy divides it. This ablation checks that assumption:
//! non-inclusive, inclusive, and exclusive L1/L2 arrangements of the same
//! silicon are simulated across working-set sizes. Exclusive caching
//! behaves like a slightly larger cache (L1+L2 distinct lines), inclusive
//! like a slightly smaller one — second-order effects next to the
//! capacity itself, which is what the model captures.

use crate::error::ExperimentError;
use crate::registry::Experiment;
use crate::report::{Report, TableBlock, Value};
use bandwall_cache_sim::{CacheConfig, InclusionPolicy, TwoLevelHierarchy};
use bandwall_trace::{TraceSource, ZipfTrace};

const ACCESSES: usize = 150_000;

/// Inclusion-policy ablation on the two-level hierarchy simulator.
#[derive(Debug, Clone)]
pub struct AblateInclusion {
    /// Trace seed (historical default 42).
    pub seed: u64,
}

impl AblateInclusion {
    fn traffic(&self, inclusion: InclusionPolicy, working_set_lines: usize) -> u64 {
        let mut h = TwoLevelHierarchy::new(
            CacheConfig::new(8 << 10, 64, 4).expect("valid L1"), // 128 lines
            CacheConfig::new(32 << 10, 64, 8).expect("valid L2"), // 512 lines
        )
        .with_inclusion(inclusion);
        let mut trace = ZipfTrace::builder(working_set_lines, 0.3)
            .seed(self.seed)
            .build();
        for a in trace.iter().take(ACCESSES) {
            h.access(a.address(), a.kind().is_write());
        }
        h.memory_traffic().total_bytes()
    }
}

impl Experiment for AblateInclusion {
    fn id(&self) -> &'static str {
        "ablate_inclusion"
    }

    fn figure(&self) -> &'static str {
        "Ablation"
    }

    fn title(&self) -> &'static str {
        "inclusion policy vs off-chip traffic (8 KB L1 + 32 KB L2)"
    }

    fn run(&self) -> Result<Report, ExperimentError> {
        let mut report = Report::new(self.id(), self.figure(), self.title());
        let mut table = TableBlock::new(&[
            "working set",
            "non-inclusive",
            "inclusive",
            "exclusive",
            "excl/incl",
        ]);
        for ws in [256usize, 512, 640, 768, 1024, 2048] {
            let ni = self.traffic(InclusionPolicy::NonInclusive, ws);
            let inc = self.traffic(InclusionPolicy::Inclusive, ws);
            let exc = self.traffic(InclusionPolicy::Exclusive, ws);
            let ratio = exc as f64 / inc as f64;
            table.push_row(vec![
                Value::fmt(format!("{} KB", ws * 64 / 1024), (ws * 64 / 1024) as f64),
                Value::fmt(format!("{} KB", ni / 1024), (ni / 1024) as f64),
                Value::fmt(format!("{} KB", inc / 1024), (inc / 1024) as f64),
                Value::fmt(format!("{} KB", exc / 1024), (exc / 1024) as f64),
                Value::fmt(format!("{ratio:.2}"), ratio),
            ]);
            if ws == 768 {
                report.metric("excl_over_incl_768", ratio, None);
            }
        }
        report.table(table);
        report.blank();
        report.note("exclusive wins most around working sets between L2 and L1+L2 capacity;");
        report.note("the spread is small next to capacity scaling itself, supporting the");
        report.note("model's CEA-counting abstraction");
        Ok(report)
    }
}
