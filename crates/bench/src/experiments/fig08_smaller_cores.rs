//! Figure 8 — Increase in on-chip cores enabled by smaller cores.
//!
//! Paper reference: the benefit saturates quickly — even infinitesimal
//! cores cannot exceed ~12–13 next-generation cores, because freeing core
//! area at most doubles the cache per core while proportional scaling
//! needs 4×.

use crate::error::ExperimentError;
use crate::paper_baseline;
use crate::registry::Experiment;
use crate::report::Report;
use crate::sweep::{add_paper_metrics, sweep_block, CatalogueSweep, Variant};
use bandwall_model::{ScalingProblem, Technique};

/// Figure 8: cores enabled by smaller cores.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fig08SmallerCores;

/// The figure's declared sweep (also served by `POST /v1/sweep`).
pub fn sweep() -> CatalogueSweep {
    let mut sweep = CatalogueSweep::base("1x (full-size)", Some(11));
    for reduction in [9.0, 45.0, 80.0] {
        sweep = sweep.point(
            format!("{reduction:.0}x smaller"),
            "smaller_cores",
            &[1.0 / reduction],
            None,
        );
    }
    sweep
}

/// The figure's sweep points, base first.
pub fn variants() -> Vec<Variant> {
    sweep().into_variants()
}

impl Experiment for Fig08SmallerCores {
    fn id(&self) -> &'static str {
        "fig08_smaller_cores"
    }

    fn figure(&self) -> &'static str {
        "Figure 8"
    }

    fn title(&self) -> &'static str {
        "Cores enabled by smaller cores"
    }

    fn sweep(&self) -> Option<CatalogueSweep> {
        Some(sweep())
    }

    fn run(&self) -> Result<Report, ExperimentError> {
        let mut report = Report::new(self.id(), self.figure(), self.title());
        let variants = variants();
        let (table, results) = sweep_block(&variants)?;
        report.table(table);

        // The limit case the paper derives analytically: cores of zero area
        // leave all 32 CEAs as cache, and (P/8)·(32/P)^-0.5 = 1 at P ≈ 12.7.
        let limit = ScalingProblem::new(paper_baseline(), 32.0)
            .with_technique(Technique::smaller_cores(1e-6).expect("valid"))
            .max_supportable_cores()
            .unwrap();
        report.blank();
        report.note(format!(
            "limit (infinitesimal cores): {limit} cores — cache per core can at most double"
        ));

        // The paper's caveat: "with increasingly smaller cores, the
        // interconnection between cores becomes increasingly larger".
        let taxed = ScalingProblem::new(paper_baseline(), 32.0)
            .with_technique(Technique::smaller_cores(1.0 / 80.0).expect("valid"))
            .with_uncore_overhead(0.5)
            .max_supportable_cores()
            .unwrap();
        report.note(format!(
            "with 0.5 CEA/core of interconnect, 80x-smaller cores support only {taxed}"
        ));

        add_paper_metrics(&mut report, &variants, &results);
        report.metric("limit_cores", limit as f64, None);
        report.metric("taxed_cores_80x", taxed as f64, None);
        Ok(report)
    }
}
