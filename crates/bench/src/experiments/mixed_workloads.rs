//! Extension experiment — core scaling for multi-programmed workload
//! mixes.
//!
//! The paper assumes one workload character per chip; a consolidation
//! server runs a blend. This experiment sweeps the commercial/SPEC blend
//! ratio and shows the supportable core count interpolating between the
//! two pure chips — non-linearly, because the cache-insensitive SPEC
//! share (α = 0.25) drags the chip harder than its share suggests.

use crate::error::ExperimentError;
use crate::registry::Experiment;
use crate::report::{Report, TableBlock, Value};
use crate::{die_budget, paper_baseline, GENERATION_LABELS};
use bandwall_model::mix::{WorkloadClass, WorkloadMix};
use bandwall_model::Alpha;

fn mix(commercial_share: f64) -> Result<WorkloadMix, ExperimentError> {
    let mut classes = Vec::new();
    if commercial_share > 0.0 {
        classes.push(WorkloadClass::new(
            "commercial",
            Alpha::COMMERCIAL_AVERAGE,
            1.0,
            commercial_share,
        )?);
    }
    if commercial_share < 1.0 {
        classes.push(WorkloadClass::new(
            "spec",
            Alpha::SPEC2006,
            1.0,
            1.0 - commercial_share,
        )?);
    }
    Ok(WorkloadMix::new(paper_baseline(), classes)?)
}

/// Mixed-workload study: commercial/SPEC blend vs supportable cores.
#[derive(Debug, Clone, Copy, Default)]
pub struct MixedWorkloads;

impl Experiment for MixedWorkloads {
    fn id(&self) -> &'static str {
        "mixed_workloads"
    }

    fn figure(&self) -> &'static str {
        "Mixed workloads"
    }

    fn title(&self) -> &'static str {
        "supportable cores vs commercial/SPEC blend (constant envelope)"
    }

    fn run(&self) -> Result<Report, ExperimentError> {
        let mut report = Report::new(self.id(), self.figure(), self.title());
        let mut table = TableBlock::new(&[
            "commercial share",
            GENERATION_LABELS[0],
            GENERATION_LABELS[1],
            GENERATION_LABELS[2],
            GENERATION_LABELS[3],
        ]);
        for share in [1.0, 0.75, 0.5, 0.25, 0.0] {
            let m = mix(share)?;
            let mut row = vec![Value::fmt(format!("{:.0}%", share * 100.0), share)];
            for g in 1..=4u32 {
                let cores = m.max_supportable_cores(die_budget(g), 1.0)?;
                if g == 4 {
                    report.metric(
                        format!("cores_16x[{:.0}% commercial]", share * 100.0),
                        cores as f64,
                        None,
                    );
                }
                row.push(Value::int(cores));
            }
            table.push_row(row);
        }
        report.table(table);
        report.blank();
        report.note("pure commercial (α=0.5) vs pure SPEC (α=0.25) anchors match Figure 17's");
        report.note("BASE rows; blends interpolate, weighted toward the insensitive class");
        Ok(report)
    }
}
