//! Registry extension — thermal-capped 3D cache stacking, after Yavits
//! et al., "The Effect of Temperature on Amdahl Law in 3D Multicore
//! Era".
//!
//! The paper's Figure 6 treats every stacked layer as fully usable, so
//! the benefit grows linearly with the stack. Thermally, each layer
//! sits further from the heat sink and must derate: layer `k`
//! contributes `density × derate^k`, so the total stacked capacity is
//! geometrically bounded by `density / (1 - derate)` layers-worth — the
//! thermal ceiling. This experiment contrasts the derated stack against
//! the ideal one at the same layer counts.
//!
//! The technique is a pure registry addition
//! (`bandwall_model::descriptor`): no solver, sweep, or wire-layer code
//! knows about it beyond this declaration.

use crate::error::ExperimentError;
use crate::registry::Experiment;
use crate::report::Report;
use crate::sweep::{add_paper_metrics, sweep_block, CatalogueSweep, Variant};

/// Thermal derating factor per layer used throughout the sweep — the
/// pessimistic band of the registry entry, where the geometric ceiling
/// (16 layers-equivalent) stays below what the 32-core die cap absorbs,
/// so the saturation is visible in the core counts.
const DERATE: f64 = 0.5;

/// DRAM layer density relative to SRAM (the paper's realistic 8×).
const DENSITY: f64 = 8.0;

/// Registry extension: thermally derated 3D cache stacking.
#[derive(Debug, Clone, Copy, Default)]
pub struct ThermalCapped3d;

/// The experiment's declared sweep (also served by `POST /v1/sweep`).
pub fn sweep() -> CatalogueSweep {
    let mut sweep = CatalogueSweep::base("No 3D Cache", Some(11));
    for layers in [2.0, 4.0, 8.0] {
        sweep = sweep.point(
            format!("{layers:.0} layers (derate {DERATE})"),
            "thermal_capped_3d",
            &[layers, DENSITY, DERATE],
            None,
        );
    }
    // The ideal (underated) stack at the deepest point, for contrast:
    // derate 1.0 makes thermal_capped_3d coincide with plain stacking.
    sweep.point(
        "8 layers (ideal)",
        "thermal_capped_3d",
        &[8.0, DENSITY, 1.0],
        None,
    )
}

/// The experiment's sweep points, base first.
pub fn variants() -> Vec<Variant> {
    sweep().into_variants()
}

impl Experiment for ThermalCapped3d {
    fn id(&self) -> &'static str {
        "thermal_capped_3d"
    }

    fn figure(&self) -> &'static str {
        "Registry extension"
    }

    fn title(&self) -> &'static str {
        "Thermal ceiling on 3D-stacked caches"
    }

    fn sweep(&self) -> Option<CatalogueSweep> {
        Some(sweep())
    }

    fn run(&self) -> Result<Report, ExperimentError> {
        let mut report = Report::new(self.id(), self.figure(), self.title());
        let variants = variants();
        let (table, results) = sweep_block(&variants)?;
        report.table(table);
        report.blank();
        let ceiling = DENSITY / (1.0 - DERATE);
        report.note(format!(
            "thermal ceiling: a derate of {DERATE} bounds the stack at \
             {ceiling:.1} SRAM-layers-equivalent of cache, however deep it grows"
        ));
        report.note(
            "after Yavits et al., \"The Effect of Temperature on Amdahl Law in 3D Multicore Era\"",
        );
        add_paper_metrics(&mut report, &variants, &results);
        // The headline gap: derated vs ideal cores at the deepest stack.
        let derated = results[3] as f64;
        let ideal = results[4] as f64;
        report.metric("derated_cores_8_layers", derated, None);
        report.metric("ideal_cores_8_layers", ideal, None);
        report.metric("thermal_gap_cores", ideal - derated, None);
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derated_stacks_trail_ideal_ones() {
        let report = ThermalCapped3d.run().unwrap();
        let derated = report.get_metric("derated_cores_8_layers").unwrap().model;
        let ideal = report.get_metric("ideal_cores_8_layers").unwrap().model;
        assert!(
            derated < ideal,
            "thermal derating must cost cores: {derated} vs {ideal}"
        );
        let gap = report.get_metric("thermal_gap_cores").unwrap().model;
        assert_eq!(gap, ideal - derated);
    }

    #[test]
    fn deeper_derated_stacks_still_help_but_saturate() {
        let (_, results) = sweep_block(&variants()).unwrap();
        // Base, then 2/4/8 derated layers: monotone non-decreasing...
        assert!(
            results.windows(2).take(3).all(|w| w[0] <= w[1]),
            "{results:?}"
        );
        // ...but the 4→8 step is no larger than the 2→4 step (ceiling).
        assert!(
            results[3] - results[2] <= results[2] - results[1],
            "{results:?}"
        );
    }
}
