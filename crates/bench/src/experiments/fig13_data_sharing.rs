//! Figure 13 — Impact of data sharing on the memory-traffic requirement.
//!
//! Normalized traffic vs fraction of shared data for proportionally
//! scaled chips of 16/32/64/128 cores (shared L2, Equations 13–14), plus
//! the shared fraction needed to hold traffic at the baseline level.
//!
//! Paper reference: constant traffic requires fsh ≈ 40%, 63%, 77%, 86%
//! for the four generations.

use crate::error::ExperimentError;
use crate::paper_baseline;
use crate::registry::Experiment;
use crate::report::{Report, TableBlock, Value};
use bandwall_model::sharing::SharingModel;

/// Figure 13: traffic vs shared-data fraction.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fig13DataSharing;

impl Experiment for Fig13DataSharing {
    fn id(&self) -> &'static str {
        "fig13_data_sharing"
    }

    fn figure(&self) -> &'static str {
        "Figure 13"
    }

    fn title(&self) -> &'static str {
        "Impact of data sharing on traffic"
    }

    fn run(&self) -> Result<Report, ExperimentError> {
        let mut report = Report::new(self.id(), self.figure(), self.title());
        let model = SharingModel::new(paper_baseline());
        let configs = [16.0, 32.0, 64.0, 128.0];

        let mut table = TableBlock::new(&["fsh", "16 cores", "32 cores", "64 cores", "128 cores"]);
        for i in 0..=10 {
            let fsh = i as f64 / 10.0;
            let mut row = vec![Value::fmt(format!("{fsh:.1}"), fsh)];
            for &cores in &configs {
                let traffic = model.relative_traffic(cores, cores, fsh)?;
                row.push(Value::fmt(format!("{:.0}%", traffic * 100.0), traffic));
            }
            table.push_row(row);
        }
        report.table(table);

        report.blank();
        let mut req = TableBlock::new(&["cores", "required fsh", "paper"]);
        for (&cores, paper) in configs.iter().zip([0.40, 0.63, 0.77, 0.86]) {
            let fsh = model
                .required_shared_fraction(cores, cores, 1.0)?
                .ok_or_else(|| {
                    ExperimentError::Numerical(format!(
                        "no shared fraction holds traffic constant at {cores} cores"
                    ))
                })?;
            req.push_row(vec![
                Value::fmt(format!("{cores:.0}"), cores),
                Value::fmt(format!("{:.1}%", fsh * 100.0), fsh),
                Value::fmt(format!("{:.0}%", paper * 100.0), paper),
            ]);
            report.metric(format!("required_fsh_{}", cores as u64), fsh, Some(paper));
        }
        report.table(req);
        report.blank();
        report
            .note("holding traffic constant under proportional scaling demands ever more sharing");
        Ok(report)
    }
}
