//! Extension experiment — simulated cross-check of the model's
//! combination algebra.
//!
//! The paper's strongest claim (Figure 16) is that bandwidth-conservation
//! techniques *compose*: the analytical model multiplies each technique's
//! traffic divisor, so sectoring (×`1/(1-unused)`) and cache compression
//! (capacity ×`F`) together should divide traffic by roughly the product
//! of their individual divisors. The unified access pipeline makes the
//! composed configurations simulatable — a [`FillSpec::SectoredCompressed`]
//! cache fetches at sector granularity *into* byte-budgeted compressed
//! sets — so the algebra can be checked against measurement instead of
//! assumed.
//!
//! The experiment runs the same trace through the conventional, sectored,
//! compressed, and sectored+compressed engines (banked-parallel; merged
//! stats are bit-identical to sequential) and compares the measured
//! combined traffic ratio with the product of the individual ratios. A
//! second table composes coherence with compression
//! ([`CoherentSimConfig`] over compressed private caches), which no
//! simulator in this repository could express before the pipeline.
//!
//! Tolerance: the model treats divisors as independent; simulation
//! couples them (sectoring shortens residencies, which changes what the
//! compressed budget holds), so the product is accepted within
//! [`TOLERANCE`] relative error — the same order of agreement the paper
//! claims for its own validation studies.

use crate::error::ExperimentError;
use crate::registry::Experiment;
use crate::report::{Report, TableBlock, Value};
use bandwall_cache_sim::{
    CacheConfig, CoherentSimConfig, CompressorKind, EngineSimConfig, FillSpec, ProfileKind,
    ValueSpec,
};
use bandwall_trace::{ParsecLikeTrace, StackDistanceTrace};

const ACCESSES: usize = 200_000;

/// Documented tolerance on `measured / predicted` for the combined
/// traffic ratio (see the module docs for why the algebra is only
/// approximately multiplicative in simulation).
pub const TOLERANCE: f64 = 0.35;

/// Thread budget for the banked runs (the merged statistics are
/// bit-identical at any thread count, so this only affects wall-clock).
const THREADS: usize = 4;

/// Measured traffic ratios of the composed engine configurations.
#[derive(Debug, Clone, Copy)]
pub struct ComboRatios {
    /// Conventional whole-line traffic in bytes (the baseline).
    pub base_bytes: f64,
    /// Baseline traffic / sectored traffic.
    pub sectored: f64,
    /// Baseline traffic / compressed traffic.
    pub compressed: f64,
    /// Baseline traffic / sectored+compressed traffic.
    pub combined: f64,
}

impl ComboRatios {
    /// The model's prediction for the combined ratio: the product of the
    /// individual divisors.
    pub fn predicted(&self) -> f64 {
        self.sectored * self.compressed
    }

    /// Relative error of the measured combined ratio vs the prediction.
    pub fn relative_error(&self) -> f64 {
        (self.combined - self.predicted()).abs() / self.predicted()
    }
}

/// Combination-algebra cross-check on the unified pipeline.
#[derive(Debug, Clone)]
pub struct ComboSim {
    /// Trace/value seed (historical default 47).
    pub seed: u64,
}

impl ComboSim {
    fn values(&self) -> ValueSpec {
        ValueSpec {
            profile: ProfileKind::Commercial,
            seed: self.seed ^ 0xC0DE,
        }
    }

    fn engine_traffic(&self, fill: FillSpec, accesses: usize) -> f64 {
        let sim = EngineSimConfig {
            // 64 KB over a ~512 KB working set: capacity pressure makes
            // compression matter; 5-of-8 touched words make sectoring
            // matter.
            cache: CacheConfig::new(64 << 10, 64, 8).expect("valid geometry"),
            fill,
            flush: true,
        };
        let mut trace = StackDistanceTrace::builder(0.5)
            .seed(self.seed)
            .touched_words(5)
            .max_distance(1 << 13)
            .build();
        let stats = sim.run(&mut trace, accesses, THREADS);
        stats.traffic.total_bytes() as f64
    }

    /// Runs the four engine configurations and returns the traffic ratios.
    pub fn ratios(&self, accesses: usize) -> ComboRatios {
        let values = self.values();
        let base = self.engine_traffic(FillSpec::FullLine, accesses);
        let sectored = self.engine_traffic(
            FillSpec::Sectored {
                sectors_per_line: 8,
            },
            accesses,
        );
        let compressed = self.engine_traffic(
            FillSpec::Compressed {
                compressor: CompressorKind::Fpc,
                values,
            },
            accesses,
        );
        let combined = self.engine_traffic(
            FillSpec::SectoredCompressed {
                sectors_per_line: 8,
                compressor: CompressorKind::Fpc,
                values,
            },
            accesses,
        );
        ComboRatios {
            base_bytes: base,
            sectored: base / sectored,
            compressed: base / compressed,
            combined: base / combined,
        }
    }

    fn coherent_traffic(&self, fill: FillSpec, accesses: usize) -> (f64, u64, u64) {
        let sim = CoherentSimConfig {
            cores: 4,
            cache: CacheConfig::new(16 << 10, 64, 4).expect("valid geometry"),
            fill,
            flush: true,
        };
        let mut trace = ParsecLikeTrace::builder_with_regions(4, 2000, 800)
            .shared_access_fraction(0.4)
            .write_fraction(0.3)
            .seed(self.seed ^ 0x5A)
            .build();
        let stats = sim
            .run(&mut trace, accesses, THREADS)
            .expect("valid geometry");
        (
            stats.traffic.total_bytes() as f64,
            stats.coherence.invalidations(),
            stats.coherence.cache_to_cache_transfers(),
        )
    }
}

impl Experiment for ComboSim {
    fn id(&self) -> &'static str {
        "combo_sim"
    }

    fn figure(&self) -> &'static str {
        "Combination algebra"
    }

    fn title(&self) -> &'static str {
        "composed fills vs the model's multiplicative traffic algebra"
    }

    fn run(&self) -> Result<Report, ExperimentError> {
        let mut report = Report::new(self.id(), self.figure(), self.title());
        let r = self.ratios(ACCESSES);

        let mb = |bytes: f64| Value::fmt(format!("{:.2}", bytes / 1e6), bytes / 1e6);
        let ratio = |x: f64| Value::fmt(format!("{x:.3}x"), x);
        let mut table = TableBlock::new(&["configuration", "traffic MB", "ratio vs base", "model"]);
        table.push_row(vec![
            Value::text("conventional"),
            mb(r.base_bytes),
            ratio(1.0),
            Value::text("-"),
        ]);
        table.push_row(vec![
            Value::text("sectored (8 sectors)"),
            mb(r.base_bytes / r.sectored),
            ratio(r.sectored),
            Value::text("-"),
        ]);
        table.push_row(vec![
            Value::text("compressed (FPC)"),
            mb(r.base_bytes / r.compressed),
            ratio(r.compressed),
            Value::text("-"),
        ]);
        table.push_row(vec![
            Value::text("sectored + compressed"),
            mb(r.base_bytes / r.combined),
            ratio(r.combined),
            ratio(r.predicted()),
        ]);
        report.metric("traffic_ratio_sectored", r.sectored, None);
        report.metric("traffic_ratio_compressed", r.compressed, None);
        report.metric("traffic_ratio_combined", r.combined, Some(r.predicted()));
        report.metric("combined_relative_error", r.relative_error(), None);
        report.table(table);
        report.blank();

        let mut coherent = TableBlock::new(&[
            "configuration",
            "traffic MB",
            "invalidations",
            "c2c transfers",
        ]);
        let (full, full_inv, full_c2c) = self.coherent_traffic(FillSpec::FullLine, ACCESSES);
        let (comp, comp_inv, comp_c2c) = self.coherent_traffic(
            FillSpec::Compressed {
                compressor: CompressorKind::Fpc,
                values: self.values(),
            },
            ACCESSES,
        );
        coherent.push_row(vec![
            Value::text("coherent (MSI), full-line"),
            mb(full),
            Value::int(full_inv),
            Value::int(full_c2c),
        ]);
        coherent.push_row(vec![
            Value::text("coherent (MSI) + compressed"),
            mb(comp),
            Value::int(comp_inv),
            Value::int(comp_c2c),
        ]);
        report.metric("coherent_compressed_ratio", full / comp, None);
        report.table(coherent);
        report.blank();
        report.note("the model multiplies per-technique traffic divisors (Fig. 16); the measured");
        report.note(format!(
            "combined ratio sits within {:.0}% of the product ({:.1}% here), so the",
            TOLERANCE * 100.0,
            r.relative_error() * 100.0
        ));
        report.note("super-proportional composition claim survives contact with simulation;");
        report.note("coherent+compressed runs on the same banked engine — inexpressible before");
        report.note("the unified pipeline");
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combination_algebra_holds_within_documented_tolerance() {
        let r = ComboSim { seed: 47 }.ratios(60_000);
        assert!(r.sectored > 1.0, "sectoring must save traffic: {r:?}");
        assert!(r.compressed > 1.0, "compression must save traffic: {r:?}");
        assert!(
            r.combined > r.sectored.max(r.compressed),
            "composition must beat either technique alone: {r:?}"
        );
        assert!(
            r.relative_error() < TOLERANCE,
            "measured {:.3} vs predicted {:.3} (error {:.1}%)",
            r.combined,
            r.predicted(),
            r.relative_error() * 100.0
        );
    }

    #[test]
    fn coherent_compressed_composition_runs() {
        let e = ComboSim { seed: 47 };
        let (full, inv, _) = e.coherent_traffic(FillSpec::FullLine, 30_000);
        let (comp, comp_inv, _) = e.coherent_traffic(
            FillSpec::Compressed {
                compressor: CompressorKind::Fpc,
                values: e.values(),
            },
            30_000,
        );
        assert!(inv > 0 && comp_inv > 0, "coherence must be exercised");
        assert!(
            comp < full,
            "compressed private caches must cut traffic: {comp} vs {full}"
        );
    }
}
