//! Figure 6 — Increase in on-chip cores enabled by 3D-stacked caches.
//!
//! Paper reference: no-3D 11 cores; one stacked SRAM die 14; stacked DRAM
//! dies at 8×/16× density 25/32 — super-proportional scaling.

use crate::error::ExperimentError;
use crate::registry::Experiment;
use crate::report::Report;
use crate::sweep::{add_paper_metrics, sweep_block, CatalogueSweep, Variant};

/// Figure 6: cores enabled by 3D-stacked caches.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fig063dCache;

/// The figure's declared sweep (also served by `POST /v1/sweep`).
pub fn sweep() -> CatalogueSweep {
    CatalogueSweep::base("No 3D Cache", Some(11))
        .point("3D SRAM", "stacked_cache", &[1.0, 1.0], Some(14))
        .point("3D DRAM (8x)", "stacked_cache", &[1.0, 8.0], Some(25))
        .point("3D DRAM (16x)", "stacked_cache", &[1.0, 16.0], Some(32))
}

/// The figure's sweep points, base first.
pub fn variants() -> Vec<Variant> {
    sweep().into_variants()
}

impl Experiment for Fig063dCache {
    fn id(&self) -> &'static str {
        "fig06_3d_cache"
    }

    fn figure(&self) -> &'static str {
        "Figure 6"
    }

    fn title(&self) -> &'static str {
        "Cores enabled by 3D-stacked caches"
    }

    fn sweep(&self) -> Option<CatalogueSweep> {
        Some(sweep())
    }

    fn run(&self) -> Result<Report, ExperimentError> {
        let mut report = Report::new(self.id(), self.figure(), self.title());
        let variants = variants();
        let (table, results) = sweep_block(&variants)?;
        report.table(table);
        add_paper_metrics(&mut report, &variants, &results);
        Ok(report)
    }
}
