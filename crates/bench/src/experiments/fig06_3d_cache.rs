//! Figure 6 — Increase in on-chip cores enabled by 3D-stacked caches.
//!
//! Paper reference: no-3D 11 cores; one stacked SRAM die 14; stacked DRAM
//! dies at 8×/16× density 25/32 — super-proportional scaling.

use crate::error::ExperimentError;
use crate::registry::Experiment;
use crate::report::Report;
use crate::sweep::{add_paper_metrics, sweep_block, Variant};
use bandwall_model::Technique;

/// Figure 6: cores enabled by 3D-stacked caches.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fig063dCache;

/// The figure's sweep points (also served by `POST /v1/sweep`).
pub fn variants() -> Vec<Variant> {
    vec![
        Variant::new("No 3D Cache", None, Some(11)),
        Variant::new(
            "3D SRAM",
            Some(Technique::stacked_cache(1).expect("valid")),
            Some(14),
        ),
        Variant::new(
            "3D DRAM (8x)",
            Some(Technique::stacked_dram_cache(1, 8.0).expect("valid")),
            Some(25),
        ),
        Variant::new(
            "3D DRAM (16x)",
            Some(Technique::stacked_dram_cache(1, 16.0).expect("valid")),
            Some(32),
        ),
    ]
}

impl Experiment for Fig063dCache {
    fn id(&self) -> &'static str {
        "fig06_3d_cache"
    }

    fn figure(&self) -> &'static str {
        "Figure 6"
    }

    fn title(&self) -> &'static str {
        "Cores enabled by 3D-stacked caches"
    }

    fn run(&self) -> Result<Report, ExperimentError> {
        let mut report = Report::new(self.id(), self.figure(), self.title());
        let variants = variants();
        let (table, results) = sweep_block(&variants)?;
        report.table(table);
        add_paper_metrics(&mut report, &variants, &results);
        Ok(report)
    }
}
