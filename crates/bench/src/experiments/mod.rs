//! One module per experiment: the seventeen paper figures, Table 2, and
//! the supporting studies, ablations, and validations. Each implements
//! [`crate::registry::Experiment`] and is constructed here in
//! presentation order.

pub mod ablate_inclusion;
pub mod ablate_replacement;
pub mod coherence_study;
pub mod combo_sim;
pub mod cxl_harvesting;
pub mod fault_inject;
pub mod fig01_power_law;
pub mod fig02_traffic_vs_cores;
pub mod fig03_die_allocation;
pub mod fig04_cache_compression;
pub mod fig05_dram_cache;
pub mod fig06_3d_cache;
pub mod fig07_filtering;
pub mod fig08_smaller_cores;
pub mod fig09_link_compression;
pub mod fig10_sectored;
pub mod fig11_small_lines;
pub mod fig12_cache_link;
pub mod fig13_data_sharing;
pub mod fig14_parsec_sharing;
pub mod fig15_technique_sweep;
pub mod fig16_combinations;
pub mod fig17_alpha_sensitivity;
pub mod mixed_workloads;
pub mod predictor_study;
pub mod roadmap_scenarios;
pub mod sensitivity;
pub mod table2_summary;
pub mod thermal_capped_3d;
pub mod throughput_wall;
pub mod validate_compression;
pub mod validate_line_size;
pub mod validate_writeback;

use crate::registry::Experiment;
use bandwall_numerics::rng::splitmix64;

/// Builds every experiment in registry order. With `seed == None` each
/// seeded experiment keeps its historical default (byte-compatible with
/// the legacy binaries); with `Some(s)` each gets a distinct seed
/// derived from `s` via SplitMix64, in registry order.
pub fn all(seed: Option<u64>) -> Vec<Box<dyn Experiment>> {
    let mut state = seed.unwrap_or(0);
    let mut derive = |default: u64| -> u64 {
        if seed.is_some() {
            splitmix64(&mut state)
        } else {
            default
        }
    };
    let mut experiments: Vec<Box<dyn Experiment>> = Vec::new();
    // Test-only: BANDWALL_FAULT_INJECT prepends a deliberately failing
    // experiment so the harness's fault isolation can be exercised
    // against the real registry. Absent the variable the registry is
    // exactly the 32 registered entries.
    if let Some(fault) = fault_inject::from_env() {
        experiments.push(Box::new(fault));
    }
    experiments.extend([
        Box::new(fig01_power_law::Fig01PowerLaw { seed: derive(2026) }) as Box<dyn Experiment>,
        Box::new(fig02_traffic_vs_cores::Fig02TrafficVsCores),
        Box::new(fig03_die_allocation::Fig03DieAllocation),
        Box::new(fig04_cache_compression::Fig04CacheCompression),
        Box::new(fig05_dram_cache::Fig05DramCache),
        Box::new(fig06_3d_cache::Fig063dCache),
        Box::new(fig07_filtering::Fig07Filtering),
        Box::new(fig08_smaller_cores::Fig08SmallerCores),
        Box::new(fig09_link_compression::Fig09LinkCompression),
        Box::new(fig10_sectored::Fig10Sectored),
        Box::new(fig11_small_lines::Fig11SmallLines),
        Box::new(fig12_cache_link::Fig12CacheLink),
        Box::new(fig13_data_sharing::Fig13DataSharing),
        Box::new(fig14_parsec_sharing::Fig14ParsecSharing { seed: derive(2026) }),
        Box::new(fig15_technique_sweep::Fig15TechniqueSweep),
        Box::new(fig16_combinations::Fig16Combinations),
        Box::new(fig17_alpha_sensitivity::Fig17AlphaSensitivity),
        Box::new(table2_summary::Table2Summary),
        Box::new(throughput_wall::ThroughputWall),
        Box::new(roadmap_scenarios::RoadmapScenarios),
        Box::new(sensitivity::Sensitivity {
            seed: derive(20260706),
        }),
        Box::new(mixed_workloads::MixedWorkloads),
        Box::new(ablate_inclusion::AblateInclusion { seed: derive(42) }),
        Box::new(ablate_replacement::AblateReplacement {
            trace_seed: derive(31),
            policy_seed: derive(7),
        }),
        Box::new(coherence_study::CoherenceStudy { seed: derive(91) }),
        Box::new(predictor_study::PredictorStudy { seed: derive(61) }),
        Box::new(validate_compression::ValidateCompression { seed: derive(77) }),
        Box::new(validate_line_size::ValidateLineSize { seed: derive(17) }),
        Box::new(validate_writeback::ValidateWriteback { seed: derive(99) }),
        // Appended after the 29 historical entries so their derived-seed
        // sequence (and therefore every historical report) is unchanged.
        Box::new(combo_sim::ComboSim { seed: derive(47) }),
        // Registry extensions (unseeded analytic experiments): appended
        // last, after every seeded entry, so the SplitMix64 derivation
        // order — and with it the 30 historical reports — stays fixed.
        Box::new(thermal_capped_3d::ThermalCapped3d),
        Box::new(cxl_harvesting::CxlHarvesting),
    ]);
    experiments
}
