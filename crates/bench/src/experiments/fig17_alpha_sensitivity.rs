//! Figure 17 — Core scaling with select techniques for a high and a low
//! workload exponent α.
//!
//! Paper reference: α = 0.62 (OLTP-4) vs α = 0.25 (SPEC 2006 aggregate).
//! In the base case the large α supports almost twice the cores; with
//! techniques applied, the gap widens — a small α blocks proportional
//! scaling while a large α permits super-proportional scaling.

use crate::error::ExperimentError;
use crate::registry::Experiment;
use crate::report::{Report, TableBlock, Value};
use crate::{die_budget, paper_baseline, GENERATIONS, GENERATION_LABELS};
use bandwall_model::combination::Combination;
use bandwall_model::{Alpha, AssumptionLevel, ScalingProblem};

/// Figure 17: scaling under high vs low workload exponents.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fig17AlphaSensitivity;

impl Experiment for Fig17AlphaSensitivity {
    fn id(&self) -> &'static str {
        "fig17_alpha_sensitivity"
    }

    fn figure(&self) -> &'static str {
        "Figure 17"
    }

    fn title(&self) -> &'static str {
        "Core scaling for high and low α"
    }

    fn run(&self) -> Result<Report, ExperimentError> {
        let mut report = Report::new(self.id(), self.figure(), self.title());
        let groups: Vec<(&str, Vec<&str>)> = vec![
            ("BASE", vec![]),
            ("DRAM", vec!["DRAM"]),
            ("CC/LC + DRAM", vec!["CC/LC", "DRAM"]),
            ("CC/LC + DRAM + 3D", vec!["CC/LC", "DRAM", "3D"]),
        ];
        let alphas = [
            ("α = 0.62", Alpha::COMMERCIAL_MAX),
            ("α = 0.25", Alpha::SPEC2006),
        ];

        for (alpha_label, alpha) in alphas {
            report.blank();
            report.note(format!("--- {alpha_label} ---"));
            let baseline = paper_baseline().with_alpha(alpha);
            let mut table = TableBlock::new(&[
                "configuration",
                GENERATION_LABELS[0],
                GENERATION_LABELS[1],
                GENERATION_LABELS[2],
                GENERATION_LABELS[3],
            ]);
            table.push_row(
                std::iter::once(Value::text("IDEAL"))
                    .chain(GENERATIONS.iter().map(|&g| {
                        Value::int(
                            ScalingProblem::new(baseline, die_budget(g)).proportional_cores(),
                        )
                    }))
                    .collect(),
            );
            for (name, labels) in &groups {
                let combo = Combination::from_labels(labels, AssumptionLevel::Realistic)?;
                let mut row = vec![Value::text(*name)];
                for &g in &GENERATIONS {
                    let cores = ScalingProblem::new(baseline, die_budget(g))
                        .with_techniques(combo.techniques().iter().copied())
                        .max_supportable_cores()?;
                    row.push(Value::int(cores));
                }
                table.push_row(row);
            }
            report.table(table);
        }

        report.blank();
        let hi = ScalingProblem::new(paper_baseline().with_alpha(Alpha::COMMERCIAL_MAX), 256.0)
            .max_supportable_cores()?;
        let lo = ScalingProblem::new(paper_baseline().with_alpha(Alpha::SPEC2006), 256.0)
            .max_supportable_cores()?;
        report.note(format!(
            "base case at 16x: α=0.62 -> {hi} cores vs α=0.25 -> {lo} cores ({:.1}x)",
            hi as f64 / lo as f64
        ));
        report.metric("high_alpha_cores_16x", hi as f64, None);
        report.metric("low_alpha_cores_16x", lo as f64, None);
        report.metric("alpha_cores_ratio", hi as f64 / lo as f64, Some(2.0));
        Ok(report)
    }
}
