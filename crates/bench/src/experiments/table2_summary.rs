//! Table 2 — Summary of memory-traffic reduction techniques: assumption
//! bands plus the paper's qualitative effectiveness / variability /
//! complexity assessment, alongside the solved next-generation core
//! counts for each band.

use crate::error::ExperimentError;
use crate::registry::Experiment;
use crate::report::{Report, TableBlock, Value};
use crate::{die_budget, paper_baseline};
use bandwall_model::{catalog, AssumptionLevel, ScalingProblem};

/// Table 2: the technique summary with solved core counts per band.
#[derive(Debug, Clone, Copy, Default)]
pub struct Table2Summary;

impl Experiment for Table2Summary {
    fn id(&self) -> &'static str {
        "table2_summary"
    }

    fn figure(&self) -> &'static str {
        "Table 2"
    }

    fn title(&self) -> &'static str {
        "Summary of memory-traffic reduction techniques"
    }

    fn run(&self) -> Result<Report, ExperimentError> {
        let mut report = Report::new(self.id(), self.figure(), self.title());
        let mut table = TableBlock::new(&[
            "Technique",
            "Label",
            "Realistic",
            "Pessimistic",
            "Optimistic",
            "Effect.",
            "Range",
            "Complex.",
            "cores @2x (P/R/O)",
        ]);
        for profile in catalog() {
            let mut cores = Vec::with_capacity(AssumptionLevel::ALL.len());
            for &level in AssumptionLevel::ALL.iter() {
                cores.push(
                    ScalingProblem::new(paper_baseline(), die_budget(1))
                        .with_technique(profile.technique(level)?)
                        .max_supportable_cores()?
                        .to_string(),
                );
            }
            table.push_row(vec![
                Value::text(profile.name()),
                Value::text(profile.label()),
                Value::text(profile.assumption_text(AssumptionLevel::Realistic)),
                Value::text(profile.assumption_text(AssumptionLevel::Pessimistic)),
                Value::text(profile.assumption_text(AssumptionLevel::Optimistic)),
                Value::text(profile.effectiveness().to_string()),
                Value::text(profile.range().to_string()),
                Value::text(profile.complexity().to_string()),
                Value::text(cores.join("/")),
            ]);
        }
        report.table(table);
        report.blank();
        report.note(
            "category reminder: CC/DRAM/3D/Fltr/SmCo indirect; LC/Sect direct; SmCl, CC/LC dual",
        );
        Ok(report)
    }
}
