//! Supporting experiment — sensitivity of the core-scaling conclusions.
//!
//! Two analyses beyond the paper's figures:
//!
//! 1. **Monte Carlo over α** — Figure 1 shows per-workload α scattered
//!    between 0.25 and 0.62. Sampling α from that empirical spread gives
//!    a *distribution* of supportable cores per generation instead of a
//!    point estimate.
//! 2. **Multithreaded cores** — Section 3 notes the single-threaded-core
//!    assumption underestimates the wall; sweeping a per-core demand
//!    multiplier quantifies by how much.

use crate::error::ExperimentError;
use crate::registry::Experiment;
use crate::report::{Report, TableBlock, Value};
use crate::{die_budget, paper_baseline, GENERATION_LABELS};
use bandwall_model::{Alpha, ScalingProblem};
use bandwall_numerics::Rng;

const SAMPLES: usize = 2000;

/// Samples α from a truncated normal around the commercial average.
fn sample_alpha(rng: &mut Rng) -> f64 {
    // Box–Muller; mean 0.48, sd 0.09, truncated to the observed [0.2, 0.8].
    loop {
        let u1: f64 = rng.gen_f64().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.gen_f64();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        let alpha = 0.48 + 0.09 * z;
        if (0.2..=0.8).contains(&alpha) {
            return alpha;
        }
    }
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// Sensitivity study: Monte Carlo over α plus per-core demand sweep.
#[derive(Debug, Clone)]
pub struct Sensitivity {
    /// Monte Carlo seed (historical default 20260706).
    pub seed: u64,
}

impl Experiment for Sensitivity {
    fn id(&self) -> &'static str {
        "sensitivity"
    }

    fn figure(&self) -> &'static str {
        "Sensitivity"
    }

    fn title(&self) -> &'static str {
        "Monte Carlo over α, and multithreaded-core demand"
    }

    fn run(&self) -> Result<Report, ExperimentError> {
        let mut report = Report::new(self.id(), self.figure(), self.title());
        let mut rng = Rng::seed_from_u64(self.seed);

        let mut table =
            TableBlock::new(&["generation", "p10", "median", "p90", "point est. (α=0.5)"])
                .with_title(format!(
                    "Monte Carlo over α ({SAMPLES} samples, α ~ N(0.48, 0.09) truncated):"
                ));
        for (g, label) in (1..=4u32).zip(GENERATION_LABELS) {
            let mut cores = Vec::with_capacity(SAMPLES);
            for _ in 0..SAMPLES {
                let alpha = Alpha::new(sample_alpha(&mut rng))?;
                cores.push(
                    ScalingProblem::new(paper_baseline().with_alpha(alpha), die_budget(g))
                        .max_supportable_cores()?,
                );
            }
            cores.sort_unstable();
            let point =
                ScalingProblem::new(paper_baseline(), die_budget(g)).max_supportable_cores()?;
            let median = percentile(&cores, 0.50);
            report.metric(format!("median_cores[{label}]"), median as f64, None);
            table.push_row(vec![
                Value::text(label),
                Value::int(percentile(&cores, 0.10)),
                Value::int(median),
                Value::int(percentile(&cores, 0.90)),
                Value::int(point),
            ]);
        }
        report.table(table);

        report.blank();
        let mut smt = TableBlock::new(&["demand multiplier", "supportable cores"])
            .with_title("multithreaded cores (per-core demand multiplier, 32-CEA die):");
        for demand in [1.0, 1.25, 1.5, 2.0, 3.0, 4.0] {
            let cores = ScalingProblem::new(paper_baseline(), die_budget(1))
                .with_per_core_demand(demand)
                .max_supportable_cores()?;
            smt.push_row(vec![
                Value::fmt(format!("{demand}x"), demand),
                Value::int(cores),
            ]);
        }
        report.table(smt);
        report.blank();
        report.note("workload variability moves the answer by only a few cores per generation;");
        report.note("SMT-style demand, however, tightens the wall quickly — the paper's");
        report.note("single-threaded assumption is indeed optimistic");
        Ok(report)
    }
}
