//! Supporting experiment (Section 6.3) — line-size sweep behind the
//! "Smaller Cache Lines" technique.
//!
//! The technique's premise: with limited spatial locality, large lines
//! waste both bandwidth (unused words cross the link) and capacity
//! (unused words occupy the cache). This experiment runs a workload that
//! touches only the first two words (16 bytes) of each 64-byte region
//! through caches built with 16/32/64/128-byte lines and measures actual
//! off-chip traffic.

use crate::error::ExperimentError;
use crate::registry::Experiment;
use crate::report::{Report, TableBlock, Value};
use bandwall_cache_sim::{CacheConfig, TwoLevelHierarchy};
use bandwall_trace::{StackDistanceTrace, TraceSource};

const ACCESSES: usize = 250_000;

/// Line-size validation on the two-level hierarchy simulator.
#[derive(Debug, Clone)]
pub struct ValidateLineSize {
    /// Trace seed (historical default 17).
    pub seed: u64,
}

impl ValidateLineSize {
    fn traffic_for_line_size(&self, line: u64) -> (u64, f64) {
        let mut h = TwoLevelHierarchy::new(
            CacheConfig::new(4 << 10, line, 2).expect("valid L1"),
            CacheConfig::new(128 << 10, line, 8).expect("valid L2"),
        );
        // Spatial locality limited to the first 2 words of each 64-byte
        // region, regardless of the cache's line size.
        let mut trace = StackDistanceTrace::builder(0.5)
            .seed(self.seed)
            .line_size(64)
            .touched_words(2)
            .max_distance(1 << 14)
            .build();
        for a in trace.iter().take(ACCESSES) {
            h.access_from(a.thread(), a.address(), a.kind().is_write());
        }
        let bytes = h.memory_traffic().total_bytes();
        (bytes, bytes as f64 / ACCESSES as f64)
    }
}

impl Experiment for ValidateLineSize {
    fn id(&self) -> &'static str {
        "validate_line_size"
    }

    fn figure(&self) -> &'static str {
        "Validation (Sec. 6.3)"
    }

    fn title(&self) -> &'static str {
        "off-chip traffic vs cache-line size (16 useful bytes per region)"
    }

    fn run(&self) -> Result<Report, ExperimentError> {
        let mut report = Report::new(self.id(), self.figure(), self.title());
        let mut table = TableBlock::new(&["line size", "total traffic", "bytes/access", "vs 64 B"]);
        let reference = self.traffic_for_line_size(64).0 as f64;
        for line in [16u64, 32, 64, 128] {
            let (bytes, per_access) = self.traffic_for_line_size(line);
            let relative = bytes as f64 / reference;
            table.push_row(vec![
                Value::fmt(format!("{line} B"), line as f64),
                Value::fmt(format!("{} KB", bytes / 1024), (bytes / 1024) as f64),
                Value::fmt(format!("{per_access:.1}"), per_access),
                Value::fmt(format!("{relative:.2}x"), relative),
            ]);
            report.metric(format!("traffic_vs_64B[{line} B]"), relative, None);
        }
        report.table(table);
        report.blank();
        report.note("shrinking lines toward the useful footprint cuts traffic directly (and");
        report.note("frees capacity), exactly the dual benefit Equation 12 models; note the");
        report.note("64->128 B step nearly doubles traffic for no gain");
        Ok(report)
    }
}
