//! Typed failures for experiment runs.
//!
//! Every [`crate::registry::Experiment`] returns
//! `Result<Report, ExperimentError>`, and the `bandwall` harness adds the
//! variants only it can observe (captured panics, missed deadlines, dead
//! workers), so one failing experiment degrades into a structured
//! [`crate::report::Report::failure`] instead of aborting a whole batch.

use bandwall_model::ModelError;
use std::fmt;

/// Why an experiment failed to produce a report.
#[derive(Debug, Clone, PartialEq)]
pub enum ExperimentError {
    /// The analytical model rejected a parameter or found no solution.
    Model(ModelError),
    /// A simulator configuration was invalid.
    Config(String),
    /// A numerical routine (regression fit, root finder) failed.
    Numerical(String),
    /// The experiment panicked; the harness captured the payload.
    Panicked(String),
    /// The experiment exceeded the harness wall-clock deadline.
    TimedOut {
        /// The `--timeout` limit that was exceeded, in seconds.
        limit_secs: u64,
    },
    /// A harness worker died before filling the experiment's report slot.
    WorkerDied,
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExperimentError::Model(e) => write!(f, "model error: {e}"),
            ExperimentError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            ExperimentError::Numerical(msg) => write!(f, "numerical failure: {msg}"),
            ExperimentError::Panicked(msg) => write!(f, "experiment panicked: {msg}"),
            ExperimentError::TimedOut { limit_secs } => {
                write!(f, "experiment exceeded the {limit_secs}s deadline")
            }
            ExperimentError::WorkerDied => {
                f.write_str("harness worker died before the experiment finished")
            }
        }
    }
}

impl std::error::Error for ExperimentError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExperimentError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for ExperimentError {
    fn from(err: ModelError) -> Self {
        ExperimentError::Model(err)
    }
}

impl From<bandwall_cache_sim::ConfigError> for ExperimentError {
    fn from(err: bandwall_cache_sim::ConfigError) -> Self {
        ExperimentError::Config(err.to_string())
    }
}

impl From<bandwall_numerics::RegressionError> for ExperimentError {
    fn from(err: bandwall_numerics::RegressionError) -> Self {
        ExperimentError::Numerical(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants_nonempty() {
        let errs = [
            ExperimentError::Model(ModelError::Infeasible),
            ExperimentError::Config("bad geometry".into()),
            ExperimentError::Numerical("no bracket".into()),
            ExperimentError::Panicked("index out of bounds".into()),
            ExperimentError::TimedOut { limit_secs: 30 },
            ExperimentError::WorkerDied,
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn conversions_wrap_the_source() {
        let e: ExperimentError = ModelError::Infeasible.into();
        assert!(matches!(e, ExperimentError::Model(ModelError::Infeasible)));
        use std::error::Error as _;
        assert!(e.source().is_some());
        let e: ExperimentError = bandwall_cache_sim::ConfigError::Zero { name: "cores" }.into();
        assert!(matches!(e, ExperimentError::Config(_)));
    }

    #[test]
    fn timeout_names_the_limit() {
        let msg = ExperimentError::TimedOut { limit_secs: 7 }.to_string();
        assert!(msg.contains("7s"), "{msg}");
    }
}
