//! Reusable fault injection, shared by the batch harness and the serve
//! chaos mode.
//!
//! PR 2 introduced fault injection as a one-off experiment driven by the
//! `BANDWALL_FAULT_INJECT` environment variable. This module hoists the
//! machinery into a small reusable vocabulary:
//!
//! * [`Fault`] — one concrete fault (panic, typed error, sleep) with a
//!   [`Fault::trigger`] that actually commits it;
//! * [`ChaosSpec`] — a parsed, probability-seeded chaos plan
//!   (`panic=P,worker=P,delay=P:MS`);
//! * [`Injector`] — a per-worker deterministic sampler over a
//!   [`ChaosSpec`]; workers own their injector outright, so chaos adds
//!   no shared mutable state to the serving path.
//!
//! The batch harness's injected experiment
//! ([`crate::experiments::fault_inject`]) and `bandwall serve --chaos`
//! both express their faults through this module, so a fault proven
//! containable in one place is the same fault contained in the other.

use crate::error::ExperimentError;
use bandwall_numerics::rng::Rng;
use std::time::Duration;

/// One concrete fault to commit at a fault point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// Unwind with a deliberate panic carrying this message.
    Panic(String),
    /// Return a typed [`ExperimentError::Numerical`] with this message.
    Error(String),
    /// Stall the caller for this long, then continue normally.
    Sleep(Duration),
}

impl Fault {
    /// Commits the fault: panics, sleeps, or returns the typed error.
    /// A [`Fault::Sleep`] returns `Ok(())` after the stall, so callers
    /// can write `fault.trigger()?` at any fault point.
    ///
    /// # Errors
    ///
    /// Returns the wrapped error for [`Fault::Error`].
    ///
    /// # Panics
    ///
    /// Panics (deliberately) for [`Fault::Panic`].
    pub fn trigger(&self) -> Result<(), ExperimentError> {
        match self {
            Fault::Panic(msg) => panic!("{}", msg.clone()),
            Fault::Error(msg) => Err(ExperimentError::Numerical(msg.clone())),
            Fault::Sleep(d) => {
                std::thread::sleep(*d);
                Ok(())
            }
        }
    }
}

/// Where in the serving path a fault may fire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPoint {
    /// Inside a request handler, after the request has been read: a
    /// panic here must be contained to a well-formed error reply.
    Handler,
    /// Between requests on a worker thread: a panic here kills the
    /// worker and must be answered by a supervisor respawn.
    Worker,
}

/// A parsed chaos plan: independent probabilities per fault point plus
/// a handler delay, all driven by one seed.
///
/// The textual form accepted by [`ChaosSpec::parse`] is a comma list of
/// `panic=P` (handler panic probability), `worker=P` (worker-death
/// probability, sampled between requests), `delay=P:MS` (handler stall
/// probability and duration), and `seed=N`. Omitted fields keep the
/// defaults of [`ChaosSpec::standard`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosSpec {
    /// Probability of a handler panic per request.
    pub handler_panic: f64,
    /// Probability of a worker death per handled request.
    pub worker_panic: f64,
    /// Probability of a handler stall per request.
    pub delay_probability: f64,
    /// Duration of an injected handler stall.
    pub delay: Duration,
    /// Seed from which every worker derives its own fault stream.
    pub seed: u64,
}

impl ChaosSpec {
    /// The default chaos mix used by `--chaos` without an argument:
    /// 1% handler panics, 0.1% worker deaths, 2% stalls of 2 ms.
    pub fn standard() -> Self {
        ChaosSpec {
            handler_panic: 0.01,
            worker_panic: 0.001,
            delay_probability: 0.02,
            delay: Duration::from_millis(2),
            seed: 0xC0FFEE,
        }
    }

    /// Parses a `panic=P,worker=P,delay=P:MS,seed=N` spec; missing
    /// fields keep [`ChaosSpec::standard`] values.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown fields, missing
    /// values, probabilities outside `[0, 1]`, or unparsable numbers.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut out = ChaosSpec::standard();
        for part in spec.split(',').filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("chaos field '{part}' is not key=value"))?;
            match key {
                "panic" => out.handler_panic = parse_probability(key, value)?,
                "worker" => out.worker_panic = parse_probability(key, value)?,
                "delay" => {
                    let (p, ms) = value
                        .split_once(':')
                        .ok_or_else(|| format!("delay '{value}' is not P:MS"))?;
                    out.delay_probability = parse_probability(key, p)?;
                    let ms: u64 = ms
                        .parse()
                        .map_err(|_| format!("bad delay duration '{ms}' (whole ms)"))?;
                    out.delay = Duration::from_millis(ms);
                }
                "seed" => {
                    out.seed = value
                        .parse()
                        .map_err(|_| format!("bad chaos seed '{value}'"))?;
                }
                other => return Err(format!("unknown chaos field '{other}'")),
            }
        }
        Ok(out)
    }
}

fn parse_probability(name: &str, value: &str) -> Result<f64, String> {
    let p: f64 = value
        .parse()
        .map_err(|_| format!("bad {name} probability '{value}'"))?;
    if (0.0..=1.0).contains(&p) {
        Ok(p)
    } else {
        Err(format!("{name} probability {p} outside [0, 1]"))
    }
}

/// A deterministic per-worker fault sampler. Each worker builds its own
/// injector from the spec seed and its worker index
/// (`Rng::seed_from_stream`), so fault sequences are reproducible and
/// workers share no state.
#[derive(Debug)]
pub struct Injector {
    spec: ChaosSpec,
    rng: Rng,
}

impl Injector {
    /// Builds the injector for worker `stream` of `spec`.
    pub fn for_worker(spec: ChaosSpec, stream: u64) -> Self {
        Injector {
            spec,
            rng: Rng::seed_from_stream(spec.seed, stream),
        }
    }

    /// Samples the fault (if any) to commit at `point`. At a handler
    /// point a stall takes precedence over a panic so both paths get
    /// exercised even when both fire.
    pub fn sample(&mut self, point: FaultPoint) -> Option<Fault> {
        match point {
            FaultPoint::Handler => {
                if self.rng.gen_bool(self.spec.delay_probability) {
                    Some(Fault::Sleep(self.spec.delay))
                } else if self.rng.gen_bool(self.spec.handler_panic) {
                    Some(Fault::Panic("injected chaos: handler panic".into()))
                } else {
                    None
                }
            }
            FaultPoint::Worker => {
                if self.rng.gen_bool(self.spec.worker_panic) {
                    Some(Fault::Panic("injected chaos: worker death".into()))
                } else {
                    None
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trigger_commits_each_fault_kind() {
        assert!(Fault::Sleep(Duration::from_millis(0)).trigger().is_ok());
        assert!(matches!(
            Fault::Error("injected".into()).trigger(),
            Err(ExperimentError::Numerical(_))
        ));
        let caught = std::panic::catch_unwind(|| Fault::Panic("boom".into()).trigger());
        assert!(caught.is_err());
    }

    #[test]
    fn parse_overrides_only_named_fields() {
        let spec = ChaosSpec::parse("panic=0.5,delay=0.25:7").unwrap();
        assert_eq!(spec.handler_panic, 0.5);
        assert_eq!(spec.delay_probability, 0.25);
        assert_eq!(spec.delay, Duration::from_millis(7));
        assert_eq!(spec.worker_panic, ChaosSpec::standard().worker_panic);
        assert_eq!(spec.seed, ChaosSpec::standard().seed);
        assert_eq!(ChaosSpec::parse("").unwrap(), ChaosSpec::standard());
    }

    #[test]
    fn parse_rejects_bad_specs() {
        for bad in [
            "panic",
            "panic=1.5",
            "panic=-0.1",
            "panic=x",
            "delay=0.5",
            "delay=0.5:soon",
            "seed=abc",
            "unknown=1",
        ] {
            assert!(ChaosSpec::parse(bad).is_err(), "accepted {bad}");
        }
    }

    #[test]
    fn sampling_is_deterministic_per_stream() {
        let spec = ChaosSpec::parse("panic=0.3,worker=0.1,delay=0.2:1").unwrap();
        let sample = |stream: u64| {
            let mut inj = Injector::for_worker(spec, stream);
            (0..64)
                .map(|i| {
                    let point = if i % 2 == 0 {
                        FaultPoint::Handler
                    } else {
                        FaultPoint::Worker
                    };
                    inj.sample(point)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(sample(0), sample(0));
        assert_ne!(sample(0), sample(1), "streams must differ");
    }

    #[test]
    fn zero_probabilities_never_fire() {
        let spec = ChaosSpec::parse("panic=0,worker=0,delay=0:1").unwrap();
        let mut inj = Injector::for_worker(spec, 0);
        for _ in 0..256 {
            assert_eq!(inj.sample(FaultPoint::Handler), None);
            assert_eq!(inj.sample(FaultPoint::Worker), None);
        }
    }

    #[test]
    fn certain_probabilities_always_fire() {
        let spec = ChaosSpec::parse("panic=1,worker=1,delay=0:1").unwrap();
        let mut inj = Injector::for_worker(spec, 3);
        assert!(matches!(
            inj.sample(FaultPoint::Handler),
            Some(Fault::Panic(_))
        ));
        assert!(matches!(
            inj.sample(FaultPoint::Worker),
            Some(Fault::Panic(_))
        ));
        let spec = ChaosSpec::parse("delay=1:4").unwrap();
        let mut inj = Injector::for_worker(spec, 3);
        assert_eq!(
            inj.sample(FaultPoint::Handler),
            Some(Fault::Sleep(Duration::from_millis(4)))
        );
    }
}
