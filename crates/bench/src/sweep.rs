//! Shared sweep driver for the single-technique figures (Figures 4–12
//! and the post-2009 extension experiments): each variant is solved on
//! the next-generation 32-CEA die under a constant traffic envelope.
//!
//! A figure's sweep is declared as a [`CatalogueSweep`] — base row
//! first, by construction — and registered through
//! [`crate::registry::Experiment::sweep`], from which the named sweeps
//! `POST /v1/sweep` serves are derived. There is no hand-maintained
//! name list: registering an experiment with a sweep *is* publishing it.

use crate::report::{Report, TableBlock, Value};
use crate::{die_budget, paper_baseline};
use bandwall_model::descriptor;
use bandwall_model::Technique;

/// One sweep point: a label and the technique to apply (`None` = base).
#[derive(Debug, Clone)]
pub struct Variant {
    /// Row label (e.g. `"2.0x"` or `"DRAM L2 (8x)"`).
    pub label: String,
    /// Technique instance; `None` solves the unmodified base problem.
    pub technique: Option<Technique>,
    /// Paper's reported core count for this point, when stated.
    pub paper: Option<u64>,
}

impl Variant {
    /// Convenience constructor.
    pub fn new(label: impl Into<String>, technique: Option<Technique>, paper: Option<u64>) -> Self {
        Variant {
            label: label.into(),
            technique,
            paper,
        }
    }

    /// Builds a technique variant from the registry: `id` names a
    /// [`descriptor::TechniqueDescriptor`] and `params` its full
    /// parameter vector. This is the one constructor the figure modules
    /// use, so a sweep point is always a registry-validated instance.
    ///
    /// # Panics
    ///
    /// Panics on an unknown id or out-of-domain parameters — sweep
    /// declarations are static data, so both are programming errors.
    pub fn from_descriptor(
        label: impl Into<String>,
        id: &str,
        params: &[f64],
        paper: Option<u64>,
    ) -> Self {
        let technique = descriptor::descriptor(id)
            .unwrap_or_else(|| panic!("unknown technique id '{id}'"))
            .instantiate(params)
            .unwrap_or_else(|e| panic!("invalid parameters for technique '{id}': {e}"));
        Variant {
            label: label.into(),
            technique: Some(technique),
            paper,
        }
    }
}

/// A figure's declared sweep: the mandatory base row (technique `None`)
/// followed by registry-built technique points. The base-first
/// convention every consumer relies on is enforced by this type — the
/// only way to construct one is [`CatalogueSweep::base`], and
/// [`CatalogueSweep::point`] can only append technique variants.
#[derive(Debug, Clone)]
pub struct CatalogueSweep {
    variants: Vec<Variant>,
}

impl CatalogueSweep {
    /// Starts a sweep with its base row.
    pub fn base(label: impl Into<String>, paper: Option<u64>) -> Self {
        CatalogueSweep {
            variants: vec![Variant::new(label, None, paper)],
        }
    }

    /// Appends a technique point built from the registry (see
    /// [`Variant::from_descriptor`]).
    #[must_use]
    pub fn point(
        mut self,
        label: impl Into<String>,
        id: &str,
        params: &[f64],
        paper: Option<u64>,
    ) -> Self {
        self.variants
            .push(Variant::from_descriptor(label, id, params, paper));
        self
    }

    /// The sweep points, base first.
    pub fn variants(&self) -> &[Variant] {
        &self.variants
    }

    /// Consumes the sweep into its variant list, base first.
    pub fn into_variants(self) -> Vec<Variant> {
        self.variants
    }
}

/// Solves every variant on the next-generation die and returns the
/// structured table plus the computed core counts in variant order.
///
/// # Errors
///
/// Propagates the first [`bandwall_model::ModelError`] from any variant's
/// solver.
pub fn sweep_block(
    variants: &[Variant],
) -> Result<(TableBlock, Vec<u64>), bandwall_model::ModelError> {
    let baseline = paper_baseline();
    let n2 = die_budget(1);
    let mut results = Vec::with_capacity(variants.len());
    let mut table = TableBlock::new(&["configuration", "supportable cores", "", "paper"]);
    for v in variants {
        let mut problem = bandwall_model::ScalingProblem::new(baseline, n2);
        if let Some(t) = v.technique {
            problem = problem.with_technique(t);
        }
        let cores = problem.max_supportable_cores()?;
        results.push(cores);
        table.push_row(vec![
            Value::text(v.label.clone()),
            Value::int(cores),
            Value::bar(cores as f64, 32.0, 32),
            v.paper.map(Value::int).unwrap_or_else(Value::empty),
        ]);
    }
    Ok((table, results))
}

/// The catalogue-sweep names `POST /v1/sweep` serves, derived from the
/// experiment registry: every experiment that declares a
/// [`CatalogueSweep`] is listed under its registry id, in registry
/// order.
pub fn named_sweep_ids() -> Vec<&'static str> {
    crate::registry::registry()
        .iter()
        .filter(|e| e.sweep().is_some())
        .map(|e| e.id())
        .collect()
}

/// Resolves a named catalogue sweep to its variant list (`None` for an
/// unknown name). Names are registry experiment ids (see
/// [`named_sweep_ids`]).
pub fn named_sweep(name: &str) -> Option<Vec<Variant>> {
    crate::registry::registry()
        .iter()
        .find(|e| e.id() == name)
        .and_then(|e| e.sweep())
        .map(CatalogueSweep::into_variants)
}

/// Records a `cores[label]` metric for every variant the paper anchors.
pub fn add_paper_metrics(report: &mut Report, variants: &[Variant], results: &[u64]) {
    for (v, &cores) in variants.iter().zip(results) {
        if let Some(paper) = v.paper {
            report.metric(
                format!("cores[{}]", v.label),
                cores as f64,
                Some(paper as f64),
            );
        }
    }
}

/// Solves every variant, prints the table, and returns the core counts
/// (the historical all-in-one entry point).
///
/// # Panics
///
/// Panics if any variant is infeasible; [`sweep_block`] is the fallible
/// equivalent.
pub fn run_next_generation_sweep(variants: &[Variant]) -> Vec<u64> {
    let (table, results) = sweep_block(variants).expect("feasible sweep variants");
    print!("{}", table.to_ascii());
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_variant_yields_11() {
        let out = run_next_generation_sweep(&[Variant::new("base", None, Some(11))]);
        assert_eq!(out, vec![11]);
    }

    #[test]
    fn technique_variant_applies() {
        let t = Technique::dram_cache(8.0).unwrap();
        let out = run_next_generation_sweep(&[Variant::new("dram", Some(t), None)]);
        assert_eq!(out, vec![18]);
    }

    #[test]
    fn from_descriptor_matches_named_constructor() {
        let a = Variant::from_descriptor("dram", "dram_cache", &[8.0], None);
        assert_eq!(a.technique, Some(Technique::dram_cache(8.0).unwrap()));
        assert_eq!(a.paper, None);
    }

    #[test]
    #[should_panic(expected = "unknown technique id")]
    fn from_descriptor_rejects_unknown_ids() {
        let _ = Variant::from_descriptor("x", "warp_drive", &[2.0], None);
    }

    #[test]
    fn catalogue_sweeps_are_base_first_by_construction() {
        let sweep =
            CatalogueSweep::base("base", Some(11)).point("dram", "dram_cache", &[8.0], None);
        let variants = sweep.into_variants();
        assert_eq!(variants.len(), 2);
        assert!(variants[0].technique.is_none());
        assert!(variants[1].technique.is_some());
    }

    #[test]
    fn named_sweeps_are_derived_from_the_registry() {
        let ids = named_sweep_ids();
        assert!(ids.len() >= 11, "{ids:?}");
        assert_eq!(ids[0], "fig04_cache_compression");
        assert!(ids.contains(&"fig12_cache_link"));
        assert!(ids.contains(&"thermal_capped_3d"));
        assert!(ids.contains(&"cxl_harvesting"));
        for name in ids {
            let variants = named_sweep(name).unwrap_or_else(|| panic!("{name} must resolve"));
            assert!(!variants.is_empty(), "{name} has no variants");
            // Every catalogue sweep leads with the untouched base case.
            assert!(variants[0].technique.is_none(), "{name} base first");
        }
        assert!(named_sweep("fig99_warp_drive").is_none());
    }

    #[test]
    fn block_carries_paper_anchor() {
        let (table, results) = sweep_block(&[Variant::new("base", None, Some(11))]).unwrap();
        assert_eq!(results, vec![11]);
        assert_eq!(table.rows[0][3].num(), Some(11.0));
        let mut r = Report::new("x", "F", "t");
        add_paper_metrics(&mut r, &[Variant::new("base", None, Some(11))], &results);
        assert_eq!(r.get_metric("cores[base]").unwrap().delta(), Some(0.0));
    }
}
