//! Shared sweep driver for the single-technique figures (Figures 4–12):
//! each variant is solved on the next-generation 32-CEA die under a
//! constant traffic envelope.

use crate::render::{bar, Table};
use crate::{die_budget, paper_baseline};
use bandwall_model::Technique;

/// One sweep point: a label and the technique to apply (`None` = base).
#[derive(Debug, Clone)]
pub struct Variant {
    /// Row label (e.g. `"2.0x"` or `"DRAM L2 (8x)"`).
    pub label: String,
    /// Technique instance; `None` solves the unmodified base problem.
    pub technique: Option<Technique>,
    /// Paper's reported core count for this point, when stated.
    pub paper: Option<u64>,
}

impl Variant {
    /// Convenience constructor.
    pub fn new(label: impl Into<String>, technique: Option<Technique>, paper: Option<u64>) -> Self {
        Variant {
            label: label.into(),
            technique,
            paper,
        }
    }
}

/// Solves every variant on the next-generation die and prints the table.
/// Returns the computed core counts in variant order.
pub fn run_next_generation_sweep(variants: &[Variant]) -> Vec<u64> {
    let baseline = paper_baseline();
    let n2 = die_budget(1);
    let mut results = Vec::with_capacity(variants.len());
    let mut table = Table::new(&["configuration", "supportable cores", "", "paper"]);
    for v in variants {
        let mut problem = bandwall_model::ScalingProblem::new(baseline, n2);
        if let Some(t) = v.technique {
            problem = problem.with_technique(t);
        }
        let cores = problem.max_supportable_cores().expect("feasible");
        results.push(cores);
        table.row_owned(vec![
            v.label.clone(),
            cores.to_string(),
            bar(cores as f64, 32.0, 32),
            v.paper.map(|p| p.to_string()).unwrap_or_default(),
        ]);
    }
    table.print();
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_variant_yields_11() {
        let out = run_next_generation_sweep(&[Variant::new("base", None, Some(11))]);
        assert_eq!(out, vec![11]);
    }

    #[test]
    fn technique_variant_applies() {
        let t = Technique::dram_cache(8.0).unwrap();
        let out = run_next_generation_sweep(&[Variant::new("dram", Some(t), None)]);
        assert_eq!(out, vec![18]);
    }
}
