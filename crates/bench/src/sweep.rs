//! Shared sweep driver for the single-technique figures (Figures 4–12):
//! each variant is solved on the next-generation 32-CEA die under a
//! constant traffic envelope.

use crate::report::{Report, TableBlock, Value};
use crate::{die_budget, paper_baseline};
use bandwall_model::Technique;

/// One sweep point: a label and the technique to apply (`None` = base).
#[derive(Debug, Clone)]
pub struct Variant {
    /// Row label (e.g. `"2.0x"` or `"DRAM L2 (8x)"`).
    pub label: String,
    /// Technique instance; `None` solves the unmodified base problem.
    pub technique: Option<Technique>,
    /// Paper's reported core count for this point, when stated.
    pub paper: Option<u64>,
}

impl Variant {
    /// Convenience constructor.
    pub fn new(label: impl Into<String>, technique: Option<Technique>, paper: Option<u64>) -> Self {
        Variant {
            label: label.into(),
            technique,
            paper,
        }
    }
}

/// Solves every variant on the next-generation die and returns the
/// structured table plus the computed core counts in variant order.
///
/// # Errors
///
/// Propagates the first [`bandwall_model::ModelError`] from any variant's
/// solver.
pub fn sweep_block(
    variants: &[Variant],
) -> Result<(TableBlock, Vec<u64>), bandwall_model::ModelError> {
    let baseline = paper_baseline();
    let n2 = die_budget(1);
    let mut results = Vec::with_capacity(variants.len());
    let mut table = TableBlock::new(&["configuration", "supportable cores", "", "paper"]);
    for v in variants {
        let mut problem = bandwall_model::ScalingProblem::new(baseline, n2);
        if let Some(t) = v.technique {
            problem = problem.with_technique(t);
        }
        let cores = problem.max_supportable_cores()?;
        results.push(cores);
        table.push_row(vec![
            Value::text(v.label.clone()),
            Value::int(cores),
            Value::bar(cores as f64, 32.0, 32),
            v.paper.map(Value::int).unwrap_or_else(Value::empty),
        ]);
    }
    Ok((table, results))
}

/// The catalogue sweeps `POST /v1/sweep` serves by name: each entry is
/// a registry experiment id paired with the exact variant list its
/// `sweep_block` table is built from, so a named sweep over the wire
/// returns the same core counts as the figure.
pub const NAMED_SWEEPS: [&str; 9] = [
    "fig04_cache_compression",
    "fig05_dram_cache",
    "fig06_3d_cache",
    "fig07_filtering",
    "fig08_smaller_cores",
    "fig09_link_compression",
    "fig10_sectored",
    "fig11_small_lines",
    "fig12_cache_link",
];

/// Resolves a named catalogue sweep to its variant list (`None` for an
/// unknown name). Names are the registry ids in [`NAMED_SWEEPS`].
pub fn named_sweep(name: &str) -> Option<Vec<Variant>> {
    use crate::experiments as ex;
    Some(match name {
        "fig04_cache_compression" => ex::fig04_cache_compression::variants(),
        "fig05_dram_cache" => ex::fig05_dram_cache::variants(),
        "fig06_3d_cache" => ex::fig06_3d_cache::variants(),
        "fig07_filtering" => ex::fig07_filtering::variants(),
        "fig08_smaller_cores" => ex::fig08_smaller_cores::variants(),
        "fig09_link_compression" => ex::fig09_link_compression::variants(),
        "fig10_sectored" => ex::fig10_sectored::variants(),
        "fig11_small_lines" => ex::fig11_small_lines::variants(),
        "fig12_cache_link" => ex::fig12_cache_link::variants(),
        _ => return None,
    })
}

/// Records a `cores[label]` metric for every variant the paper anchors.
pub fn add_paper_metrics(report: &mut Report, variants: &[Variant], results: &[u64]) {
    for (v, &cores) in variants.iter().zip(results) {
        if let Some(paper) = v.paper {
            report.metric(
                format!("cores[{}]", v.label),
                cores as f64,
                Some(paper as f64),
            );
        }
    }
}

/// Solves every variant, prints the table, and returns the core counts
/// (the historical all-in-one entry point).
///
/// # Panics
///
/// Panics if any variant is infeasible; [`sweep_block`] is the fallible
/// equivalent.
pub fn run_next_generation_sweep(variants: &[Variant]) -> Vec<u64> {
    let (table, results) = sweep_block(variants).expect("feasible sweep variants");
    print!("{}", table.to_ascii());
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_variant_yields_11() {
        let out = run_next_generation_sweep(&[Variant::new("base", None, Some(11))]);
        assert_eq!(out, vec![11]);
    }

    #[test]
    fn technique_variant_applies() {
        let t = Technique::dram_cache(8.0).unwrap();
        let out = run_next_generation_sweep(&[Variant::new("dram", Some(t), None)]);
        assert_eq!(out, vec![18]);
    }

    #[test]
    fn named_sweeps_resolve_and_unknown_names_do_not() {
        for name in NAMED_SWEEPS {
            let variants = named_sweep(name).unwrap_or_else(|| panic!("{name} must resolve"));
            assert!(!variants.is_empty(), "{name} has no variants");
            // Every catalogue sweep leads with the untouched base case.
            assert!(variants[0].technique.is_none(), "{name} base first");
        }
        assert!(named_sweep("fig99_warp_drive").is_none());
    }

    #[test]
    fn block_carries_paper_anchor() {
        let (table, results) = sweep_block(&[Variant::new("base", None, Some(11))]).unwrap();
        assert_eq!(results, vec![11]);
        assert_eq!(table.rows[0][3].num(), Some(11.0));
        let mut r = Report::new("x", "F", "t");
        add_paper_metrics(&mut r, &[Variant::new("base", None, Some(11))], &results);
        assert_eq!(r.get_metric("cores[base]").unwrap().delta(), Some(0.0));
    }
}
