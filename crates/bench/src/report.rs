//! Structured experiment reports.
//!
//! Every experiment in the registry produces a [`Report`]: an ordered
//! list of blocks (notes and typed tables) plus headline [`Metric`]s
//! that pair each model value with the paper's reported number. A
//! report renders as ASCII (byte-compatible with the historical
//! per-figure binaries), CSV, or JSON.

use crate::header_string;
use crate::render::{bar, Table};
use std::fmt;

/// One table cell: the exact ASCII text plus an optional
/// machine-readable numeric value for CSV/JSON output.
#[derive(Debug, Clone, PartialEq)]
pub struct Value {
    text: String,
    num: Option<f64>,
}

impl Value {
    /// An empty cell.
    pub fn empty() -> Self {
        Value {
            text: String::new(),
            num: None,
        }
    }

    /// A plain text cell with no numeric payload.
    pub fn text(text: impl Into<String>) -> Self {
        Value {
            text: text.into(),
            num: None,
        }
    }

    /// An integer count cell.
    pub fn int(value: u64) -> Self {
        Value {
            text: value.to_string(),
            num: Some(value as f64),
        }
    }

    /// A float cell rendered with `digits` decimals.
    pub fn float(value: f64, digits: usize) -> Self {
        Value {
            text: format!("{value:.digits$}"),
            num: Some(value),
        }
    }

    /// A custom-formatted cell carrying `num` as its machine value
    /// (e.g. text `"17.3%"` with value `0.173`).
    pub fn fmt(text: impl Into<String>, num: f64) -> Self {
        Value {
            text: text.into(),
            num: Some(num),
        }
    }

    /// An ASCII bar cell; the machine value is the bar's magnitude.
    pub fn bar(value: f64, max: f64, width: usize) -> Self {
        Value {
            text: bar(value, max, width),
            num: Some(value),
        }
    }

    /// The exact ASCII rendering of the cell.
    pub fn as_text(&self) -> &str {
        &self.text
    }

    /// The machine-readable value, when the cell has one.
    pub fn num(&self) -> Option<f64> {
        self.num
    }
}

/// A typed table: optional leading title line, column headers, and rows
/// of [`Value`] cells.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TableBlock {
    /// Optional line printed above the table (ASCII only).
    pub title: Option<String>,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows of cells; ragged rows are allowed.
    pub rows: Vec<Vec<Value>>,
}

impl TableBlock {
    /// Creates a table with the given column headers.
    pub fn new(columns: &[&str]) -> Self {
        TableBlock {
            title: None,
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Sets the title line printed above the table.
    #[must_use]
    pub fn with_title(mut self, title: impl Into<String>) -> Self {
        self.title = Some(title.into());
        self
    }

    /// Appends a row of cells.
    pub fn push_row(&mut self, row: Vec<Value>) -> &mut Self {
        self.rows.push(row);
        self
    }

    /// Renders the table body (headers + rows) as aligned ASCII.
    pub fn to_ascii(&self) -> String {
        let headers: Vec<&str> = self.columns.iter().map(String::as_str).collect();
        let mut t = Table::new(&headers);
        for row in &self.rows {
            t.row_owned(row.iter().map(|v| v.text.clone()).collect());
        }
        t.render()
    }
}

/// One block of report output, in presentation order.
#[derive(Debug, Clone, PartialEq)]
pub enum Block {
    /// A single line of text.
    Note(String),
    /// An empty line (ASCII only).
    Blank,
    /// A typed table.
    Table(TableBlock),
}

/// A headline model-vs-paper number.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Metric name (snake_case, stable across runs).
    pub name: String,
    /// The value this reproduction computes.
    pub model: f64,
    /// The paper's reported value, when it states one.
    pub paper: Option<f64>,
}

impl Metric {
    /// `model - paper`, when the paper states a value.
    pub fn delta(&self) -> Option<f64> {
        self.paper.map(|p| self.model - p)
    }
}

/// The structured result of one experiment run.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Registry id (the historical binary name, e.g. `fig02_traffic_vs_cores`).
    pub id: String,
    /// Figure/table label (e.g. `"Figure 2"`).
    pub figure: String,
    /// Human title printed in the header banner.
    pub title: String,
    /// Ordered presentation blocks.
    pub blocks: Vec<Block>,
    /// Headline model/paper/delta triples.
    pub metrics: Vec<Metric>,
    /// `Some(message)` when the experiment failed to produce a result;
    /// failed reports render as a failure banner / row / JSON object.
    pub error: Option<String>,
}

impl Report {
    /// Creates an empty report.
    pub fn new(id: impl Into<String>, figure: impl Into<String>, title: impl Into<String>) -> Self {
        Report {
            id: id.into(),
            figure: figure.into(),
            title: title.into(),
            blocks: Vec::new(),
            metrics: Vec::new(),
            error: None,
        }
    }

    /// Creates a failure report for an experiment that produced no result:
    /// the registry identity plus the error message, rendered by every
    /// format as an explicit failure (never silently dropped).
    pub fn failure(
        id: impl Into<String>,
        figure: impl Into<String>,
        title: impl Into<String>,
        error: impl fmt::Display,
    ) -> Self {
        let mut report = Report::new(id, figure, title);
        report.error = Some(error.to_string());
        report
    }

    /// Whether this report records a failure instead of a result.
    pub fn is_failure(&self) -> bool {
        self.error.is_some()
    }

    /// Appends a one-line note.
    pub fn note(&mut self, line: impl Into<String>) -> &mut Self {
        self.blocks.push(Block::Note(line.into()));
        self
    }

    /// Appends an empty line.
    pub fn blank(&mut self) -> &mut Self {
        self.blocks.push(Block::Blank);
        self
    }

    /// Appends a table.
    pub fn table(&mut self, table: TableBlock) -> &mut Self {
        self.blocks.push(Block::Table(table));
        self
    }

    /// Records a headline metric.
    pub fn metric(&mut self, name: impl Into<String>, model: f64, paper: Option<f64>) -> &mut Self {
        self.metrics.push(Metric {
            name: name.into(),
            model,
            paper,
        });
        self
    }

    /// Looks up a metric by name.
    pub fn get_metric(&self, name: &str) -> Option<&Metric> {
        self.metrics.iter().find(|m| m.name == name)
    }

    /// Renders the report exactly as the historical binary printed it:
    /// header banner, then every block in order. Failure reports render
    /// the banner followed by a single `FAILED:` line.
    pub fn to_ascii(&self) -> String {
        let mut out = header_string(&self.figure, &self.title);
        if let Some(err) = &self.error {
            out.push_str(&format!("FAILED: {err}\n"));
            return out;
        }
        for block in &self.blocks {
            match block {
                Block::Note(line) => {
                    out.push_str(line);
                    out.push('\n');
                }
                Block::Blank => out.push('\n'),
                Block::Table(t) => {
                    if let Some(title) = &t.title {
                        out.push_str(title);
                        out.push('\n');
                    }
                    out.push_str(&t.to_ascii());
                }
            }
        }
        out
    }

    /// Renders the report as CSV sections (experiment preamble, metrics,
    /// then one section per table), separated by blank lines.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("experiment,{}\n", csv_field(&self.id)));
        out.push_str(&format!("figure,{}\n", csv_field(&self.figure)));
        out.push_str(&format!("title,{}\n", csv_field(&self.title)));
        if let Some(err) = &self.error {
            out.push_str(&format!("status,failed\nerror,{}\n", csv_field(err)));
            return out;
        }
        if !self.metrics.is_empty() {
            out.push_str("\nmetric,model,paper,delta\n");
            for m in &self.metrics {
                out.push_str(&format!(
                    "{},{},{},{}\n",
                    csv_field(&m.name),
                    fmt_f64(m.model),
                    m.paper.map(fmt_f64).unwrap_or_default(),
                    m.delta().map(fmt_f64).unwrap_or_default(),
                ));
            }
        }
        for block in &self.blocks {
            if let Block::Table(t) = block {
                out.push_str(&format!(
                    "\ntable,{}\n",
                    csv_field(t.title.as_deref().unwrap_or("")),
                ));
                let cols: Vec<String> = t.columns.iter().map(|c| csv_field(c)).collect();
                out.push_str(&cols.join(","));
                out.push('\n');
                for row in &t.rows {
                    let cells: Vec<String> = row
                        .iter()
                        .map(|v| match v.num {
                            Some(n) => fmt_f64(n),
                            None => csv_field(&v.text),
                        })
                        .collect();
                    out.push_str(&cells.join(","));
                    out.push('\n');
                }
            }
        }
        out
    }

    /// Renders the report as a single JSON object (hand-rolled, no
    /// dependencies; deterministic key order and float formatting).
    /// Failure reports render as
    /// `{"id":...,"figure":...,"title":...,"status":"failed","error":...}`;
    /// success reports keep the historical shape byte-for-byte.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"id\":{}", json_string(&self.id)));
        out.push_str(&format!(",\"figure\":{}", json_string(&self.figure)));
        out.push_str(&format!(",\"title\":{}", json_string(&self.title)));
        if let Some(err) = &self.error {
            out.push_str(&format!(
                ",\"status\":\"failed\",\"error\":{}}}",
                json_string(err)
            ));
            return out;
        }
        out.push_str(",\"metrics\":[");
        for (i, m) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":{},\"model\":{},\"paper\":{},\"delta\":{}}}",
                json_string(&m.name),
                json_f64(m.model),
                m.paper.map(json_f64).unwrap_or_else(|| "null".to_string()),
                m.delta()
                    .map(json_f64)
                    .unwrap_or_else(|| "null".to_string()),
            ));
        }
        out.push_str("],\"blocks\":[");
        let mut first = true;
        for block in &self.blocks {
            match block {
                Block::Blank => continue,
                Block::Note(line) => {
                    if !first {
                        out.push(',');
                    }
                    first = false;
                    out.push_str(&format!(
                        "{{\"type\":\"note\",\"text\":{}}}",
                        json_string(line)
                    ));
                }
                Block::Table(t) => {
                    if !first {
                        out.push(',');
                    }
                    first = false;
                    out.push_str("{\"type\":\"table\",\"title\":");
                    match &t.title {
                        Some(title) => out.push_str(&json_string(title)),
                        None => out.push_str("null"),
                    }
                    out.push_str(",\"columns\":[");
                    for (i, c) in t.columns.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        out.push_str(&json_string(c));
                    }
                    out.push_str("],\"rows\":[");
                    for (i, row) in t.rows.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        out.push('[');
                        for (j, v) in row.iter().enumerate() {
                            if j > 0 {
                                out.push(',');
                            }
                            out.push_str(&format!(
                                "{{\"text\":{},\"value\":{}}}",
                                json_string(&v.text),
                                v.num.map(json_f64).unwrap_or_else(|| "null".to_string()),
                            ));
                        }
                        out.push(']');
                    }
                    out.push_str("]}");
                }
            }
        }
        out.push_str("]}");
        out
    }
}

/// Deterministic float formatting shared by CSV and JSON: Rust's
/// shortest-roundtrip `Display`, so `183.0` prints as `183`.
pub(crate) fn fmt_f64(v: f64) -> String {
    format!("{v}")
}

/// A JSON number literal; non-finite values render as `null`.
pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        fmt_f64(v)
    } else {
        "null".to_string()
    }
}

/// Escapes a CSV field (quotes fields containing commas, quotes, or
/// newlines).
fn csv_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Escapes a JSON string literal.
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report::new("fig_x", "Figure X", "sample");
        let mut t = TableBlock::new(&["label", "cores"]);
        t.push_row(vec![Value::text("base"), Value::int(11)]);
        t.push_row(vec![Value::fmt("17.3%", 0.173), Value::empty()]);
        r.table(t);
        r.blank();
        r.note("a closing note");
        r.metric("supportable_cores", 11.0, Some(11.0));
        r.metric("unanchored", 2.5, None);
        r
    }

    #[test]
    fn ascii_matches_legacy_layout() {
        let out = sample().to_ascii();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(
            lines[0],
            "================================================================"
        );
        assert_eq!(lines[1], "Figure X — sample");
        assert!(lines[2].starts_with("Reproduction of Rogers"));
        // Header (4) + table (4) + blank + note.
        assert_eq!(lines.len(), 10);
        assert_eq!(lines.last().unwrap(), &"a closing note");
        assert!(out.contains("base"));
    }

    #[test]
    fn table_title_precedes_table() {
        let mut r = Report::new("x", "F", "t");
        let mut t = TableBlock::new(&["col_q"]).with_title("section one:");
        t.push_row(vec![Value::int(1)]);
        r.table(t);
        let out = r.to_ascii();
        let pos_title = out.find("section one:").unwrap();
        let pos_col = out.find("col_q").unwrap();
        assert!(pos_title < pos_col);
    }

    #[test]
    fn csv_prefers_numeric_cells() {
        let csv = sample().to_csv();
        assert!(csv.starts_with("experiment,fig_x\n"));
        assert!(csv.contains("metric,model,paper,delta\nsupportable_cores,11,11,0\n"));
        // "17.3%" cell carries the machine value 0.173.
        assert!(csv.contains("0.173,"));
        // Metric without a paper anchor leaves paper/delta empty.
        assert!(csv.contains("unanchored,2.5,,\n"));
    }

    #[test]
    fn json_is_valid_and_typed() {
        let json = sample().to_json();
        assert!(json.starts_with("{\"id\":\"fig_x\""));
        assert!(json.contains("\"model\":11,\"paper\":11,\"delta\":0"));
        assert!(json.contains("\"paper\":null"));
        assert!(json.contains("\"text\":\"17.3%\",\"value\":0.173"));
        assert!(json.contains("{\"type\":\"note\",\"text\":\"a closing note\"}"));
        // Balanced braces/brackets (cheap well-formedness check).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn json_is_byte_stable() {
        assert_eq!(sample().to_json(), sample().to_json());
    }

    #[test]
    fn string_escaping() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(csv_field("plain"), "plain");
    }

    #[test]
    fn failure_report_renders_in_every_format() {
        let r = Report::failure("fig_x", "Figure X", "sample", "model error: infeasible");
        assert!(r.is_failure());
        let ascii = r.to_ascii();
        assert!(ascii.starts_with("====") && ascii.contains("Figure X — sample"));
        assert!(ascii.ends_with("FAILED: model error: infeasible\n"));
        let csv = r.to_csv();
        assert!(csv.contains("status,failed\nerror,model error: infeasible\n"));
        assert_eq!(
            r.to_json(),
            "{\"id\":\"fig_x\",\"figure\":\"Figure X\",\"title\":\"sample\",\
             \"status\":\"failed\",\"error\":\"model error: infeasible\"}"
        );
    }

    #[test]
    fn success_report_has_no_status_key() {
        let r = sample();
        assert!(!r.is_failure());
        assert!(!r.to_json().contains("\"status\""));
        assert!(!r.to_csv().contains("status,"));
        assert!(!r.to_ascii().contains("FAILED"));
    }

    #[test]
    fn metric_delta() {
        let m = Metric {
            name: "x".into(),
            model: 24.0,
            paper: Some(22.0),
        };
        assert_eq!(m.delta(), Some(2.0));
        let r = sample();
        assert_eq!(r.get_metric("supportable_cores").unwrap().model, 11.0);
        assert!(r.get_metric("missing").is_none());
    }
}
