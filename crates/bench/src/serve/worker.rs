//! Run-to-completion connection workers.
//!
//! Each worker pops accepted connections off the bounded queue and
//! drives them to completion: keep-alive request loop, per-request
//! deadline enforcement, strict read limits, and panic containment
//! (`catch_unwind` around the solve, so a handler panic — injected or
//! organic — becomes a well-formed `internal` reply instead of a dead
//! connection). Workers share no mutable state beyond the queue, the
//! memo cache, and atomic counters; chaos faults are sampled from a
//! per-worker deterministic [`Injector`].
//!
//! The worker fault point fires *between* connections, outside the
//! containment boundary, so an injected worker death exercises the
//! supervisor's respawn path without ever eating a request.

use crate::fault::{Fault, FaultPoint, Injector};
use crate::serve::api::{error_body, parse_problem, solve_body};
use crate::serve::http::{read_request, Limits, ReadError, Request, Response};
use crate::serve::{Conn, ServeContext};
use bandwall_model::CanonicalProblem;
use std::io::{BufReader, ErrorKind};
use std::net::TcpStream;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Request-head cap: 8 KiB covers any legitimate client.
const MAX_HEAD_BYTES: usize = 8 * 1024;
/// Request-body cap: 64 KiB is far beyond any real problem description.
const MAX_BODY_BYTES: usize = 64 * 1024;
/// How often an idle keep-alive wait rechecks the drain flag.
const IDLE_POLL: Duration = Duration::from_millis(50);

pub(crate) const LIMITS: Limits = Limits {
    max_head_bytes: MAX_HEAD_BYTES,
    max_body_bytes: MAX_BODY_BYTES,
};

/// The body of one worker thread: drain the queue until it is closed
/// and empty. Panics (chaos-injected worker deaths) unwind out of here
/// and are answered by the supervisor's respawn.
pub(crate) fn worker_loop(ctx: Arc<ServeContext>, fault_stream: u64) {
    let mut injector = ctx
        .config
        .chaos
        .map(|spec| Injector::for_worker(spec, fault_stream));
    while let Some(conn) = ctx.queue.pop() {
        handle_connection(&ctx, injector.as_mut(), conn);
        if let Some(fault) = injector.as_mut().and_then(|i| i.sample(FaultPoint::Worker)) {
            // Outside any containment on purpose: a worker death must
            // be survived by the supervisor, not the handler.
            let _ = fault.trigger();
        }
    }
}

/// Waits for the next request's first byte without consuming it,
/// polling the drain flag. Returns `false` when the connection should
/// close (drain, idle timeout, peer gone).
fn await_next_request(ctx: &ServeContext, stream: &TcpStream, buffered: bool) -> bool {
    if buffered {
        // Pipelined bytes already sit in the reader; serve them even
        // mid-drain (the request is in flight by any fair definition).
        return true;
    }
    let mut probe = [0u8; 1];
    let idle_limit = ctx.config.read_timeout;
    let started = Instant::now();
    if stream.set_read_timeout(Some(IDLE_POLL)).is_err() {
        return false;
    }
    loop {
        if ctx.is_draining() {
            return false;
        }
        match stream.peek(&mut probe) {
            Ok(0) => return false,
            Ok(_) => break,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if started.elapsed() >= idle_limit {
                    return false;
                }
            }
            Err(_) => return false,
        }
    }
    stream
        .set_read_timeout(Some(ctx.config.read_timeout))
        .is_ok()
}

fn handle_connection(ctx: &ServeContext, mut injector: Option<&mut Injector>, conn: Conn) {
    ctx.stats.connections.fetch_add(1, Ordering::Relaxed);
    let stream = conn.stream;
    // The acceptor never blocks, so accepted sockets may arrive
    // nonblocking; workers want blocking reads bounded by timeouts.
    if stream.set_nonblocking(false).is_err()
        || stream
            .set_write_timeout(Some(ctx.config.read_timeout))
            .is_err()
        || stream
            .set_read_timeout(Some(ctx.config.read_timeout))
            .is_err()
    {
        return;
    }
    let Ok(clone) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(clone);
    let mut writer = stream;
    let mut first = true;
    loop {
        if !first && !await_next_request(ctx, &writer, !reader.buffer().is_empty()) {
            return;
        }
        // The deadline origin for the first request is the accept time
        // (queue wait counts against it); later keep-alive requests
        // start their clock when the worker turns to them.
        let origin = if first {
            conn.accepted_at
        } else {
            Instant::now()
        };
        first = false;
        let read_deadline = Instant::now() + ctx.config.read_timeout;
        let request = match read_request(&mut reader, &LIMITS, Some(read_deadline)) {
            Ok(None) => return,
            Ok(Some(request)) => request,
            Err(e) => {
                if let Some(response) = read_error_response(&e) {
                    count_response(ctx, &response);
                    let _ = response.write_to(&mut writer);
                }
                return;
            }
        };
        let deadline = origin + ctx.config.deadline;
        let mut response = respond(ctx, injector.as_deref_mut(), &request, deadline);
        response.close = response.close || !request.keep_alive || ctx.is_draining();
        count_response(ctx, &response);
        if response.write_to(&mut writer).is_err() || response.close {
            return;
        }
    }
}

/// Maps a request-read failure onto its reply; `None` closes silently
/// (the client is gone, nobody is listening).
fn read_error_response(error: &ReadError) -> Option<Response> {
    let (status, message) = match error {
        ReadError::Disconnected | ReadError::Io(_) => return None,
        ReadError::Timeout => (408, "timed out reading request".to_string()),
        ReadError::HeadTooLarge => (413, format!("request head exceeds {MAX_HEAD_BYTES} bytes")),
        ReadError::BodyTooLarge { declared } => (
            413,
            format!("request body of {declared} bytes exceeds {MAX_BODY_BYTES}"),
        ),
        ReadError::Malformed(msg) => (400, format!("malformed request: {msg}")),
    };
    Some(Response {
        status,
        body: error_body("invalid_request", &message),
        cache: None,
        close: true,
    })
}

fn count_response(ctx: &ServeContext, response: &Response) {
    let counter = match response.status {
        200 => &ctx.stats.served_ok,
        404 => &ctx.stats.not_found,
        500 => &ctx.stats.internal,
        503 => &ctx.stats.not_ready,
        504 => &ctx.stats.deadline_exceeded,
        _ => &ctx.stats.invalid_request,
    };
    counter.fetch_add(1, Ordering::Relaxed);
}

fn deadline_response() -> Response {
    Response {
        status: 504,
        body: error_body("deadline_exceeded", "request missed its deadline"),
        cache: None,
        close: false,
    }
}

/// Routes one request. Every path returns a well-formed JSON reply.
fn respond(
    ctx: &ServeContext,
    injector: Option<&mut Injector>,
    request: &Request,
    deadline: Instant,
) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => Response::ok("{\"status\":\"ok\"}".into()),
        ("GET", "/readyz") => {
            if ctx.is_draining() {
                Response {
                    status: 503,
                    body: error_body("not_ready", "draining for shutdown"),
                    cache: None,
                    close: false,
                }
            } else if ctx.queue.is_full() {
                Response {
                    status: 503,
                    body: error_body("not_ready", "request queue is saturated"),
                    cache: None,
                    close: false,
                }
            } else {
                Response::ok("{\"status\":\"ok\"}".into())
            }
        }
        ("POST", "/solve") => solve(ctx, injector, request, deadline),
        (_, "/healthz" | "/readyz" | "/solve") => Response {
            status: 405,
            body: error_body(
                "invalid_request",
                &format!("method {} not allowed here", request.method),
            ),
            cache: None,
            close: false,
        },
        (_, path) => Response {
            status: 404,
            body: error_body("not_found", &format!("no such endpoint '{path}'")),
            cache: None,
            close: false,
        },
    }
}

fn solve(
    ctx: &ServeContext,
    injector: Option<&mut Injector>,
    request: &Request,
    deadline: Instant,
) -> Response {
    let fault = injector.and_then(|i| i.sample(FaultPoint::Handler));
    if let Some(Fault::Sleep(d)) = &fault {
        std::thread::sleep(*d);
    }
    if Instant::now() > deadline {
        return deadline_response();
    }
    let Ok(body) = std::str::from_utf8(&request.body) else {
        return Response {
            status: 400,
            body: error_body("invalid_request", "body is not UTF-8"),
            cache: None,
            close: false,
        };
    };
    let problem = match parse_problem(body) {
        Ok(problem) => problem,
        Err(message) => {
            return Response {
                status: 400,
                body: error_body("invalid_request", &message),
                cache: None,
                close: false,
            }
        }
    };
    let key = CanonicalProblem::of(&problem);
    if let Some(memoized) = ctx.cache.get(&key) {
        if Instant::now() > deadline {
            return deadline_response();
        }
        return Response {
            cache: Some("hit"),
            ..Response::ok(memoized.to_string())
        };
    }
    // Containment boundary: an injected (or organic) panic inside the
    // solve becomes a structured `internal` reply, not a dead worker.
    let solved = catch_unwind(AssertUnwindSafe(|| {
        if let Some(Fault::Panic(message)) = &fault {
            panic!("{}", message.clone());
        }
        solve_body(&problem)
    }));
    match solved {
        Err(payload) => {
            let message = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("handler panicked");
            Response {
                status: 500,
                body: error_body("internal", &format!("contained panic: {message}")),
                cache: None,
                close: false,
            }
        }
        Ok(Err(message)) => Response {
            status: 400,
            body: error_body("invalid_request", &message),
            cache: None,
            close: false,
        },
        Ok(Ok(rendered)) => {
            ctx.cache.put(key, Arc::from(rendered.as_str()));
            if Instant::now() > deadline {
                return deadline_response();
            }
            Response {
                cache: Some("miss"),
                ..Response::ok(rendered)
            }
        }
    }
}
