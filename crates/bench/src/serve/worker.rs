//! Run-to-completion connection workers.
//!
//! Each worker pops accepted connections off its shard's bounded queue
//! and drives them to completion: keep-alive request loop, per-request
//! deadline enforcement, strict read limits, and panic containment
//! (`catch_unwind` around the model work, so a handler panic — injected
//! or organic — becomes a well-formed `internal` reply instead of a
//! dead connection). Workers share no mutable state beyond the queues,
//! the memo cache, and atomic counters; chaos faults are sampled from a
//! per-worker deterministic [`Injector`].
//!
//! Requests dispatch through the versioned route table in
//! [`crate::serve::api`]; each worker reuses one response buffer across
//! a connection's keep-alive lifetime, so the hot path stops allocating
//! once the buffer has grown to the working-set response size.
//!
//! The worker fault point fires *between* connections, outside the
//! containment boundary, so an injected worker death exercises the
//! supervisor's respawn path without ever eating a request.

use crate::fault::{Fault, FaultPoint, Injector};
use crate::serve::api::{
    batch_body, error_body, solve_fragment, sweep_body, techniques_body, wrap_ok, ApiError,
    ApiRequest, BatchJob, BatchRequest, Endpoint, ErrorKind as ApiErrorKind, RouteMatch,
    SweepRequest, SweepRow,
};
use crate::serve::http::{read_request, Limits, ReadError, Request, Response};
use crate::serve::{Conn, ServeContext};
use bandwall_model::{CanonicalProblem, ScalingProblem};
use std::io::{BufReader, ErrorKind};
use std::net::TcpStream;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Request-head cap: 8 KiB covers any legitimate client.
const MAX_HEAD_BYTES: usize = 8 * 1024;
/// Request-body cap: 64 KiB is far beyond any real problem description.
const MAX_BODY_BYTES: usize = 64 * 1024;
/// How often an idle keep-alive wait rechecks the drain flag.
const IDLE_POLL: Duration = Duration::from_millis(50);
/// Most threads one batch fans out over (further bounded by the batch's
/// job count and the host's parallelism).
const MAX_BATCH_FANOUT: usize = 8;

pub(crate) const LIMITS: Limits = Limits {
    max_head_bytes: MAX_HEAD_BYTES,
    max_body_bytes: MAX_BODY_BYTES,
};

/// The body of one worker thread: drain this shard's queue until it is
/// closed and empty. Panics (chaos-injected worker deaths) unwind out
/// of here and are answered by the supervisor's respawn.
pub(crate) fn worker_loop(ctx: Arc<ServeContext>, shard: usize, fault_stream: u64) {
    let mut injector = ctx
        .config
        .chaos
        .map(|spec| Injector::for_worker(spec, fault_stream));
    while let Some(conn) = ctx.queues[shard].pop() {
        handle_connection(&ctx, injector.as_mut(), conn);
        if let Some(fault) = injector.as_mut().and_then(|i| i.sample(FaultPoint::Worker)) {
            // Outside any containment on purpose: a worker death must
            // be survived by the supervisor, not the handler.
            let _ = fault.trigger();
        }
    }
}

/// Waits for the next request's first byte without consuming it,
/// polling the drain flag. Returns `false` when the connection should
/// close (drain, idle timeout, peer gone).
fn await_next_request(ctx: &ServeContext, stream: &TcpStream, buffered: bool) -> bool {
    if buffered {
        // Pipelined bytes already sit in the reader; serve them even
        // mid-drain (the request is in flight by any fair definition).
        return true;
    }
    let mut probe = [0u8; 1];
    let idle_limit = ctx.config.read_timeout;
    let started = Instant::now();
    if stream.set_read_timeout(Some(IDLE_POLL)).is_err() {
        return false;
    }
    loop {
        if ctx.is_draining() {
            return false;
        }
        match stream.peek(&mut probe) {
            Ok(0) => return false,
            Ok(_) => break,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if started.elapsed() >= idle_limit {
                    return false;
                }
            }
            Err(_) => return false,
        }
    }
    stream
        .set_read_timeout(Some(ctx.config.read_timeout))
        .is_ok()
}

fn handle_connection(ctx: &ServeContext, mut injector: Option<&mut Injector>, conn: Conn) {
    ctx.stats.connections.fetch_add(1, Ordering::Relaxed);
    let stream = conn.stream;
    // The acceptor never blocks, so accepted sockets may arrive
    // nonblocking; workers want blocking reads bounded by timeouts.
    if stream.set_nonblocking(false).is_err()
        || stream
            .set_write_timeout(Some(ctx.config.read_timeout))
            .is_err()
        || stream
            .set_read_timeout(Some(ctx.config.read_timeout))
            .is_err()
    {
        return;
    }
    let Ok(clone) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(clone);
    let mut writer = stream;
    let mut response_buf: Vec<u8> = Vec::with_capacity(1024);
    let mut first = true;
    loop {
        if !first && !await_next_request(ctx, &writer, !reader.buffer().is_empty()) {
            return;
        }
        // The deadline origin for the first request is the accept time
        // (queue wait counts against it); later keep-alive requests
        // start their clock when the worker turns to them.
        let origin = if first {
            conn.accepted_at
        } else {
            Instant::now()
        };
        first = false;
        let read_deadline = Instant::now() + ctx.config.read_timeout;
        let request = match read_request(&mut reader, &LIMITS, Some(read_deadline)) {
            Ok(None) => return,
            Ok(Some(request)) => request,
            Err(e) => {
                if let Some(response) = read_error_response(&e) {
                    count_response(ctx, &response);
                    let _ = response.write_buffered(&mut writer, &mut response_buf);
                }
                return;
            }
        };
        let deadline = origin + ctx.config.deadline;
        let mut response = respond(ctx, injector.as_deref_mut(), &request, deadline);
        response.close = response.close || !request.keep_alive || ctx.is_draining();
        count_response(ctx, &response);
        if response
            .write_buffered(&mut writer, &mut response_buf)
            .is_err()
            || response.close
        {
            return;
        }
    }
}

/// Maps a request-read failure onto its reply; `None` closes silently
/// (the client is gone, nobody is listening).
fn read_error_response(error: &ReadError) -> Option<Response> {
    let (status, message) = match error {
        ReadError::Disconnected | ReadError::Io(_) => return None,
        ReadError::Timeout => (408, "timed out reading request".to_string()),
        ReadError::HeadTooLarge => (413, format!("request head exceeds {MAX_HEAD_BYTES} bytes")),
        ReadError::BodyTooLarge { declared } => (
            413,
            format!("request body of {declared} bytes exceeds {MAX_BODY_BYTES}"),
        ),
        ReadError::Malformed(msg) => (400, format!("malformed request: {msg}")),
    };
    Some(Response {
        status,
        body: error_body(ApiErrorKind::InvalidRequest, &message),
        cache: None,
        close: true,
    })
}

fn count_response(ctx: &ServeContext, response: &Response) {
    let counter = match response.status {
        200 => &ctx.stats.served_ok,
        404 => &ctx.stats.not_found,
        500 => &ctx.stats.internal,
        503 => &ctx.stats.not_ready,
        504 => &ctx.stats.deadline_exceeded,
        _ => &ctx.stats.invalid_request,
    };
    counter.fetch_add(1, Ordering::Relaxed);
}

/// A typed failure as its wire reply.
fn error_response(error: &ApiError) -> Response {
    Response {
        status: error.status,
        body: error.body(),
        cache: None,
        close: false,
    }
}

fn deadline_error() -> ApiError {
    ApiError::new(
        ApiErrorKind::DeadlineExceeded,
        "request missed its deadline",
    )
}

fn deadline_response() -> Response {
    error_response(&deadline_error())
}

/// Extracts a panic payload's message for the `internal` envelope.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<String>()
        .map(String::as_str)
        .or_else(|| payload.downcast_ref::<&str>().copied())
        .unwrap_or("handler panicked")
}

fn panic_response(payload: &(dyn std::any::Any + Send)) -> Response {
    Response {
        status: 500,
        body: error_body(
            ApiErrorKind::Internal,
            &format!("contained panic: {}", panic_message(payload)),
        ),
        cache: None,
        close: false,
    }
}

/// Routes one request through the versioned route table. Every path
/// returns a well-formed JSON reply.
fn respond(
    ctx: &ServeContext,
    injector: Option<&mut Injector>,
    request: &Request,
    deadline: Instant,
) -> Response {
    let endpoint = match crate::serve::api::route(&request.method, &request.path) {
        RouteMatch::Endpoint(endpoint) => endpoint,
        RouteMatch::MethodNotAllowed => {
            return error_response(&ApiError::with_status(
                405,
                ApiErrorKind::InvalidRequest,
                format!("method {} not allowed here", request.method),
            ))
        }
        RouteMatch::NotFound => {
            return error_response(&ApiError::new(
                ApiErrorKind::NotFound,
                format!("no such endpoint '{}'", request.path),
            ))
        }
    };
    match endpoint {
        Endpoint::Healthz => Response::ok("{\"status\":\"ok\"}".into()),
        Endpoint::Readyz => {
            if ctx.is_draining() {
                error_response(&ApiError::new(
                    ApiErrorKind::NotReady,
                    "draining for shutdown",
                ))
            } else if ctx.saturated() {
                error_response(&ApiError::new(
                    ApiErrorKind::NotReady,
                    "request queue is saturated",
                ))
            } else {
                Response::ok("{\"status\":\"ok\"}".into())
            }
        }
        Endpoint::Techniques => {
            // The catalogue is static; render it once per process.
            static BODY: OnceLock<String> = OnceLock::new();
            Response::ok(BODY.get_or_init(techniques_body).clone())
        }
        Endpoint::Solve | Endpoint::Sweep | Endpoint::Batch => {
            let fault = injector.and_then(|i| i.sample(FaultPoint::Handler));
            if let Some(Fault::Sleep(d)) = &fault {
                std::thread::sleep(*d);
            }
            if Instant::now() > deadline {
                return deadline_response();
            }
            let parsed = match ApiRequest::parse(endpoint, &request.body) {
                Ok(parsed) => parsed,
                Err(error) => return error_response(&error),
            };
            match parsed {
                ApiRequest::Solve(problem) => solve(ctx, fault, &problem, deadline),
                ApiRequest::Sweep(sweep) => run_sweep(ctx, fault, &sweep, deadline),
                ApiRequest::Batch(batch) => run_batch(ctx, fault, &batch, deadline),
                ApiRequest::Healthz | ApiRequest::Readyz | ApiRequest::Techniques => {
                    unreachable!("GET endpoints answered above")
                }
            }
        }
    }
}

/// Returns the memoized solve-result fragment for `problem`, computing
/// and caching it on a miss. The bool is `true` on a cache hit.
///
/// # Errors
///
/// Propagates the model's rejection message (an `invalid_request`).
fn memo_fragment(ctx: &ServeContext, problem: &ScalingProblem) -> Result<(Arc<str>, bool), String> {
    let key = CanonicalProblem::of(problem);
    if let Some(fragment) = ctx.cache.get(&key) {
        return Ok((fragment, true));
    }
    let fragment: Arc<str> = Arc::from(solve_fragment(problem)?.as_str());
    ctx.cache.put(key, Arc::clone(&fragment));
    Ok((fragment, false))
}

fn solve(
    ctx: &ServeContext,
    fault: Option<Fault>,
    problem: &ScalingProblem,
    deadline: Instant,
) -> Response {
    // Containment boundary: an injected (or organic) panic inside the
    // solve becomes a structured `internal` reply, not a dead worker.
    let solved = catch_unwind(AssertUnwindSafe(|| {
        if let Some(Fault::Panic(message)) = &fault {
            panic!("{}", message.clone());
        }
        memo_fragment(ctx, problem)
    }));
    match solved {
        Err(payload) => panic_response(&*payload),
        Ok(Err(message)) => error_response(&ApiError::new(ApiErrorKind::InvalidRequest, message)),
        Ok(Ok((fragment, hit))) => {
            if Instant::now() > deadline {
                return deadline_response();
            }
            Response {
                cache: Some(if hit { "hit" } else { "miss" }),
                ..Response::ok(wrap_ok(&fragment))
            }
        }
    }
}

/// Solves every sweep variant (each memoized individually, sharing
/// cache entries with `/solve`) and renders the reply body. The bool is
/// `true` when every variant was a cache hit.
///
/// # Errors
///
/// A deadline miss or an infeasible variant fails the whole sweep —
/// a partial table would be worse than an honest error.
fn sweep_outcome(
    ctx: &ServeContext,
    sweep: &SweepRequest,
    deadline: Instant,
) -> Result<(String, bool), ApiError> {
    let mut rows = Vec::with_capacity(sweep.variants.len());
    let mut all_hit = true;
    for variant in &sweep.variants {
        if Instant::now() > deadline {
            return Err(deadline_error());
        }
        let mut problem = sweep.base.clone();
        if let Some(technique) = variant.technique {
            problem = problem.with_technique(technique);
        }
        let (fragment, hit) = memo_fragment(ctx, &problem).map_err(|message| {
            ApiError::new(
                ApiErrorKind::InvalidRequest,
                format!("variant '{}': {message}", variant.label),
            )
        })?;
        all_hit &= hit;
        rows.push(SweepRow {
            label: variant.label.clone(),
            paper: variant.paper,
            fragment: fragment.to_string(),
        });
    }
    Ok((sweep_body(sweep.name.as_deref(), &rows), all_hit))
}

fn run_sweep(
    ctx: &ServeContext,
    fault: Option<Fault>,
    sweep: &SweepRequest,
    deadline: Instant,
) -> Response {
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        if let Some(Fault::Panic(message)) = &fault {
            panic!("{}", message.clone());
        }
        sweep_outcome(ctx, sweep, deadline)
    }));
    match outcome {
        Err(payload) => panic_response(&*payload),
        Ok(Err(error)) => error_response(&error),
        Ok(Ok((body, all_hit))) => Response {
            cache: Some(if all_hit { "hit" } else { "miss" }),
            ..Response::ok(body)
        },
    }
}

/// Runs one batch job to its reply body — exactly the body the
/// standalone endpoint would have produced. Never panics outward: the
/// per-job containment turns a panic into an `internal` envelope in
/// that job's slot.
fn run_job(ctx: &ServeContext, job: &Result<BatchJob, ApiError>, deadline: Instant) -> String {
    let job = match job {
        Ok(job) => job,
        Err(error) => return error.body(),
    };
    if Instant::now() > deadline {
        return deadline_error().body();
    }
    let outcome = catch_unwind(AssertUnwindSafe(|| match job {
        BatchJob::Solve(problem) => memo_fragment(ctx, problem)
            .map(|(fragment, _)| wrap_ok(&fragment))
            .map_err(|message| ApiError::new(ApiErrorKind::InvalidRequest, message)),
        BatchJob::Sweep(sweep) => sweep_outcome(ctx, sweep, deadline).map(|(body, _)| body),
    }));
    match outcome {
        Err(payload) => error_body(
            ApiErrorKind::Internal,
            &format!("contained panic: {}", panic_message(&*payload)),
        ),
        Ok(Err(error)) => error.body(),
        Ok(Ok(body)) => body,
    }
}

/// Fans a batch out over scoped threads (work-stealing by job index)
/// and renders the reply. Partial failure is the contract: each job's
/// slot carries its own success or error envelope, and one bad job
/// never takes down its neighbours.
fn run_batch(
    ctx: &ServeContext,
    fault: Option<Fault>,
    batch: &BatchRequest,
    deadline: Instant,
) -> Response {
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        if let Some(Fault::Panic(message)) = &fault {
            panic!("{}", message.clone());
        }
        let jobs = &batch.jobs;
        let fanout = jobs
            .len()
            .min(MAX_BATCH_FANOUT)
            .min(std::thread::available_parallelism().map_or(1, std::num::NonZero::get));
        let mut slots: Vec<String> = vec![String::new(); jobs.len()];
        if fanout <= 1 {
            for (job, slot) in jobs.iter().zip(&mut slots) {
                *slot = run_job(ctx, job, deadline);
            }
        } else {
            let shared: Vec<Mutex<String>> = slots.drain(..).map(Mutex::new).collect();
            let next = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..fanout {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= jobs.len() {
                            break;
                        }
                        let body = run_job(ctx, &jobs[i], deadline);
                        *shared[i].lock().unwrap_or_else(|p| p.into_inner()) = body;
                    });
                }
            });
            slots = shared
                .into_iter()
                .map(|slot| slot.into_inner().unwrap_or_else(|p| p.into_inner()))
                .collect();
        }
        batch_body(&slots)
    }));
    match outcome {
        Err(payload) => panic_response(&*payload),
        Ok(body) => Response::ok(body),
    }
}
