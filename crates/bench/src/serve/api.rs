//! The typed request/response layer behind every `bandwall serve`
//! endpoint.
//!
//! The versioned route table ([`route`]) maps `(method, path)` onto an
//! [`Endpoint`]; [`ApiRequest::parse`] turns a raw body into a typed
//! request (strict JSON — unknown fields are rejected, so a typo'd knob
//! can never be silently ignored); the rendering functions produce
//! deterministic hand-rendered JSON with the same float formatting the
//! batch reports use, so a memoized body is byte-identical to a fresh
//! one by construction.
//!
//! `POST /solve` is a legacy alias of `POST /v1/solve`: both resolve to
//! [`Endpoint::Solve`] and share one parser and one renderer, so their
//! replies are byte-identical by construction.
//!
//! Error replies share one envelope, built only by [`error_body`], so
//! the six [`ErrorKind`]s cannot drift between endpoints:
//!
//! ```text
//! {"status":"error","error":{"kind":"<kind>","message":"<message>"}}
//! ```

use crate::report::{json_f64, json_string};
use crate::serve::json::Json;
use crate::sweep::{named_sweep, named_sweep_ids, Variant};
use crate::{die_budget, paper_baseline};
use bandwall_model::catalog::{extended_catalog, AssumptionLevel};
use bandwall_model::descriptor::wire_kind;
use bandwall_model::{Alpha, Baseline, CanonicalProblem, ScalingProblem, Technique};
use std::collections::BTreeMap;

/// Most variants one `POST /v1/sweep` may carry; the excess is refused
/// with `413 invalid_request` (a sweep is one worker's solve loop, so
/// its size bounds one request's cost).
pub const MAX_SWEEP_VARIANTS: usize = 64;

/// Most jobs one `POST /v1/batch` may carry; the excess is refused with
/// `413 invalid_request`.
pub const MAX_BATCH_JOBS: usize = 32;

/// The six error kinds of the serve protocol, each with its canonical
/// HTTP status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Malformed HTTP/JSON, unknown field, out-of-domain parameter,
    /// wrong method, slow client, oversized request.
    InvalidRequest,
    /// Unknown endpoint.
    NotFound,
    /// Shed at accept time: the bounded queue was full.
    Overloaded,
    /// Readiness probe while draining or saturated.
    NotReady,
    /// The request missed its deadline.
    DeadlineExceeded,
    /// A contained handler panic.
    Internal,
}

impl ErrorKind {
    /// The wire name inside the error envelope.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::InvalidRequest => "invalid_request",
            ErrorKind::NotFound => "not_found",
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::NotReady => "not_ready",
            ErrorKind::DeadlineExceeded => "deadline_exceeded",
            ErrorKind::Internal => "internal",
        }
    }

    /// The default HTTP status for this kind (`invalid_request` also
    /// ships as 405/408/413 via [`ApiError::with_status`]).
    pub fn status(self) -> u16 {
        match self {
            ErrorKind::InvalidRequest => 400,
            ErrorKind::NotFound => 404,
            ErrorKind::Overloaded | ErrorKind::NotReady => 503,
            ErrorKind::DeadlineExceeded => 504,
            ErrorKind::Internal => 500,
        }
    }
}

/// One typed API failure: a kind, the HTTP status it ships under, and
/// a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiError {
    /// Envelope kind.
    pub kind: ErrorKind,
    /// HTTP status (usually [`ErrorKind::status`]).
    pub status: u16,
    /// Envelope message.
    pub message: String,
}

impl ApiError {
    /// An error at its kind's canonical status.
    pub fn new(kind: ErrorKind, message: impl Into<String>) -> Self {
        ApiError {
            kind,
            status: kind.status(),
            message: message.into(),
        }
    }

    /// An error shipped under a non-default status (405, 408, 413).
    pub fn with_status(status: u16, kind: ErrorKind, message: impl Into<String>) -> Self {
        ApiError {
            kind,
            status,
            message: message.into(),
        }
    }

    /// Renders the shared error envelope for this error.
    pub fn body(&self) -> String {
        error_body(self.kind, &self.message)
    }
}

fn invalid(message: impl Into<String>) -> ApiError {
    ApiError::new(ErrorKind::InvalidRequest, message)
}

/// Renders the shared error envelope — the only constructor of error
/// bodies, used by every endpoint, the acceptor's shed path, and the
/// per-job envelopes inside `/v1/batch` replies.
pub fn error_body(kind: ErrorKind, message: &str) -> String {
    format!(
        "{{\"status\":\"error\",\"error\":{{\"kind\":{},\"message\":{}}}}}",
        json_string(kind.as_str()),
        json_string(message)
    )
}

/// The service's endpoints, independent of the paths that reach them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `GET /healthz` — liveness.
    Healthz,
    /// `GET /readyz` — readiness.
    Readyz,
    /// `GET /v1/techniques` — catalogue discovery.
    Techniques,
    /// `POST /v1/solve` (and the legacy `POST /solve` alias).
    Solve,
    /// `POST /v1/sweep` — a what-if sweep over the catalogue.
    Sweep,
    /// `POST /v1/batch` — heterogeneous solve/sweep jobs.
    Batch,
}

/// The versioned route table: every `(method, path)` the service
/// answers. `POST /solve` is the legacy alias of `POST /v1/solve`.
pub const ROUTES: [(&str, &str, Endpoint); 8] = [
    ("GET", "/healthz", Endpoint::Healthz),
    ("GET", "/readyz", Endpoint::Readyz),
    ("GET", "/v1/techniques", Endpoint::Techniques),
    ("POST", "/v1/solve", Endpoint::Solve),
    ("POST", "/solve", Endpoint::Solve),
    ("POST", "/v1/sweep", Endpoint::Sweep),
    ("POST", "/v1/batch", Endpoint::Batch),
    ("GET", "/v1/sweeps", Endpoint::Techniques),
];

/// How a `(method, path)` resolved against [`ROUTES`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteMatch {
    /// Known path, allowed method.
    Endpoint(Endpoint),
    /// Known path, wrong method (`405 invalid_request`).
    MethodNotAllowed,
    /// Unknown path (`404 not_found`).
    NotFound,
}

/// Resolves a request line against the route table.
pub fn route(method: &str, path: &str) -> RouteMatch {
    let mut known_path = false;
    for (m, p, endpoint) in ROUTES {
        if p == path {
            if m == method {
                return RouteMatch::Endpoint(endpoint);
            }
            known_path = true;
        }
    }
    if known_path {
        RouteMatch::MethodNotAllowed
    } else {
        RouteMatch::NotFound
    }
}

/// One parsed `POST /v1/sweep` request (or sweep job in a batch).
#[derive(Debug, Clone)]
pub struct SweepRequest {
    /// The catalogue-sweep name, when requested by name.
    pub name: Option<String>,
    /// The base problem every variant starts from.
    pub base: ScalingProblem,
    /// The sweep points.
    pub variants: Vec<Variant>,
}

/// One job inside a `POST /v1/batch` request.
#[derive(Debug, Clone)]
pub enum BatchJob {
    /// A single scaling query.
    Solve(Box<ScalingProblem>),
    /// A what-if sweep.
    Sweep(SweepRequest),
}

/// One parsed `POST /v1/batch` request. A job that failed to parse
/// keeps its slot as the error it will answer with — partial-failure
/// semantics start at the parser.
#[derive(Debug, Clone)]
pub struct BatchRequest {
    /// Jobs in request order; `Err` slots render their envelope.
    pub jobs: Vec<Result<BatchJob, ApiError>>,
}

/// One fully-parsed API request.
#[derive(Debug, Clone)]
pub enum ApiRequest {
    /// `GET /healthz`.
    Healthz,
    /// `GET /readyz`.
    Readyz,
    /// `GET /v1/techniques`.
    Techniques,
    /// `POST /v1/solve` or legacy `POST /solve`.
    Solve(Box<ScalingProblem>),
    /// `POST /v1/sweep`.
    Sweep(SweepRequest),
    /// `POST /v1/batch`.
    Batch(BatchRequest),
}

impl ApiRequest {
    /// Parses a request body for an endpoint the route table matched.
    ///
    /// # Errors
    ///
    /// Returns a typed [`ApiError`] (always `invalid_request`) for
    /// non-UTF-8, unparsable, or schema-violating bodies; size-cap
    /// violations carry status 413.
    pub fn parse(endpoint: Endpoint, body: &[u8]) -> Result<ApiRequest, ApiError> {
        match endpoint {
            Endpoint::Healthz => return Ok(ApiRequest::Healthz),
            Endpoint::Readyz => return Ok(ApiRequest::Readyz),
            Endpoint::Techniques => return Ok(ApiRequest::Techniques),
            Endpoint::Solve | Endpoint::Sweep | Endpoint::Batch => {}
        }
        let text = std::str::from_utf8(body).map_err(|_| invalid("body is not UTF-8"))?;
        match endpoint {
            Endpoint::Solve => parse_problem(text)
                .map(|p| ApiRequest::Solve(Box::new(p)))
                .map_err(invalid),
            Endpoint::Sweep => parse_sweep(text).map(ApiRequest::Sweep),
            Endpoint::Batch => parse_batch(text).map(ApiRequest::Batch),
            Endpoint::Healthz | Endpoint::Readyz | Endpoint::Techniques => {
                unreachable!("GET endpoints returned above")
            }
        }
    }
}

fn reject_unknown(
    what: &str,
    obj: &BTreeMap<String, Json>,
    allowed: &[&str],
) -> Result<(), String> {
    for key in obj.keys() {
        if !allowed.contains(&key.as_str()) {
            return Err(format!(
                "unknown {what} field '{key}' (allowed: {})",
                allowed.join(", ")
            ));
        }
    }
    Ok(())
}

fn num_field(obj: &BTreeMap<String, Json>, name: &str) -> Result<Option<f64>, String> {
    match obj.get(name) {
        None => Ok(None),
        Some(v) => v
            .as_num()
            .map(Some)
            .ok_or_else(|| format!("field '{name}' must be a number")),
    }
}

fn required_num(obj: &BTreeMap<String, Json>, name: &str) -> Result<f64, String> {
    num_field(obj, name)?.ok_or_else(|| format!("missing required field '{name}'"))
}

fn parse_technique(value: &Json) -> Result<Technique, String> {
    let obj = value
        .as_obj()
        .ok_or("each technique must be an object with a 'kind' field")?;
    let kind = obj
        .get("kind")
        .and_then(Json::as_str)
        .ok_or("each technique must carry a string 'kind' field")?;
    let (descriptor, shape) =
        wire_kind(kind).ok_or_else(|| format!("unknown technique kind '{kind}'"))?;
    let mut allowed = Vec::with_capacity(1 + shape.fields.len());
    allowed.push("kind");
    allowed.extend(shape.fields.iter().map(|&i| descriptor.params[i].field));
    reject_unknown("technique", obj, &allowed)?;
    // Fields omitted by this wire shape take their schema defaults; the
    // registry guarantees each such parameter has one.
    let mut params: Vec<f64> = descriptor
        .params
        .iter()
        .map(|spec| spec.default.unwrap_or(f64::NAN))
        .collect();
    for &i in shape.fields {
        let spec = &descriptor.params[i];
        let v = required_num(obj, spec.field)?;
        if spec.domain.is_integer()
            && (v.fract() != 0.0 || !(0.0..=f64::from(u32::MAX)).contains(&v))
        {
            return Err(format!(
                "field '{}' must be a whole number, got {v}",
                spec.field
            ));
        }
        params[i] = v;
    }
    descriptor
        .instantiate(&params)
        .map_err(|e| format!("technique '{kind}': {e}"))
}

fn parse_baseline(value: &Json) -> Result<Baseline, String> {
    let obj = value.as_obj().ok_or("field 'baseline' must be an object")?;
    reject_unknown("baseline", obj, &["cores", "cache_ceas", "alpha"])?;
    let default = Baseline::niagara2_like();
    let cores = num_field(obj, "cores")?.unwrap_or_else(|| default.cores());
    let cache = num_field(obj, "cache_ceas")?.unwrap_or_else(|| default.cache_ceas());
    let alpha = match num_field(obj, "alpha")? {
        None => default.alpha(),
        Some(a) => Alpha::new(a).map_err(|e| format!("baseline: {e}"))?,
    };
    Baseline::new(cores, cache, alpha).map_err(|e| format!("baseline: {e}"))
}

/// Parses one problem description (the `/solve` schema) from a JSON
/// value; `what` labels unknown-field errors (`request`, `base`, ...).
fn problem_from_json(what: &str, value: &Json) -> Result<ScalingProblem, String> {
    let obj = value
        .as_obj()
        .ok_or_else(|| format!("{what} body must be a JSON object"))?;
    reject_unknown(
        what,
        obj,
        &[
            "total_ceas",
            "bandwidth_growth",
            "per_core_demand",
            "uncore_per_core",
            "baseline",
            "techniques",
        ],
    )?;
    let baseline = match obj.get("baseline") {
        None => Baseline::niagara2_like(),
        Some(v) => parse_baseline(v)?,
    };
    let mut problem = ScalingProblem::new(baseline, required_num(obj, "total_ceas")?);
    if let Some(growth) = num_field(obj, "bandwidth_growth")? {
        problem = problem.with_bandwidth_growth(growth);
    }
    if let Some(demand) = num_field(obj, "per_core_demand")? {
        problem = problem.with_per_core_demand(demand);
    }
    if let Some(uncore) = num_field(obj, "uncore_per_core")? {
        problem = problem.with_uncore_overhead(uncore);
    }
    if let Some(value) = obj.get("techniques") {
        let arr = value
            .as_arr()
            .ok_or("field 'techniques' must be an array")?;
        for t in arr {
            problem = problem.with_technique(parse_technique(t)?);
        }
    }
    Ok(problem)
}

/// Parses a `/solve` request body into a [`ScalingProblem`].
///
/// # Errors
///
/// Returns an `invalid_request` message for anything other than a
/// strict, fully-recognised problem description.
pub fn parse_problem(body: &str) -> Result<ScalingProblem, String> {
    let doc = Json::parse(body)?;
    problem_from_json("request", &doc)
}

/// The next-generation die every catalogue sweep (and every custom
/// sweep without an explicit `base`) solves on — the same base problem
/// as [`crate::sweep::sweep_block`].
fn default_sweep_base() -> ScalingProblem {
    ScalingProblem::new(paper_baseline(), die_budget(1))
}

fn parse_variant(value: &Json) -> Result<Variant, ApiError> {
    let obj = value
        .as_obj()
        .ok_or_else(|| invalid("each variant must be an object"))?;
    reject_unknown("variant", obj, &["label", "technique"]).map_err(invalid)?;
    let technique = match obj.get("technique") {
        None => None,
        Some(v) => Some(parse_technique(v).map_err(invalid)?),
    };
    let label = match obj.get("label") {
        Some(v) => v
            .as_str()
            .ok_or_else(|| invalid("variant field 'label' must be a string"))?
            .to_string(),
        None => technique
            .as_ref()
            .map(|t| t.label().to_string())
            .unwrap_or_else(|| "base".to_string()),
    };
    Ok(Variant::new(label, technique, None))
}

/// Parses the sweep fields shared by `POST /v1/sweep` and sweep jobs
/// inside `POST /v1/batch` (`sweep` XOR `base`+`variants`).
fn sweep_from_fields(obj: &BTreeMap<String, Json>) -> Result<SweepRequest, ApiError> {
    if let Some(v) = obj.get("sweep") {
        let name = v
            .as_str()
            .ok_or_else(|| invalid("field 'sweep' must be a string"))?;
        if obj.contains_key("base") || obj.contains_key("variants") {
            return Err(invalid(
                "a named sweep takes no 'base' or 'variants' fields",
            ));
        }
        let variants = named_sweep(name).ok_or_else(|| {
            invalid(format!(
                "unknown sweep '{name}' (known: {})",
                named_sweep_ids().join(", ")
            ))
        })?;
        return Ok(SweepRequest {
            name: Some(name.to_string()),
            base: default_sweep_base(),
            variants,
        });
    }
    let base = match obj.get("base") {
        None => default_sweep_base(),
        Some(v) => problem_from_json("base", v).map_err(invalid)?,
    };
    let arr = obj
        .get("variants")
        .ok_or_else(|| invalid("missing required field 'variants' (or 'sweep')"))?
        .as_arr()
        .ok_or_else(|| invalid("field 'variants' must be an array"))?;
    if arr.is_empty() {
        return Err(invalid("field 'variants' must not be empty"));
    }
    if arr.len() > MAX_SWEEP_VARIANTS {
        return Err(ApiError::with_status(
            413,
            ErrorKind::InvalidRequest,
            format!(
                "sweep of {} variants exceeds the {MAX_SWEEP_VARIANTS}-variant cap",
                arr.len()
            ),
        ));
    }
    let variants = arr.iter().map(parse_variant).collect::<Result<_, _>>()?;
    Ok(SweepRequest {
        name: None,
        base,
        variants,
    })
}

fn parse_sweep(body: &str) -> Result<SweepRequest, ApiError> {
    let doc = Json::parse(body).map_err(invalid)?;
    let obj = doc
        .as_obj()
        .ok_or_else(|| invalid("request body must be a JSON object"))?;
    reject_unknown("sweep request", obj, &["sweep", "base", "variants"]).map_err(invalid)?;
    sweep_from_fields(obj)
}

fn parse_job(value: &Json) -> Result<BatchJob, ApiError> {
    let obj = value
        .as_obj()
        .ok_or_else(|| invalid("each job must be an object with a 'kind' field"))?;
    let kind = obj
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| invalid("each job must carry a string 'kind' field"))?;
    match kind {
        "solve" => {
            reject_unknown("solve job", obj, &["kind", "problem"]).map_err(invalid)?;
            let problem = obj
                .get("problem")
                .ok_or_else(|| invalid("solve job: missing required field 'problem'"))?;
            problem_from_json("problem", problem)
                .map(|p| BatchJob::Solve(Box::new(p)))
                .map_err(invalid)
        }
        "sweep" => {
            reject_unknown("sweep job", obj, &["kind", "sweep", "base", "variants"])
                .map_err(invalid)?;
            sweep_from_fields(obj).map(BatchJob::Sweep)
        }
        other => Err(invalid(format!(
            "unknown job kind '{other}' (allowed: solve, sweep)"
        ))),
    }
}

fn parse_batch(body: &str) -> Result<BatchRequest, ApiError> {
    let doc = Json::parse(body).map_err(invalid)?;
    let obj = doc
        .as_obj()
        .ok_or_else(|| invalid("request body must be a JSON object"))?;
    reject_unknown("batch request", obj, &["jobs"]).map_err(invalid)?;
    let arr = obj
        .get("jobs")
        .ok_or_else(|| invalid("missing required field 'jobs'"))?
        .as_arr()
        .ok_or_else(|| invalid("field 'jobs' must be an array"))?;
    if arr.is_empty() {
        return Err(invalid("field 'jobs' must not be empty"));
    }
    if arr.len() > MAX_BATCH_JOBS {
        return Err(ApiError::with_status(
            413,
            ErrorKind::InvalidRequest,
            format!(
                "batch of {} jobs exceeds the {MAX_BATCH_JOBS}-job cap",
                arr.len()
            ),
        ));
    }
    // A malformed job keeps its slot as the error envelope it will
    // answer with; the rest of the batch still runs.
    Ok(BatchRequest {
        jobs: arr.iter().map(parse_job).collect(),
    })
}

/// The envelope prefix every success body shares.
const OK_PREFIX: &str = "{\"status\":\"ok\",\"result\":";

/// Wraps a rendered result fragment in the success envelope.
pub fn wrap_ok(fragment: &str) -> String {
    let mut out = String::with_capacity(OK_PREFIX.len() + fragment.len() + 1);
    out.push_str(OK_PREFIX);
    out.push_str(fragment);
    out.push('}');
    out
}

/// Solves `problem` and renders the bare result object (no envelope).
/// This fragment is the unit of memoization: `/solve` wraps it via
/// [`wrap_ok`], `/v1/sweep` rows embed it verbatim — so solves and
/// sweeps share cache entries and stay byte-consistent by construction.
///
/// # Errors
///
/// Returns an `invalid_request` message when the model rejects the
/// problem (out-of-domain parameter, infeasible configuration).
pub fn solve_fragment(problem: &ScalingProblem) -> Result<String, String> {
    let solution = problem.solve().map_err(|e| format!("model error: {e}"))?;
    let digest = CanonicalProblem::of(problem).digest();
    Ok(format!(
        "{{\"total_ceas\":{},\"bandwidth_growth\":{},\
         \"supportable_cores\":{},\"ideal_cores\":{},\"crossover_cores\":{},\
         \"relative_traffic\":{},\"core_area_fraction\":{},\"scaling_efficiency\":{},\
         \"problem_digest\":{}}}",
        json_f64(solution.total_ceas),
        json_f64(solution.bandwidth_growth),
        solution.supportable_cores,
        solution.ideal_cores,
        json_f64(solution.crossover_cores),
        json_f64(solution.relative_traffic),
        json_f64(solution.core_area_fraction),
        json_f64(solution.scaling_efficiency()),
        json_string(&format!("{digest:016x}")),
    ))
}

/// Solves `problem` and renders the full `/solve` success body.
///
/// # Errors
///
/// See [`solve_fragment`].
pub fn solve_body(problem: &ScalingProblem) -> Result<String, String> {
    solve_fragment(problem).map(|fragment| wrap_ok(&fragment))
}

/// One rendered sweep row: the variant's label, the paper's anchor
/// when stated, and the solve-result fragment.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Variant label.
    pub label: String,
    /// Paper-reported core count, when the figure anchors this point.
    pub paper: Option<u64>,
    /// The rendered solve-result fragment (shared with `/solve`).
    pub fragment: String,
}

/// Renders the `/v1/sweep` success body from solved rows — the wire
/// mirror of [`crate::sweep::sweep_block`]'s table.
pub fn sweep_body(name: Option<&str>, rows: &[SweepRow]) -> String {
    let mut out =
        String::with_capacity(64 + rows.iter().map(|r| r.fragment.len() + 48).sum::<usize>());
    out.push_str(OK_PREFIX);
    out.push_str("{\"sweep\":");
    match name {
        Some(n) => out.push_str(&json_string(n)),
        None => out.push_str("null"),
    }
    out.push_str(",\"rows\":[");
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"label\":");
        out.push_str(&json_string(&row.label));
        out.push_str(",\"paper\":");
        match row.paper {
            Some(p) => out.push_str(&p.to_string()),
            None => out.push_str("null"),
        }
        out.push_str(",\"result\":");
        out.push_str(&row.fragment);
        out.push('}');
    }
    out.push_str("]}}");
    out
}

/// Renders the `/v1/batch` success body: every slot is exactly the body
/// the standalone endpoint would have returned for that job (success
/// envelope or error envelope), in request order.
pub fn batch_body(slots: &[String]) -> String {
    let mut out = String::with_capacity(32 + slots.iter().map(|s| s.len() + 1).sum::<usize>());
    out.push_str(OK_PREFIX);
    out.push_str("{\"results\":[");
    for (i, slot) in slots.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(slot);
    }
    out.push_str("]}}");
    out
}

/// Renders one technique as the request-ready JSON spec `/solve` and
/// `/v1/sweep` accept (so discovery output can be pasted back in).
/// The renderer picks the first wire shape whose omitted parameters all
/// equal their defaults — so a stacked cache at SRAM density renders as
/// the compact `stacked_cache` shape, exactly as before the registry.
fn technique_spec(technique: &Technique) -> String {
    let descriptor = technique.descriptor();
    let params = technique.params();
    let shape = descriptor
        .wire
        .iter()
        .find(|shape| {
            descriptor
                .params
                .iter()
                .enumerate()
                .all(|(i, spec)| shape.fields.contains(&i) || spec.default == Some(params[i]))
        })
        .expect("every descriptor's last wire shape carries all parameters");
    let mut out = String::with_capacity(64);
    out.push_str("{\"kind\":");
    out.push_str(&json_string(shape.kind));
    for &i in shape.fields {
        let spec = &descriptor.params[i];
        out.push_str(",\"");
        out.push_str(spec.field);
        out.push_str("\":");
        if spec.domain.is_integer() {
            out.push_str(&(params[i] as u64).to_string());
        } else {
            out.push_str(&json_f64(params[i]));
        }
    }
    out.push('}');
    out
}

/// Renders the parameter-schema array of one technique: field name,
/// constraint text, and default (when a wire shape may omit the field).
fn params_schema(descriptor: &bandwall_model::TechniqueDescriptor) -> String {
    let mut out = String::with_capacity(64);
    out.push('[');
    for (i, spec) in descriptor.params.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"field\":");
        out.push_str(&json_string(spec.field));
        out.push_str(",\"constraint\":");
        out.push_str(&json_string(spec.domain.constraint()));
        out.push_str(",\"default\":");
        match spec.default {
            Some(v) => out.push_str(&json_f64(v)),
            None => out.push_str("null"),
        }
        out.push('}');
    }
    out.push(']');
    out
}

/// Renders the `GET /v1/techniques` body: the full technique registry
/// (Table 2 plus post-2009 extensions) with each technique's id,
/// parameter schema, and each assumption level as a request-ready
/// technique spec, plus the named catalogue sweeps `/v1/sweep` accepts.
pub fn techniques_body() -> String {
    let mut out = String::with_capacity(8192);
    out.push_str(OK_PREFIX);
    out.push_str("{\"techniques\":[");
    for (i, profile) in extended_catalog().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"id\":");
        out.push_str(&json_string(profile.id()));
        out.push_str(",\"label\":");
        out.push_str(&json_string(profile.label()));
        out.push_str(",\"name\":");
        out.push_str(&json_string(profile.name()));
        out.push_str(",\"category\":");
        out.push_str(&json_string(&profile.category().to_string()));
        out.push_str(",\"effectiveness\":");
        out.push_str(&json_string(&profile.effectiveness().to_string()));
        out.push_str(",\"range\":");
        out.push_str(&json_string(&profile.range().to_string()));
        out.push_str(",\"complexity\":");
        out.push_str(&json_string(&profile.complexity().to_string()));
        out.push_str(",\"params\":");
        out.push_str(&params_schema(profile.descriptor()));
        out.push_str(",\"assumptions\":{");
        for (j, level) in AssumptionLevel::ALL.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&json_string(&level.to_string()));
            out.push_str(":{\"text\":");
            out.push_str(&json_string(profile.assumption_text(*level)));
            out.push_str(",\"technique\":");
            let technique = profile
                .technique(*level)
                .expect("catalogue parameters are valid");
            out.push_str(&technique_spec(&technique));
            out.push('}');
        }
        out.push_str("}}");
    }
    out.push_str("],\"sweeps\":[");
    for (i, name) in named_sweep_ids().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&json_string(name));
    }
    out.push_str("]}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_schema() {
        let body = r#"{
            "total_ceas": 256,
            "bandwidth_growth": 1.5,
            "per_core_demand": 1.6,
            "uncore_per_core": 0.5,
            "baseline": {"cores": 8, "cache_ceas": 8, "alpha": 0.5},
            "techniques": [
                {"kind": "cache_link_compression", "ratio": 2},
                {"kind": "dram_cache", "density": 8},
                {"kind": "stacked_cache", "layers": 1},
                {"kind": "small_cache_lines", "unused_fraction": 0.4}
            ]
        }"#;
        let p = parse_problem(body).unwrap();
        assert_eq!(p.total_ceas(), 256.0);
        assert_eq!(p.bandwidth_growth(), 1.5);
        assert_eq!(p.per_core_demand(), 1.6);
        assert_eq!(p.uncore_per_core(), 0.5);
        assert_eq!(p.techniques().len(), 4);
    }

    #[test]
    fn defaults_to_the_paper_baseline() {
        let p = parse_problem(r#"{"total_ceas": 32}"#).unwrap();
        assert_eq!(p.baseline(), &Baseline::niagara2_like());
        assert_eq!(p.bandwidth_growth(), 1.0);
        let body = solve_body(&p).unwrap();
        assert!(body.contains("\"supportable_cores\":11"), "{body}");
        assert!(body.contains("\"ideal_cores\":16"), "{body}");
        assert!(body.starts_with("{\"status\":\"ok\",\"result\":{"));
    }

    #[test]
    fn every_technique_kind_round_trips() {
        for spec in [
            r#"{"kind":"cache_compression","ratio":2}"#,
            r#"{"kind":"dram_cache","density":8}"#,
            r#"{"kind":"stacked_cache","layers":1}"#,
            r#"{"kind":"stacked_dram_cache","layers":1,"layer_density":8}"#,
            r#"{"kind":"unused_data_filter","unused_fraction":0.4}"#,
            r#"{"kind":"smaller_cores","area_fraction":0.25}"#,
            r#"{"kind":"link_compression","ratio":2}"#,
            r#"{"kind":"sectored_cache","unused_fraction":0.4}"#,
            r#"{"kind":"small_cache_lines","unused_fraction":0.4}"#,
            r#"{"kind":"cache_link_compression","ratio":2}"#,
        ] {
            let body = format!(r#"{{"total_ceas":32,"techniques":[{spec}]}}"#);
            let p = parse_problem(&body).unwrap_or_else(|e| panic!("{spec}: {e}"));
            assert_eq!(p.techniques().len(), 1, "{spec}");
        }
    }

    #[test]
    fn rejects_unknown_and_malformed_fields() {
        for (body, what) in [
            (r#"{"total_ceas":32,"typo":1}"#, "unknown top-level field"),
            (r#"{}"#, "missing total_ceas"),
            (r#"{"total_ceas":"big"}"#, "non-numeric total_ceas"),
            (r#"[1,2]"#, "non-object body"),
            ("not json", "unparsable body"),
            (
                r#"{"total_ceas":32,"baseline":{"cores":8,"pet":1}}"#,
                "unknown baseline field",
            ),
            (
                r#"{"total_ceas":32,"techniques":[{"kind":"dram_cache","density":8,"x":1}]}"#,
                "unknown technique field",
            ),
            (
                r#"{"total_ceas":32,"techniques":[{"kind":"warp_drive"}]}"#,
                "unknown technique kind",
            ),
            (
                r#"{"total_ceas":32,"techniques":[{"kind":"stacked_cache","layers":1.5}]}"#,
                "fractional layers",
            ),
            (
                r#"{"total_ceas":32,"techniques":[{"kind":"dram_cache","density":0.5}]}"#,
                "out-of-domain technique parameter",
            ),
            (
                r#"{"total_ceas":32,"techniques":{"kind":"dram_cache"}}"#,
                "non-array techniques",
            ),
            (
                r#"{"total_ceas":32,"baseline":{"alpha":-1}}"#,
                "invalid alpha",
            ),
        ] {
            assert!(parse_problem(body).is_err(), "accepted {what}");
        }
    }

    #[test]
    fn solve_body_is_deterministic_and_reports_model_errors() {
        let p = parse_problem(r#"{"total_ceas":32}"#).unwrap();
        assert_eq!(solve_body(&p).unwrap(), solve_body(&p).unwrap());
        // Wrapping the fragment reproduces the body byte-for-byte.
        assert_eq!(
            solve_body(&p).unwrap(),
            wrap_ok(&solve_fragment(&p).unwrap())
        );
        // A parseable but out-of-domain problem fails at solve time.
        let bad = parse_problem(r#"{"total_ceas":-1}"#).unwrap();
        let err = solve_body(&bad).unwrap_err();
        assert!(err.contains("model error"), "{err}");
    }

    #[test]
    fn error_envelope_shape() {
        assert_eq!(
            error_body(ErrorKind::Overloaded, "queue full"),
            "{\"status\":\"error\",\"error\":{\"kind\":\"overloaded\",\
             \"message\":\"queue full\"}}"
        );
        let e = ApiError::new(ErrorKind::DeadlineExceeded, "late");
        assert_eq!(e.status, 504);
        assert!(e.body().contains("\"kind\":\"deadline_exceeded\""));
    }

    #[test]
    fn route_table_resolves_aliases_and_misses() {
        assert_eq!(
            route("POST", "/solve"),
            RouteMatch::Endpoint(Endpoint::Solve)
        );
        assert_eq!(
            route("POST", "/v1/solve"),
            RouteMatch::Endpoint(Endpoint::Solve)
        );
        assert_eq!(
            route("POST", "/v1/sweep"),
            RouteMatch::Endpoint(Endpoint::Sweep)
        );
        assert_eq!(
            route("POST", "/v1/batch"),
            RouteMatch::Endpoint(Endpoint::Batch)
        );
        assert_eq!(
            route("GET", "/v1/techniques"),
            RouteMatch::Endpoint(Endpoint::Techniques)
        );
        assert_eq!(route("GET", "/solve"), RouteMatch::MethodNotAllowed);
        assert_eq!(route("POST", "/healthz"), RouteMatch::MethodNotAllowed);
        assert_eq!(route("GET", "/nope"), RouteMatch::NotFound);
    }

    #[test]
    fn named_sweep_requests_resolve_to_registry_variants() {
        let req =
            match ApiRequest::parse(Endpoint::Sweep, br#"{"sweep":"fig05_dram_cache"}"#).unwrap() {
                ApiRequest::Sweep(req) => req,
                other => panic!("not a sweep: {other:?}"),
            };
        assert_eq!(req.name.as_deref(), Some("fig05_dram_cache"));
        assert_eq!(req.variants.len(), 4);
        assert_eq!(req.variants[0].label, "SRAM L2");
        assert_eq!(req.base, default_sweep_base());
    }

    #[test]
    fn custom_sweeps_parse_and_oversized_ones_are_413() {
        let body = r#"{"base":{"total_ceas":64},
            "variants":[{"label":"plain"},
                        {"technique":{"kind":"dram_cache","density":8}}]}"#;
        let req = match ApiRequest::parse(Endpoint::Sweep, body.as_bytes()).unwrap() {
            ApiRequest::Sweep(req) => req,
            other => panic!("not a sweep: {other:?}"),
        };
        assert!(req.name.is_none());
        assert_eq!(req.base.total_ceas(), 64.0);
        assert_eq!(req.variants[0].label, "plain");
        // The unlabeled technique variant is named after its axis label.
        assert_eq!(req.variants[1].label, "DRAM");

        let many: Vec<String> = (0..MAX_SWEEP_VARIANTS + 1)
            .map(|i| format!("{{\"label\":\"v{i}\"}}"))
            .collect();
        let oversized = format!("{{\"variants\":[{}]}}", many.join(","));
        let err = ApiRequest::parse(Endpoint::Sweep, oversized.as_bytes()).unwrap_err();
        assert_eq!(err.status, 413);
        assert_eq!(err.kind, ErrorKind::InvalidRequest);
    }

    #[test]
    fn sweep_requests_reject_schema_violations() {
        for (body, what) in [
            (r#"{"sweep":"fig99_unknown"}"#, "unknown sweep name"),
            (
                r#"{"sweep":"fig04_cache_compression","variants":[]}"#,
                "named sweep with variants",
            ),
            (r#"{"variants":[]}"#, "empty variants"),
            (r#"{"variants":[{"label":1}]}"#, "non-string label"),
            (r#"{"variants":[{"bogus":1}]}"#, "unknown variant field"),
            (r#"{"bogus":1}"#, "unknown top-level field"),
            (r#"{}"#, "no sweep and no variants"),
        ] {
            assert!(
                ApiRequest::parse(Endpoint::Sweep, body.as_bytes()).is_err(),
                "accepted {what}"
            );
        }
    }

    #[test]
    fn batches_parse_with_per_job_errors_in_place() {
        let body = r#"{"jobs":[
            {"kind":"solve","problem":{"total_ceas":32}},
            {"kind":"solve","problem":{"bogus":1}},
            {"kind":"sweep","sweep":"fig04_cache_compression"},
            {"kind":"warp"}
        ]}"#;
        let batch = match ApiRequest::parse(Endpoint::Batch, body.as_bytes()).unwrap() {
            ApiRequest::Batch(batch) => batch,
            other => panic!("not a batch: {other:?}"),
        };
        assert_eq!(batch.jobs.len(), 4);
        assert!(matches!(batch.jobs[0], Ok(BatchJob::Solve(_))));
        assert!(batch.jobs[1].is_err(), "bad problem must stay in its slot");
        assert!(matches!(batch.jobs[2], Ok(BatchJob::Sweep(_))));
        assert!(batch.jobs[3].is_err(), "bad kind must stay in its slot");
    }

    #[test]
    fn oversized_and_structurally_broken_batches_are_rejected_whole() {
        let many: Vec<&str> = (0..MAX_BATCH_JOBS + 1)
            .map(|_| r#"{"kind":"warp"}"#)
            .collect();
        let oversized = format!("{{\"jobs\":[{}]}}", many.join(","));
        let err = ApiRequest::parse(Endpoint::Batch, oversized.as_bytes()).unwrap_err();
        assert_eq!(err.status, 413);
        for body in [
            r#"{}"#,
            r#"{"jobs":[]}"#,
            r#"{"jobs":1}"#,
            r#"{"jobs":[],"x":1}"#,
        ] {
            assert!(ApiRequest::parse(Endpoint::Batch, body.as_bytes()).is_err());
        }
    }

    #[test]
    fn sweep_and_batch_bodies_render_deterministic_envelopes() {
        let p = default_sweep_base();
        let fragment = solve_fragment(&p).unwrap();
        let rows = vec![SweepRow {
            label: "base".to_string(),
            paper: Some(11),
            fragment: fragment.clone(),
        }];
        let body = sweep_body(Some("fig04_cache_compression"), &rows);
        assert!(body.starts_with("{\"status\":\"ok\",\"result\":{\"sweep\":\"fig04"));
        assert!(body.contains("\"paper\":11"));
        assert!(body.contains(&fragment));
        assert!(body.ends_with("]}}"));

        let batch = batch_body(&[wrap_ok(&fragment), error_body(ErrorKind::Internal, "x")]);
        assert!(batch.starts_with("{\"status\":\"ok\",\"result\":{\"results\":["));
        assert!(batch.contains("\"kind\":\"internal\""));
    }

    #[test]
    fn techniques_body_lists_the_catalogue_and_round_trips() {
        let body = techniques_body();
        for label in [
            "CC", "DRAM", "3D", "Fltr", "SmCo", "LC", "Sect", "SmCl", "CC/LC", "3D/T", "CXL",
        ] {
            assert!(
                body.contains(&format!("\"label\":{}", json_string(label))),
                "missing {label}: {body}"
            );
        }
        for name in named_sweep_ids() {
            assert!(body.contains(name), "missing sweep {name}");
        }
        assert!(body.contains("\"sweeps\":["), "{body}");
        // Every advertised technique spec must parse back through the
        // request schema (discovery output is request-ready) — the
        // extensions included.
        for profile in extended_catalog() {
            for level in AssumptionLevel::ALL {
                let spec = technique_spec(&profile.technique(level).unwrap());
                let body = format!("{{\"total_ceas\":32,\"techniques\":[{spec}]}}");
                parse_problem(&body).unwrap_or_else(|e| panic!("{spec}: {e}"));
            }
        }
    }

    #[test]
    fn every_advertised_technique_sweeps_as_a_custom_variant() {
        // Catalogue/API drift guard: each registry entry's realistic
        // spec must be accepted by POST /v1/sweep as a custom variant.
        for profile in extended_catalog() {
            let spec = technique_spec(&profile.technique(AssumptionLevel::Realistic).unwrap());
            let body =
                format!("{{\"variants\":[{{\"label\":\"base\"}},{{\"technique\":{spec}}}]}}");
            let req = match ApiRequest::parse(Endpoint::Sweep, body.as_bytes()) {
                Ok(ApiRequest::Sweep(req)) => req,
                other => panic!("{spec}: {other:?}"),
            };
            assert_eq!(req.variants.len(), 2, "{spec}");
            assert_eq!(req.variants[1].label, profile.label(), "{spec}");
        }
    }

    #[test]
    fn extension_techniques_parse_with_defaults_and_validate() {
        // thermal_capped_3d omitting nothing; cxl_harvesting bands.
        let p = parse_problem(
            r#"{"total_ceas":32,"techniques":[
                {"kind":"thermal_capped_3d","layers":4,"layer_density":8,"thermal_derate":0.7},
                {"kind":"cxl_harvesting","io_bandwidth_ratio":0.5,"idle_fraction":0.5}
            ]}"#,
        )
        .unwrap();
        assert_eq!(p.techniques().len(), 2);
        for (body, what) in [
            (
                r#"{"total_ceas":32,"techniques":[{"kind":"cxl_harvesting","io_bandwidth_ratio":0.5,"idle_fraction":1.5}]}"#,
                "idle fraction above 1",
            ),
            (
                r#"{"total_ceas":32,"techniques":[{"kind":"thermal_capped_3d","layers":0.5,"layer_density":8,"thermal_derate":0.7}]}"#,
                "fractional layers",
            ),
            (
                r#"{"total_ceas":32,"techniques":[{"kind":"thermal_capped_3d","layers":2,"layer_density":8,"thermal_derate":0}]}"#,
                "zero derate",
            ),
        ] {
            assert!(parse_problem(body).is_err(), "accepted {what}");
        }
    }
}
