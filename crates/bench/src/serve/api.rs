//! The `/solve` request/response vocabulary.
//!
//! Requests are strict JSON descriptions of one [`ScalingProblem`]
//! (unknown fields are rejected, so a typo'd knob can never be silently
//! ignored); responses are deterministic hand-rendered JSON with the
//! same float formatting the batch reports use, so a memoized body is
//! byte-identical to a fresh one by construction.
//!
//! Error replies share one envelope across every failure path:
//!
//! ```text
//! {"status":"error","error":{"kind":"<kind>","message":"<message>"}}
//! ```
//!
//! with `kind` one of `invalid_request`, `overloaded`,
//! `deadline_exceeded`, `internal`, `not_found`, or `not_ready`.

use crate::report::{json_f64, json_string};
use crate::serve::json::Json;
use bandwall_model::{Alpha, Baseline, CanonicalProblem, ScalingProblem, Technique};
use std::collections::BTreeMap;

/// Renders the shared error envelope.
pub fn error_body(kind: &str, message: &str) -> String {
    format!(
        "{{\"status\":\"error\",\"error\":{{\"kind\":{},\"message\":{}}}}}",
        json_string(kind),
        json_string(message)
    )
}

fn reject_unknown(
    what: &str,
    obj: &BTreeMap<String, Json>,
    allowed: &[&str],
) -> Result<(), String> {
    for key in obj.keys() {
        if !allowed.contains(&key.as_str()) {
            return Err(format!(
                "unknown {what} field '{key}' (allowed: {})",
                allowed.join(", ")
            ));
        }
    }
    Ok(())
}

fn num_field(obj: &BTreeMap<String, Json>, name: &str) -> Result<Option<f64>, String> {
    match obj.get(name) {
        None => Ok(None),
        Some(v) => v
            .as_num()
            .map(Some)
            .ok_or_else(|| format!("field '{name}' must be a number")),
    }
}

fn required_num(obj: &BTreeMap<String, Json>, name: &str) -> Result<f64, String> {
    num_field(obj, name)?.ok_or_else(|| format!("missing required field '{name}'"))
}

fn layers_field(obj: &BTreeMap<String, Json>) -> Result<u32, String> {
    let v = required_num(obj, "layers")?;
    if v.fract() != 0.0 || !(0.0..=f64::from(u32::MAX)).contains(&v) {
        return Err(format!("field 'layers' must be a whole number, got {v}"));
    }
    Ok(v as u32)
}

fn parse_technique(value: &Json) -> Result<Technique, String> {
    let obj = value
        .as_obj()
        .ok_or("each technique must be an object with a 'kind' field")?;
    let kind = obj
        .get("kind")
        .and_then(Json::as_str)
        .ok_or("each technique must carry a string 'kind' field")?;
    let built = match kind {
        "cache_compression" => {
            reject_unknown("technique", obj, &["kind", "ratio"])?;
            Technique::cache_compression(required_num(obj, "ratio")?)
        }
        "dram_cache" => {
            reject_unknown("technique", obj, &["kind", "density"])?;
            Technique::dram_cache(required_num(obj, "density")?)
        }
        "stacked_cache" => {
            reject_unknown("technique", obj, &["kind", "layers"])?;
            Technique::stacked_cache(layers_field(obj)?)
        }
        "stacked_dram_cache" => {
            reject_unknown("technique", obj, &["kind", "layers", "layer_density"])?;
            Technique::stacked_dram_cache(layers_field(obj)?, required_num(obj, "layer_density")?)
        }
        "unused_data_filter" => {
            reject_unknown("technique", obj, &["kind", "unused_fraction"])?;
            Technique::unused_data_filter(required_num(obj, "unused_fraction")?)
        }
        "smaller_cores" => {
            reject_unknown("technique", obj, &["kind", "area_fraction"])?;
            Technique::smaller_cores(required_num(obj, "area_fraction")?)
        }
        "link_compression" => {
            reject_unknown("technique", obj, &["kind", "ratio"])?;
            Technique::link_compression(required_num(obj, "ratio")?)
        }
        "sectored_cache" => {
            reject_unknown("technique", obj, &["kind", "unused_fraction"])?;
            Technique::sectored_cache(required_num(obj, "unused_fraction")?)
        }
        "small_cache_lines" => {
            reject_unknown("technique", obj, &["kind", "unused_fraction"])?;
            Technique::small_cache_lines(required_num(obj, "unused_fraction")?)
        }
        "cache_link_compression" => {
            reject_unknown("technique", obj, &["kind", "ratio"])?;
            Technique::cache_link_compression(required_num(obj, "ratio")?)
        }
        other => return Err(format!("unknown technique kind '{other}'")),
    };
    built.map_err(|e| format!("technique '{kind}': {e}"))
}

fn parse_baseline(value: &Json) -> Result<Baseline, String> {
    let obj = value.as_obj().ok_or("field 'baseline' must be an object")?;
    reject_unknown("baseline", obj, &["cores", "cache_ceas", "alpha"])?;
    let default = Baseline::niagara2_like();
    let cores = num_field(obj, "cores")?.unwrap_or_else(|| default.cores());
    let cache = num_field(obj, "cache_ceas")?.unwrap_or_else(|| default.cache_ceas());
    let alpha = match num_field(obj, "alpha")? {
        None => default.alpha(),
        Some(a) => Alpha::new(a).map_err(|e| format!("baseline: {e}"))?,
    };
    Baseline::new(cores, cache, alpha).map_err(|e| format!("baseline: {e}"))
}

/// Parses a `/solve` request body into a [`ScalingProblem`].
///
/// # Errors
///
/// Returns an `invalid_request` message for anything other than a
/// strict, fully-recognised problem description.
pub fn parse_problem(body: &str) -> Result<ScalingProblem, String> {
    let doc = Json::parse(body)?;
    let obj = doc.as_obj().ok_or("request body must be a JSON object")?;
    reject_unknown(
        "request",
        obj,
        &[
            "total_ceas",
            "bandwidth_growth",
            "per_core_demand",
            "uncore_per_core",
            "baseline",
            "techniques",
        ],
    )?;
    let baseline = match obj.get("baseline") {
        None => Baseline::niagara2_like(),
        Some(v) => parse_baseline(v)?,
    };
    let mut problem = ScalingProblem::new(baseline, required_num(obj, "total_ceas")?);
    if let Some(growth) = num_field(obj, "bandwidth_growth")? {
        problem = problem.with_bandwidth_growth(growth);
    }
    if let Some(demand) = num_field(obj, "per_core_demand")? {
        problem = problem.with_per_core_demand(demand);
    }
    if let Some(uncore) = num_field(obj, "uncore_per_core")? {
        problem = problem.with_uncore_overhead(uncore);
    }
    if let Some(value) = obj.get("techniques") {
        let arr = value
            .as_arr()
            .ok_or("field 'techniques' must be an array")?;
        for t in arr {
            problem = problem.with_technique(parse_technique(t)?);
        }
    }
    Ok(problem)
}

/// Solves `problem` and renders the success body. The rendering is the
/// single source of `/solve` response bytes — the memo cache stores
/// exactly this string, so cached and fresh replies cannot diverge.
///
/// # Errors
///
/// Returns an `invalid_request` message when the model rejects the
/// problem (out-of-domain parameter, infeasible configuration).
pub fn solve_body(problem: &ScalingProblem) -> Result<String, String> {
    let solution = problem.solve().map_err(|e| format!("model error: {e}"))?;
    let digest = CanonicalProblem::of(problem).digest();
    Ok(format!(
        "{{\"status\":\"ok\",\"result\":{{\"total_ceas\":{},\"bandwidth_growth\":{},\
         \"supportable_cores\":{},\"ideal_cores\":{},\"crossover_cores\":{},\
         \"relative_traffic\":{},\"core_area_fraction\":{},\"scaling_efficiency\":{},\
         \"problem_digest\":{}}}}}",
        json_f64(solution.total_ceas),
        json_f64(solution.bandwidth_growth),
        solution.supportable_cores,
        solution.ideal_cores,
        json_f64(solution.crossover_cores),
        json_f64(solution.relative_traffic),
        json_f64(solution.core_area_fraction),
        json_f64(solution.scaling_efficiency()),
        json_string(&format!("{digest:016x}")),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_schema() {
        let body = r#"{
            "total_ceas": 256,
            "bandwidth_growth": 1.5,
            "per_core_demand": 1.6,
            "uncore_per_core": 0.5,
            "baseline": {"cores": 8, "cache_ceas": 8, "alpha": 0.5},
            "techniques": [
                {"kind": "cache_link_compression", "ratio": 2},
                {"kind": "dram_cache", "density": 8},
                {"kind": "stacked_cache", "layers": 1},
                {"kind": "small_cache_lines", "unused_fraction": 0.4}
            ]
        }"#;
        let p = parse_problem(body).unwrap();
        assert_eq!(p.total_ceas(), 256.0);
        assert_eq!(p.bandwidth_growth(), 1.5);
        assert_eq!(p.per_core_demand(), 1.6);
        assert_eq!(p.uncore_per_core(), 0.5);
        assert_eq!(p.techniques().len(), 4);
    }

    #[test]
    fn defaults_to_the_paper_baseline() {
        let p = parse_problem(r#"{"total_ceas": 32}"#).unwrap();
        assert_eq!(p.baseline(), &Baseline::niagara2_like());
        assert_eq!(p.bandwidth_growth(), 1.0);
        let body = solve_body(&p).unwrap();
        assert!(body.contains("\"supportable_cores\":11"), "{body}");
        assert!(body.contains("\"ideal_cores\":16"), "{body}");
        assert!(body.starts_with("{\"status\":\"ok\",\"result\":{"));
    }

    #[test]
    fn every_technique_kind_round_trips() {
        for spec in [
            r#"{"kind":"cache_compression","ratio":2}"#,
            r#"{"kind":"dram_cache","density":8}"#,
            r#"{"kind":"stacked_cache","layers":1}"#,
            r#"{"kind":"stacked_dram_cache","layers":1,"layer_density":8}"#,
            r#"{"kind":"unused_data_filter","unused_fraction":0.4}"#,
            r#"{"kind":"smaller_cores","area_fraction":0.25}"#,
            r#"{"kind":"link_compression","ratio":2}"#,
            r#"{"kind":"sectored_cache","unused_fraction":0.4}"#,
            r#"{"kind":"small_cache_lines","unused_fraction":0.4}"#,
            r#"{"kind":"cache_link_compression","ratio":2}"#,
        ] {
            let body = format!(r#"{{"total_ceas":32,"techniques":[{spec}]}}"#);
            let p = parse_problem(&body).unwrap_or_else(|e| panic!("{spec}: {e}"));
            assert_eq!(p.techniques().len(), 1, "{spec}");
        }
    }

    #[test]
    fn rejects_unknown_and_malformed_fields() {
        for (body, what) in [
            (r#"{"total_ceas":32,"typo":1}"#, "unknown top-level field"),
            (r#"{}"#, "missing total_ceas"),
            (r#"{"total_ceas":"big"}"#, "non-numeric total_ceas"),
            (r#"[1,2]"#, "non-object body"),
            ("not json", "unparsable body"),
            (
                r#"{"total_ceas":32,"baseline":{"cores":8,"pet":1}}"#,
                "unknown baseline field",
            ),
            (
                r#"{"total_ceas":32,"techniques":[{"kind":"dram_cache","density":8,"x":1}]}"#,
                "unknown technique field",
            ),
            (
                r#"{"total_ceas":32,"techniques":[{"kind":"warp_drive"}]}"#,
                "unknown technique kind",
            ),
            (
                r#"{"total_ceas":32,"techniques":[{"kind":"stacked_cache","layers":1.5}]}"#,
                "fractional layers",
            ),
            (
                r#"{"total_ceas":32,"techniques":[{"kind":"dram_cache","density":0.5}]}"#,
                "out-of-domain technique parameter",
            ),
            (
                r#"{"total_ceas":32,"techniques":{"kind":"dram_cache"}}"#,
                "non-array techniques",
            ),
            (
                r#"{"total_ceas":32,"baseline":{"alpha":-1}}"#,
                "invalid alpha",
            ),
        ] {
            assert!(parse_problem(body).is_err(), "accepted {what}");
        }
    }

    #[test]
    fn solve_body_is_deterministic_and_reports_model_errors() {
        let p = parse_problem(r#"{"total_ceas":32}"#).unwrap();
        assert_eq!(solve_body(&p).unwrap(), solve_body(&p).unwrap());
        // A parseable but out-of-domain problem fails at solve time.
        let bad = parse_problem(r#"{"total_ceas":-1}"#).unwrap();
        let err = solve_body(&bad).unwrap_err();
        assert!(err.contains("model error"), "{err}");
    }

    #[test]
    fn error_envelope_shape() {
        assert_eq!(
            error_body("overloaded", "queue full"),
            "{\"status\":\"error\",\"error\":{\"kind\":\"overloaded\",\
             \"message\":\"queue full\"}}"
        );
    }
}
