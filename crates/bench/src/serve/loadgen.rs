//! The load-generation driver shared by `bandwall loadgen` and the
//! `serve` bench group.
//!
//! One driver, two front ends: `bandwall bench serve` starts an
//! in-process [`crate::serve::Server`] and points the driver at it;
//! `bandwall loadgen --addr` points it at an already-running server
//! over real TCP. Either way the driver measures per-endpoint kernels —
//! health-check latency, cold and memoized solve latency, cold and
//! memoized sweep latency, a mixed partial-failure batch, and a
//! concurrent throughput batch — and *validates* as it measures: every
//! reply must carry the expected status and cache header, every
//! memoized body must be byte-identical to the first reply for that
//! problem, and every batch slot must hold the envelope its job earned.
//! A protocol violation fails the run, so the driver doubles as an
//! end-to-end correctness check.
//!
//! `--endpoint` narrows the run to one POST endpoint's kernels;
//! `--mix solve=7,sweep=2,batch=1` interleaves endpoints on one
//! connection and reports *per-endpoint* latency percentiles instead of
//! a single aggregate.

use crate::perf::{BenchOptions, BenchResult};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Which POST endpoints a loadgen run exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EndpointSelection {
    /// Every kernel (the default).
    #[default]
    All,
    /// Only the `/v1/solve` kernels (plus health check and throughput).
    Solve,
    /// Only the `/v1/sweep` kernels.
    Sweep,
    /// Only the `/v1/batch` kernel.
    Batch,
}

impl EndpointSelection {
    /// Parses a `--endpoint` value.
    ///
    /// # Errors
    ///
    /// Returns a message naming the allowed values.
    pub fn parse(value: &str) -> Result<Self, String> {
        match value {
            "all" => Ok(EndpointSelection::All),
            "solve" => Ok(EndpointSelection::Solve),
            "sweep" => Ok(EndpointSelection::Sweep),
            "batch" => Ok(EndpointSelection::Batch),
            other => Err(format!(
                "unknown endpoint '{other}' (allowed: all, solve, sweep, batch)"
            )),
        }
    }
}

/// Relative request weights for a `--mix` run. A zero weight skips the
/// endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MixWeights {
    /// `/v1/solve` share.
    pub solve: u32,
    /// `/v1/sweep` share.
    pub sweep: u32,
    /// `/v1/batch` share.
    pub batch: u32,
}

impl MixWeights {
    /// Parses a `--mix` value like `solve=7,sweep=2,batch=1`; omitted
    /// endpoints get weight 0.
    ///
    /// # Errors
    ///
    /// Returns a message for unknown endpoints, bad weights, or an
    /// all-zero mix.
    pub fn parse(value: &str) -> Result<Self, String> {
        let mut mix = MixWeights {
            solve: 0,
            sweep: 0,
            batch: 0,
        };
        for part in value.split(',') {
            let (name, weight) = part
                .split_once('=')
                .ok_or_else(|| format!("bad mix entry '{part}' (want endpoint=weight)"))?;
            let weight: u32 = weight
                .parse()
                .map_err(|_| format!("bad mix weight '{weight}' for '{name}'"))?;
            match name {
                "solve" => mix.solve = weight,
                "sweep" => mix.sweep = weight,
                "batch" => mix.batch = weight,
                other => {
                    return Err(format!(
                        "unknown mix endpoint '{other}' (allowed: solve, sweep, batch)"
                    ))
                }
            }
        }
        if mix.solve == 0 && mix.sweep == 0 && mix.batch == 0 {
            return Err("mix needs at least one nonzero weight".to_string());
        }
        Ok(mix)
    }
}

/// How much load to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadgenOptions {
    /// Concurrent connections in the throughput batch.
    pub connections: usize,
    /// Requests per latency kernel (and per throughput batch).
    pub requests: usize,
    /// Which POST endpoints to exercise.
    pub endpoint: EndpointSelection,
    /// When set, run the weighted-mix kernel and report per-endpoint
    /// percentiles (replaces the per-endpoint kernels).
    pub mix: Option<MixWeights>,
}

impl LoadgenOptions {
    /// The default load: enough requests for a meaningful p99.
    pub fn standard() -> Self {
        LoadgenOptions {
            connections: 4,
            requests: 2_000,
            endpoint: EndpointSelection::All,
            mix: None,
        }
    }

    /// A CI-friendly smoke load.
    pub fn quick() -> Self {
        LoadgenOptions {
            connections: 2,
            requests: 200,
            ..Self::standard()
        }
    }

    /// Derives the load from bench options so `--quick` means the same
    /// thing for `bandwall bench serve` as everywhere else.
    pub fn from_bench(options: &BenchOptions) -> Self {
        LoadgenOptions {
            connections: 4,
            requests: (options.accesses / 200).clamp(100, 5_000),
            ..Self::standard()
        }
    }
}

/// One parsed HTTP response from the server under test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// The `x-bandwall-cache` header, when present (`hit` / `miss`).
    pub cache: Option<String>,
    /// The response body.
    pub body: String,
    /// Whether the server announced `connection: close`.
    pub close: bool,
}

/// A minimal keep-alive HTTP/1.1 client for driving `bandwall serve`
/// (also used by the integration tests, which is why it is public).
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects with a generous read window (the server, not the
    /// client, is what the timeouts under test protect).
    ///
    /// # Errors
    ///
    /// Propagates connect/configuration failures as strings.
    pub fn connect(addr: &SocketAddr) -> Result<Self, String> {
        let stream = TcpStream::connect_timeout(addr, Duration::from_secs(5))
            .map_err(|e| format!("connecting to {addr}: {e}"))?;
        stream.set_nodelay(true).map_err(|e| e.to_string())?;
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .map_err(|e| e.to_string())?;
        let reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
        Ok(Client {
            reader,
            writer: stream,
        })
    }

    /// Sends one request and reads the full reply.
    ///
    /// # Errors
    ///
    /// Returns a message for socket failures or malformed responses.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<ClientResponse, String> {
        let body = body.unwrap_or("");
        let head = format!(
            "{method} {path} HTTP/1.1\r\nhost: bandwall\r\ncontent-length: {}\r\n\r\n",
            body.len()
        );
        self.writer
            .write_all(head.as_bytes())
            .and_then(|()| self.writer.write_all(body.as_bytes()))
            .and_then(|()| self.writer.flush())
            .map_err(|e| format!("sending request: {e}"))?;
        self.read_response()
    }

    fn read_line(&mut self) -> Result<String, String> {
        let mut line = String::new();
        let n = self
            .reader
            .read_line(&mut line)
            .map_err(|e| format!("reading response: {e}"))?;
        if n == 0 {
            return Err("server closed the connection mid-response".to_string());
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }

    fn read_response(&mut self) -> Result<ClientResponse, String> {
        let status_line = self.read_line()?;
        let status: u16 = status_line
            .strip_prefix("HTTP/1.1 ")
            .and_then(|rest| rest.split(' ').next())
            .and_then(|code| code.parse().ok())
            .ok_or_else(|| format!("bad status line '{status_line}'"))?;
        let mut content_length = 0usize;
        let mut cache = None;
        let mut close = false;
        loop {
            let line = self.read_line()?;
            if line.is_empty() {
                break;
            }
            let Some((name, value)) = line.split_once(':') else {
                return Err(format!("bad response header '{line}'"));
            };
            let value = value.trim();
            match name.to_ascii_lowercase().as_str() {
                "content-length" => {
                    content_length = value
                        .parse()
                        .map_err(|_| format!("bad content-length '{value}'"))?;
                }
                "x-bandwall-cache" => cache = Some(value.to_string()),
                "connection" => close = value.eq_ignore_ascii_case("close"),
                _ => {}
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader
            .read_exact(&mut body)
            .map_err(|e| format!("reading response body: {e}"))?;
        Ok(ClientResponse {
            status,
            cache,
            body: String::from_utf8(body).map_err(|_| "non-UTF-8 response body".to_string())?,
            close,
        })
    }
}

/// A solve body that is unique per `i` (so it always misses the memo
/// cache) yet always valid and quick to solve. The `1/128` offset
/// keeps the cold lattice disjoint from any integer-`total_ceas`
/// problem a smoke probe may have warmed before loadgen ran (e.g. the
/// CI `curl` of the fig05 sweep memoizes its `total_ceas: 32` base,
/// which a plain `24 + i/8` lattice would land on at `i = 64`).
fn cold_body(i: usize) -> String {
    format!("{{\"total_ceas\":{}}}", 24.0078125 + i as f64 / 8.0)
}

/// The repeated problem for the memoized kernel: the paper's 16× DRAM
/// cache headline configuration.
const MEMO_BODY: &str = r#"{"total_ceas":256,"techniques":[{"kind":"dram_cache","density":8}]}"#;

/// The repeated sweep for the memoized-sweep kernel: the Figure 5 DRAM
/// cache catalogue sweep.
const MEMO_SWEEP_BODY: &str = r#"{"sweep":"fig05_dram_cache"}"#;

/// A two-variant custom sweep over a base problem unique per `i`, so
/// both variants miss the memo cache. Offset off the integer lattice
/// for the same probe-collision reason as [`cold_body`] (and off
/// `cold_body`'s own `1/128` lattice).
fn cold_sweep_body(i: usize) -> String {
    format!(
        "{{\"base\":{{\"total_ceas\":{}}},\"variants\":[{{\"label\":\"base\"}},\
         {{\"technique\":{{\"kind\":\"dram_cache\",\"density\":8}}}}]}}",
        512.00390625 + i as f64 / 8.0
    )
}

/// The mixed batch: two jobs that succeed and one that must come back
/// as an `invalid_request` envelope in its slot — every batch request
/// doubles as a partial-failure check.
const BATCH_BODY: &str = r#"{"jobs":[{"kind":"solve","problem":{"total_ceas":256,"techniques":[{"kind":"dram_cache","density":8}]}},{"kind":"sweep","sweep":"fig04_cache_compression"},{"kind":"solve","problem":{"total_ceas":-1}}]}"#;

fn expect_ok(what: &str, response: &ClientResponse) -> Result<(), String> {
    if response.status != 200 {
        return Err(format!(
            "{what}: expected 200, got {} with body {}",
            response.status, response.body
        ));
    }
    Ok(())
}

fn expect_cache(what: &str, response: &ClientResponse, want: &str) -> Result<(), String> {
    if response.cache.as_deref() != Some(want) {
        return Err(format!(
            "{what}: expected a cache {want}, got {:?}",
            response.cache
        ));
    }
    Ok(())
}

/// Checks a batch reply: 200, exactly one error slot (the intentionally
/// infeasible job), two ok slots.
fn check_batch_reply(what: &str, response: &ClientResponse) -> Result<(), String> {
    expect_ok(what, response)?;
    let errors = response.body.matches("\"status\":\"error\"").count();
    let oks = response.body.matches("\"status\":\"ok\"").count();
    if errors != 1 || !response.body.contains("\"kind\":\"invalid_request\"") {
        return Err(format!(
            "{what}: expected exactly one invalid_request slot, got {errors} error slots in {}",
            response.body
        ));
    }
    // The envelope itself plus the two good jobs.
    if oks != 3 {
        return Err(format!(
            "{what}: expected 2 ok slots inside the envelope, body {}",
            response.body
        ));
    }
    Ok(())
}

/// One latency kernel: `requests` sequential requests on a keep-alive
/// connection, each validated by `check`.
fn latency_kernel(
    client: &mut Client,
    requests: usize,
    method: &'static str,
    path: &'static str,
    body: impl Fn(usize) -> Option<String>,
    mut check: impl FnMut(usize, &ClientResponse) -> Result<(), String>,
) -> Result<Vec<u64>, String> {
    let mut samples = Vec::with_capacity(requests);
    for i in 0..requests {
        let body = body(i);
        let start = Instant::now();
        let response = client.request(method, path, body.as_deref())?;
        samples.push(start.elapsed().as_nanos() as u64);
        check(i, &response)?;
    }
    Ok(samples)
}

/// The concurrent throughput kernel: `connections` clients each issue
/// their share of a batch of memoized solves; the sample is the whole
/// batch's wall time. Three batches give a coarse spread. Standalone so
/// the bench harness can run it against differently-sharded servers
/// under distinct kernel ids.
///
/// # Errors
///
/// Returns a message on any connection failure or non-200 reply.
pub fn throughput_result(
    addr: &SocketAddr,
    options: &LoadgenOptions,
    id: impl Into<String>,
    flavor: &str,
) -> Result<BenchResult, String> {
    let requests = options.requests.max(10);
    let connections = options.connections.max(1);
    let per_connection = requests.div_ceil(connections);
    let total = (per_connection * connections) as u64;
    let mut batch_samples = Vec::new();
    for _ in 0..3 {
        let start = Instant::now();
        let threads: Vec<_> = (0..connections)
            .map(|_| {
                let addr = *addr;
                std::thread::spawn(move || -> Result<(), String> {
                    let mut client = Client::connect(&addr)?;
                    for _ in 0..per_connection {
                        let response = client.request("POST", "/solve", Some(MEMO_BODY))?;
                        expect_ok("throughput solve", &response)?;
                    }
                    Ok(())
                })
            })
            .collect();
        for thread in threads {
            thread
                .join()
                .map_err(|_| "throughput client panicked".to_string())??;
        }
        batch_samples.push(start.elapsed().as_nanos() as u64);
    }
    Ok(BenchResult::from_samples(
        id,
        format!("{connections} concurrent connections, {total} memoized solves per batch{flavor}"),
        connections,
        total,
        "requests",
        batch_samples,
    ))
}

/// The weighted-mix kernel: interleaves solve/sweep/batch requests on
/// one connection in a deterministic cycle derived from the weights and
/// reports per-endpoint percentiles (`serve_mix_solve`, ...), so a
/// mixed workload's tail latency is attributable per endpoint.
fn mix_results(
    client: &mut Client,
    requests: usize,
    mix: &MixWeights,
) -> Result<Vec<BenchResult>, String> {
    #[derive(Clone, Copy, PartialEq)]
    enum Step {
        Solve,
        Sweep,
        Batch,
    }
    let mut cycle = Vec::new();
    let weights = [
        (Step::Solve, mix.solve),
        (Step::Sweep, mix.sweep),
        (Step::Batch, mix.batch),
    ];
    // Interleave round-robin so a cycle like 7/2/1 doesn't serialise
    // into long same-endpoint runs.
    let mut remaining = weights;
    while remaining.iter().any(|(_, w)| *w > 0) {
        for (step, weight) in &mut remaining {
            if *weight > 0 {
                cycle.push(*step);
                *weight -= 1;
            }
        }
    }
    let mut samples = [Vec::new(), Vec::new(), Vec::new()];
    for i in 0..requests {
        let step = cycle[i % cycle.len()];
        let (path, body, slot): (_, _, usize) = match step {
            Step::Solve => ("/v1/solve", MEMO_BODY.to_string(), 0),
            Step::Sweep => ("/v1/sweep", MEMO_SWEEP_BODY.to_string(), 1),
            Step::Batch => ("/v1/batch", BATCH_BODY.to_string(), 2),
        };
        let start = Instant::now();
        let response = client.request("POST", path, Some(&body))?;
        samples[slot].push(start.elapsed().as_nanos() as u64);
        match step {
            Step::Batch => check_batch_reply("mix batch", &response)?,
            _ => expect_ok("mix request", &response)?,
        }
    }
    let mut results = Vec::new();
    for (slot, name) in [(0, "solve"), (1, "sweep"), (2, "batch")] {
        let taken = std::mem::take(&mut samples[slot]);
        if taken.is_empty() {
            continue;
        }
        results.push(BenchResult::from_samples(
            format!("serve_mix_{name}"),
            format!(
                "{name} share of a {}:{}:{} mix, {} requests",
                mix.solve,
                mix.sweep,
                mix.batch,
                taken.len()
            ),
            1,
            1,
            "requests",
            taken,
        ));
    }
    Ok(results)
}

/// Runs the serve kernels selected by `options` against `addr`. The
/// returned results plug straight into a `serve`
/// [`crate::perf::BenchGroup`].
///
/// # Errors
///
/// Returns a message on any connection failure or protocol violation
/// (wrong status, wrong cache header, memoized body drift, batch slot
/// mismatch).
pub fn run_against(
    addr: &SocketAddr,
    options: &LoadgenOptions,
) -> Result<Vec<BenchResult>, String> {
    let requests = options.requests.max(10);
    let selection = options.endpoint;
    let mut results = Vec::new();

    // Health-check latency (protocol floor) leads every run.
    let mut client = Client::connect(addr)?;
    let samples = latency_kernel(
        &mut client,
        requests,
        "GET",
        "/healthz",
        |_| None,
        |_, response| expect_ok("healthz", response),
    )?;
    results.push(BenchResult::from_samples(
        "serve_healthz",
        format!("GET /healthz over one keep-alive connection, {requests} requests"),
        1,
        1,
        "requests",
        samples,
    ));

    if let Some(mix) = &options.mix {
        results.extend(mix_results(&mut client, requests, mix)?);
        drop(client);
        results.push(throughput_result(
            addr,
            options,
            format!("serve_throughput_c{}", options.connections.max(1)),
            "",
        )?);
        return Ok(results);
    }

    if matches!(selection, EndpointSelection::All | EndpointSelection::Solve) {
        // Cold solves — every request is a distinct problem, so every
        // reply must be a cache miss.
        let samples = latency_kernel(
            &mut client,
            requests,
            "POST",
            "/solve",
            |i| Some(cold_body(i)),
            |i, response| {
                expect_ok("cold solve", response)?;
                expect_cache(&format!("cold solve {i}"), response, "miss")
            },
        )?;
        results.push(BenchResult::from_samples(
            "serve_solve_cold",
            format!("POST /solve, {requests} distinct problems (cache misses)"),
            1,
            1,
            "requests",
            samples,
        ));

        // Memoized solves — one problem repeated; after the warming
        // request every reply must be a hit, byte-identical to the
        // first body.
        let warm = client.request("POST", "/solve", Some(MEMO_BODY))?;
        expect_ok("memo warmup", &warm)?;
        let reference = warm.body.clone();
        let samples = latency_kernel(
            &mut client,
            requests,
            "POST",
            "/solve",
            |_| Some(MEMO_BODY.to_string()),
            |i, response| {
                expect_ok("memoized solve", response)?;
                expect_cache(&format!("memoized solve {i}"), response, "hit")?;
                if response.body != reference {
                    return Err(format!(
                        "memoized solve {i}: body drifted from the uncached reply\n\
                         cached:   {}\nuncached: {reference}",
                        response.body
                    ));
                }
                Ok(())
            },
        )?;
        results.push(BenchResult::from_samples(
            "serve_solve_memoized",
            format!("POST /solve, one problem repeated {requests} times (cache hits)"),
            1,
            1,
            "requests",
            samples,
        ));
    }

    if matches!(selection, EndpointSelection::All | EndpointSelection::Sweep) {
        // Cold sweeps — a fresh base problem each request, so at least
        // one variant misses and the reply is marked "miss".
        let samples = latency_kernel(
            &mut client,
            requests,
            "POST",
            "/v1/sweep",
            |i| Some(cold_sweep_body(i)),
            |i, response| {
                expect_ok("cold sweep", response)?;
                expect_cache(&format!("cold sweep {i}"), response, "miss")
            },
        )?;
        results.push(BenchResult::from_samples(
            "serve_sweep_cold",
            format!("POST /v1/sweep, {requests} two-variant sweeps over distinct bases"),
            1,
            1,
            "requests",
            samples,
        ));

        // Memoized sweeps — the Figure 5 catalogue sweep repeated;
        // after the warming request every variant hits and the body
        // must not drift.
        let warm = client.request("POST", "/v1/sweep", Some(MEMO_SWEEP_BODY))?;
        expect_ok("sweep warmup", &warm)?;
        let reference = warm.body.clone();
        let samples = latency_kernel(
            &mut client,
            requests,
            "POST",
            "/v1/sweep",
            |_| Some(MEMO_SWEEP_BODY.to_string()),
            |i, response| {
                expect_ok("memoized sweep", response)?;
                expect_cache(&format!("memoized sweep {i}"), response, "hit")?;
                if response.body != reference {
                    return Err(format!(
                        "memoized sweep {i}: body drifted from the first reply\n\
                         cached: {}\nfirst:  {reference}",
                        response.body
                    ));
                }
                Ok(())
            },
        )?;
        results.push(BenchResult::from_samples(
            "serve_sweep_memoized",
            format!("POST /v1/sweep, fig05_dram_cache repeated {requests} times (cache hits)"),
            1,
            1,
            "requests",
            samples,
        ));
    }

    if matches!(selection, EndpointSelection::All | EndpointSelection::Batch) {
        // Mixed batches — each request fans three jobs out and must
        // come back 200 with exactly one error slot (partial failure).
        let samples = latency_kernel(
            &mut client,
            requests,
            "POST",
            "/v1/batch",
            |_| Some(BATCH_BODY.to_string()),
            |i, response| check_batch_reply(&format!("batch {i}"), response),
        )?;
        results.push(BenchResult::from_samples(
            "serve_batch_mixed",
            format!(
                "POST /v1/batch, {requests} three-job batches (one slot an intentional failure)"
            ),
            1,
            1,
            "requests",
            samples,
        ));
    }
    drop(client);

    results.push(throughput_result(
        addr,
        options,
        format!("serve_throughput_c{}", options.connections.max(1)),
        "",
    )?);
    Ok(results)
}
