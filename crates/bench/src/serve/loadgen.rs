//! The load-generation driver shared by `bandwall loadgen` and the
//! `serve` bench group.
//!
//! One driver, two front ends: `bandwall bench serve` starts an
//! in-process [`crate::serve::Server`] and points the driver at it;
//! `bandwall loadgen --addr` points it at an already-running server
//! over real TCP. Either way the driver measures the same four
//! kernels — health-check latency, cold-solve latency, memoized-solve
//! latency, and a concurrent throughput batch — and *validates* as it
//! measures: every reply must be a 200 with the expected cache header,
//! and every memoized body must be byte-identical to the first solve
//! of that problem. A protocol violation fails the run, so the driver
//! doubles as an end-to-end correctness check.

use crate::perf::{BenchOptions, BenchResult};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// How much load to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadgenOptions {
    /// Concurrent connections in the throughput batch.
    pub connections: usize,
    /// Requests per latency kernel (and per throughput batch).
    pub requests: usize,
}

impl LoadgenOptions {
    /// The default load: enough requests for a meaningful p99.
    pub fn standard() -> Self {
        LoadgenOptions {
            connections: 4,
            requests: 2_000,
        }
    }

    /// A CI-friendly smoke load.
    pub fn quick() -> Self {
        LoadgenOptions {
            connections: 2,
            requests: 200,
        }
    }

    /// Derives the load from bench options so `--quick` means the same
    /// thing for `bandwall bench serve` as everywhere else.
    pub fn from_bench(options: &BenchOptions) -> Self {
        LoadgenOptions {
            connections: 4,
            requests: (options.accesses / 200).clamp(100, 5_000),
        }
    }
}

/// One parsed HTTP response from the server under test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// The `x-bandwall-cache` header, when present (`hit` / `miss`).
    pub cache: Option<String>,
    /// The response body.
    pub body: String,
    /// Whether the server announced `connection: close`.
    pub close: bool,
}

/// A minimal keep-alive HTTP/1.1 client for driving `bandwall serve`
/// (also used by the integration tests, which is why it is public).
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects with a generous read window (the server, not the
    /// client, is what the timeouts under test protect).
    ///
    /// # Errors
    ///
    /// Propagates connect/configuration failures as strings.
    pub fn connect(addr: &SocketAddr) -> Result<Self, String> {
        let stream = TcpStream::connect_timeout(addr, Duration::from_secs(5))
            .map_err(|e| format!("connecting to {addr}: {e}"))?;
        stream.set_nodelay(true).map_err(|e| e.to_string())?;
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .map_err(|e| e.to_string())?;
        let reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
        Ok(Client {
            reader,
            writer: stream,
        })
    }

    /// Sends one request and reads the full reply.
    ///
    /// # Errors
    ///
    /// Returns a message for socket failures or malformed responses.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<ClientResponse, String> {
        let body = body.unwrap_or("");
        let head = format!(
            "{method} {path} HTTP/1.1\r\nhost: bandwall\r\ncontent-length: {}\r\n\r\n",
            body.len()
        );
        self.writer
            .write_all(head.as_bytes())
            .and_then(|()| self.writer.write_all(body.as_bytes()))
            .and_then(|()| self.writer.flush())
            .map_err(|e| format!("sending request: {e}"))?;
        self.read_response()
    }

    fn read_line(&mut self) -> Result<String, String> {
        let mut line = String::new();
        let n = self
            .reader
            .read_line(&mut line)
            .map_err(|e| format!("reading response: {e}"))?;
        if n == 0 {
            return Err("server closed the connection mid-response".to_string());
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }

    fn read_response(&mut self) -> Result<ClientResponse, String> {
        let status_line = self.read_line()?;
        let status: u16 = status_line
            .strip_prefix("HTTP/1.1 ")
            .and_then(|rest| rest.split(' ').next())
            .and_then(|code| code.parse().ok())
            .ok_or_else(|| format!("bad status line '{status_line}'"))?;
        let mut content_length = 0usize;
        let mut cache = None;
        let mut close = false;
        loop {
            let line = self.read_line()?;
            if line.is_empty() {
                break;
            }
            let Some((name, value)) = line.split_once(':') else {
                return Err(format!("bad response header '{line}'"));
            };
            let value = value.trim();
            match name.to_ascii_lowercase().as_str() {
                "content-length" => {
                    content_length = value
                        .parse()
                        .map_err(|_| format!("bad content-length '{value}'"))?;
                }
                "x-bandwall-cache" => cache = Some(value.to_string()),
                "connection" => close = value.eq_ignore_ascii_case("close"),
                _ => {}
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader
            .read_exact(&mut body)
            .map_err(|e| format!("reading response body: {e}"))?;
        Ok(ClientResponse {
            status,
            cache,
            body: String::from_utf8(body).map_err(|_| "non-UTF-8 response body".to_string())?,
            close,
        })
    }
}

/// A solve body that is unique per `i` (so it always misses the memo
/// cache) yet always valid and quick to solve.
fn cold_body(i: usize) -> String {
    format!("{{\"total_ceas\":{}}}", 24.0 + i as f64 / 8.0)
}

/// The repeated problem for the memoized kernel: the paper's 16× DRAM
/// cache headline configuration.
const MEMO_BODY: &str = r#"{"total_ceas":256,"techniques":[{"kind":"dram_cache","density":8}]}"#;

fn expect_ok(what: &str, response: &ClientResponse) -> Result<(), String> {
    if response.status != 200 {
        return Err(format!(
            "{what}: expected 200, got {} with body {}",
            response.status, response.body
        ));
    }
    Ok(())
}

/// Runs the four serve kernels against `addr`. The returned results
/// plug straight into a `serve` [`crate::perf::BenchGroup`].
///
/// # Errors
///
/// Returns a message on any connection failure or protocol violation
/// (wrong status, wrong cache header, memoized body drift).
pub fn run_against(
    addr: &SocketAddr,
    options: &LoadgenOptions,
) -> Result<Vec<BenchResult>, String> {
    let requests = options.requests.max(10);
    let mut results = Vec::new();

    // Kernel 1: health-check latency (protocol floor).
    let mut client = Client::connect(addr)?;
    let mut samples = Vec::with_capacity(requests);
    for _ in 0..requests {
        let start = Instant::now();
        let response = client.request("GET", "/healthz", None)?;
        samples.push(start.elapsed().as_nanos() as u64);
        expect_ok("healthz", &response)?;
    }
    results.push(BenchResult::from_samples(
        "serve_healthz",
        format!("GET /healthz over one keep-alive connection, {requests} requests"),
        1,
        1,
        "requests",
        samples,
    ));

    // Kernel 2: cold solves — every request is a distinct problem, so
    // every reply must be a cache miss.
    let mut samples = Vec::with_capacity(requests);
    for i in 0..requests {
        let body = cold_body(i);
        let start = Instant::now();
        let response = client.request("POST", "/solve", Some(&body))?;
        samples.push(start.elapsed().as_nanos() as u64);
        expect_ok("cold solve", &response)?;
        if response.cache.as_deref() != Some("miss") {
            return Err(format!(
                "cold solve {i}: expected a cache miss, got {:?}",
                response.cache
            ));
        }
    }
    results.push(BenchResult::from_samples(
        "serve_solve_cold",
        format!("POST /solve, {requests} distinct problems (cache misses)"),
        1,
        1,
        "requests",
        samples,
    ));

    // Kernel 3: memoized solves — one problem repeated; after the
    // warming request every reply must be a hit, byte-identical to the
    // first body.
    let warm = client.request("POST", "/solve", Some(MEMO_BODY))?;
    expect_ok("memo warmup", &warm)?;
    let reference = warm.body.clone();
    let mut samples = Vec::with_capacity(requests);
    for i in 0..requests {
        let start = Instant::now();
        let response = client.request("POST", "/solve", Some(MEMO_BODY))?;
        samples.push(start.elapsed().as_nanos() as u64);
        expect_ok("memoized solve", &response)?;
        if response.cache.as_deref() != Some("hit") {
            return Err(format!(
                "memoized solve {i}: expected a cache hit, got {:?}",
                response.cache
            ));
        }
        if response.body != reference {
            return Err(format!(
                "memoized solve {i}: body drifted from the uncached reply\n\
                 cached:   {}\nuncached: {reference}",
                response.body
            ));
        }
    }
    results.push(BenchResult::from_samples(
        "serve_solve_memoized",
        format!("POST /solve, one problem repeated {requests} times (cache hits)"),
        1,
        1,
        "requests",
        samples,
    ));
    drop(client);

    // Kernel 4: concurrent throughput — `connections` clients each
    // issue their share of a batch; the sample is the whole batch's
    // wall time. Three batches give a coarse spread.
    let connections = options.connections.max(1);
    let per_connection = requests.div_ceil(connections);
    let total = (per_connection * connections) as u64;
    let mut batch_samples = Vec::new();
    for _ in 0..3 {
        let start = Instant::now();
        let threads: Vec<_> = (0..connections)
            .map(|_| {
                let addr = *addr;
                std::thread::spawn(move || -> Result<(), String> {
                    let mut client = Client::connect(&addr)?;
                    for _ in 0..per_connection {
                        let response = client.request("POST", "/solve", Some(MEMO_BODY))?;
                        expect_ok("throughput solve", &response)?;
                    }
                    Ok(())
                })
            })
            .collect();
        for thread in threads {
            thread
                .join()
                .map_err(|_| "throughput client panicked".to_string())??;
        }
        batch_samples.push(start.elapsed().as_nanos() as u64);
    }
    results.push(BenchResult::from_samples(
        format!("serve_throughput_c{connections}"),
        format!("{connections} concurrent connections, {total} memoized solves per batch"),
        connections,
        total,
        "requests",
        batch_samples,
    ));
    Ok(results)
}
