//! A minimal, dependency-free JSON parser for request bodies.
//!
//! The repository renders JSON by hand (deterministic bytes, no deps);
//! the serve path additionally needs to *read* JSON. This is a strict
//! recursive-descent parser over UTF-8 input with a hard recursion
//! depth limit — input size is bounded upstream by the HTTP body limit,
//! so a hostile body can cost at most `max_body_bytes` of work.
//!
//! Strictness choices (all rejections, never panics):
//! duplicate object keys, trailing data, trailing commas, comments,
//! non-finite numbers, lone surrogates in `\u` escapes, and nesting
//! beyond [`MAX_DEPTH`].

use std::collections::BTreeMap;

/// Maximum nesting depth of arrays/objects (hostile inputs otherwise
/// overflow the stack long before hitting the body size limit).
pub const MAX_DEPTH: usize = 32;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (always finite).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; `BTreeMap` keeps iteration deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parses `input` as one complete JSON document.
    ///
    /// # Errors
    ///
    /// Returns a position-annotated message for any syntax violation.
    pub fn parse(input: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing data after JSON document"));
        }
        Ok(value)
    }

    /// The value as an object map, if it is one.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a finite number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Json::Null),
            Some(b't') => self.eat_literal("true", Json::Bool(true)),
            Some(b'f') => self.eat_literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(out));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut out = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            if out.insert(key.clone(), value).is_some() {
                return Err(self.err(&format!("duplicate key '{key}'")));
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(out));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let c = self.unicode_escape()?;
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // encoding is already valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(slice).map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn unicode_escape(&mut self) -> Result<char, String> {
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // High surrogate: require a low-surrogate pair.
            if self.bytes.get(self.pos..self.pos + 2) != Some(b"\\u") {
                return Err(self.err("lone high surrogate"));
            }
            self.pos += 2;
            let lo = self.hex4()?;
            if !(0xDC00..0xE000).contains(&lo) {
                return Err(self.err("invalid low surrogate"));
            }
            let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
            char::from_u32(code).ok_or_else(|| self.err("invalid surrogate pair"))
        } else if (0xDC00..0xE000).contains(&hi) {
            Err(self.err("lone low surrogate"))
        } else {
            char::from_u32(hi).ok_or_else(|| self.err("invalid code point"))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ASCII digits are valid UTF-8");
        let value: f64 = text
            .parse()
            .map_err(|_| self.err(&format!("invalid number '{text}'")))?;
        if !value.is_finite() {
            return Err(self.err("number out of range"));
        }
        Ok(Json::Num(value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_structures() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-2.5e2").unwrap(), Json::Num(-250.0));
        assert_eq!(
            Json::parse("\"a\\nb\"").unwrap(),
            Json::Str("a\nb".to_string())
        );
        let v = Json::parse(r#"{"a":[1,2,{"b":null}],"c":"x"}"#).unwrap();
        let obj = v.as_obj().unwrap();
        assert_eq!(obj["c"].as_str(), Some("x"));
        assert_eq!(obj["a"].as_arr().unwrap()[1].as_num(), Some(2.0));
    }

    #[test]
    fn unicode_escapes_and_surrogates() {
        assert_eq!(
            Json::parse("\"\\u00e9\"").unwrap(),
            Json::Str("é".to_string())
        );
        assert_eq!(
            Json::parse("\"\\ud83d\\ude00\"").unwrap(),
            Json::Str("😀".to_string())
        );
        assert!(Json::parse("\"\\ud83d\"").is_err(), "lone high surrogate");
        assert!(Json::parse("\"\\ude00\"").is_err(), "lone low surrogate");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "}",
            "[1,]",
            "{\"a\":}",
            "{\"a\":1,}",
            "nul",
            "01e",
            "--1",
            "\"unterminated",
            "\"bad \\q escape\"",
            "1 2",
            "{\"a\":1}extra",
            "{\"a\":1,\"a\":2}",
            "{'a':1}",
            "[1 2]",
            "\u{1}",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn rejects_excessive_nesting() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert!(Json::parse(&deep).is_err());
        let ok = "[".repeat(MAX_DEPTH) + &"]".repeat(MAX_DEPTH);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn rejects_control_characters_in_strings() {
        assert!(Json::parse("\"a\u{0}b\"").is_err());
        assert!(Json::parse("\"a\tb\"").is_err(), "raw tab must be escaped");
        assert!(Json::parse("\"a\\tb\"").is_ok());
    }

    #[test]
    fn numbers_must_stay_finite() {
        assert!(Json::parse("1e400").is_err());
        assert!(Json::parse("-1e400").is_err());
        assert_eq!(Json::parse("1e-400").unwrap(), Json::Num(0.0));
    }
}
