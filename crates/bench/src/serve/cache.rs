//! Sharded memoization of solved problems.
//!
//! The solver is pure, so one canonical problem maps to exactly one
//! response body; the cache stores that rendered body (`Arc<str>`) and
//! hands it back byte-identical. Keys are exact [`CanonicalProblem`]
//! encodings — the 64-bit digest only picks the shard, so a digest
//! collision costs a shared shard, never a wrong answer.
//!
//! Capacity is bounded per shard; a full shard evicts its
//! **oldest-inserted** resident entry (FIFO). The obvious cheaper
//! policy — evict whatever `HashMap::keys().next()` returns — is a
//! trap: repeated evictions sweep the table's occupied slots in bucket
//! order, and when that cursor wraps to the low indices it lands on
//! the *most recently inserted* keys, so a saturated cache starts
//! systematically forgetting exactly the entries it just memoized
//! (observed as a multi-variant sweep evicting its own rows between
//! warmup and first reuse). The FIFO ring guarantees a fresh entry
//! survives a full shard-capacity of subsequent inserts. Locks recover
//! from poisoning so a panicking worker cannot wedge the cache.

use bandwall_model::CanonicalProblem;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

const SHARDS: usize = 16;

/// One lock's worth of cache: the body map plus the FIFO insertion
/// ring that picks eviction victims. The ring may briefly hold stale
/// keys (a concurrent double-put of the same problem); eviction skips
/// any front key no longer resident.
#[derive(Debug, Default)]
struct Shard {
    bodies: HashMap<CanonicalProblem, Arc<str>>,
    order: VecDeque<CanonicalProblem>,
}

/// A bounded, sharded `CanonicalProblem -> response body` cache.
#[derive(Debug)]
pub struct SolveCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl SolveCache {
    /// Creates a cache bounded at roughly `capacity` entries overall.
    /// A zero capacity disables memoization (every lookup misses).
    pub fn new(capacity: usize) -> Self {
        SolveCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard_capacity: capacity.div_ceil(SHARDS),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &CanonicalProblem) -> &Mutex<Shard> {
        &self.shards[(key.digest() % SHARDS as u64) as usize]
    }

    /// Looks up the memoized body for `key`, counting hit/miss.
    pub fn get(&self, key: &CanonicalProblem) -> Option<Arc<str>> {
        let found = self
            .shard(key)
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .bodies
            .get(key)
            .cloned();
        match found {
            Some(body) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(body)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Memoizes `body` under `key`, evicting the shard's oldest-inserted
    /// entry if it is full. With zero capacity this is a no-op.
    pub fn put(&self, key: CanonicalProblem, body: Arc<str>) {
        if self.per_shard_capacity == 0 {
            return;
        }
        let mut shard = self.shard(&key).lock().unwrap_or_else(|p| p.into_inner());
        if let Some(resident) = shard.bodies.get_mut(&key) {
            // Refresh in place (a double-put race): residency and the
            // ring position are already established.
            *resident = body;
            return;
        }
        while shard.bodies.len() >= self.per_shard_capacity {
            match shard.order.pop_front() {
                // A stale ring entry (already replaced) frees nothing;
                // keep popping until a resident victim is evicted.
                Some(oldest) => {
                    shard.bodies.remove(&oldest);
                }
                None => break,
            }
        }
        shard.order.push_back(key.clone());
        shard.bodies.insert(key, body);
    }

    /// Total memoized entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|p| p.into_inner()).bodies.len())
            .sum()
    }

    /// Whether nothing is memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime (hits, misses) counters.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bandwall_model::{Baseline, ScalingProblem, Technique};

    fn key(n2: f64) -> CanonicalProblem {
        CanonicalProblem::of(&ScalingProblem::new(Baseline::niagara2_like(), n2))
    }

    #[test]
    fn round_trips_bodies_byte_identically() {
        let cache = SolveCache::new(64);
        assert_eq!(cache.get(&key(32.0)), None);
        cache.put(key(32.0), Arc::from("{\"status\":\"ok\"}"));
        let body = cache.get(&key(32.0)).unwrap();
        assert_eq!(&*body, "{\"status\":\"ok\"}");
        assert_eq!(cache.stats(), (1, 1));
    }

    #[test]
    fn distinct_problems_do_not_collide() {
        let cache = SolveCache::new(64);
        let with_tech = CanonicalProblem::of(
            &ScalingProblem::new(Baseline::niagara2_like(), 32.0)
                .with_technique(Technique::dram_cache(8.0).unwrap()),
        );
        cache.put(key(32.0), Arc::from("plain"));
        cache.put(with_tech.clone(), Arc::from("dram"));
        assert_eq!(&*cache.get(&key(32.0)).unwrap(), "plain");
        assert_eq!(&*cache.get(&with_tech).unwrap(), "dram");
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn capacity_bounds_residency() {
        let cache = SolveCache::new(16);
        for i in 0..1000 {
            cache.put(key(f64::from(i) + 1.0), Arc::from("x"));
        }
        // div_ceil(16, SHARDS) = 1 entry per shard at most.
        assert!(cache.len() <= 16, "resident {}", cache.len());
        assert!(!cache.is_empty());
    }

    #[test]
    fn saturated_cache_keeps_its_newest_entries() {
        // The sweep-eviction regression: saturate every shard well past
        // capacity, then insert a burst of fresh keys (a warmed sweep's
        // variants) and immediately read them back. FIFO eviction must
        // sacrifice old entries, never the burst itself.
        let cache = SolveCache::new(64);
        for i in 0..10_000 {
            cache.put(key(f64::from(i) + 1.0), Arc::from("old"));
        }
        let burst: Vec<_> = (0..4).map(|i| key(20_000.0 + f64::from(i))).collect();
        for k in &burst {
            cache.put(k.clone(), Arc::from("fresh"));
        }
        for k in &burst {
            assert_eq!(
                cache.get(k).as_deref(),
                Some("fresh"),
                "a saturated shard evicted a just-inserted entry"
            );
        }
    }

    #[test]
    fn zero_capacity_disables_memoization() {
        let cache = SolveCache::new(0);
        cache.put(key(32.0), Arc::from("x"));
        assert_eq!(cache.get(&key(32.0)), None);
        assert!(cache.is_empty());
    }
}
