//! Minimal HTTP/1.1 framing with strict size and time limits.
//!
//! Enough of HTTP for a JSON model-query service and nothing more:
//! request line + headers + `Content-Length` bodies in, fixed-header
//! responses out. Every read is bounded three ways — a per-line byte
//! cap shared across the whole head, a declared-body cap, and an
//! overall wall-clock deadline checked between reads (the socket's own
//! read timeout guarantees the check runs) — so a slow-loris client
//! costs one worker at most roughly the configured read window, never a
//! hang.

use std::io::{BufRead, Read, Write};
use std::time::Instant;

/// Size caps for one request.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum bytes for the request line plus all headers.
    pub max_head_bytes: usize,
    /// Maximum bytes for a declared `Content-Length` body.
    pub max_body_bytes: usize,
}

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The HTTP method token, uppercased (`GET`, `POST`, ...).
    pub method: String,
    /// The request target, e.g. `/solve`.
    pub path: String,
    /// Whether the client asked to keep the connection open.
    pub keep_alive: bool,
    /// The request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

/// Why a request could not be read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadError {
    /// The client went quiet past the read window (slow-loris).
    Timeout,
    /// The client disconnected mid-request.
    Disconnected,
    /// The head exceeded [`Limits::max_head_bytes`].
    HeadTooLarge,
    /// The declared body exceeds [`Limits::max_body_bytes`].
    BodyTooLarge {
        /// The `Content-Length` the client declared.
        declared: u64,
    },
    /// The bytes were not valid HTTP.
    Malformed(String),
    /// Any other socket error.
    Io(String),
}

fn io_error(e: std::io::Error) -> ReadError {
    use std::io::ErrorKind;
    match e.kind() {
        ErrorKind::WouldBlock | ErrorKind::TimedOut => ReadError::Timeout,
        ErrorKind::UnexpectedEof | ErrorKind::ConnectionReset | ErrorKind::BrokenPipe => {
            ReadError::Disconnected
        }
        _ => ReadError::Io(e.to_string()),
    }
}

/// Reads one head line (request line or header), consuming at most
/// `budget + 1` bytes. `Ok(None)` is end of stream before any byte.
fn read_head_line<R: BufRead>(reader: &mut R, budget: usize) -> Result<Option<String>, ReadError> {
    let mut buf = Vec::new();
    let n = reader
        .by_ref()
        .take(budget as u64 + 1)
        .read_until(b'\n', &mut buf)
        .map_err(io_error)?;
    if n == 0 {
        return Ok(None);
    }
    if buf.last() != Some(&b'\n') {
        return Err(if buf.len() > budget {
            ReadError::HeadTooLarge
        } else {
            ReadError::Disconnected
        });
    }
    while matches!(buf.last(), Some(b'\n' | b'\r')) {
        buf.pop();
    }
    String::from_utf8(buf)
        .map(Some)
        .map_err(|_| ReadError::Malformed("head is not UTF-8".into()))
}

/// Reads one request. `Ok(None)` means the client closed the connection
/// cleanly at a request boundary (the normal end of keep-alive).
/// `deadline` bounds the whole read; it needs a socket-level read
/// timeout underneath to guarantee the checks run.
///
/// # Errors
///
/// See [`ReadError`]; the caller maps each variant onto a response (or
/// a silent close for [`ReadError::Disconnected`]).
pub fn read_request<R: BufRead>(
    reader: &mut R,
    limits: &Limits,
    deadline: Option<Instant>,
) -> Result<Option<Request>, ReadError> {
    let overdue = |now: Instant| deadline.is_some_and(|d| now > d);
    let mut head_budget = limits.max_head_bytes;
    let request_line = match read_head_line(reader, head_budget)? {
        None => return Ok(None),
        Some(line) => line,
    };
    head_budget = head_budget.saturating_sub(request_line.len() + 2);
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && !p.is_empty() => (m, p, v),
        _ => {
            return Err(ReadError::Malformed(format!(
                "bad request line '{request_line}'"
            )))
        }
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(ReadError::Malformed(format!(
            "unsupported version '{version}'"
        )));
    }
    let mut keep_alive = version == "HTTP/1.1";
    let mut content_length: u64 = 0;
    loop {
        if overdue(Instant::now()) {
            return Err(ReadError::Timeout);
        }
        let line = match read_head_line(reader, head_budget)? {
            None => return Err(ReadError::Disconnected),
            Some(line) => line,
        };
        if line.is_empty() {
            break;
        }
        head_budget = head_budget.saturating_sub(line.len() + 2);
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| ReadError::Malformed(format!("bad header '{line}'")))?;
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => {
                content_length = value
                    .parse()
                    .map_err(|_| ReadError::Malformed(format!("bad content-length '{value}'")))?;
            }
            "transfer-encoding" => {
                return Err(ReadError::Malformed(
                    "transfer-encoding is not supported; send content-length".into(),
                ));
            }
            "connection" => {
                let v = value.to_ascii_lowercase();
                if v.contains("close") {
                    keep_alive = false;
                } else if v.contains("keep-alive") {
                    keep_alive = true;
                }
            }
            _ => {}
        }
    }
    if content_length > limits.max_body_bytes as u64 {
        return Err(ReadError::BodyTooLarge {
            declared: content_length,
        });
    }
    let mut body = vec![0u8; content_length as usize];
    let mut filled = 0;
    while filled < body.len() {
        if overdue(Instant::now()) {
            return Err(ReadError::Timeout);
        }
        match reader.read(&mut body[filled..]) {
            Ok(0) => return Err(ReadError::Disconnected),
            Ok(n) => filled += n,
            Err(e) => return Err(io_error(e)),
        }
    }
    Ok(Some(Request {
        method: method.to_ascii_uppercase(),
        path: path.to_string(),
        keep_alive,
        body,
    }))
}

/// One response to write.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// JSON body.
    pub body: String,
    /// Value of the `x-bandwall-cache` header, when the endpoint is
    /// memoizable (`"hit"` / `"miss"`). Kept out of the body so cached
    /// and uncached replies stay byte-identical where it counts.
    pub cache: Option<&'static str>,
    /// Whether the server will close the connection after this reply.
    pub close: bool,
}

impl Response {
    /// A `200 OK` JSON response.
    pub fn ok(body: String) -> Self {
        Response {
            status: 200,
            body,
            cache: None,
            close: false,
        }
    }

    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            413 => "Payload Too Large",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            504 => "Gateway Timeout",
            _ => "Unknown",
        }
    }

    /// Serialises status line, headers, and body into `out`, clearing it
    /// first. Workers reuse one buffer across a connection's keep-alive
    /// lifetime, so the hot path allocates nothing once the buffer has
    /// grown to the working-set response size.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.clear();
        let _ = write!(
            out,
            "HTTP/1.1 {} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: {}\r\n",
            self.status,
            self.reason(),
            self.body.len(),
            if self.close { "close" } else { "keep-alive" },
        );
        if let Some(cache) = self.cache {
            let _ = write!(out, "x-bandwall-cache: {cache}\r\n");
        }
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(self.body.as_bytes());
    }

    /// Serialises status line, headers, and body into one fresh buffer
    /// (a single `write_all`, so a response is never interleaved).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut bytes = Vec::with_capacity(128 + self.body.len());
        self.encode_into(&mut bytes);
        bytes
    }

    /// Writes the response in one `write_all` + flush.
    ///
    /// # Errors
    ///
    /// Propagates socket errors (the caller treats them as a dead
    /// client and closes).
    pub fn write_to<W: Write>(&self, writer: &mut W) -> std::io::Result<()> {
        writer.write_all(&self.to_bytes())?;
        writer.flush()
    }

    /// Like [`Response::write_to`], but serialises through the caller's
    /// reusable buffer instead of allocating one.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn write_buffered<W: Write>(
        &self,
        writer: &mut W,
        buffer: &mut Vec<u8>,
    ) -> std::io::Result<()> {
        self.encode_into(buffer);
        writer.write_all(buffer)?;
        writer.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn limits() -> Limits {
        Limits {
            max_head_bytes: 1024,
            max_body_bytes: 4096,
        }
    }

    fn read(input: &str) -> Result<Option<Request>, ReadError> {
        let mut reader = BufReader::new(input.as_bytes());
        read_request(&mut reader, &limits(), None)
    }

    #[test]
    fn parses_post_with_body_and_keep_alive() {
        let req = read("POST /solve HTTP/1.1\r\ncontent-length: 4\r\n\r\n{{}}")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/solve");
        assert!(req.keep_alive);
        assert_eq!(req.body, b"{{}}");
    }

    #[test]
    fn connection_close_and_http10_default() {
        let req = read("GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!req.keep_alive);
        let req = read("GET /healthz HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert!(!req.keep_alive);
    }

    #[test]
    fn clean_eof_is_none_but_midway_eof_is_disconnected() {
        assert_eq!(read("").unwrap(), None);
        assert_eq!(
            read("POST /solve HTTP/1.1\r\ncontent-le"),
            Err(ReadError::Disconnected)
        );
        assert_eq!(
            read("POST /solve HTTP/1.1\r\ncontent-length: 10\r\n\r\n{}"),
            Err(ReadError::Disconnected),
            "body shorter than declared"
        );
    }

    #[test]
    fn rejects_malformed_heads() {
        for (input, what) in [
            ("SOLVE\r\n\r\n", "one-token request line"),
            ("GET /x HTTP/1.1 extra\r\n\r\n", "four-token request line"),
            ("GET /x HTTP/2\r\n\r\n", "unsupported version"),
            ("GET /x HTTP/1.1\r\nno-colon-header\r\n\r\n", "bad header"),
            (
                "POST /x HTTP/1.1\r\ncontent-length: nope\r\n\r\n",
                "bad content-length",
            ),
            (
                "POST /x HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n",
                "chunked",
            ),
        ] {
            assert!(
                matches!(read(input), Err(ReadError::Malformed(_))),
                "{what}"
            );
        }
    }

    #[test]
    fn enforces_head_and_body_limits() {
        let huge_header = format!("GET /x HTTP/1.1\r\nx-big: {}\r\n\r\n", "a".repeat(2048));
        assert_eq!(read(&huge_header), Err(ReadError::HeadTooLarge));
        let huge_line = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(2048));
        assert_eq!(read(&huge_line), Err(ReadError::HeadTooLarge));
        assert_eq!(
            read("POST /x HTTP/1.1\r\ncontent-length: 5000\r\n\r\n"),
            Err(ReadError::BodyTooLarge { declared: 5000 })
        );
    }

    #[test]
    fn response_bytes_are_complete_and_ordered() {
        let r = Response {
            status: 503,
            body: "{\"status\":\"error\"}".into(),
            cache: None,
            close: true,
        };
        let text = String::from_utf8(r.to_bytes()).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("content-length: 18\r\n"));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"status\":\"error\"}"));

        let hit = Response {
            cache: Some("hit"),
            ..Response::ok("{}".into())
        };
        assert!(String::from_utf8(hit.to_bytes())
            .unwrap()
            .contains("x-bandwall-cache: hit\r\n"));
    }

    #[test]
    fn encode_into_reuses_the_buffer_and_matches_to_bytes() {
        let mut buffer = b"stale bytes from the previous response".to_vec();
        let r = Response::ok("{\"status\":\"ok\"}".into());
        r.encode_into(&mut buffer);
        assert_eq!(buffer, r.to_bytes());
        let tiny = Response::ok("{}".into());
        tiny.encode_into(&mut buffer);
        assert_eq!(buffer, tiny.to_bytes(), "clears before encoding");
    }

    #[test]
    fn deadline_in_the_past_times_out() {
        let mut reader =
            BufReader::new("POST /solve HTTP/1.1\r\ncontent-length: 2\r\n\r\n{}".as_bytes());
        let past = Instant::now() - std::time::Duration::from_secs(1);
        assert_eq!(
            read_request(&mut reader, &limits(), Some(past)),
            Err(ReadError::Timeout)
        );
    }
}
