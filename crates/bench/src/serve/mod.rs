//! `bandwall serve`: an overload-safe model-query service.
//!
//! A std-only TCP/HTTP-JSON front end over the analytical model, built
//! for graceful degradation rather than peak throughput:
//!
//! * a nonblocking **acceptor** admits connections into a
//!   [`queue::BoundedQueue`] and *sheds* the excess with
//!   an immediate `overloaded` reply — queue depth, not client count,
//!   bounds memory;
//! * N run-to-completion **workers** drain the queue,
//!   enforce per-request deadlines, and contain handler panics;
//! * a **supervisor** respawns workers that die (chaos or otherwise)
//!   with doubling backoff;
//! * a memo **cache** ([`cache`]) keyed by canonical problem encodings
//!   returns byte-identical bodies for repeated queries;
//! * shutdown is a flag flip: the acceptor closes the port, the queue
//!   closes, workers drain in-flight work, and [`Server::join`] returns.
//!
//! Endpoints: `GET /healthz`, `GET /readyz`, `POST /solve` (see
//! [`api`]). Every reply — including every failure — is a well-formed
//! JSON envelope.

pub mod api;
pub mod cache;
pub mod http;
pub mod json;
pub mod loadgen;
pub mod queue;
mod worker;

use crate::fault::ChaosSpec;
use crate::serve::api::error_body;
use crate::serve::cache::SolveCache;
use crate::serve::http::Response;
use crate::serve::queue::{BoundedQueue, PushError};
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How the server runs; every knob has a CLI flag.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:8787` by default; port 0 picks one).
    pub addr: String,
    /// Worker thread count.
    pub workers: usize,
    /// Bounded-queue capacity (connections awaiting a worker).
    pub queue_capacity: usize,
    /// Per-request deadline (queue wait counts for a connection's first
    /// request).
    pub deadline: Duration,
    /// Socket read/write window; also the keep-alive idle limit.
    pub read_timeout: Duration,
    /// Memo-cache capacity in entries (0 disables memoization).
    pub cache_capacity: usize,
    /// Chaos plan; `None` runs clean.
    pub chaos: Option<ChaosSpec>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:8787".to_string(),
            workers: 2,
            queue_capacity: 64,
            deadline: Duration::from_secs(2),
            read_timeout: Duration::from_secs(5),
            cache_capacity: 4096,
            chaos: None,
        }
    }
}

/// Lifetime counters, written with relaxed atomics on the serving path.
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Connections handed to workers.
    pub connections: AtomicU64,
    /// `200 OK` replies.
    pub served_ok: AtomicU64,
    /// Connections refused with `overloaded` (queue full or closed).
    pub shed: AtomicU64,
    /// `400/405/408/413 invalid_request` replies.
    pub invalid_request: AtomicU64,
    /// `404 not_found` replies.
    pub not_found: AtomicU64,
    /// `503 not_ready` replies (readiness probe only).
    pub not_ready: AtomicU64,
    /// `504 deadline_exceeded` replies.
    pub deadline_exceeded: AtomicU64,
    /// `500 internal` replies (contained panics).
    pub internal: AtomicU64,
    /// Workers respawned by the supervisor after a panic.
    pub worker_respawns: AtomicU64,
}

/// A plain-value copy of [`ServeStats`] plus cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Connections handed to workers.
    pub connections: u64,
    /// `200 OK` replies.
    pub served_ok: u64,
    /// Connections shed with `overloaded`.
    pub shed: u64,
    /// `invalid_request` replies.
    pub invalid_request: u64,
    /// `not_found` replies.
    pub not_found: u64,
    /// `not_ready` replies.
    pub not_ready: u64,
    /// `deadline_exceeded` replies.
    pub deadline_exceeded: u64,
    /// `internal` replies (contained panics).
    pub internal: u64,
    /// Supervisor respawns.
    pub worker_respawns: u64,
    /// Memo-cache hits.
    pub cache_hits: u64,
    /// Memo-cache misses.
    pub cache_misses: u64,
}

/// One accepted connection awaiting a worker.
#[derive(Debug)]
pub(crate) struct Conn {
    pub stream: TcpStream,
    pub accepted_at: Instant,
}

/// State shared by the acceptor, workers, and supervisor.
#[derive(Debug)]
pub(crate) struct ServeContext {
    pub config: ServeConfig,
    pub queue: BoundedQueue<Conn>,
    pub cache: SolveCache,
    pub stats: ServeStats,
    shutdown: AtomicBool,
}

impl ServeContext {
    pub fn is_draining(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }
}

/// Asks the server to drain and stop; cloneable across threads (the
/// signal-watching loop holds one while [`Server::join`] blocks).
#[derive(Debug, Clone)]
pub struct ShutdownHandle {
    ctx: Arc<ServeContext>,
}

impl ShutdownHandle {
    /// Flips the drain flag: the acceptor closes the port, queued and
    /// in-flight requests finish, idle connections close.
    pub fn shutdown(&self) {
        self.ctx.shutdown.store(true, Ordering::Relaxed);
    }
}

/// A running server; dropping it does **not** stop the threads — call
/// [`Server::shutdown_handle`] + [`Server::join`] for a clean stop.
#[derive(Debug)]
pub struct Server {
    ctx: Arc<ServeContext>,
    addr: SocketAddr,
    acceptor: JoinHandle<()>,
    supervisor: JoinHandle<()>,
}

impl Server {
    /// Binds, spawns the acceptor, workers, and supervisor, and returns
    /// once the server is accepting.
    ///
    /// # Errors
    ///
    /// Propagates bind/configuration I/O errors.
    pub fn start(config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let queue_capacity = config.queue_capacity;
        let cache_capacity = config.cache_capacity;
        let ctx = Arc::new(ServeContext {
            config,
            queue: BoundedQueue::new(queue_capacity),
            cache: SolveCache::new(cache_capacity),
            stats: ServeStats::default(),
            shutdown: AtomicBool::new(false),
        });
        let acceptor = {
            let ctx = Arc::clone(&ctx);
            std::thread::Builder::new()
                .name("bandwall-acceptor".into())
                .spawn(move || acceptor_loop(listener, &ctx))?
        };
        let supervisor = {
            let ctx = Arc::clone(&ctx);
            std::thread::Builder::new()
                .name("bandwall-supervisor".into())
                .spawn(move || supervisor_loop(&ctx))?
        };
        Ok(Server {
            ctx,
            addr,
            acceptor,
            supervisor,
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A handle that can request shutdown from any thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            ctx: Arc::clone(&self.ctx),
        }
    }

    /// A point-in-time copy of the counters.
    pub fn stats(&self) -> StatsSnapshot {
        snapshot_of(&self.ctx)
    }

    /// Blocks until the server has fully drained after a
    /// [`ShutdownHandle::shutdown`], then returns the final counters.
    /// The port is closed and every worker has exited by the time this
    /// returns.
    pub fn join(self) -> StatsSnapshot {
        // Acceptor exit closes the listener and then the queue; the
        // supervisor exits once every worker has drained and finished.
        let _ = self.acceptor.join();
        let _ = self.supervisor.join();
        snapshot_of(&self.ctx)
    }
}

fn snapshot_of(ctx: &ServeContext) -> StatsSnapshot {
    let s = &ctx.stats;
    let (cache_hits, cache_misses) = ctx.cache.stats();
    StatsSnapshot {
        connections: s.connections.load(Ordering::Relaxed),
        served_ok: s.served_ok.load(Ordering::Relaxed),
        shed: s.shed.load(Ordering::Relaxed),
        invalid_request: s.invalid_request.load(Ordering::Relaxed),
        not_found: s.not_found.load(Ordering::Relaxed),
        not_ready: s.not_ready.load(Ordering::Relaxed),
        deadline_exceeded: s.deadline_exceeded.load(Ordering::Relaxed),
        internal: s.internal.load(Ordering::Relaxed),
        worker_respawns: s.worker_respawns.load(Ordering::Relaxed),
        cache_hits,
        cache_misses,
    }
}

/// Accepts until drain, never blocking: new connections go to the
/// bounded queue, the excess is shed with an immediate `overloaded`
/// reply written best-effort on a nonblocking socket.
fn acceptor_loop(listener: TcpListener, ctx: &Arc<ServeContext>) {
    while !ctx.is_draining() {
        match listener.accept() {
            Ok((stream, _)) => {
                let conn = Conn {
                    stream,
                    accepted_at: Instant::now(),
                };
                match ctx.queue.try_push(conn) {
                    Ok(()) => {}
                    Err(PushError::Full(conn)) | Err(PushError::Closed(conn)) => {
                        ctx.stats.shed.fetch_add(1, Ordering::Relaxed);
                        shed(conn.stream);
                    }
                }
            }
            Err(_) => {
                // WouldBlock (no pending connection) or a transient
                // accept error: nap briefly and re-poll the drain flag.
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    }
    // Dropping the listener here closes the port; closing the queue
    // lets workers drain what was already admitted and then exit.
    drop(listener);
    ctx.queue.close();
}

/// Best-effort `503 overloaded` on a nonblocking socket. The reply is
/// ~150 bytes — it fits any kernel send buffer — and if it doesn't
/// (a client that never reads), we drop the connection rather than
/// ever block the acceptor.
fn shed(stream: TcpStream) {
    if stream.set_nonblocking(true).is_err() {
        return;
    }
    let response = Response {
        status: 503,
        body: error_body("overloaded", "request queue is full; retry with backoff"),
        cache: None,
        close: true,
    };
    let mut stream = stream;
    let _ = stream.write_all(&response.to_bytes());
    let _ = stream.flush();
}

/// Spawns the initial workers, then respawns any that die with a
/// doubling backoff (10 ms → 500 ms, reset after a quiet scan).
/// Returns once the queue is closed and every worker has exited
/// normally — i.e. the drain is complete.
fn supervisor_loop(ctx: &Arc<ServeContext>) {
    const BACKOFF_FLOOR: Duration = Duration::from_millis(10);
    const BACKOFF_CEIL: Duration = Duration::from_millis(500);
    let spawn = |stream: u64| {
        let ctx = Arc::clone(ctx);
        std::thread::Builder::new()
            .name(format!("bandwall-worker-{stream}"))
            .spawn(move || worker::worker_loop(ctx, stream))
            .expect("spawning a worker thread")
    };
    let mut next_stream: u64 = 0;
    let mut slots: Vec<Option<JoinHandle<()>>> = (0..ctx.config.workers.max(1))
        .map(|_| {
            let handle = spawn(next_stream);
            next_stream += 1;
            Some(handle)
        })
        .collect();
    let mut backoff = BACKOFF_FLOOR;
    loop {
        std::thread::sleep(Duration::from_millis(5));
        let mut respawned = false;
        for slot in &mut slots {
            let finished = slot.as_ref().is_some_and(JoinHandle::is_finished);
            if !finished {
                continue;
            }
            let handle = slot.take().expect("finished slot holds a handle");
            if handle.join().is_err() {
                // Panicked: back off, then respawn with a fresh fault
                // stream so a deterministic chaos sequence cannot pin
                // the worker in a death loop.
                ctx.stats.worker_respawns.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(BACKOFF_CEIL);
                *slot = Some(spawn(next_stream));
                next_stream += 1;
                respawned = true;
            }
            // A normal exit means the queue is closed and drained for
            // this worker; leave the slot empty.
        }
        if !respawned {
            backoff = BACKOFF_FLOOR;
        }
        if ctx.queue.is_closed() && slots.iter().all(Option::is_none) {
            return;
        }
    }
}
