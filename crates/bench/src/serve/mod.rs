//! `bandwall serve`: an overload-safe model-query service.
//!
//! A std-only TCP/HTTP-JSON front end over the analytical model, built
//! for graceful degradation first and throughput second:
//!
//! * one or more nonblocking **acceptors** (one per shard, sharing the
//!   listening socket) admit connections into per-shard
//!   [`queue::BoundedQueue`]s in batches — one lock acquisition and one
//!   wakeup per accept burst — and *shed* the excess with an immediate
//!   `overloaded` reply once every shard is full: queue depth, not
//!   client count, bounds memory;
//! * N run-to-completion **workers** (partitioned across the shards)
//!   drain the queues, enforce per-request deadlines, and contain
//!   handler panics;
//! * a **supervisor** respawns workers that die (chaos or otherwise)
//!   with doubling backoff, keeping each respawn on its shard;
//! * a memo **cache** ([`cache`]) keyed by canonical problem encodings
//!   returns byte-identical bodies for repeated queries — shared by
//!   `/v1/solve` and every `/v1/sweep` variant;
//! * shutdown is a flag flip: the acceptors close the port, the queues
//!   close, workers drain in-flight work, and [`Server::join`] returns.
//!
//! Endpoints are the versioned route table in [`api`]: `GET /healthz`,
//! `GET /readyz`, `GET /v1/techniques`, `POST /v1/solve` (with the
//! legacy `POST /solve` alias), `POST /v1/sweep`, `POST /v1/batch`.
//! Every reply — including every failure — is a well-formed JSON
//! envelope.

pub mod api;
pub mod cache;
pub mod http;
pub mod json;
pub mod loadgen;
pub mod queue;
mod worker;

use crate::fault::ChaosSpec;
use crate::serve::api::{error_body, ErrorKind};
use crate::serve::cache::SolveCache;
use crate::serve::http::Response;
use crate::serve::queue::{BoundedQueue, PushError};
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Most connections one acceptor pass admits under a single queue lock.
const ACCEPT_BATCH: usize = 16;

/// How the server runs; every knob has a CLI flag.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:8787` by default; port 0 picks one).
    pub addr: String,
    /// Worker thread count.
    pub workers: usize,
    /// Admission shards: each gets its own acceptor thread and queue,
    /// splitting the accept path's lock. Clamped to the worker count;
    /// 1 (the default) reproduces the single-acceptor layout.
    pub shards: usize,
    /// Bounded-queue capacity (connections awaiting a worker), divided
    /// across the shards.
    pub queue_capacity: usize,
    /// Per-request deadline (queue wait counts for a connection's first
    /// request).
    pub deadline: Duration,
    /// Socket read/write window; also the keep-alive idle limit.
    pub read_timeout: Duration,
    /// Memo-cache capacity in entries (0 disables memoization).
    pub cache_capacity: usize,
    /// Chaos plan; `None` runs clean.
    pub chaos: Option<ChaosSpec>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:8787".to_string(),
            workers: 2,
            shards: 1,
            queue_capacity: 64,
            deadline: Duration::from_secs(2),
            read_timeout: Duration::from_secs(5),
            cache_capacity: 4096,
            chaos: None,
        }
    }
}

/// Lifetime counters, written with relaxed atomics on the serving path.
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Connections handed to workers.
    pub connections: AtomicU64,
    /// `200 OK` replies.
    pub served_ok: AtomicU64,
    /// Connections refused with `overloaded` (every shard full or
    /// closed).
    pub shed: AtomicU64,
    /// `400/405/408/413 invalid_request` replies.
    pub invalid_request: AtomicU64,
    /// `404 not_found` replies.
    pub not_found: AtomicU64,
    /// `503 not_ready` replies (readiness probe only).
    pub not_ready: AtomicU64,
    /// `504 deadline_exceeded` replies.
    pub deadline_exceeded: AtomicU64,
    /// `500 internal` replies (contained panics).
    pub internal: AtomicU64,
    /// Workers respawned by the supervisor after a panic.
    pub worker_respawns: AtomicU64,
}

/// A plain-value copy of [`ServeStats`] plus cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Connections handed to workers.
    pub connections: u64,
    /// `200 OK` replies.
    pub served_ok: u64,
    /// Connections shed with `overloaded`.
    pub shed: u64,
    /// `invalid_request` replies.
    pub invalid_request: u64,
    /// `not_found` replies.
    pub not_found: u64,
    /// `not_ready` replies.
    pub not_ready: u64,
    /// `deadline_exceeded` replies.
    pub deadline_exceeded: u64,
    /// `internal` replies (contained panics).
    pub internal: u64,
    /// Supervisor respawns.
    pub worker_respawns: u64,
    /// Memo-cache hits.
    pub cache_hits: u64,
    /// Memo-cache misses.
    pub cache_misses: u64,
}

/// One accepted connection awaiting a worker.
#[derive(Debug)]
pub(crate) struct Conn {
    pub stream: TcpStream,
    pub accepted_at: Instant,
}

/// State shared by the acceptors, workers, and supervisor.
#[derive(Debug)]
pub(crate) struct ServeContext {
    pub config: ServeConfig,
    /// One bounded queue per admission shard.
    pub queues: Vec<BoundedQueue<Conn>>,
    pub cache: SolveCache,
    pub stats: ServeStats,
    shutdown: AtomicBool,
}

impl ServeContext {
    pub fn is_draining(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    /// Whether every shard's queue is at capacity — the readiness
    /// probe's saturation signal (an acceptor spills across shards
    /// before shedding, so one full shard is not saturation).
    pub fn saturated(&self) -> bool {
        self.queues.iter().all(BoundedQueue::is_full)
    }
}

/// Asks the server to drain and stop; cloneable across threads (the
/// signal-watching loop holds one while [`Server::join`] blocks).
#[derive(Debug, Clone)]
pub struct ShutdownHandle {
    ctx: Arc<ServeContext>,
}

impl ShutdownHandle {
    /// Flips the drain flag: the acceptors close the port, queued and
    /// in-flight requests finish, idle connections close.
    pub fn shutdown(&self) {
        self.ctx.shutdown.store(true, Ordering::Relaxed);
    }
}

/// A running server; dropping it does **not** stop the threads — call
/// [`Server::shutdown_handle`] + [`Server::join`] for a clean stop.
#[derive(Debug)]
pub struct Server {
    ctx: Arc<ServeContext>,
    addr: SocketAddr,
    acceptors: Vec<JoinHandle<()>>,
    supervisor: JoinHandle<()>,
}

impl Server {
    /// Binds, spawns the acceptors, workers, and supervisor, and
    /// returns once the server is accepting.
    ///
    /// # Errors
    ///
    /// Propagates bind/configuration I/O errors.
    pub fn start(mut config: ServeConfig) -> std::io::Result<Server> {
        let shards = config.shards.clamp(1, config.workers.max(1));
        config.shards = shards;
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        // Every shard accepts from the same socket through a clone; the
        // port closes once the last acceptor drops its handle.
        let mut listeners = Vec::with_capacity(shards);
        for _ in 1..shards {
            listeners.push(listener.try_clone()?);
        }
        listeners.push(listener);
        let per_shard_capacity = config.queue_capacity.div_ceil(shards);
        let cache_capacity = config.cache_capacity;
        let ctx = Arc::new(ServeContext {
            queues: (0..shards)
                .map(|_| BoundedQueue::new(per_shard_capacity))
                .collect(),
            config,
            cache: SolveCache::new(cache_capacity),
            stats: ServeStats::default(),
            shutdown: AtomicBool::new(false),
        });
        let mut acceptors = Vec::with_capacity(shards);
        for (shard, listener) in listeners.into_iter().enumerate() {
            let ctx = Arc::clone(&ctx);
            acceptors.push(
                std::thread::Builder::new()
                    .name(format!("bandwall-acceptor-{shard}"))
                    .spawn(move || acceptor_loop(listener, &ctx, shard))?,
            );
        }
        let supervisor = {
            let ctx = Arc::clone(&ctx);
            std::thread::Builder::new()
                .name("bandwall-supervisor".into())
                .spawn(move || supervisor_loop(&ctx))?
        };
        Ok(Server {
            ctx,
            addr,
            acceptors,
            supervisor,
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A handle that can request shutdown from any thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            ctx: Arc::clone(&self.ctx),
        }
    }

    /// A point-in-time copy of the counters.
    pub fn stats(&self) -> StatsSnapshot {
        snapshot_of(&self.ctx)
    }

    /// Blocks until the server has fully drained after a
    /// [`ShutdownHandle::shutdown`], then returns the final counters.
    /// The port is closed and every worker has exited by the time this
    /// returns.
    pub fn join(self) -> StatsSnapshot {
        // Each acceptor's exit drops its listener handle and closes its
        // shard's queue; the supervisor exits once every worker has
        // drained and finished.
        for acceptor in self.acceptors {
            let _ = acceptor.join();
        }
        let _ = self.supervisor.join();
        snapshot_of(&self.ctx)
    }
}

fn snapshot_of(ctx: &ServeContext) -> StatsSnapshot {
    let s = &ctx.stats;
    let (cache_hits, cache_misses) = ctx.cache.stats();
    StatsSnapshot {
        connections: s.connections.load(Ordering::Relaxed),
        served_ok: s.served_ok.load(Ordering::Relaxed),
        shed: s.shed.load(Ordering::Relaxed),
        invalid_request: s.invalid_request.load(Ordering::Relaxed),
        not_found: s.not_found.load(Ordering::Relaxed),
        not_ready: s.not_ready.load(Ordering::Relaxed),
        deadline_exceeded: s.deadline_exceeded.load(Ordering::Relaxed),
        internal: s.internal.load(Ordering::Relaxed),
        worker_respawns: s.worker_respawns.load(Ordering::Relaxed),
        cache_hits,
        cache_misses,
    }
}

/// One shard's acceptor: accepts until drain, never blocking. Each pass
/// drains the accept backlog into a batch and admits the whole batch to
/// this shard's queue under one lock; the refused tail spills to
/// sibling shards and only then is shed with an immediate `overloaded`
/// reply written best-effort on a nonblocking socket.
fn acceptor_loop(listener: TcpListener, ctx: &Arc<ServeContext>, shard: usize) {
    let mut batch: Vec<Conn> = Vec::with_capacity(ACCEPT_BATCH);
    while !ctx.is_draining() {
        while batch.len() < ACCEPT_BATCH {
            match listener.accept() {
                Ok((stream, _)) => batch.push(Conn {
                    stream,
                    accepted_at: Instant::now(),
                }),
                // WouldBlock (backlog drained) or a transient accept
                // error: admit what we have.
                Err(_) => break,
            }
        }
        if batch.is_empty() {
            std::thread::sleep(Duration::from_millis(1));
            continue;
        }
        for conn in ctx.queues[shard].push_many(std::mem::take(&mut batch)) {
            if let Some(conn) = spill(ctx, shard, conn) {
                ctx.stats.shed.fetch_add(1, Ordering::Relaxed);
                shed(conn.stream);
            }
        }
    }
    // Dropping the listener handle releases the port (fully closed once
    // every shard's acceptor exits); closing this shard's queue lets
    // its workers drain what was already admitted and then exit.
    drop(listener);
    ctx.queues[shard].close();
}

/// Offers a connection the home shard refused to every sibling shard in
/// round-robin order. Returns the connection back when all are full —
/// only then is the server genuinely overloaded.
fn spill(ctx: &ServeContext, home: usize, mut conn: Conn) -> Option<Conn> {
    let shards = ctx.queues.len();
    for step in 1..shards {
        match ctx.queues[(home + step) % shards].try_push(conn) {
            Ok(()) => return None,
            Err(PushError::Full(back)) | Err(PushError::Closed(back)) => conn = back,
        }
    }
    Some(conn)
}

/// Best-effort `503 overloaded` on a nonblocking socket. The reply is
/// ~150 bytes — it fits any kernel send buffer — and if it doesn't
/// (a client that never reads), we drop the connection rather than
/// ever block the acceptor.
fn shed(stream: TcpStream) {
    if stream.set_nonblocking(true).is_err() {
        return;
    }
    let response = Response {
        status: 503,
        body: error_body(
            ErrorKind::Overloaded,
            "request queue is full; retry with backoff",
        ),
        cache: None,
        close: true,
    };
    let mut stream = stream;
    let _ = stream.write_all(&response.to_bytes());
    let _ = stream.flush();
}

/// Spawns the initial workers (worker *i* drains shard `i % shards`),
/// then respawns any that die with a doubling backoff (10 ms → 500 ms,
/// reset after a quiet scan), keeping each respawn on its shard.
/// Returns once every queue is closed and every worker has exited
/// normally — i.e. the drain is complete.
fn supervisor_loop(ctx: &Arc<ServeContext>) {
    const BACKOFF_FLOOR: Duration = Duration::from_millis(10);
    const BACKOFF_CEIL: Duration = Duration::from_millis(500);
    let shards = ctx.queues.len();
    let spawn = |shard: usize, stream: u64| {
        let ctx = Arc::clone(ctx);
        std::thread::Builder::new()
            .name(format!("bandwall-worker-{stream}"))
            .spawn(move || worker::worker_loop(ctx, shard, stream))
            .expect("spawning a worker thread")
    };
    let mut next_stream: u64 = 0;
    let mut slots: Vec<(usize, Option<JoinHandle<()>>)> = (0..ctx.config.workers.max(1))
        .map(|i| {
            let shard = i % shards;
            let handle = spawn(shard, next_stream);
            next_stream += 1;
            (shard, Some(handle))
        })
        .collect();
    let mut backoff = BACKOFF_FLOOR;
    loop {
        std::thread::sleep(Duration::from_millis(5));
        let mut respawned = false;
        for (shard, slot) in &mut slots {
            let finished = slot.as_ref().is_some_and(JoinHandle::is_finished);
            if !finished {
                continue;
            }
            let handle = slot.take().expect("finished slot holds a handle");
            if handle.join().is_err() {
                // Panicked: back off, then respawn with a fresh fault
                // stream so a deterministic chaos sequence cannot pin
                // the worker in a death loop.
                ctx.stats.worker_respawns.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(BACKOFF_CEIL);
                *slot = Some(spawn(*shard, next_stream));
                next_stream += 1;
                respawned = true;
            }
            // A normal exit means the queue is closed and drained for
            // this worker; leave the slot empty.
        }
        if !respawned {
            backoff = BACKOFF_FLOOR;
        }
        if ctx.queues.iter().all(|q| q.is_closed()) && slots.iter().all(|(_, s)| s.is_none()) {
            return;
        }
    }
}
