//! A bounded MPMC queue with explicit overload rejection.
//!
//! The admission-control heart of `bandwall serve`: the acceptor
//! `try_push`es new connections and *immediately* learns when the queue
//! is full (so it can shed load with an `overloaded` reply instead of
//! queueing unboundedly — the queueing collapse the bandwidth wall
//! itself describes), while workers block on [`BoundedQueue::pop`]
//! until work arrives or the queue is closed and drained.
//!
//! Built on `Mutex<VecDeque>` + `Condvar` (std only). All locks recover
//! from poisoning: a panicking worker can never wedge admission.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};

/// Why a [`BoundedQueue::try_push`] was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity; the value is handed back for an
    /// immediate shed reply.
    Full(T),
    /// The queue is closed (shutting down); no new work is admitted.
    Closed(T),
}

#[derive(Debug)]
struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer/multi-consumer queue.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    capacity: usize,
    ready: Condvar,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue admitting at most `capacity` pending items.
    /// A zero capacity is clamped to one (a queue that can never admit
    /// anything would deadlock the acceptor's shed path tests).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            capacity: capacity.max(1),
            ready: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Admits `value` unless the queue is full or closed — never blocks.
    ///
    /// # Errors
    ///
    /// Returns the value inside [`PushError`] when refused.
    pub fn try_push(&self, value: T) -> Result<(), PushError<T>> {
        let mut inner = self.lock();
        if inner.closed {
            return Err(PushError::Closed(value));
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full(value));
        }
        inner.items.push_back(value);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Admits as many of `items` as capacity allows under **one** lock
    /// acquisition and wakeup — the acceptor's batched admission path.
    /// Returns the refused tail (everything once the queue was full, or
    /// all of `items` when closed) for shedding; order is preserved.
    pub fn push_many(&self, items: Vec<T>) -> Vec<T> {
        if items.is_empty() {
            return items;
        }
        let mut inner = self.lock();
        if inner.closed {
            return items;
        }
        let room = self.capacity.saturating_sub(inner.items.len());
        let admitted = items.len().min(room);
        let mut items = items;
        let refused = items.split_off(admitted);
        inner.items.extend(items);
        drop(inner);
        match admitted {
            0 => {}
            1 => self.ready.notify_one(),
            _ => self.ready.notify_all(),
        }
        refused
    }

    /// Blocks until an item is available (returning it) or the queue is
    /// closed *and* drained (returning `None`). Closed-but-nonempty
    /// queues keep handing out items so shutdown drains in-flight work.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.lock();
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Closes the queue: producers are refused from now on, consumers
    /// drain what is already queued and then observe `None`.
    pub fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }

    /// Number of items currently queued.
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Whether nothing is currently queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the queue is at capacity (the readiness probe's
    /// saturation signal).
    pub fn is_full(&self) -> bool {
        self.len() >= self.capacity
    }

    /// Whether [`BoundedQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn bounded_admission_and_fifo_order() {
        let q = BoundedQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert!(q.is_full());
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert_eq!(q.pop(), Some(1));
        assert!(q.try_push(4).is_ok());
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(4));
        assert!(q.is_empty());
    }

    #[test]
    fn close_drains_then_stops() {
        let q = BoundedQueue::new(4);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        q.close();
        assert_eq!(q.try_push("c"), Err(PushError::Closed("c")));
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), Some("b"));
        assert_eq!(q.pop(), None);
        assert!(q.is_closed());
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q = Arc::new(BoundedQueue::<u32>::new(1));
        let waiter = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(waiter.join().unwrap(), None);
    }

    #[test]
    fn concurrent_producers_and_consumers_conserve_items() {
        let q = Arc::new(BoundedQueue::new(8));
        let produced = 4 * 100;
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = 0u32;
                    while q.pop().is_some() {
                        got += 1;
                    }
                    got
                })
            })
            .collect();
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..100 {
                        let mut v = p * 100 + i;
                        loop {
                            match q.try_push(v) {
                                Ok(()) => break,
                                Err(PushError::Full(back)) => {
                                    v = back;
                                    std::thread::yield_now();
                                }
                                Err(PushError::Closed(_)) => panic!("closed early"),
                            }
                        }
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let total: u32 = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, produced);
    }

    #[test]
    fn push_many_admits_to_capacity_and_returns_the_rest() {
        let q = BoundedQueue::new(3);
        q.try_push(0).unwrap();
        let refused = q.push_many(vec![1, 2, 3, 4]);
        assert_eq!(refused, vec![3, 4], "overflow comes back in order");
        assert_eq!(q.pop(), Some(0));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert!(q.is_empty());
        assert_eq!(q.push_many(Vec::<i32>::new()), Vec::<i32>::new());
        q.close();
        assert_eq!(q.push_many(vec![9]), vec![9], "closed refuses everything");
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let q = BoundedQueue::new(0);
        assert!(q.try_push(1).is_ok());
        assert_eq!(q.try_push(2), Err(PushError::Full(2)));
    }
}
