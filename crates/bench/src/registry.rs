//! The experiment registry: a uniform [`Experiment`] interface over
//! every figure/table reproduction and supporting study, so one CLI can
//! list, run, and render them all.

use crate::error::ExperimentError;
use crate::report::Report;

/// A runnable experiment. Implementations are stateless apart from
/// configuration (e.g. an RNG seed), so one instance can be run from
/// any thread.
pub trait Experiment: Send + Sync {
    /// Stable registry id — the historical binary name
    /// (e.g. `fig02_traffic_vs_cores`).
    fn id(&self) -> &'static str;
    /// Figure/table label shown in the header banner (e.g. `"Figure 2"`).
    fn figure(&self) -> &'static str;
    /// Human title shown in the header banner.
    fn title(&self) -> &'static str;
    /// Runs the experiment and returns its structured report, or a typed
    /// error when the configuration is out of domain or a solver fails.
    /// The harness additionally contains panics and deadline overruns, so
    /// a failing experiment never takes down a batch.
    fn run(&self) -> Result<Report, ExperimentError>;

    /// The catalogue sweep this experiment publishes to `POST /v1/sweep`
    /// under its registry id, when it is a single-technique sweep over
    /// the next-generation die. The named-sweep list served by
    /// `GET /v1/techniques` is derived entirely from these declarations.
    fn sweep(&self) -> Option<crate::sweep::CatalogueSweep> {
        None
    }

    /// Runs the experiment and folds any error into a
    /// [`Report::failure`] carrying this experiment's registry identity.
    fn run_to_report(&self) -> Report {
        self.run()
            .unwrap_or_else(|e| Report::failure(self.id(), self.figure(), self.title(), e))
    }
}

/// Every experiment, in presentation order (figures, tables, then the
/// supporting studies, ablations, and validations), with each
/// experiment's historical default seed.
pub fn registry() -> Vec<Box<dyn Experiment>> {
    registry_with_seed(None)
}

/// Like [`registry`], but when `seed` is `Some`, every seeded
/// (simulator-backed) experiment gets a distinct seed derived from it
/// via SplitMix64. `None` keeps the historical per-experiment defaults,
/// reproducing the legacy binaries byte-for-byte.
pub fn registry_with_seed(seed: Option<u64>) -> Vec<Box<dyn Experiment>> {
    crate::experiments::all(seed)
}

/// Looks up one experiment by id (default seeds).
pub fn find(id: &str) -> Option<Box<dyn Experiment>> {
    registry().into_iter().find(|e| e.id() == id)
}

/// Runs one experiment and prints its ASCII report — the entire body of
/// every thin per-figure binary. A failing experiment prints its failure
/// banner and exits with status 1 instead of panicking.
///
/// # Panics
///
/// Panics if `id` is not in the registry (a bug in the calling binary).
pub fn run_main(id: &str) {
    let experiment = find(id).unwrap_or_else(|| panic!("unknown experiment id: {id}"));
    let report = experiment.run_to_report();
    print!("{}", report.to_ascii());
    if report.is_failure() {
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn registry_ids_are_unique_and_stable() {
        let reg = registry();
        assert_eq!(
            reg.len(),
            32,
            "29 historical binaries + combo_sim + 2 registry extensions"
        );
        let ids: BTreeSet<&str> = reg.iter().map(|e| e.id()).collect();
        assert_eq!(ids.len(), reg.len(), "ids must be unique");
        for id in [
            "combo_sim",
            "fig01_power_law",
            "fig16_combinations",
            "validate_writeback",
            "thermal_capped_3d",
            "cxl_harvesting",
        ] {
            assert!(ids.contains(id), "missing {id}");
        }
    }

    #[test]
    fn find_resolves_known_ids() {
        let e = find("fig03_die_allocation").unwrap();
        assert_eq!(e.figure(), "Figure 3");
        assert!(find("no_such_experiment").is_none());
    }

    #[test]
    fn seeded_registry_has_same_shape() {
        let a = registry();
        let b = registry_with_seed(Some(7));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.id(), y.id());
        }
    }
}
