//! Experiment harness for the bandwidth-wall reproduction.
//!
//! One binary per paper figure/table lives in `src/bin/`; this library
//! holds the shared presentation helpers (aligned tables, ASCII bars,
//! paper-vs-measured comparison rows) and the common experiment
//! parameters, so every binary prints its figure the same way:
//!
//! ```text
//! cargo run -p bandwall-experiments --bin fig02_traffic_vs_cores
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod render;
pub mod sweep;

use bandwall_model::Baseline;

/// The four future technology generations the paper sweeps (transistor
/// scaling ratios 2×–16×).
pub const GENERATIONS: [u32; 4] = [1, 2, 3, 4];

/// Scaling-ratio labels used on the paper's x-axes.
pub const GENERATION_LABELS: [&str; 4] = ["2x", "4x", "8x", "16x"];

/// The common baseline for every experiment (Section 5.1).
pub fn paper_baseline() -> Baseline {
    Baseline::niagara2_like()
}

/// Die budget (total CEAs) of future generation `g` (1-based).
pub fn die_budget(generation: u32) -> f64 {
    paper_baseline().total_ceas() * 2f64.powi(generation as i32)
}

/// Prints the standard experiment header.
pub fn header(figure: &str, title: &str) {
    println!("================================================================");
    println!("{figure} — {title}");
    println!("Reproduction of Rogers et al., 'Scaling the Bandwidth Wall' (ISCA'09)");
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn die_budgets_double() {
        assert_eq!(die_budget(1), 32.0);
        assert_eq!(die_budget(4), 256.0);
    }

    #[test]
    fn baseline_is_niagara2_like() {
        let b = paper_baseline();
        assert_eq!(b.cores(), 8.0);
        assert_eq!(b.total_ceas(), 16.0);
    }
}
