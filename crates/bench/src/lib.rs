//! Experiment harness for the bandwidth-wall reproduction.
//!
//! One binary per paper figure/table lives in `src/bin/`; this library
//! holds the shared presentation helpers (aligned tables, ASCII bars,
//! paper-vs-measured comparison rows) and the common experiment
//! parameters, so every binary prints its figure the same way:
//!
//! ```text
//! cargo run -p bandwall-experiments --bin fig02_traffic_vs_cores
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod experiments;
pub mod fault;
pub mod perf;
pub mod registry;
pub mod render;
pub mod report;
pub mod serve;
pub mod sweep;

pub use bandwall_model::roadmap::{die_budget, paper_baseline, GENERATIONS, GENERATION_LABELS};

/// Prints the standard experiment header.
pub fn header(figure: &str, title: &str) {
    print!("{}", header_string(figure, title));
}

/// The standard experiment header as a string (what [`header`] prints).
pub fn header_string(figure: &str, title: &str) -> String {
    format!(
        "================================================================\n\
         {figure} — {title}\n\
         Reproduction of Rogers et al., 'Scaling the Bandwidth Wall' (ISCA'09)\n\
         ================================================================\n"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn die_budgets_double() {
        assert_eq!(die_budget(1), 32.0);
        assert_eq!(die_budget(4), 256.0);
    }

    #[test]
    fn baseline_is_niagara2_like() {
        let b = paper_baseline();
        assert_eq!(b.cores(), 8.0);
        assert_eq!(b.total_ceas(), 16.0);
    }

    #[test]
    fn header_string_shape() {
        let h = header_string("Figure 2", "Traffic");
        assert_eq!(h.lines().count(), 4);
        assert!(h.contains("Figure 2 — Traffic"));
        assert!(h.ends_with("================\n"));
    }
}
