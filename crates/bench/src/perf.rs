//! `bandwall bench` — wall-clock benchmarking of the simulation kernels.
//!
//! Experiments measure *what* the paper's techniques do; this module
//! measures *how fast* the repository computes it. Each bench group runs
//! a small set of kernels under warmup/iteration control and reports
//! nearest-rank median/p10/p90 wall-clock times plus throughput, rendered
//! through the same [`Report`] machinery as the experiments (ASCII, CSV,
//! JSON) and snapshotted as machine-readable `BENCH_<group>.json` files.
//!
//! Groups:
//!
//! * `sim_engine` — the Figure 14 CMP simulation: trace generation, the
//!   1-bank baseline, and the banked engine at 2/4/8 threads with
//!   speedup vs the baseline median; plus 4-thread banked runs of the
//!   configurations that historically fell back to sequential —
//!   Random replacement and mismatched L1/L2 line sizes — and the
//!   sectored and compressed fills of the unified pipeline. On a
//!   multi-core host the parallel rows scale with the bank count; on a
//!   single hardware thread they measure the engine's overhead (the
//!   snapshot records `host_parallelism` so readers can tell which).
//! * `compress` — every cache-line compression engine over an identical
//!   deterministic stream of commercial-profile lines.
//! * `experiments` — end-to-end registry experiment runs (one analytic,
//!   one simulator-backed).
//!
//! All kernels are deterministic (fixed seeds), so run-to-run variance
//! comes from the machine, not the workload.

use crate::registry;
use crate::report::{Report, TableBlock, Value};
use bandwall_cache_sim::{
    CacheConfig, CmpSimConfig, CompressorKind, EngineSimConfig, ExactCompressorKind, FillSpec,
    L2Organization, ProfileKind, ReplacementPolicy, ValueSpec,
};
use bandwall_compress::{Bdi, BestOf, Compressor, Fpc, ZeroRle};
use bandwall_trace::values::{LineValueGenerator, ValueProfile};
use bandwall_trace::{materialize, ParsecLikeTrace, ReplayTrace};
use std::time::Instant;

/// The bench groups, in presentation order.
pub const GROUPS: [&str; 4] = ["sim_engine", "compress", "experiments", "serve"];

/// Snapshot schema identifier, bumped on any incompatible change
/// (`/2` added `p99_ns` to every result row; `/3` switched the
/// `sim_engine` simulation kernels to replaying a pre-recorded trace,
/// so their throughput measures the simulator alone and is not
/// comparable with `/2` numbers).
pub const SNAPSHOT_SCHEMA: &str = "bandwall-bench/3";

/// Warmup/iteration/workload-size control for one bench run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchOptions {
    /// Untimed runs before sampling starts.
    pub warmup: usize,
    /// Timed samples per kernel.
    pub iters: usize,
    /// Simulated accesses per sample (the `sim_engine` workload size;
    /// `compress` derives its line count from this).
    pub accesses: usize,
}

impl BenchOptions {
    /// The default measurement configuration.
    pub fn standard() -> Self {
        BenchOptions {
            warmup: 1,
            iters: 5,
            accesses: 400_000,
        }
    }

    /// A CI-friendly smoke configuration (seconds, not minutes).
    pub fn quick() -> Self {
        BenchOptions {
            warmup: 1,
            iters: 3,
            accesses: 60_000,
        }
    }
}

impl Default for BenchOptions {
    fn default() -> Self {
        BenchOptions::standard()
    }
}

/// Timing samples and throughput for one kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Stable kernel id (snake_case).
    pub id: String,
    /// Human-readable kernel description.
    pub title: String,
    /// Worker threads the kernel requested (1 for sequential kernels).
    pub threads: usize,
    /// Items processed per sample, for throughput (`unit`s per second).
    pub items: u64,
    /// Throughput unit (`"accesses"`, `"lines"`, `"runs"`).
    pub unit: &'static str,
    /// Median sequential time / median of this kernel, when the kernel
    /// has a sequential baseline in the same group.
    pub speedup_vs_sequential: Option<f64>,
    samples_ns: Vec<u64>,
}

impl BenchResult {
    /// Builds a result from raw per-sample nanosecond timings (sorted
    /// internally). Public so harnesses — the CLI floor gate's tests
    /// included — can construct known-throughput results.
    pub fn from_samples(
        id: impl Into<String>,
        title: impl Into<String>,
        threads: usize,
        items: u64,
        unit: &'static str,
        mut samples_ns: Vec<u64>,
    ) -> Self {
        samples_ns.sort_unstable();
        BenchResult {
            id: id.into(),
            title: title.into(),
            threads,
            items,
            unit,
            speedup_vs_sequential: None,
            samples_ns,
        }
    }

    /// Nearest-rank percentile of the samples (`p` in 0..=100).
    pub fn percentile_ns(&self, p: f64) -> u64 {
        let n = self.samples_ns.len();
        assert!(n > 0, "no samples");
        let rank = ((p / 100.0) * n as f64).ceil() as usize;
        self.samples_ns[rank.clamp(1, n) - 1]
    }

    /// Median sample.
    pub fn median_ns(&self) -> u64 {
        self.percentile_ns(50.0)
    }

    /// 10th-percentile sample (best-case-ish).
    pub fn p10_ns(&self) -> u64 {
        self.percentile_ns(10.0)
    }

    /// 90th-percentile sample (worst-case-ish).
    pub fn p90_ns(&self) -> u64 {
        self.percentile_ns(90.0)
    }

    /// 99th-percentile sample (the serving tail; equal to the maximum
    /// when fewer than 100 samples were taken).
    pub fn p99_ns(&self) -> u64 {
        self.percentile_ns(99.0)
    }

    /// Items per second at the median sample.
    pub fn items_per_sec(&self) -> f64 {
        let median = self.median_ns();
        if median == 0 {
            0.0
        } else {
            self.items as f64 * 1e9 / median as f64
        }
    }
}

/// One bench group's complete measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchGroup {
    /// Group name (one of [`GROUPS`]).
    pub group: String,
    /// The options the group ran under.
    pub options: BenchOptions,
    /// `std::thread::available_parallelism()` on the measuring host —
    /// readers need it to interpret the parallel rows.
    pub host_parallelism: usize,
    /// Kernel results, in a stable order.
    pub results: Vec<BenchResult>,
}

/// Times `iters` samples of `kernel` after `warmup` untimed runs.
fn time_samples<F: FnMut()>(options: &BenchOptions, mut kernel: F) -> Vec<u64> {
    for _ in 0..options.warmup {
        kernel();
    }
    (0..options.iters.max(1))
        .map(|_| {
            let start = Instant::now();
            kernel();
            start.elapsed().as_nanos() as u64
        })
        .collect()
}

fn host_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(usize::from)
        .unwrap_or(1)
}

/// Runs one bench group by name.
///
/// # Errors
///
/// Returns an error string for an unknown group name (see [`GROUPS`]).
pub fn run_group(name: &str, options: &BenchOptions) -> Result<BenchGroup, String> {
    let results = match name {
        "sim_engine" => sim_engine_results(options),
        "compress" => compress_results(options),
        "experiments" => experiment_results(options),
        "serve" => serve_results(options)?,
        other => {
            return Err(format!(
                "unknown bench group '{other}' (see `bandwall bench --list`)"
            ))
        }
    };
    Ok(BenchGroup {
        group: name.to_string(),
        options: *options,
        host_parallelism: host_parallelism(),
        results,
    })
}

/// The Figure 14 CMP geometry the `sim_engine` group measures.
fn fig14_sim() -> CmpSimConfig {
    CmpSimConfig {
        cores: 4,
        l1: CacheConfig::new(512, 64, 2).expect("valid L1"),
        l2: CacheConfig::new(512 << 10, 64, 8).expect("valid L2"),
        organization: L2Organization::Shared,
        l2_fill: FillSpec::FullLine,
        flush: false,
    }
}

/// Standalone unified-pipeline geometry the `sim_engine` group tracks for
/// the sectored and compressed fills (the Figure 14 L2).
fn engine_sim(fill: FillSpec) -> EngineSimConfig {
    EngineSimConfig {
        cache: CacheConfig::new(512 << 10, 64, 8).expect("valid geometry"),
        fill,
        flush: false,
    }
}

fn fig14_trace() -> ParsecLikeTrace {
    ParsecLikeTrace::builder_with_regions(4, 4000, 1500)
        .shared_access_fraction(0.4)
        .seed(2026)
        .build()
}

/// The recorded Figure 14 trace every simulation kernel replays: the
/// generation cost is paid once, outside the timed samples, so kernel
/// throughput measures the cache simulator alone (the `fig14_trace_gen`
/// kernel reports generation throughput separately).
fn fig14_replay(accesses: usize) -> ReplayTrace {
    ReplayTrace::record(&mut fig14_trace(), accesses)
}

/// Measures one `CmpSimConfig` at its 1-bank baseline and each parallel
/// thread count, tagging the parallel rows with speedup vs the baseline
/// median.
fn cmp_sim_kernels(
    options: &BenchOptions,
    sim: &CmpSimConfig,
    id_base: &str,
    desc_base: &str,
    par_threads: &[usize],
    results: &mut Vec<BenchResult>,
) {
    let accesses = options.accesses;
    let mut replay = fig14_replay(accesses);
    results.push(BenchResult::from_samples(
        format!("{id_base}_seq"),
        format!("{desc_base}, 1-bank baseline"),
        1,
        accesses as u64,
        "accesses",
        time_samples(options, || {
            replay.rewind();
            std::hint::black_box(sim.run(&mut replay, accesses, 1).expect("valid"));
        }),
    ));
    let seq_median = results.last().expect("just pushed").median_ns();
    for &threads in par_threads {
        let mut r = BenchResult::from_samples(
            format!("{id_base}_par{threads}"),
            format!(
                "{desc_base}, banked parallel ({} banks)",
                sim.partitioning(threads).banks()
            ),
            threads,
            accesses as u64,
            "accesses",
            time_samples(options, || {
                replay.rewind();
                std::hint::black_box(sim.run(&mut replay, accesses, threads).expect("valid"));
            }),
        );
        let median = r.median_ns();
        if median > 0 {
            r.speedup_vs_sequential = Some(seq_median as f64 / median as f64);
        }
        results.push(r);
    }
}

fn sim_engine_results(options: &BenchOptions) -> Vec<BenchResult> {
    let accesses = options.accesses;
    let mut results = vec![BenchResult::from_samples(
        "fig14_trace_gen",
        "PARSEC-like trace generation",
        1,
        accesses as u64,
        "accesses",
        time_samples(options, || {
            let mut trace = fig14_trace();
            std::hint::black_box(materialize(&mut trace, accesses));
        }),
    )];
    cmp_sim_kernels(
        options,
        &fig14_sim(),
        "fig14_sim",
        "Figure 14 CMP simulation",
        &[2, 4, 8],
        &mut results,
    );
    // Random replacement and mismatched L1/L2 line sizes: the two
    // configurations that historically dropped to one bank, now on the
    // same banked path as everything else.
    let mut random = fig14_sim();
    random.l1 = CacheConfig::new(512, 64, 2)
        .expect("valid L1")
        .with_policy(ReplacementPolicy::Random)
        .with_policy_seed(2026);
    random.l2 = CacheConfig::new(512 << 10, 64, 8)
        .expect("valid L2")
        .with_policy(ReplacementPolicy::Random)
        .with_policy_seed(2027);
    cmp_sim_kernels(
        options,
        &random,
        "random_sim",
        "Random-replacement CMP simulation",
        &[4],
        &mut results,
    );
    let mut mismatched = fig14_sim();
    mismatched.l1 = CacheConfig::new(1 << 10, 64, 2).expect("valid L1");
    mismatched.l2 = CacheConfig::new(512 << 10, 128, 8).expect("valid L2");
    cmp_sim_kernels(
        options,
        &mismatched,
        "mismatched_sim",
        "Mismatched-line-size CMP simulation (64 B L1 / 128 B L2)",
        &[4],
        &mut results,
    );
    let commercial_values = ValueSpec {
        profile: ProfileKind::Commercial,
        seed: 2026,
    };
    let mut replay = fig14_replay(accesses);
    for (label, fill) in [
        (
            "sectored",
            FillSpec::Sectored {
                sectors_per_line: 8,
            },
        ),
        (
            "compressed",
            FillSpec::Compressed {
                compressor: CompressorKind::Fpc,
                values: commercial_values,
            },
        ),
    ] {
        let sim = engine_sim(fill);
        results.push(BenchResult::from_samples(
            format!("{label}_sim_seq"),
            format!("{label} cache simulation, 1-bank baseline"),
            1,
            accesses as u64,
            "accesses",
            time_samples(options, || {
                replay.rewind();
                std::hint::black_box(sim.run(&mut replay, accesses, 1));
            }),
        ));
        let seq_median = results.last().expect("just pushed").median_ns();
        let threads = 4usize;
        let mut r = BenchResult::from_samples(
            format!("{label}_sim_par{threads}"),
            format!(
                "{label} cache simulation, banked parallel ({} banks)",
                sim.partitioning(threads).banks()
            ),
            threads,
            accesses as u64,
            "accesses",
            time_samples(options, || {
                replay.rewind();
                std::hint::black_box(sim.run(&mut replay, accesses, threads));
            }),
        );
        let median = r.median_ns();
        if median > 0 {
            r.speedup_vs_sequential = Some(seq_median as f64 / median as f64);
        }
        results.push(r);
    }
    // The opt-in sampled size estimator next to the exact default, so the
    // accuracy-for-speed trade documented in EXPERIMENTS.md stays
    // measured.
    let sampled_sim = engine_sim(FillSpec::Compressed {
        compressor: CompressorKind::Sampled {
            inner: ExactCompressorKind::Fpc,
            period: 8,
        },
        values: commercial_values,
    });
    results.push(BenchResult::from_samples(
        "compressed_sampled_sim_seq",
        "compressed cache simulation (sampled sizes, period 8), 1-bank baseline",
        1,
        accesses as u64,
        "accesses",
        time_samples(options, || {
            replay.rewind();
            std::hint::black_box(sampled_sim.run(&mut replay, accesses, 1));
        }),
    ));
    results
}

fn compress_results(options: &BenchOptions) -> Vec<BenchResult> {
    // One deterministic commercial-profile line stream shared by every
    // engine, sized off the access budget (64 accesses per line keeps
    // quick mode under a thousand lines).
    let line_count = (options.accesses / 64).max(64);
    let generator = LineValueGenerator::new(ValueProfile::commercial(), 77);
    let lines: Vec<Vec<u8>> = (0..line_count as u64)
        .map(|i| generator.line_bytes(i, 64))
        .collect();
    let engines: Vec<(&str, Box<dyn Compressor>)> = vec![
        ("compress_fpc", Box::new(Fpc::new())),
        ("compress_bdi", Box::new(Bdi::new())),
        ("compress_zero_rle", Box::new(ZeroRle::new())),
        ("compress_best_of", Box::new(BestOf::standard())),
    ];
    engines
        .into_iter()
        .map(|(id, engine)| {
            BenchResult::from_samples(
                id,
                format!(
                    "{} over {line_count} commercial-profile lines",
                    engine.name()
                ),
                1,
                line_count as u64,
                "lines",
                time_samples(options, || {
                    for line in &lines {
                        std::hint::black_box(engine.compress(line));
                    }
                }),
            )
        })
        .collect()
}

fn experiment_results(options: &BenchOptions) -> Vec<BenchResult> {
    ["fig02_traffic_vs_cores", "fig14_parsec_sharing"]
        .into_iter()
        .map(|id| {
            BenchResult::from_samples(
                format!("experiment_{id}"),
                format!("registry experiment {id}, end to end"),
                1,
                1,
                "runs",
                time_samples(options, || {
                    let report = registry::find(id)
                        .unwrap_or_else(|| panic!("{id} in registry"))
                        .run_to_report();
                    assert!(!report.is_failure(), "{id} failed while being timed");
                    std::hint::black_box(report);
                }),
            )
        })
        .collect()
}

/// The `serve` group: starts an in-process [`crate::serve::Server`] on
/// an ephemeral localhost port, drives it with the shared loadgen
/// driver (health checks, cold/memoized solves and sweeps, a mixed
/// batch, a concurrent throughput batch), then drains it; a second,
/// fully-sharded server measures the multi-acceptor throughput kernel.
/// Single-host numbers: client and server share the machine, so treat
/// throughput as a lower bound.
fn serve_results(options: &BenchOptions) -> Result<Vec<BenchResult>, String> {
    let workers = host_parallelism().clamp(2, 4);
    let loadgen_options = crate::serve::loadgen::LoadgenOptions::from_bench(options);
    let drive = |shards: usize,
                 run: &dyn Fn(&std::net::SocketAddr) -> Result<Vec<BenchResult>, String>|
     -> Result<Vec<BenchResult>, String> {
        let config = crate::serve::ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers,
            shards,
            ..crate::serve::ServeConfig::default()
        };
        let server = crate::serve::Server::start(config)
            .map_err(|e| format!("starting serve bench: {e}"))?;
        let outcome = run(&server.addr());
        server.shutdown_handle().shutdown();
        let stats = server.join();
        let results = outcome?;
        if stats.internal > 0 || stats.worker_respawns > 0 {
            return Err(format!(
                "serve bench saw {} internal errors and {} respawns on a clean run",
                stats.internal, stats.worker_respawns
            ));
        }
        Ok(results)
    };
    let mut results = drive(1, &|addr| {
        crate::serve::loadgen::run_against(addr, &loadgen_options)
    })?;
    // Same workload as serve_throughput_c{N}, but with one admission
    // shard (acceptor + queue) per worker instead of a single shared
    // queue — the apples-to-apples sharding comparison.
    results.extend(drive(workers, &|addr| {
        crate::serve::loadgen::throughput_result(
            addr,
            &loadgen_options,
            format!(
                "serve_throughput_sharded_c{}",
                loadgen_options.connections.max(1)
            ),
            " (one admission shard per worker)",
        )
        .map(|result| vec![result])
    })?);
    Ok(results)
}

fn fmt_ms(ns: u64) -> String {
    format!("{:.2}", ns as f64 / 1e6)
}

fn fmt_throughput(v: f64) -> String {
    if v >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1}k", v / 1e3)
    } else {
        format!("{v:.1}")
    }
}

impl BenchGroup {
    /// Renders the group through the standard report machinery, so
    /// `--format ascii|csv|json` all work unchanged.
    pub fn to_report(&self) -> Report {
        let mut report = Report::new(
            format!("bench_{}", self.group),
            "Bench",
            format!("wall-clock benchmarks: {}", self.group),
        );
        report.note(format!(
            "warmup {} + {} iters, {} accesses, host parallelism {}",
            self.options.warmup, self.options.iters, self.options.accesses, self.host_parallelism,
        ));
        report.blank();
        let mut table = TableBlock::new(&[
            "kernel",
            "threads",
            "median ms",
            "p10 ms",
            "p90 ms",
            "p99 ms",
            "throughput/s",
            "speedup",
        ]);
        for r in &self.results {
            table.push_row(vec![
                Value::text(&r.id),
                Value::int(r.threads as u64),
                Value::fmt(fmt_ms(r.median_ns()), r.median_ns() as f64 / 1e6),
                Value::fmt(fmt_ms(r.p10_ns()), r.p10_ns() as f64 / 1e6),
                Value::fmt(fmt_ms(r.p90_ns()), r.p90_ns() as f64 / 1e6),
                Value::fmt(fmt_ms(r.p99_ns()), r.p99_ns() as f64 / 1e6),
                Value::fmt(fmt_throughput(r.items_per_sec()), r.items_per_sec()),
                match r.speedup_vs_sequential {
                    Some(s) => Value::fmt(format!("{s:.2}x"), s),
                    None => Value::empty(),
                },
            ]);
            report.metric(format!("{}_median_ns", r.id), r.median_ns() as f64, None);
        }
        report.table(table);
        report
    }

    /// The machine-readable snapshot (schema [`SNAPSHOT_SCHEMA`]), one
    /// JSON object per group, deterministic key order.
    pub fn snapshot_json(&self) -> String {
        let mut out = format!(
            "{{\"schema\":\"{}\",\"group\":\"{}\",\"warmup\":{},\"iters\":{},\
             \"accesses\":{},\"host_parallelism\":{},\"results\":[",
            SNAPSHOT_SCHEMA,
            self.group,
            self.options.warmup,
            self.options.iters,
            self.options.accesses,
            self.host_parallelism,
        );
        for (i, r) in self.results.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"id\":\"{}\",\"title\":\"{}\",\"threads\":{},\"median_ns\":{},\
                 \"p10_ns\":{},\"p90_ns\":{},\"p99_ns\":{},\"unit\":\"{}\",\
                 \"items_per_sec\":{:.1},\"speedup_vs_sequential\":{}}}",
                r.id,
                r.title,
                r.threads,
                r.median_ns(),
                r.p10_ns(),
                r.p90_ns(),
                r.p99_ns(),
                r.unit,
                r.items_per_sec(),
                r.speedup_vs_sequential
                    .map(|s| format!("{s:.3}"))
                    .unwrap_or_else(|| "null".to_string()),
            ));
        }
        out.push_str("]}\n");
        out
    }

    /// The snapshot's conventional file name.
    pub fn snapshot_filename(&self) -> String {
        format!("BENCH_{}.json", self.group)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> BenchOptions {
        BenchOptions {
            warmup: 0,
            iters: 3,
            accesses: 2_000,
        }
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let r = BenchResult::from_samples("k", "t", 1, 10, "items", vec![30, 10, 20, 50, 40]);
        assert_eq!(r.p10_ns(), 10);
        assert_eq!(r.median_ns(), 30);
        assert_eq!(r.p90_ns(), 50);
        let single = BenchResult::from_samples("k", "t", 1, 10, "items", vec![7]);
        assert_eq!(single.median_ns(), 7);
        assert_eq!(single.p10_ns(), 7);
        assert_eq!(single.p90_ns(), 7);
    }

    #[test]
    fn throughput_uses_the_median() {
        let r = BenchResult::from_samples("k", "t", 1, 1_000, "items", vec![1_000_000]);
        // 1000 items in 1 ms = 1M items/s.
        assert!((r.items_per_sec() - 1e6).abs() < 1.0);
    }

    #[test]
    fn unknown_group_is_an_error() {
        assert!(run_group("nope", &tiny()).is_err());
    }

    #[test]
    fn sim_engine_group_has_sequential_baseline_and_speedups() {
        let g = run_group("sim_engine", &tiny()).unwrap();
        assert_eq!(g.group, "sim_engine");
        let ids: Vec<&str> = g.results.iter().map(|r| r.id.as_str()).collect();
        assert_eq!(
            ids,
            [
                "fig14_trace_gen",
                "fig14_sim_seq",
                "fig14_sim_par2",
                "fig14_sim_par4",
                "fig14_sim_par8",
                "random_sim_seq",
                "random_sim_par4",
                "mismatched_sim_seq",
                "mismatched_sim_par4",
                "sectored_sim_seq",
                "sectored_sim_par4",
                "compressed_sim_seq",
                "compressed_sim_par4",
                "compressed_sampled_sim_seq"
            ]
        );
        for r in &g.results {
            assert!(r.median_ns() > 0, "{}", r.id);
            let has_speedup = r.id.contains("_par");
            assert_eq!(r.speedup_vs_sequential.is_some(), has_speedup, "{}", r.id);
        }
    }

    #[test]
    fn compress_group_covers_every_engine() {
        let g = run_group("compress", &tiny()).unwrap();
        assert_eq!(g.results.len(), 4);
        for r in &g.results {
            assert_eq!(r.unit, "lines");
            assert!(r.items_per_sec() > 0.0, "{}", r.id);
        }
    }

    #[test]
    fn report_and_snapshot_render() {
        let g = run_group("compress", &tiny()).unwrap();
        let report = g.to_report();
        assert_eq!(report.id, "bench_compress");
        assert!(report.to_ascii().contains("median ms"));
        assert!(!report.to_json().is_empty());

        let snap = g.snapshot_json();
        assert!(snap.starts_with("{\"schema\":\"bandwall-bench/3\""));
        assert!(snap.contains("\"p99_ns\":"));
        assert!(snap.contains("\"group\":\"compress\""));
        assert!(snap.contains("\"host_parallelism\":"));
        assert!(snap.ends_with("]}\n"));
        assert_eq!(snap.matches('{').count(), snap.matches('}').count());
        assert_eq!(g.snapshot_filename(), "BENCH_compress.json");
    }
}
