//! Criterion benchmarks of the analytical model's primitives.

use bandwall_model::{Alpha, Baseline, MissRateCurve, ScalingProblem, Technique, TrafficModel};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_power_law(c: &mut Criterion) {
    let curve = MissRateCurve::new(0.1, 1.0, Alpha::COMMERCIAL_AVERAGE).unwrap();
    c.bench_function("power_law_miss_rate", |b| {
        b.iter(|| curve.miss_rate(black_box(4.0)).unwrap())
    });
}

fn bench_relative_traffic(c: &mut Criterion) {
    let model = TrafficModel::new(Baseline::niagara2_like());
    c.bench_function("relative_traffic", |b| {
        b.iter(|| {
            model
                .relative_traffic(black_box(12.0), black_box(1.0 / 3.0))
                .unwrap()
        })
    });
}

fn bench_problem_traffic_with_techniques(c: &mut Criterion) {
    let problem = ScalingProblem::new(Baseline::niagara2_like(), 256.0).with_techniques([
        Technique::cache_link_compression(2.0).unwrap(),
        Technique::dram_cache(8.0).unwrap(),
        Technique::stacked_cache(1).unwrap(),
        Technique::small_cache_lines(0.4).unwrap(),
    ]);
    c.bench_function("traffic_full_combination", |b| {
        b.iter(|| problem.relative_traffic(black_box(150)).unwrap())
    });
}

criterion_group!(
    benches,
    bench_power_law,
    bench_relative_traffic,
    bench_problem_traffic_with_techniques
);
criterion_main!(benches);
