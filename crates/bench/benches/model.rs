//! Benchmarks of the analytical model's primitives.

use bandwall_model::{Alpha, Baseline, MissRateCurve, ScalingProblem, Technique, TrafficModel};
use std::hint::black_box;

#[path = "util/mod.rs"]
mod util;
use util::bench;

fn main() {
    println!("model primitives:");
    let curve = MissRateCurve::new(0.1, 1.0, Alpha::COMMERCIAL_AVERAGE).unwrap();
    bench("power_law_miss_rate", || {
        curve.miss_rate(black_box(4.0)).unwrap()
    });

    let model = TrafficModel::new(Baseline::niagara2_like());
    bench("relative_traffic", || {
        model
            .relative_traffic(black_box(12.0), black_box(1.0 / 3.0))
            .unwrap()
    });

    let problem = ScalingProblem::new(Baseline::niagara2_like(), 256.0).with_techniques([
        Technique::cache_link_compression(2.0).unwrap(),
        Technique::dram_cache(8.0).unwrap(),
        Technique::stacked_cache(1).unwrap(),
        Technique::small_cache_lines(0.4).unwrap(),
    ]);
    bench("traffic_full_combination", || {
        problem.relative_traffic(black_box(150)).unwrap()
    });
}
