//! Ablation benchmark: integer galloping search vs Brent crossover for
//! the supportable-core solver (DESIGN.md design-choice ablation).
//!
//! Both arrive at the same answer (the integer search returns
//! `floor(crossover)`); this measures their relative cost across die
//! sizes.

use bandwall_model::{Baseline, ScalingProblem, Technique};
use std::hint::black_box;

#[path = "util/mod.rs"]
mod util;
use util::bench;

fn main() {
    println!("supportable-core solver:");
    for generation in [1u32, 4, 7] {
        let n2 = 16.0 * 2f64.powi(generation as i32);
        let problem = ScalingProblem::new(Baseline::niagara2_like(), n2);
        bench(&format!("integer_search/gen{generation}"), || {
            black_box(&problem).max_supportable_cores().unwrap()
        });
        bench(&format!("brent_crossover/gen{generation}"), || {
            black_box(&problem).crossover_cores().unwrap()
        });
    }

    let problem = ScalingProblem::new(Baseline::niagara2_like(), 256.0).with_techniques([
        Technique::cache_link_compression(2.0).unwrap(),
        Technique::dram_cache(8.0).unwrap(),
        Technique::stacked_cache(1).unwrap(),
        Technique::small_cache_lines(0.4).unwrap(),
    ]);
    bench("solver_full_combination_16x", || {
        black_box(&problem).max_supportable_cores().unwrap()
    });
}
