//! Ablation benchmark: integer galloping search vs Brent crossover for
//! the supportable-core solver (DESIGN.md design-choice ablation).
//!
//! Both arrive at the same answer (the integer search returns
//! `floor(crossover)`); this measures their relative cost across die
//! sizes.

use bandwall_model::{Baseline, ScalingProblem, Technique};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("supportable_cores");
    for generation in [1u32, 4, 7] {
        let n2 = 16.0 * 2f64.powi(generation as i32);
        let problem = ScalingProblem::new(Baseline::niagara2_like(), n2);
        group.bench_with_input(
            BenchmarkId::new("integer_search", generation),
            &problem,
            |b, p| b.iter(|| black_box(p).max_supportable_cores().unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("brent_crossover", generation),
            &problem,
            |b, p| b.iter(|| black_box(p).crossover_cores().unwrap()),
        );
    }
    group.finish();
}

fn bench_solver_with_techniques(c: &mut Criterion) {
    let problem = ScalingProblem::new(Baseline::niagara2_like(), 256.0).with_techniques([
        Technique::cache_link_compression(2.0).unwrap(),
        Technique::dram_cache(8.0).unwrap(),
        Technique::stacked_cache(1).unwrap(),
        Technique::small_cache_lines(0.4).unwrap(),
    ]);
    c.bench_function("solver_full_combination_16x", |b| {
        b.iter(|| black_box(&problem).max_supportable_cores().unwrap())
    });
}

criterion_group!(benches, bench_solver, bench_solver_with_techniques);
criterion_main!(benches);
