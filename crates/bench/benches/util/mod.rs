//! Minimal timing harness shared by the `harness = false` bench targets.
//!
//! The build environment cannot reach crates.io, so these benches use a
//! small std-only measurement loop instead of Criterion: calibrate an
//! iteration count against a time target, take several timed samples,
//! and report the best (least-noisy) per-iteration latency.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Target wall-clock time per measurement sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(60);
/// Number of timed samples; the minimum is reported.
const SAMPLES: usize = 5;

/// Runs `f` repeatedly and prints `name` with the best observed
/// per-iteration time. Returns that time in nanoseconds.
pub fn bench<R>(name: &str, mut f: impl FnMut() -> R) -> f64 {
    // Calibrate: double the iteration count until a batch takes long
    // enough to time reliably.
    let mut iters: u64 = 1;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let elapsed = start.elapsed();
        if elapsed >= SAMPLE_TARGET / 4 || iters >= 1 << 30 {
            break;
        }
        iters *= 2;
    }
    let mut best = f64::INFINITY;
    for _ in 0..SAMPLES {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let per_iter = start.elapsed().as_nanos() as f64 / iters as f64;
        if per_iter < best {
            best = per_iter;
        }
    }
    println!("{name:<44} {:>14} ns/iter", format_ns(best));
    best
}

/// Formats nanoseconds with thousands separators and two decimals.
fn format_ns(ns: f64) -> String {
    if ns >= 1e6 {
        format!("{:.2}M", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2}k", ns / 1e3)
    } else {
        format!("{ns:.2}")
    }
}
