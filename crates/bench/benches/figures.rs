//! End-to-end benchmarks: the cost of regenerating each analytic figure
//! of the paper (the simulation-driven Figure 14 is exercised at reduced
//! scale).

use bandwall_cache_sim::{CacheConfig, CmpSystem, L2Organization};
use bandwall_model::combination::figure16_combinations;
use bandwall_model::sharing::SharingModel;
use bandwall_model::{catalog, AssumptionLevel, Baseline, ScalingProblem, TrafficModel};
use bandwall_trace::{ParsecLikeTrace, TraceSource};
use std::hint::black_box;

#[path = "util/mod.rs"]
mod util;
use util::bench;

fn main() {
    println!("figure regeneration:");
    let model = TrafficModel::new(Baseline::niagara2_like());
    bench("fig02_traffic_curve", || {
        let mut total = 0.0;
        for p in 1..=28 {
            total += model.relative_traffic_on_die(32.0, p as f64).unwrap();
        }
        black_box(total)
    });

    bench("fig03_die_allocation", || {
        let mut cores = 0;
        for g in 0..=7 {
            let n2 = 16.0 * 2f64.powi(g);
            cores += ScalingProblem::new(Baseline::niagara2_like(), n2)
                .max_supportable_cores()
                .unwrap();
        }
        black_box(cores)
    });

    let sharing = SharingModel::new(Baseline::niagara2_like());
    bench("fig13_required_sharing", || {
        let mut acc = 0.0;
        for cores in [16.0, 32.0, 64.0, 128.0] {
            acc += sharing
                .required_shared_fraction(cores, cores, 1.0)
                .unwrap()
                .unwrap();
        }
        black_box(acc)
    });

    bench("fig15_full_sweep", || {
        let mut total = 0u64;
        for profile in catalog() {
            for level in AssumptionLevel::ALL {
                for g in 1..=4 {
                    let n2 = 16.0 * 2f64.powi(g);
                    total += ScalingProblem::new(Baseline::niagara2_like(), n2)
                        .with_technique(profile.technique(level).unwrap())
                        .max_supportable_cores()
                        .unwrap();
                }
            }
        }
        black_box(total)
    });

    let combos = figure16_combinations(AssumptionLevel::Realistic).unwrap();
    bench("fig16_combinations", || {
        let mut total = 0u64;
        for combo in &combos {
            for g in 1..=4 {
                let n2 = 16.0 * 2f64.powi(g);
                total += ScalingProblem::new(Baseline::niagara2_like(), n2)
                    .with_techniques(combo.techniques().iter().copied())
                    .max_supportable_cores()
                    .unwrap();
            }
        }
        black_box(total)
    });

    bench("fig14_sharing_sim_4core_50k", || {
        let mut cmp = CmpSystem::new(
            4,
            CacheConfig::new(512, 64, 2).unwrap(),
            CacheConfig::new(128 << 10, 64, 8).unwrap(),
            L2Organization::Shared,
        );
        let mut trace = ParsecLikeTrace::builder_with_regions(4, 1000, 500)
            .seed(1)
            .build();
        for a in trace.iter().take(50_000) {
            cmp.access(a);
        }
        black_box(cmp.sharing().unwrap().shared_fraction())
    });
}
