//! Criterion benchmarks of the cache simulator and trace generators.

use bandwall_cache_sim::{
    Cache, CacheConfig, CmpSystem, CoherentCmp, L2Organization, ReplacementPolicy,
    TwoLevelHierarchy,
};
use bandwall_trace::{ParsecLikeTrace, StackDistanceTrace, TraceSource, ZipfTrace};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

const BATCH: usize = 10_000;

fn bench_trace_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_generation");
    group.throughput(Throughput::Elements(BATCH as u64));
    group.bench_function("stack_distance", |b| {
        let mut t = StackDistanceTrace::builder(0.5)
            .seed(1)
            .max_distance(1 << 16)
            .build();
        b.iter(|| {
            for _ in 0..BATCH {
                black_box(t.next_access());
            }
        })
    });
    group.bench_function("zipf", |b| {
        let mut t = ZipfTrace::builder(100_000, 0.9).seed(1).build();
        b.iter(|| {
            for _ in 0..BATCH {
                black_box(t.next_access());
            }
        })
    });
    group.bench_function("parsec_like", |b| {
        let mut t = ParsecLikeTrace::builder(16).seed(1).build();
        b.iter(|| {
            for _ in 0..BATCH {
                black_box(t.next_access());
            }
        })
    });
    group.finish();
}

fn bench_cache_access(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_access");
    group.throughput(Throughput::Elements(BATCH as u64));
    for policy in [
        ReplacementPolicy::Lru,
        ReplacementPolicy::Fifo,
        ReplacementPolicy::Random,
        ReplacementPolicy::TreePlru,
    ] {
        group.bench_with_input(
            BenchmarkId::new("policy", format!("{policy}")),
            &policy,
            |b, &policy| {
                let config = CacheConfig::new(256 << 10, 64, 8)
                    .unwrap()
                    .with_policy(policy);
                let mut cache = Cache::new(config);
                let mut trace = StackDistanceTrace::builder(0.5)
                    .seed(2)
                    .max_distance(1 << 14)
                    .build();
                let accesses: Vec<_> = trace.iter().take(BATCH).collect();
                b.iter(|| {
                    for a in &accesses {
                        black_box(cache.access(a.address(), a.kind().is_write()));
                    }
                })
            },
        );
    }
    group.finish();
}

fn bench_hierarchy_and_cmp(c: &mut Criterion) {
    let mut group = c.benchmark_group("systems");
    group.throughput(Throughput::Elements(BATCH as u64));
    group.bench_function("two_level_hierarchy", |b| {
        let mut h = TwoLevelHierarchy::new(
            CacheConfig::new(16 << 10, 64, 2).unwrap(),
            CacheConfig::new(512 << 10, 64, 8).unwrap(),
        );
        let mut trace = StackDistanceTrace::builder(0.5)
            .seed(3)
            .max_distance(1 << 14)
            .build();
        let accesses: Vec<_> = trace.iter().take(BATCH).collect();
        b.iter(|| {
            for a in &accesses {
                h.access(a.address(), a.kind().is_write());
            }
        })
    });
    group.bench_function("cmp_shared_l2_8core", |b| {
        let mut cmp = CmpSystem::new(
            8,
            CacheConfig::new(16 << 10, 64, 2).unwrap(),
            CacheConfig::new(1 << 20, 64, 8).unwrap(),
            L2Organization::Shared,
        );
        let mut trace = ParsecLikeTrace::builder(8).seed(3).build();
        let accesses: Vec<_> = trace.iter().take(BATCH).collect();
        b.iter(|| {
            for &a in &accesses {
                cmp.access(a);
            }
        })
    });
    group.bench_function("coherent_msi_8core", |b| {
        let mut cmp = CoherentCmp::new(8, CacheConfig::new(128 << 10, 64, 8).unwrap());
        let mut trace = ParsecLikeTrace::builder(8).seed(3).build();
        let accesses: Vec<_> = trace.iter().take(BATCH).collect();
        b.iter(|| {
            for &a in &accesses {
                cmp.access(a);
            }
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_trace_generation,
    bench_cache_access,
    bench_hierarchy_and_cmp
);
criterion_main!(benches);
