//! Benchmarks of the cache simulator and trace generators.

use bandwall_cache_sim::{
    Cache, CacheConfig, CmpSystem, CoherentCmp, L2Organization, ReplacementPolicy,
    TwoLevelHierarchy,
};
use bandwall_trace::{ParsecLikeTrace, StackDistanceTrace, TraceSource, ZipfTrace};
use std::hint::black_box;

#[path = "util/mod.rs"]
mod util;
use util::bench;

const BATCH: usize = 10_000;

fn main() {
    println!("trace_generation ({BATCH} accesses/iter):");
    {
        let mut t = StackDistanceTrace::builder(0.5)
            .seed(1)
            .max_distance(1 << 16)
            .build();
        bench("stack_distance", || {
            for _ in 0..BATCH {
                black_box(t.next_access());
            }
        });
    }
    {
        let mut t = ZipfTrace::builder(100_000, 0.9).seed(1).build();
        bench("zipf", || {
            for _ in 0..BATCH {
                black_box(t.next_access());
            }
        });
    }
    {
        let mut t = ParsecLikeTrace::builder(16).seed(1).build();
        bench("parsec_like", || {
            for _ in 0..BATCH {
                black_box(t.next_access());
            }
        });
    }

    println!("\ncache_access ({BATCH} accesses/iter):");
    for policy in [
        ReplacementPolicy::Lru,
        ReplacementPolicy::Fifo,
        ReplacementPolicy::Random,
        ReplacementPolicy::TreePlru,
    ] {
        let config = CacheConfig::new(256 << 10, 64, 8)
            .unwrap()
            .with_policy(policy);
        let mut cache = Cache::new(config);
        let mut trace = StackDistanceTrace::builder(0.5)
            .seed(2)
            .max_distance(1 << 14)
            .build();
        let accesses: Vec<_> = trace.iter().take(BATCH).collect();
        bench(&format!("policy/{policy}"), || {
            for a in &accesses {
                black_box(cache.access(a.address(), a.kind().is_write()));
            }
        });
    }

    println!("\nsystems ({BATCH} accesses/iter):");
    {
        let mut h = TwoLevelHierarchy::new(
            CacheConfig::new(16 << 10, 64, 2).unwrap(),
            CacheConfig::new(512 << 10, 64, 8).unwrap(),
        );
        let mut trace = StackDistanceTrace::builder(0.5)
            .seed(3)
            .max_distance(1 << 14)
            .build();
        let accesses: Vec<_> = trace.iter().take(BATCH).collect();
        bench("two_level_hierarchy", || {
            for a in &accesses {
                h.access(a.address(), a.kind().is_write());
            }
        });
    }
    {
        let mut cmp = CmpSystem::new(
            8,
            CacheConfig::new(16 << 10, 64, 2).unwrap(),
            CacheConfig::new(1 << 20, 64, 8).unwrap(),
            L2Organization::Shared,
        );
        let mut trace = ParsecLikeTrace::builder(8).seed(3).build();
        let accesses: Vec<_> = trace.iter().take(BATCH).collect();
        bench("cmp_shared_l2_8core", || {
            for &a in &accesses {
                cmp.access(a);
            }
        });
    }
    {
        let mut cmp = CoherentCmp::new(8, CacheConfig::new(128 << 10, 64, 8).unwrap());
        let mut trace = ParsecLikeTrace::builder(8).seed(3).build();
        let accesses: Vec<_> = trace.iter().take(BATCH).collect();
        bench("coherent_msi_8core", || {
            for &a in &accesses {
                cmp.access(a);
            }
        });
    }
}
