//! Benchmarks of the compression engines, per value-pattern class (the
//! FPC-vs-BDI-vs-dictionary ablation of DESIGN.md).

use bandwall_compress::{Bdi, Compressor, DictionaryLine, Fpc, ZeroRle};
use bandwall_trace::values::{LineValueGenerator, ValueProfile};
use std::hint::black_box;

#[path = "util/mod.rs"]
mod util;
use util::bench;

fn main() {
    let engines: Vec<Box<dyn Compressor>> = vec![
        Box::new(Fpc::new()),
        Box::new(Bdi::new()),
        Box::new(ZeroRle::new()),
        Box::new(DictionaryLine::new()),
    ];
    let profiles = [
        ValueProfile::commercial(),
        ValueProfile::integer(),
        ValueProfile::floating_point(),
    ];
    println!("compress_line (64-byte lines):");
    for profile in profiles {
        let values = LineValueGenerator::new(profile.clone(), 5);
        let lines: Vec<Vec<u8>> = (0..64u64).map(|l| values.line_bytes(l * 64, 64)).collect();
        for engine in &engines {
            let mut i = 0;
            bench(&format!("{}/{}", engine.name(), profile.name()), || {
                let line = &lines[i % lines.len()];
                i += 1;
                black_box(engine.compressed_size(line))
            });
        }
    }

    let values = LineValueGenerator::new(ValueProfile::commercial(), 5);
    let line = values.line_bytes(0, 64);
    let fpc = Fpc::new();
    bench("fpc_round_trip", || {
        let compressed = fpc.compress(black_box(&line));
        fpc.decompress(&compressed, 64).unwrap()
    });
}
