//! Criterion benchmarks of the compression engines, per value-pattern
//! class (the FPC-vs-BDI-vs-dictionary ablation of DESIGN.md).

use bandwall_compress::{Bdi, Compressor, DictionaryLine, Fpc, ZeroRle};
use bandwall_trace::values::{LineValueGenerator, ValueProfile};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_engines(c: &mut Criterion) {
    let engines: Vec<Box<dyn Compressor>> = vec![
        Box::new(Fpc::new()),
        Box::new(Bdi::new()),
        Box::new(ZeroRle::new()),
        Box::new(DictionaryLine::new()),
    ];
    let profiles = [
        ValueProfile::commercial(),
        ValueProfile::integer(),
        ValueProfile::floating_point(),
    ];
    let mut group = c.benchmark_group("compress_line");
    group.throughput(Throughput::Bytes(64));
    for profile in profiles {
        let values = LineValueGenerator::new(profile.clone(), 5);
        let lines: Vec<Vec<u8>> = (0..64u64).map(|l| values.line_bytes(l * 64, 64)).collect();
        for engine in &engines {
            group.bench_with_input(
                BenchmarkId::new(engine.name(), profile.name()),
                engine,
                |b, engine| {
                    let mut i = 0;
                    b.iter(|| {
                        let line = &lines[i % lines.len()];
                        i += 1;
                        black_box(engine.compressed_size(line))
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_round_trip(c: &mut Criterion) {
    let values = LineValueGenerator::new(ValueProfile::commercial(), 5);
    let line = values.line_bytes(0, 64);
    let fpc = Fpc::new();
    c.bench_function("fpc_round_trip", |b| {
        b.iter(|| {
            let compressed = fpc.compress(black_box(&line));
            fpc.decompress(&compressed, 64).unwrap()
        })
    });
}

criterion_group!(benches, bench_engines, bench_round_trip);
criterion_main!(benches);
