//! The size-cache differential harness: the compressed-cache fast path
//! (per-line size cache + tag → size memo + skipped recomputation on
//! data-free write hits) must be observably identical to the
//! recompress-every-access **reference mode**
//! ([`EngineSimConfig::run_reference`]) — byte for byte, across
//! compressors, value profiles, write ratios, and thread counts.
//!
//! Three layers of proof:
//!
//! 1. **Differential grid** — full [`EngineSimStats`] equality (hit/miss
//!    counters, traffic bytes, compression statistics) between the
//!    reference mode and the cached-size path at threads 1, 2, 4, and 8.
//! 2. **Property tests** — arbitrary interleavings of reads, dirty
//!    writes, payload-carrying writes, invalidations, and flushes against
//!    one set never leave a resident line whose cached size disagrees
//!    with a direct `compressed_size` of the payload the line holds,
//!    checked after *every* step (including sector writes through
//!    [`SectoredCompressedFill`]).
//! 3. **Zero-recompression guarantee** — a counting `Compressor` wrapper
//!    proves clean read hits and data-free dirty-write hits make zero
//!    compressor calls, and that refills of previously sized lines are
//!    served from the tag → size memo.

use bandwall_cache_sim::{
    CacheConfig, CompressedFill, CompressorKind, EngineSimConfig, FillSpec, PipelineCache,
    ProfileKind, SectoredCompressedFill, ValueSpec,
};
use bandwall_compress::{Compressor, DecompressError};
use bandwall_numerics::Rng;
use bandwall_trace::values::LineValueGenerator;
use bandwall_trace::ParsecLikeTrace;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const THREADS: [usize; 4] = [1, 2, 4, 8];

const PROFILES: [ProfileKind; 3] = [
    ProfileKind::Commercial,
    ProfileKind::Integer,
    ProfileKind::FloatingPoint,
];

/// Light- and write-heavy mixes: size recomputation triggers on dirty
/// writes, so the write ratio is the knob that stresses the cache-update
/// path versus the clean-hit fast path.
const WRITE_FRACTIONS: [f64; 2] = [0.15, 0.6];

const LINE: u64 = 64;

/// A fresh, identically seeded trace per call, so the reference and every
/// thread count see the same access stream. The working set (300 shared +
/// 4 × 200 private lines) overflows the 16 KiB grid cache, keeping
/// budgeted evictions and refills continuous.
fn grid_trace(write_fraction: f64, seed: u64) -> ParsecLikeTrace {
    ParsecLikeTrace::builder_with_regions(4, 300, 200)
        .shared_access_fraction(0.4)
        .write_fraction(write_fraction)
        .seed(seed)
        .build()
}

/// Runs one fill through the full profile × write-ratio × thread grid.
fn assert_matches_reference(fill_for: impl Fn(ProfileKind) -> FillSpec, accesses: usize) {
    for profile in PROFILES {
        let fill = fill_for(profile);
        let config = EngineSimConfig {
            cache: CacheConfig::new(16 << 10, LINE, 8).unwrap(),
            fill,
            flush: true,
        };
        for write_fraction in WRITE_FRACTIONS {
            let seed = 97 ^ (write_fraction * 10.0) as u64;
            let reference =
                config.run_reference(&mut grid_trace(write_fraction, seed), accesses, 1);
            for threads in THREADS {
                let fast = config.run(&mut grid_trace(write_fraction, seed), accesses, threads);
                assert_eq!(
                    reference, fast,
                    "fill {fill:?}, profile {profile:?}, write fraction {write_fraction}, \
                     threads {threads}"
                );
            }
        }
    }
}

fn compressed(compressor: CompressorKind) -> impl Fn(ProfileKind) -> FillSpec {
    move |profile| FillSpec::Compressed {
        compressor,
        values: ValueSpec { profile, seed: 11 },
    }
}

#[test]
fn fpc_grid_matches_reference() {
    assert_matches_reference(compressed(CompressorKind::Fpc), 8_000);
}

#[test]
fn bdi_grid_matches_reference() {
    assert_matches_reference(compressed(CompressorKind::Bdi), 8_000);
}

#[test]
fn zero_rle_grid_matches_reference() {
    assert_matches_reference(compressed(CompressorKind::ZeroRle), 8_000);
}

#[test]
fn best_of_grid_matches_reference() {
    assert_matches_reference(compressed(CompressorKind::BestOf), 6_000);
}

#[test]
fn sectored_compressed_grid_matches_reference() {
    // The composed fill shares the whole budgeted size path; one exact
    // compressor covers it without re-running the full compressor axis.
    assert_matches_reference(
        |profile| FillSpec::SectoredCompressed {
            sectors_per_line: 8,
            compressor: CompressorKind::Fpc,
            values: ValueSpec { profile, seed: 11 },
        },
        6_000,
    );
}

#[test]
fn reference_mode_itself_banks_bit_identically() {
    // The reference mode is the yardstick: it must itself be independent
    // of the bank count, or grid failures would be ambiguous.
    let config = EngineSimConfig {
        cache: CacheConfig::new(16 << 10, LINE, 8).unwrap(),
        fill: FillSpec::Compressed {
            compressor: CompressorKind::Fpc,
            values: ValueSpec {
                profile: ProfileKind::Commercial,
                seed: 11,
            },
        },
        flush: true,
    };
    let sequential = config.run_reference(&mut grid_trace(0.5, 7), 8_000, 1);
    for threads in [2, 8] {
        let banked = config.run_reference(&mut grid_trace(0.5, 7), 8_000, threads);
        assert_eq!(sequential, banked, "reference mode, threads {threads}");
    }
}

#[test]
fn sampled_compressor_is_deterministic_sequentially() {
    // `Sampled` trades exactness for speed: repeated sequential runs are
    // identical, but the estimate depends on query order, so it is
    // opt-in and excluded from the cross-thread grid (see DESIGN.md).
    let kind = CompressorKind::Sampled {
        inner: bandwall_cache_sim::ExactCompressorKind::Fpc,
        period: 8,
    };
    assert!(!kind.is_exact());
    let config = EngineSimConfig {
        cache: CacheConfig::new(16 << 10, LINE, 8).unwrap(),
        fill: FillSpec::Compressed {
            compressor: kind,
            values: ValueSpec {
                profile: ProfileKind::Commercial,
                seed: 11,
            },
        },
        flush: true,
    };
    let first = config.run(&mut grid_trace(0.5, 7), 8_000, 1);
    let second = config.run(&mut grid_trace(0.5, 7), 8_000, 1);
    assert_eq!(first, second);
    assert!(first.compression.lines() > 0);
}

// ---------------------------------------------------------------------------
// Property tests: the size-cache invalidation contract (DESIGN.md).
// ---------------------------------------------------------------------------

/// The engine's stored-size rule: compressed size, capped at the line
/// size (a line never occupies more than its uncompressed self).
fn expected_size(compressor: &dyn Compressor, payload: &[u8]) -> u64 {
    (compressor.compressed_size(payload) as u64).min(LINE)
}

/// Single-set geometry: every tag collides, so evictions, refills, and
/// budget shrinks all interleave in one place.
fn one_set_config() -> CacheConfig {
    CacheConfig::new(8 * LINE, LINE, 8).unwrap()
}

#[test]
fn generator_backed_sizes_never_go_stale() {
    // Arbitrary read / dirty-write / invalidate / flush interleavings:
    // after every step, every resident line's cached size must equal a
    // direct recompression of its generator payload.
    for kind in [CompressorKind::Fpc, CompressorKind::BestOf] {
        for seed in [1u64, 29, 303] {
            let generator = LineValueGenerator::new(ProfileKind::Commercial.profile(), seed);
            let compressor = kind.build();
            let fill = CompressedFill::new(kind.build()).with_values(generator.clone());
            let mut cache = PipelineCache::with_fill(one_set_config(), fill);
            let mut rng = Rng::seed_from_stream(0xD1FF, seed);
            for step in 0..1_200 {
                let tag = rng.gen_below(24);
                let address = tag * LINE;
                match rng.gen_below(10) {
                    0..=5 => {
                        cache.access(address, false);
                    }
                    6..=7 => {
                        cache.access(address, true);
                    }
                    8 => {
                        cache.invalidate(address);
                    }
                    _ => {
                        if rng.gen_below(16) == 0 {
                            cache.flush();
                        } else {
                            cache.mark_dirty(address);
                        }
                    }
                }
                for (line_address, size) in cache.stored_sizes() {
                    let payload = generator.line_bytes(line_address * LINE, LINE as usize);
                    assert_eq!(
                        size,
                        expected_size(compressor.as_ref(), &payload),
                        "stale size for line {line_address} after step {step} \
                         (compressor {kind:?}, seed {seed})"
                    );
                }
            }
        }
    }
}

/// A deterministic caller payload for `(tag, version)`; every third
/// version is half zeros so sizes genuinely change across dirty writes.
fn caller_payload(tag: u64, version: u64) -> Vec<u8> {
    let mut rng = Rng::seed_from_stream(tag.wrapping_mul(0x9E37), version);
    let mut out = Vec::with_capacity(LINE as usize);
    for word in 0..LINE / 8 {
        let value = if version.is_multiple_of(3) && word >= 4 {
            0u64
        } else {
            rng.next_u64()
        };
        out.extend_from_slice(&value.to_le_bytes());
    }
    out
}

#[test]
fn caller_payload_sizes_track_the_latest_dirty_write() {
    // Payload-carrying accesses (no generator attached): the cached size
    // must always reflect the payload supplied at the line's last fill or
    // dirty write — data-free reads and writes must not disturb it.
    for seed in [5u64, 47] {
        let compressor = CompressorKind::Fpc.build();
        let fill = CompressedFill::new(CompressorKind::Fpc.build());
        let mut cache = PipelineCache::with_fill(one_set_config(), fill);
        let mut rng = Rng::seed_from_stream(0xCA11, seed);
        let mut versions: HashMap<u64, u64> = HashMap::new();
        for step in 0..1_200 {
            let tag = rng.gen_below(24);
            let address = tag * LINE;
            let resident = cache.stored_sizes().iter().any(|&(t, _)| t == tag);
            match rng.gen_below(10) {
                0..=3 => {
                    // Read with the line's current payload (fills on miss).
                    let version = *versions.entry(tag).or_insert(0);
                    cache.access_with_data(address, false, &caller_payload(tag, version));
                }
                4..=6 => {
                    // Dirty write with a *new* payload: the one operation
                    // allowed to change the stored size.
                    let version = versions.entry(tag).or_insert(0);
                    *version += 1;
                    cache.access_with_data(address, true, &caller_payload(tag, *version));
                }
                7..=8 if resident => {
                    // Data-free accesses are only legal on resident lines
                    // (no generator to synthesise a fill payload); the
                    // data-free dirty write exercises the skipped
                    // recomputation path.
                    cache.access(address, step % 2 == 0);
                }
                _ => {
                    cache.invalidate(address);
                }
            }
            for (line_address, size) in cache.stored_sizes() {
                let version = versions.get(&line_address).copied().unwrap_or(0);
                let payload = caller_payload(line_address, version);
                assert_eq!(
                    size,
                    expected_size(compressor.as_ref(), &payload),
                    "line {line_address} does not match its version-{version} payload \
                     after step {step} (seed {seed})"
                );
            }
        }
    }
}

#[test]
fn sector_writes_keep_generator_sizes_fresh() {
    // SectoredCompressedFill: sector-granularity accesses (including
    // sector misses into resident lines) against the same invariant.
    let seed = 17u64;
    let generator = LineValueGenerator::new(ProfileKind::FloatingPoint.profile(), seed);
    let compressor = CompressorKind::Fpc.build();
    let fill =
        SectoredCompressedFill::new(8, CompressorKind::Fpc.build()).with_values(generator.clone());
    let mut cache = PipelineCache::with_fill(one_set_config(), fill);
    let mut rng = Rng::seed_from_stream(0x5EC7, seed);
    let mut sector_accesses = 0u64;
    for step in 0..1_200 {
        let tag = rng.gen_below(24);
        let sector = rng.gen_below(8);
        let address = tag * LINE + sector * (LINE / 8);
        match rng.gen_below(8) {
            0..=5 => {
                cache.access(address, rng.gen_below(2) == 0);
                sector_accesses += 1;
            }
            6 => {
                cache.invalidate(tag * LINE);
            }
            _ => {
                cache.mark_dirty(tag * LINE);
            }
        }
        for (line_address, size) in cache.stored_sizes() {
            let payload = generator.line_bytes(line_address * LINE, LINE as usize);
            assert_eq!(
                size,
                expected_size(compressor.as_ref(), &payload),
                "stale sectored size for line {line_address} after step {step}"
            );
        }
    }
    assert!(sector_accesses > 0);
    assert!(
        cache.sector_misses() > 0,
        "the interleaving must actually exercise sector misses"
    );
}

// ---------------------------------------------------------------------------
// Zero-recompression guarantee: the counting-compressor probe.
// ---------------------------------------------------------------------------

/// Counts every size/compress query, sharing the counter across
/// `clone_box` so clones made by the engine still report here.
struct CountingCompressor {
    inner: Box<dyn Compressor>,
    calls: Arc<AtomicU64>,
}

impl Compressor for CountingCompressor {
    fn name(&self) -> &'static str {
        "counting"
    }

    fn compress(&self, line: &[u8]) -> Vec<u8> {
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.inner.compress(line)
    }

    fn decompress(&self, data: &[u8], original_len: usize) -> Result<Vec<u8>, DecompressError> {
        self.inner.decompress(data, original_len)
    }

    fn compressed_size(&self, line: &[u8]) -> usize {
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.inner.compressed_size(line)
    }

    fn clone_box(&self) -> Box<dyn Compressor> {
        Box::new(CountingCompressor {
            inner: self.inner.clone_box(),
            calls: Arc::clone(&self.calls),
        })
    }
}

#[test]
fn clean_hits_make_zero_compressor_calls() {
    let calls = Arc::new(AtomicU64::new(0));
    let counting = CountingCompressor {
        inner: CompressorKind::Fpc.build(),
        calls: Arc::clone(&calls),
    };
    let generator = LineValueGenerator::new(ProfileKind::Commercial.profile(), 9);
    let fill = CompressedFill::new(Box::new(counting)).with_values(generator);
    let config = CacheConfig::new(4 << 10, LINE, 8).unwrap();
    let mut cache = PipelineCache::with_fill(config, fill);

    // Warm 32 lines (cold misses each compress once to size the fill).
    let tags: Vec<u64> = (0..32).collect();
    for &tag in &tags {
        cache.access(tag * LINE, false);
    }
    let after_warm = calls.load(Ordering::Relaxed);
    assert!(
        after_warm >= tags.len() as u64,
        "misses must size their fills"
    );

    // Clean read hits: the tentpole guarantee — zero compressor calls.
    for _ in 0..10 {
        for &tag in &tags {
            cache.access(tag * LINE, false);
        }
    }
    assert_eq!(
        calls.load(Ordering::Relaxed),
        after_warm,
        "clean read hits must not touch the compressor"
    );

    // Data-free dirty-write hits: the generator is pure, so the engine
    // skips recomputation entirely.
    for &tag in &tags {
        cache.access(tag * LINE, true);
    }
    assert_eq!(
        calls.load(Ordering::Relaxed),
        after_warm,
        "data-free dirty-write hits must not recompress"
    );

    // Refill after invalidation: the tag → size memo answers without a
    // compressor (or generator) call.
    cache.invalidate(0);
    cache.access(0, false);
    assert_eq!(
        calls.load(Ordering::Relaxed),
        after_warm,
        "memoised refills must not recompress"
    );

    // A payload-carrying write is the one hit that must recompress.
    let payload = vec![0u8; LINE as usize];
    cache.access_with_data(LINE, true, &payload);
    assert!(
        calls.load(Ordering::Relaxed) > after_warm,
        "payload-carrying writes must resize through the compressor"
    );
}
