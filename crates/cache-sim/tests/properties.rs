//! Property-based tests of the cache simulator's invariants.

use bandwall_cache_sim::{
    Cache, CacheConfig, CmpSystem, InclusionPolicy, L2Organization, ReplacementPolicy,
    SectoredCache, TwoLevelHierarchy,
};
use bandwall_trace::{MemoryAccess, StackDistanceTrace, TraceSource};
use proptest::prelude::*;

fn any_policy() -> impl Strategy<Value = ReplacementPolicy> {
    prop_oneof![
        Just(ReplacementPolicy::Lru),
        Just(ReplacementPolicy::Fifo),
        Just(ReplacementPolicy::Random),
        Just(ReplacementPolicy::TreePlru),
    ]
}

fn small_stream() -> impl Strategy<Value = Vec<(u64, bool)>> {
    proptest::collection::vec((0u64..64, any::<bool>()), 1..600)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Bookkeeping identities hold for every policy and stream:
    /// hits + misses = accesses, writebacks <= evictions <= misses,
    /// resident lines <= capacity.
    #[test]
    fn counter_identities(policy in any_policy(), stream in small_stream()) {
        let config = CacheConfig::new(1024, 64, 4).unwrap().with_policy(policy);
        let mut cache = Cache::new(config);
        for &(line, write) in &stream {
            cache.access(line * 64, write);
        }
        let s = cache.stats();
        prop_assert_eq!(s.hits() + s.misses(), stream.len() as u64);
        prop_assert!(s.writebacks() <= s.evictions());
        prop_assert!(s.evictions() <= s.misses());
        prop_assert!(s.cold_misses() <= s.misses());
        prop_assert!(cache.resident_lines() as u64 <= config.lines());
        // Conservation: misses = evictions + still-resident fills... each
        // miss inserts a line; each eviction removes one.
        prop_assert_eq!(
            s.misses(),
            s.evictions() + cache.resident_lines() as u64
        );
    }

    /// The same stream against a larger fully-associative LRU cache never
    /// misses more (inclusion property).
    #[test]
    fn lru_inclusion(stream in small_stream()) {
        let misses = |lines: u32| {
            let mut c = Cache::new(CacheConfig::new(64 * lines as u64, 64, lines).unwrap());
            for &(line, write) in &stream {
                c.access(line * 64, write);
            }
            c.stats().misses()
        };
        prop_assert!(misses(16) >= misses(32));
        prop_assert!(misses(32) >= misses(64));
    }

    /// A cache never reports a hit for a line it has not seen, and always
    /// hits an immediately repeated access.
    #[test]
    fn hit_semantics(stream in small_stream()) {
        let mut cache = Cache::new(CacheConfig::new(4096, 64, 4).unwrap());
        let mut seen = std::collections::HashSet::new();
        for &(line, write) in &stream {
            let out = cache.access(line * 64, write);
            if out.is_hit() {
                prop_assert!(seen.contains(&line), "hit on unseen line {line}");
            }
            seen.insert(line);
            // Immediate re-access must hit (the line was just filled).
            prop_assert!(cache.access(line * 64, false).is_hit());
        }
    }

    /// Without writes there are never write-backs, at any level.
    #[test]
    fn read_only_streams_never_write_back(seed in any::<u64>()) {
        let mut h = TwoLevelHierarchy::new(
            CacheConfig::new(1 << 10, 64, 2).unwrap(),
            CacheConfig::new(8 << 10, 64, 4).unwrap(),
        );
        let mut t = StackDistanceTrace::builder(0.5)
            .seed(seed)
            .write_fraction(0.0)
            .max_distance(1 << 10)
            .build();
        for a in t.iter().take(5000) {
            h.access(a.address(), a.kind().is_write());
        }
        h.flush();
        prop_assert_eq!(h.memory_traffic().written_bytes(), 0);
    }

    /// Memory traffic only grows as accesses stream through.
    #[test]
    fn traffic_monotone_over_time(seed in any::<u64>()) {
        let mut h = TwoLevelHierarchy::new(
            CacheConfig::new(512, 64, 2).unwrap(),
            CacheConfig::new(4096, 64, 4).unwrap(),
        );
        let mut t = StackDistanceTrace::builder(0.5)
            .seed(seed)
            .max_distance(1 << 10)
            .build();
        let mut last = 0;
        for a in t.iter().take(2000) {
            h.access(a.address(), a.kind().is_write());
            let now = h.memory_traffic().total_bytes();
            prop_assert!(now >= last);
            last = now;
        }
    }

    /// A sectored cache's fetch traffic never exceeds the whole-line
    /// equivalent, and savings sit in [0, 1).
    #[test]
    fn sectored_never_fetches_more(stream in small_stream(), sectors in 1u32..=8) {
        let sectors = 1u32 << (sectors.trailing_zeros() % 4); // 1,2,4,8
        let mut c = SectoredCache::new(CacheConfig::new(1024, 64, 4).unwrap(), sectors);
        for &(line, write) in &stream {
            c.access(line * 64, write);
        }
        prop_assert!(c.traffic().fetched_bytes() <= c.conventional_fetch_bytes());
        let savings = c.fetch_savings();
        prop_assert!((0.0..1.0).contains(&savings) || savings == 0.0);
    }

    /// Shared-L2 CMPs never fetch a line more than private-L2 CMPs of the
    /// same per-core capacity when every access is to shared data.
    #[test]
    fn shared_l2_at_most_private_fetches(cores in 2u16..8) {
        let mut shared = CmpSystem::new(
            cores,
            CacheConfig::new(512, 64, 2).unwrap(),
            CacheConfig::new(8 << 10, 64, 4).unwrap(),
            L2Organization::Shared,
        );
        let mut private = CmpSystem::new(
            cores,
            CacheConfig::new(512, 64, 2).unwrap(),
            CacheConfig::new(8 << 10, 64, 4).unwrap(),
            L2Organization::Private,
        );
        for i in 0..2000u64 {
            let access = MemoryAccess::read((i % 64) * 64).on_thread((i % cores as u64) as u16);
            shared.access(access);
            private.access(access);
        }
        prop_assert!(
            shared.memory_traffic().fetched_bytes()
                <= private.memory_traffic().fetched_bytes()
        );
    }

    /// MSI invariants hold on arbitrary multi-core streams: copies never
    /// exceed the core count, a written line has exactly one copy, and
    /// memory is fetched at most once while a line stays chip-resident.
    #[test]
    fn msi_invariants(
        stream in proptest::collection::vec((0u64..16, 0u16..4, any::<bool>()), 1..500)
    ) {
        use bandwall_cache_sim::CoherentCmp;
        let mut cmp = CoherentCmp::new(4, CacheConfig::new(4096, 64, 4).unwrap());
        for &(line, core, write) in &stream {
            let access = if write {
                MemoryAccess::write(line * 64)
            } else {
                MemoryAccess::read(line * 64)
            }
            .on_thread(core);
            cmp.access(access);
            prop_assert!(cmp.copies_of(line * 64) <= 4);
            if write {
                prop_assert_eq!(cmp.copies_of(line * 64), 1, "writer holds sole copy");
            }
        }
        // With 16 lines and 64-line caches nothing is ever evicted, so
        // each line is fetched from memory exactly once.
        let distinct: std::collections::HashSet<u64> =
            stream.iter().map(|&(l, _, _)| l).collect();
        prop_assert_eq!(
            cmp.memory_traffic().fetched_bytes(),
            distinct.len() as u64 * 64
        );
    }

    /// Inclusion policies agree on read-only streams that fit in the L1
    /// (no evictions anywhere): same traffic, same hits.
    #[test]
    fn inclusion_policies_agree_on_tiny_streams(
        lines in proptest::collection::vec(0u64..8, 1..200)
    ) {
        let run = |inclusion: InclusionPolicy| {
            let mut h = TwoLevelHierarchy::new(
                CacheConfig::new(1024, 64, 2).unwrap(),
                CacheConfig::new(4096, 64, 4).unwrap(),
            )
            .with_inclusion(inclusion);
            for &l in &lines {
                h.access(l * 64, false);
            }
            (h.memory_traffic().total_bytes(), h.l1().stats().hits())
        };
        let a = run(InclusionPolicy::NonInclusive);
        let b = run(InclusionPolicy::Inclusive);
        let c = run(InclusionPolicy::Exclusive);
        prop_assert_eq!(a, b);
        prop_assert_eq!(b, c);
    }

    /// Flush leaves the cache empty and stats consistent.
    #[test]
    fn flush_empties(stream in small_stream()) {
        let mut cache = Cache::new(CacheConfig::new(2048, 64, 4).unwrap());
        for &(line, write) in &stream {
            cache.access(line * 64, write);
        }
        let resident = cache.resident_lines();
        let flushed = cache.flush();
        prop_assert_eq!(flushed.len(), resident);
        prop_assert_eq!(cache.resident_lines(), 0);
    }
}
