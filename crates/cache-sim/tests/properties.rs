//! Property-style tests of the cache simulator's invariants, driven by a
//! seeded [`Rng`] instead of an external property-testing framework.

use bandwall_cache_sim::{
    Cache, CacheConfig, CmpSystem, InclusionPolicy, L2Organization, ReplacementPolicy,
    SectoredCache, TwoLevelHierarchy,
};
use bandwall_numerics::Rng;
use bandwall_trace::{MemoryAccess, StackDistanceTrace, TraceSource};

const CASES: usize = 48;

fn any_policy(rng: &mut Rng) -> ReplacementPolicy {
    match rng.gen_range(0..4u32) {
        0 => ReplacementPolicy::Lru,
        1 => ReplacementPolicy::Fifo,
        2 => ReplacementPolicy::Random,
        _ => ReplacementPolicy::TreePlru,
    }
}

fn small_stream(rng: &mut Rng) -> Vec<(u64, bool)> {
    let n = rng.gen_range(1..600usize);
    (0..n)
        .map(|_| (rng.gen_range(0..64u64), rng.gen_bool(0.5)))
        .collect()
}

/// Bookkeeping identities hold for every policy and stream:
/// hits + misses = accesses, writebacks <= evictions <= misses,
/// resident lines <= capacity.
#[test]
fn counter_identities() {
    let mut rng = Rng::seed_from_u64(501);
    for _ in 0..CASES {
        let policy = any_policy(&mut rng);
        let stream = small_stream(&mut rng);
        let config = CacheConfig::new(1024, 64, 4).unwrap().with_policy(policy);
        let mut cache = Cache::new(config);
        for &(line, write) in &stream {
            cache.access(line * 64, write);
        }
        let s = cache.stats();
        assert_eq!(s.hits() + s.misses(), stream.len() as u64);
        assert!(s.writebacks() <= s.evictions());
        assert!(s.evictions() <= s.misses());
        assert!(s.cold_misses() <= s.misses());
        assert!(cache.resident_lines() as u64 <= config.lines());
        // Conservation: each miss inserts a line; each eviction removes one.
        assert_eq!(s.misses(), s.evictions() + cache.resident_lines() as u64);
    }
}

/// The same stream against a larger fully-associative LRU cache never
/// misses more (inclusion property).
#[test]
fn lru_inclusion() {
    let mut rng = Rng::seed_from_u64(502);
    for _ in 0..CASES {
        let stream = small_stream(&mut rng);
        let misses = |lines: u32| {
            let mut c = Cache::new(CacheConfig::new(64 * lines as u64, 64, lines).unwrap());
            for &(line, write) in &stream {
                c.access(line * 64, write);
            }
            c.stats().misses()
        };
        assert!(misses(16) >= misses(32));
        assert!(misses(32) >= misses(64));
    }
}

/// A cache never reports a hit for a line it has not seen, and always
/// hits an immediately repeated access.
#[test]
fn hit_semantics() {
    let mut rng = Rng::seed_from_u64(503);
    for _ in 0..CASES {
        let stream = small_stream(&mut rng);
        let mut cache = Cache::new(CacheConfig::new(4096, 64, 4).unwrap());
        let mut seen = std::collections::HashSet::new();
        for &(line, write) in &stream {
            let out = cache.access(line * 64, write);
            if out.is_hit() {
                assert!(seen.contains(&line), "hit on unseen line {line}");
            }
            seen.insert(line);
            // Immediate re-access must hit (the line was just filled).
            assert!(cache.access(line * 64, false).is_hit());
        }
    }
}

/// Without writes there are never write-backs, at any level.
#[test]
fn read_only_streams_never_write_back() {
    let mut rng = Rng::seed_from_u64(504);
    for _ in 0..CASES {
        let seed = rng.next_u64();
        let mut h = TwoLevelHierarchy::new(
            CacheConfig::new(1 << 10, 64, 2).unwrap(),
            CacheConfig::new(8 << 10, 64, 4).unwrap(),
        );
        let mut t = StackDistanceTrace::builder(0.5)
            .seed(seed)
            .write_fraction(0.0)
            .max_distance(1 << 10)
            .build();
        for a in t.iter().take(5000) {
            h.access(a.address(), a.kind().is_write());
        }
        h.flush();
        assert_eq!(h.memory_traffic().written_bytes(), 0);
    }
}

/// Memory traffic only grows as accesses stream through.
#[test]
fn traffic_monotone_over_time() {
    let mut rng = Rng::seed_from_u64(505);
    for _ in 0..CASES {
        let seed = rng.next_u64();
        let mut h = TwoLevelHierarchy::new(
            CacheConfig::new(512, 64, 2).unwrap(),
            CacheConfig::new(4096, 64, 4).unwrap(),
        );
        let mut t = StackDistanceTrace::builder(0.5)
            .seed(seed)
            .max_distance(1 << 10)
            .build();
        let mut last = 0;
        for a in t.iter().take(2000) {
            h.access(a.address(), a.kind().is_write());
            let now = h.memory_traffic().total_bytes();
            assert!(now >= last);
            last = now;
        }
    }
}

/// A sectored cache's fetch traffic never exceeds the whole-line
/// equivalent, and savings sit in [0, 1).
#[test]
fn sectored_never_fetches_more() {
    let mut rng = Rng::seed_from_u64(506);
    for _ in 0..CASES {
        let stream = small_stream(&mut rng);
        let sectors = 1u32 << rng.gen_range(0..4u32); // 1,2,4,8
        let mut c = SectoredCache::new(CacheConfig::new(1024, 64, 4).unwrap(), sectors);
        for &(line, write) in &stream {
            c.access(line * 64, write);
        }
        assert!(c.traffic().fetched_bytes() <= c.conventional_fetch_bytes());
        let savings = c.fetch_savings();
        assert!((0.0..1.0).contains(&savings) || savings == 0.0);
    }
}

/// Shared-L2 CMPs never fetch a line more than private-L2 CMPs of the
/// same per-core capacity when every access is to shared data.
#[test]
fn shared_l2_at_most_private_fetches() {
    for cores in 2u16..8 {
        let mut shared = CmpSystem::new(
            cores,
            CacheConfig::new(512, 64, 2).unwrap(),
            CacheConfig::new(8 << 10, 64, 4).unwrap(),
            L2Organization::Shared,
        );
        let mut private = CmpSystem::new(
            cores,
            CacheConfig::new(512, 64, 2).unwrap(),
            CacheConfig::new(8 << 10, 64, 4).unwrap(),
            L2Organization::Private,
        );
        for i in 0..2000u64 {
            let access = MemoryAccess::read((i % 64) * 64).on_thread((i % cores as u64) as u16);
            shared.access(access);
            private.access(access);
        }
        assert!(
            shared.memory_traffic().fetched_bytes() <= private.memory_traffic().fetched_bytes()
        );
    }
}

/// MSI invariants hold on arbitrary multi-core streams: copies never
/// exceed the core count, a written line has exactly one copy, and
/// memory is fetched at most once while a line stays chip-resident.
#[test]
fn msi_invariants() {
    use bandwall_cache_sim::CoherentCmp;
    let mut rng = Rng::seed_from_u64(507);
    for _ in 0..CASES {
        let n = rng.gen_range(1..500usize);
        let stream: Vec<(u64, u16, bool)> = (0..n)
            .map(|_| {
                (
                    rng.gen_range(0..16u64),
                    rng.gen_range(0..4u16),
                    rng.gen_bool(0.5),
                )
            })
            .collect();
        let mut cmp = CoherentCmp::new(4, CacheConfig::new(4096, 64, 4).unwrap());
        for &(line, core, write) in &stream {
            let access = if write {
                MemoryAccess::write(line * 64)
            } else {
                MemoryAccess::read(line * 64)
            }
            .on_thread(core);
            cmp.access(access);
            assert!(cmp.copies_of(line * 64) <= 4);
            if write {
                assert_eq!(cmp.copies_of(line * 64), 1, "writer holds sole copy");
            }
        }
        // With 16 lines and 64-line caches nothing is ever evicted, so
        // each line is fetched from memory exactly once.
        let distinct: std::collections::HashSet<u64> = stream.iter().map(|&(l, _, _)| l).collect();
        assert_eq!(
            cmp.memory_traffic().fetched_bytes(),
            distinct.len() as u64 * 64
        );
    }
}

/// Inclusion policies agree on read-only streams that fit in the L1
/// (no evictions anywhere): same traffic, same hits.
#[test]
fn inclusion_policies_agree_on_tiny_streams() {
    let mut rng = Rng::seed_from_u64(508);
    for _ in 0..CASES {
        let n = rng.gen_range(1..200usize);
        let lines: Vec<u64> = (0..n).map(|_| rng.gen_range(0..8u64)).collect();
        let run = |inclusion: InclusionPolicy| {
            let mut h = TwoLevelHierarchy::new(
                CacheConfig::new(1024, 64, 2).unwrap(),
                CacheConfig::new(4096, 64, 4).unwrap(),
            )
            .with_inclusion(inclusion);
            for &l in &lines {
                h.access(l * 64, false);
            }
            (h.memory_traffic().total_bytes(), h.l1().stats().hits())
        };
        let a = run(InclusionPolicy::NonInclusive);
        let b = run(InclusionPolicy::Inclusive);
        let c = run(InclusionPolicy::Exclusive);
        assert_eq!(a, b);
        assert_eq!(b, c);
    }
}

/// Flush leaves the cache empty and stats consistent.
#[test]
fn flush_empties() {
    let mut rng = Rng::seed_from_u64(509);
    for _ in 0..CASES {
        let stream = small_stream(&mut rng);
        let mut cache = Cache::new(CacheConfig::new(2048, 64, 4).unwrap());
        for &(line, write) in &stream {
            cache.access(line * 64, write);
        }
        let resident = cache.resident_lines();
        let flushed = cache.flush();
        assert_eq!(flushed.len(), resident);
        assert_eq!(cache.resident_lines(), 0);
    }
}
