//! Differential tests: `run(trace, n, threads)` must produce the same
//! statistics *bit for bit* at every thread count — miss counts,
//! cold-miss classification, eviction and write-back counts, traffic
//! bytes, sharing fractions, and coherence events all included. The
//! 1-thread run is the reference: it is the same engine with one bank,
//! not a separate code path.
//!
//! The grid deliberately includes the configurations that historically
//! fell back to a sequential path — Random replacement and mismatched
//! L1/L2 line sizes — and asserts through the [`Partitioning`] API that
//! **zero** grid configurations degrade to a single bank when more than
//! one thread is requested.

use bandwall_cache_sim::{
    CacheConfig, CmpSimConfig, CoherentSimConfig, CompressorKind, EngineSimConfig, FillSpec,
    L2Organization, Partitioning, ProfileKind, ReplacementPolicy, ValueSpec,
};
use bandwall_trace::{MixTrace, ParsecLikeTrace, StridedTrace, TraceSource, ZipfTrace};

const THREADS: [usize; 4] = [1, 2, 4, 8];

const WORKLOADS: usize = 3;

/// The workload grid: entry `index` builds a fresh, identically seeded
/// trace every call, so every thread count sees the same stream.
fn workload(index: usize, cores: u16, seed: u64) -> Box<dyn TraceSource> {
    match index {
        0 => Box::new(
            ParsecLikeTrace::builder_with_regions(cores, 800, 500)
                .shared_access_fraction(0.4)
                .seed(seed)
                .build(),
        ),
        1 => Box::new(
            ParsecLikeTrace::builder(cores)
                .write_fraction(0.5)
                .echo_probability(0.3)
                .seed(seed ^ 0xABCD)
                .build(),
        ),
        _ => Box::new(
            MixTrace::builder()
                .component(Box::new(ZipfTrace::builder(4096, 0.9).build()), 2.0)
                .component(Box::new(StridedTrace::new(1 << 20, 64, 6000)), 1.0)
                .seed(seed)
                .build(),
        ),
    }
}

/// No configuration in the grid may take a degraded path: with more
/// than one thread requested, the partition must bank — the bank count
/// is capped by geometry only, never forced to 1 by policy or line
/// sizes.
fn assert_banked(partitioning: Partitioning, threads: usize, context: &dyn std::fmt::Debug) {
    assert!(
        threads == 1 || partitioning.banks() > 1,
        "degraded path at threads {threads} for {context:?}: {partitioning:?}"
    );
}

fn run_cmp_grid(config: CmpSimConfig, accesses: usize, seed: u64) {
    for threads in THREADS {
        assert_banked(config.partitioning(threads), threads, &config);
    }
    for w in 0..WORKLOADS {
        let reference = config
            .run(&mut workload(w, config.cores, seed), accesses, 1)
            .expect("valid config");
        for threads in THREADS {
            let banked = config
                .run(&mut workload(w, config.cores, seed), accesses, threads)
                .expect("valid config");
            assert_eq!(
                reference, banked,
                "config {config:?}, workload {w}, seed {seed}, threads {threads}"
            );
        }
    }
}

#[test]
fn shared_l2_grid_is_bit_identical() {
    for cores in [1u16, 4] {
        for seed in [3u64, 41] {
            let config = CmpSimConfig {
                cores,
                l1: CacheConfig::new(1 << 10, 64, 2).unwrap(),
                l2: CacheConfig::new(128 << 10, 64, 8).unwrap(),
                organization: L2Organization::Shared,
                l2_fill: FillSpec::FullLine,
                flush: false,
            };
            run_cmp_grid(config, 50_000, seed);
        }
    }
}

#[test]
fn private_l2_grid_is_bit_identical() {
    let config = CmpSimConfig {
        cores: 4,
        l1: CacheConfig::new(512, 64, 2).unwrap(),
        l2: CacheConfig::new(32 << 10, 64, 4).unwrap(),
        organization: L2Organization::Private,
        l2_fill: FillSpec::FullLine,
        flush: false,
    };
    for seed in [7u64, 19] {
        run_cmp_grid(config, 50_000, seed);
    }
}

#[test]
fn flush_preserves_equivalence() {
    // Flushing drains every set; write-heavy traffic makes the final
    // write-back accounting the interesting part.
    let config = CmpSimConfig {
        cores: 8,
        l1: CacheConfig::new(512, 64, 2).unwrap(),
        l2: CacheConfig::new(64 << 10, 64, 8).unwrap(),
        organization: L2Organization::Shared,
        l2_fill: FillSpec::FullLine,
        flush: true,
    };
    run_cmp_grid(config, 40_000, 13);
}

#[test]
fn replacement_policies_stay_equivalent() {
    for policy in [
        ReplacementPolicy::Lru,
        ReplacementPolicy::Fifo,
        ReplacementPolicy::TreePlru,
        ReplacementPolicy::Random,
    ] {
        let config = CmpSimConfig {
            cores: 4,
            l1: CacheConfig::new(1 << 10, 64, 4)
                .unwrap()
                .with_policy(policy),
            l2: CacheConfig::new(32 << 10, 64, 8)
                .unwrap()
                .with_policy(policy),
            organization: L2Organization::Shared,
            l2_fill: FillSpec::FullLine,
            flush: false,
        };
        run_cmp_grid(config, 40_000, 29);
    }
}

#[test]
fn random_replacement_banks_like_any_other_policy() {
    // Historically the configuration that fell back to one bank; the
    // per-set RNG streams make it partition like LRU.
    let config = CmpSimConfig {
        cores: 4,
        l1: CacheConfig::new(1 << 10, 64, 4)
            .unwrap()
            .with_policy(ReplacementPolicy::Random)
            .with_policy_seed(5),
        l2: CacheConfig::new(32 << 10, 64, 8)
            .unwrap()
            .with_policy(ReplacementPolicy::Random)
            .with_policy_seed(6),
        organization: L2Organization::Shared,
        l2_fill: FillSpec::FullLine,
        flush: false,
    };
    // The 4-set L1 caps the partition at 4 banks; policy never does.
    assert_eq!(
        config.partitioning(4),
        Partitioning::Full {
            banks: 4,
            granularity: 64
        }
    );
    assert_eq!(
        config.partitioning(8),
        Partitioning::Capped {
            banks: 4,
            granularity: 64,
            aligned_sets: 4
        }
    );
    run_cmp_grid(config, 30_000, 57);
}

#[test]
fn mismatched_line_sizes_partition_on_the_coarser_granularity() {
    // L1 32 B lines under an L2 with 64 B lines: the partition
    // interleaves at 64 B, and the L1's 16 sets align down to 8.
    let fine_l1 = CmpSimConfig {
        cores: 4,
        l1: CacheConfig::new(1 << 10, 32, 2).unwrap(),
        l2: CacheConfig::new(64 << 10, 64, 8).unwrap(),
        organization: L2Organization::Shared,
        l2_fill: FillSpec::FullLine,
        flush: true,
    };
    assert_eq!(
        fine_l1.partitioning(8),
        Partitioning::Full {
            banks: 8,
            granularity: 64
        }
    );
    run_cmp_grid(fine_l1, 40_000, 61);

    // L1 64 B lines under an L2 with 128 B lines, private organization.
    let coarse_l2 = CmpSimConfig {
        cores: 4,
        l1: CacheConfig::new(2 << 10, 64, 2).unwrap(),
        l2: CacheConfig::new(64 << 10, 128, 8).unwrap(),
        organization: L2Organization::Private,
        l2_fill: FillSpec::FullLine,
        flush: true,
    };
    assert_eq!(
        coarse_l2.partitioning(8),
        Partitioning::Full {
            banks: 8,
            granularity: 128
        }
    );
    run_cmp_grid(coarse_l2, 40_000, 67);
}

#[test]
fn random_plus_mismatched_plus_compressed_composes() {
    // The historical worst case: both former fallback triggers at once,
    // on a compressed L2 (multi-victim budgeted evictions included).
    let config = CmpSimConfig {
        cores: 4,
        l1: CacheConfig::new(2 << 10, 64, 2)
            .unwrap()
            .with_policy(ReplacementPolicy::Random)
            .with_policy_seed(8),
        l2: CacheConfig::new(32 << 10, 128, 8)
            .unwrap()
            .with_policy(ReplacementPolicy::Random)
            .with_policy_seed(9),
        organization: L2Organization::Shared,
        l2_fill: FillSpec::Compressed {
            compressor: CompressorKind::Fpc,
            values: ValueSpec {
                profile: ProfileKind::Commercial,
                seed: 71,
            },
        },
        flush: true,
    };
    assert_eq!(config.partitioning(8).granularity(), 128);
    run_cmp_grid(config, 30_000, 71);
}

#[test]
fn coherent_cmp_grid_is_bit_identical() {
    for (cores, seed) in [(2u16, 5u64), (4, 17), (8, 31)] {
        for flush in [false, true] {
            let config = CoherentSimConfig {
                cores,
                cache: CacheConfig::new(8 << 10, 64, 4).unwrap(),
                fill: FillSpec::FullLine,
                flush,
            };
            let fresh = || {
                ParsecLikeTrace::builder_with_regions(cores, 400, 300)
                    .shared_access_fraction(0.5)
                    .write_fraction(0.4)
                    .seed(seed)
                    .build()
            };
            let reference = config.run(&mut fresh(), 50_000, 1).unwrap();
            for threads in THREADS {
                assert_banked(config.partitioning(threads), threads, &config);
                let banked = config.run(&mut fresh(), 50_000, threads).unwrap();
                assert_eq!(
                    reference, banked,
                    "cores {cores}, flush {flush}, threads {threads}"
                );
            }
            // Coherence traffic must actually be exercised for this test
            // to mean anything.
            if cores > 1 {
                assert!(reference.coherence.invalidations() > 0, "cores {cores}");
            }
        }
    }
}

#[test]
fn coherent_random_replacement_stays_banked_and_bit_identical() {
    let config = CoherentSimConfig {
        cores: 4,
        cache: CacheConfig::new(8 << 10, 64, 4)
            .unwrap()
            .with_policy(ReplacementPolicy::Random)
            .with_policy_seed(13),
        fill: FillSpec::FullLine,
        flush: true,
    };
    assert_eq!(
        config.partitioning(8),
        Partitioning::Full {
            banks: 8,
            granularity: 64
        }
    );
    let fresh = || {
        ParsecLikeTrace::builder_with_regions(4, 400, 300)
            .shared_access_fraction(0.5)
            .write_fraction(0.4)
            .seed(37)
            .build()
    };
    let reference = config.run(&mut fresh(), 40_000, 1).unwrap();
    for threads in THREADS {
        let banked = config.run(&mut fresh(), 40_000, threads).unwrap();
        assert_eq!(reference, banked, "threads {threads}");
    }
    assert!(reference.coherence.invalidations() > 0);
}

#[test]
fn parallel_runs_are_repeatable() {
    // Same config + trace + thread count twice: thread scheduling must
    // never leak into the statistics.
    let config = CmpSimConfig {
        cores: 4,
        l1: CacheConfig::new(1 << 10, 64, 2).unwrap(),
        l2: CacheConfig::new(64 << 10, 64, 8).unwrap(),
        organization: L2Organization::Shared,
        l2_fill: FillSpec::FullLine,
        flush: true,
    };
    let fresh = || ParsecLikeTrace::builder(4).seed(77).build();
    let a = config.run(&mut fresh(), 60_000, 4).unwrap();
    let b = config.run(&mut fresh(), 60_000, 4).unwrap();
    assert_eq!(a, b);
}

/// The unified-pipeline fill grid: every [`FillSpec`] the engine knows.
fn fill_specs() -> [FillSpec; 4] {
    let values = ValueSpec {
        profile: ProfileKind::Commercial,
        seed: 11,
    };
    [
        FillSpec::FullLine,
        FillSpec::Sectored {
            sectors_per_line: 8,
        },
        FillSpec::Compressed {
            compressor: CompressorKind::Fpc,
            values,
        },
        FillSpec::SectoredCompressed {
            sectors_per_line: 4,
            compressor: CompressorKind::Bdi,
            values,
        },
    ]
}

#[test]
fn engine_grid_is_bit_identical_for_every_fill() {
    for fill in fill_specs() {
        for flush in [false, true] {
            let config = EngineSimConfig {
                cache: CacheConfig::new(16 << 10, 64, 4).unwrap(),
                fill,
                flush,
            };
            for w in 0..WORKLOADS {
                let reference = config.run(&mut workload(w, 4, 23), 40_000, 1);
                for threads in THREADS {
                    assert_banked(config.partitioning(threads), threads, &config);
                    let banked = config.run(&mut workload(w, 4, 23), 40_000, threads);
                    assert_eq!(
                        reference, banked,
                        "fill {fill:?}, flush {flush}, workload {w}, threads {threads}"
                    );
                }
            }
        }
    }
}

#[test]
fn engine_random_replacement_banks_for_every_fill() {
    for fill in fill_specs() {
        let config = EngineSimConfig {
            cache: CacheConfig::new(16 << 10, 64, 4)
                .unwrap()
                .with_policy(ReplacementPolicy::Random)
                .with_policy_seed(9),
            fill,
            flush: false,
        };
        // 64 sets: the full 8 banks, Random or not.
        assert_eq!(
            config.partitioning(8),
            Partitioning::Full {
                banks: 8,
                granularity: 64
            },
            "fill {fill:?}"
        );
        let reference = config.run(&mut workload(0, 4, 31), 20_000, 1);
        for threads in THREADS {
            let banked = config.run(&mut workload(0, 4, 31), 20_000, threads);
            assert_eq!(reference, banked, "fill {fill:?}, threads {threads}");
        }
    }
}

#[test]
fn sectored_l2_cmp_grid_is_bit_identical() {
    let config = CmpSimConfig {
        cores: 4,
        l1: CacheConfig::new(1 << 10, 64, 2).unwrap(),
        l2: CacheConfig::new(64 << 10, 64, 8).unwrap(),
        organization: L2Organization::Shared,
        l2_fill: FillSpec::Sectored {
            sectors_per_line: 4,
        },
        flush: true,
    };
    run_cmp_grid(config, 40_000, 37);
}

#[test]
fn compressed_l2_cmp_grid_is_bit_identical() {
    let config = CmpSimConfig {
        cores: 4,
        l1: CacheConfig::new(1 << 10, 64, 2).unwrap(),
        l2: CacheConfig::new(32 << 10, 64, 8).unwrap(),
        organization: L2Organization::Private,
        l2_fill: FillSpec::Compressed {
            compressor: CompressorKind::Fpc,
            values: ValueSpec {
                profile: ProfileKind::Integer,
                seed: 3,
            },
        },
        flush: true,
    };
    run_cmp_grid(config, 40_000, 43);
}

#[test]
fn compressed_coherent_grid_is_bit_identical() {
    let config = CoherentSimConfig {
        cores: 4,
        cache: CacheConfig::new(8 << 10, 64, 4).unwrap(),
        fill: FillSpec::Compressed {
            compressor: CompressorKind::BestOf,
            values: ValueSpec {
                profile: ProfileKind::Commercial,
                seed: 29,
            },
        },
        flush: true,
    };
    let fresh = || {
        ParsecLikeTrace::builder_with_regions(4, 400, 300)
            .shared_access_fraction(0.5)
            .write_fraction(0.4)
            .seed(19)
            .build()
    };
    let reference = config.run(&mut fresh(), 40_000, 1).unwrap();
    for threads in THREADS {
        assert_banked(config.partitioning(threads), threads, &config);
        let banked = config.run(&mut fresh(), 40_000, threads).unwrap();
        assert_eq!(reference, banked, "threads {threads}");
    }
    assert!(reference.coherence.invalidations() > 0);
}
