//! Differential tests: the parallel banked engine must reproduce the
//! sequential simulator *bit for bit* across a grid of configurations,
//! workloads, seeds, and thread counts — miss counts, cold-miss
//! classification, eviction and write-back counts, traffic bytes,
//! sharing fractions, and coherence events all included.

use bandwall_cache_sim::{
    CacheConfig, CmpSimConfig, CoherentSimConfig, CompressorKind, EngineSimConfig, FillSpec,
    L2Organization, ProfileKind, ReplacementPolicy, ValueSpec,
};
use bandwall_trace::{MixTrace, ParsecLikeTrace, StridedTrace, TraceSource, ZipfTrace};

const THREADS: [usize; 4] = [1, 2, 4, 8];

const WORKLOADS: usize = 3;

/// The workload grid: entry `index` builds a fresh, identically seeded
/// trace every call, so sequential and parallel runs see the same stream.
fn workload(index: usize, cores: u16, seed: u64) -> Box<dyn TraceSource> {
    match index {
        0 => Box::new(
            ParsecLikeTrace::builder_with_regions(cores, 800, 500)
                .shared_access_fraction(0.4)
                .seed(seed)
                .build(),
        ),
        1 => Box::new(
            ParsecLikeTrace::builder(cores)
                .write_fraction(0.5)
                .echo_probability(0.3)
                .seed(seed ^ 0xABCD)
                .build(),
        ),
        _ => Box::new(
            MixTrace::builder()
                .component(Box::new(ZipfTrace::builder(4096, 0.9).build()), 2.0)
                .component(Box::new(StridedTrace::new(1 << 20, 64, 6000)), 1.0)
                .seed(seed)
                .build(),
        ),
    }
}

fn run_cmp_grid(config: CmpSimConfig, accesses: usize, seed: u64) {
    for w in 0..WORKLOADS {
        let seq = config
            .run_sequential(&mut workload(w, config.cores, seed), accesses)
            .expect("valid config");
        for threads in THREADS {
            let par = config
                .run_parallel(&mut workload(w, config.cores, seed), accesses, threads)
                .expect("valid config");
            assert_eq!(
                seq, par,
                "config {config:?}, workload {w}, seed {seed}, threads {threads}"
            );
        }
    }
}

#[test]
fn shared_l2_grid_is_bit_identical() {
    for cores in [1u16, 4] {
        for seed in [3u64, 41] {
            let config = CmpSimConfig {
                cores,
                l1: CacheConfig::new(1 << 10, 64, 2).unwrap(),
                l2: CacheConfig::new(128 << 10, 64, 8).unwrap(),
                organization: L2Organization::Shared,
                l2_fill: FillSpec::FullLine,
                flush: false,
            };
            run_cmp_grid(config, 50_000, seed);
        }
    }
}

#[test]
fn private_l2_grid_is_bit_identical() {
    let config = CmpSimConfig {
        cores: 4,
        l1: CacheConfig::new(512, 64, 2).unwrap(),
        l2: CacheConfig::new(32 << 10, 64, 4).unwrap(),
        organization: L2Organization::Private,
        l2_fill: FillSpec::FullLine,
        flush: false,
    };
    for seed in [7u64, 19] {
        run_cmp_grid(config, 50_000, seed);
    }
}

#[test]
fn flush_preserves_equivalence() {
    // Flushing drains every set; write-heavy traffic makes the final
    // write-back accounting the interesting part.
    let config = CmpSimConfig {
        cores: 8,
        l1: CacheConfig::new(512, 64, 2).unwrap(),
        l2: CacheConfig::new(64 << 10, 64, 8).unwrap(),
        organization: L2Organization::Shared,
        l2_fill: FillSpec::FullLine,
        flush: true,
    };
    run_cmp_grid(config, 40_000, 13);
}

#[test]
fn replacement_policies_stay_equivalent() {
    for policy in [
        ReplacementPolicy::Lru,
        ReplacementPolicy::Fifo,
        ReplacementPolicy::TreePlru,
    ] {
        let config = CmpSimConfig {
            cores: 4,
            l1: CacheConfig::new(1 << 10, 64, 4)
                .unwrap()
                .with_policy(policy),
            l2: CacheConfig::new(32 << 10, 64, 8)
                .unwrap()
                .with_policy(policy),
            organization: L2Organization::Shared,
            l2_fill: FillSpec::FullLine,
            flush: false,
        };
        run_cmp_grid(config, 40_000, 29);
    }
}

#[test]
fn random_policy_falls_back_to_sequential_and_stays_deterministic() {
    let config = CmpSimConfig {
        cores: 4,
        l1: CacheConfig::new(1 << 10, 64, 4)
            .unwrap()
            .with_policy(ReplacementPolicy::Random)
            .with_policy_seed(5),
        l2: CacheConfig::new(32 << 10, 64, 8)
            .unwrap()
            .with_policy(ReplacementPolicy::Random)
            .with_policy_seed(6),
        organization: L2Organization::Shared,
        l2_fill: FillSpec::FullLine,
        flush: false,
    };
    assert_eq!(config.bank_count(8), 1);
    // The fallback still honours the bit-identical contract.
    run_cmp_grid(config, 30_000, 57);
}

#[test]
fn coherent_cmp_grid_is_bit_identical() {
    for (cores, seed) in [(2u16, 5u64), (4, 17), (8, 31)] {
        for flush in [false, true] {
            let config = CoherentSimConfig {
                cores,
                cache: CacheConfig::new(8 << 10, 64, 4).unwrap(),
                fill: FillSpec::FullLine,
                flush,
            };
            let fresh = || {
                ParsecLikeTrace::builder_with_regions(cores, 400, 300)
                    .shared_access_fraction(0.5)
                    .write_fraction(0.4)
                    .seed(seed)
                    .build()
            };
            let seq = config.run_sequential(&mut fresh(), 50_000).unwrap();
            for threads in THREADS {
                let par = config.run_parallel(&mut fresh(), 50_000, threads).unwrap();
                assert_eq!(seq, par, "cores {cores}, flush {flush}, threads {threads}");
            }
            // Coherence traffic must actually be exercised for this test
            // to mean anything.
            if cores > 1 {
                assert!(seq.coherence.invalidations() > 0, "cores {cores}");
            }
        }
    }
}

#[test]
fn parallel_runs_are_repeatable() {
    // Same config + trace + thread count twice: thread scheduling must
    // never leak into the statistics.
    let config = CmpSimConfig {
        cores: 4,
        l1: CacheConfig::new(1 << 10, 64, 2).unwrap(),
        l2: CacheConfig::new(64 << 10, 64, 8).unwrap(),
        organization: L2Organization::Shared,
        l2_fill: FillSpec::FullLine,
        flush: true,
    };
    let fresh = || ParsecLikeTrace::builder(4).seed(77).build();
    let a = config.run_parallel(&mut fresh(), 60_000, 4).unwrap();
    let b = config.run_parallel(&mut fresh(), 60_000, 4).unwrap();
    assert_eq!(a, b);
}

/// The unified-pipeline fill grid: every [`FillSpec`] the engine knows.
fn fill_specs() -> [FillSpec; 4] {
    let values = ValueSpec {
        profile: ProfileKind::Commercial,
        seed: 11,
    };
    [
        FillSpec::FullLine,
        FillSpec::Sectored {
            sectors_per_line: 8,
        },
        FillSpec::Compressed {
            compressor: CompressorKind::Fpc,
            values,
        },
        FillSpec::SectoredCompressed {
            sectors_per_line: 4,
            compressor: CompressorKind::Bdi,
            values,
        },
    ]
}

#[test]
fn engine_grid_is_bit_identical_for_every_fill() {
    for fill in fill_specs() {
        for flush in [false, true] {
            let config = EngineSimConfig {
                cache: CacheConfig::new(16 << 10, 64, 4).unwrap(),
                fill,
                flush,
            };
            for w in 0..WORKLOADS {
                let seq = config.run_sequential(&mut workload(w, 4, 23), 40_000);
                for threads in THREADS {
                    let par = config.run_parallel(&mut workload(w, 4, 23), 40_000, threads);
                    assert_eq!(
                        seq, par,
                        "fill {fill:?}, flush {flush}, workload {w}, threads {threads}"
                    );
                }
            }
        }
    }
}

#[test]
fn engine_random_policy_falls_back_to_sequential() {
    for fill in fill_specs() {
        let config = EngineSimConfig {
            cache: CacheConfig::new(16 << 10, 64, 4)
                .unwrap()
                .with_policy(ReplacementPolicy::Random)
                .with_policy_seed(9),
            fill,
            flush: false,
        };
        assert_eq!(config.bank_count(8), 1, "fill {fill:?}");
        // The fallback still honours the bit-identical contract.
        let a = config.run_parallel(&mut workload(0, 4, 31), 20_000, 8);
        let b = config.run_sequential(&mut workload(0, 4, 31), 20_000);
        assert_eq!(a, b, "fill {fill:?}");
    }
}

#[test]
fn sectored_l2_cmp_grid_is_bit_identical() {
    let config = CmpSimConfig {
        cores: 4,
        l1: CacheConfig::new(1 << 10, 64, 2).unwrap(),
        l2: CacheConfig::new(64 << 10, 64, 8).unwrap(),
        organization: L2Organization::Shared,
        l2_fill: FillSpec::Sectored {
            sectors_per_line: 4,
        },
        flush: true,
    };
    run_cmp_grid(config, 40_000, 37);
}

#[test]
fn compressed_l2_cmp_grid_is_bit_identical() {
    let config = CmpSimConfig {
        cores: 4,
        l1: CacheConfig::new(1 << 10, 64, 2).unwrap(),
        l2: CacheConfig::new(32 << 10, 64, 8).unwrap(),
        organization: L2Organization::Private,
        l2_fill: FillSpec::Compressed {
            compressor: CompressorKind::Fpc,
            values: ValueSpec {
                profile: ProfileKind::Integer,
                seed: 3,
            },
        },
        flush: true,
    };
    run_cmp_grid(config, 40_000, 43);
}

#[test]
fn compressed_coherent_grid_is_bit_identical() {
    let config = CoherentSimConfig {
        cores: 4,
        cache: CacheConfig::new(8 << 10, 64, 4).unwrap(),
        fill: FillSpec::Compressed {
            compressor: CompressorKind::BestOf,
            values: ValueSpec {
                profile: ProfileKind::Commercial,
                seed: 29,
            },
        },
        flush: true,
    };
    let fresh = || {
        ParsecLikeTrace::builder_with_regions(4, 400, 300)
            .shared_access_fraction(0.5)
            .write_fraction(0.4)
            .seed(19)
            .build()
    };
    let seq = config.run_sequential(&mut fresh(), 40_000).unwrap();
    for threads in THREADS {
        let par = config.run_parallel(&mut fresh(), 40_000, threads).unwrap();
        assert_eq!(seq, par, "threads {threads}");
    }
    assert!(seq.coherence.invalidations() > 0);
}
