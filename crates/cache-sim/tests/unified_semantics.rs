//! Regression lock for the unified access pipeline's semantics.
//!
//! Before the pipeline refactor, `SectoredCache::access` and
//! `CompressedCache::access_with_data` had drifted from `Cache::access`:
//! cold-miss classification and replacement-policy handling differed
//! between the hand-forked variants. These tests pin the agreed behavior:
//! every variant is write-allocate, classifies cold misses by
//! first-touch of the line address, and honours the configured
//! replacement policy.

use bandwall_cache_sim::{
    Cache, CacheConfig, CompressedCache, ReplacementPolicy, SectoredCache, SectoredCompressedCache,
};
use bandwall_compress::Fpc;

/// A deterministic access stream with reuse, writes, and conflicts.
fn stream() -> Vec<(u64, bool)> {
    let mut out = Vec::new();
    for i in 0..4000u64 {
        let line = (i * 17) % 96; // > capacity of the test caches
        let addr = line * 64 + (i % 8) * 8;
        out.push((addr, i % 3 == 0));
        if i % 5 == 0 {
            out.push((line * 64, false)); // short-reuse read
        }
    }
    out
}

fn config() -> CacheConfig {
    CacheConfig::new(4096, 64, 4).unwrap()
}

/// Incompressible payloads: FPC can only expand them, so every line
/// stores at its full size and the budgeted sets degenerate to the
/// conventional geometry.
fn noise_line(i: u64) -> Vec<u8> {
    (0..64u64)
        .map(|k| ((i * 131 + k).wrapping_mul(2654435761) >> 13) as u8)
        .collect()
}

#[test]
fn one_sector_per_line_matches_conventional_exactly() {
    let mut plain = Cache::new(config());
    let mut sectored = SectoredCache::new(config(), 1);
    for (addr, is_write) in stream() {
        plain.access(addr, is_write);
        sectored.access(addr, is_write);
    }
    assert_eq!(plain.stats(), sectored.stats());
    assert_eq!(plain.traffic(), sectored.traffic());
    assert_eq!(plain.flush(), sectored.flush());
}

#[test]
fn incompressible_data_matches_conventional_hit_miss_behaviour() {
    let mut plain = Cache::new(config());
    let mut compressed = CompressedCache::new(config(), Box::new(Fpc::new()));
    for (i, (addr, is_write)) in stream().into_iter().enumerate() {
        let data = noise_line(addr / 64);
        let a = plain.access(addr, is_write);
        let b = compressed.access_with_data(addr, is_write, &data);
        assert_eq!(a.is_hit(), b.is_hit(), "access {i} at {addr:#x}");
    }
    assert_eq!(plain.stats().hits(), compressed.stats().hits());
    assert_eq!(plain.stats().misses(), compressed.stats().misses());
    assert_eq!(
        plain.stats().cold_misses(),
        compressed.stats().cold_misses()
    );
}

#[test]
fn every_variant_is_write_allocate() {
    // A write miss must install the line in all variants — the historic
    // divergence this suite locks against.
    let mut plain = Cache::new(config());
    let mut sectored = SectoredCache::new(config(), 8);
    let mut compressed = CompressedCache::new(config(), Box::new(Fpc::new()));
    let mut combo = SectoredCompressedCache::new(config(), 8, Box::new(Fpc::new()));
    let zeros = vec![0u8; 64];

    assert!(!plain.access(0x1000, true).is_hit());
    assert!(!sectored.access(0x1000, true).is_hit());
    assert!(!compressed.access_with_data(0x1000, true, &zeros).is_hit());
    assert!(!combo.access_with_data(0x1000, true, &zeros).is_hit());

    assert!(plain.contains(0x1000), "conventional write-allocates");
    assert!(sectored.contains(0x1000), "sectored write-allocates");
    assert!(compressed.contains(0x1000), "compressed write-allocates");
    assert!(combo.contains(0x1000), "combined write-allocates");

    // And the written sector is dirty: a flush writes it back.
    for victims in [
        plain.flush(),
        sectored.flush(),
        compressed.flush(),
        combo.flush(),
    ] {
        assert_eq!(victims.len(), 1);
        assert!(victims[0].dirty());
    }
}

#[test]
fn cold_misses_are_classified_by_first_touch_in_every_variant() {
    let mut sectored = SectoredCache::new(config(), 8);
    let mut compressed = CompressedCache::new(config(), Box::new(Fpc::new()));
    let zeros = vec![0u8; 64];

    // Touch 96 distinct lines (capacity is 64), then re-touch them all:
    // the second pass has no cold misses even where capacity missed.
    for line in 0..96u64 {
        sectored.access(line * 64, false);
        compressed.access_with_data(line * 64, false, &zeros);
    }
    let sectored_cold = sectored.stats().cold_misses();
    let compressed_cold = compressed.stats().cold_misses();
    assert_eq!(sectored_cold, 96);
    for line in 0..96u64 {
        sectored.access(line * 64, false);
        compressed.access_with_data(line * 64, false, &zeros);
    }
    assert_eq!(
        sectored.stats().cold_misses(),
        sectored_cold,
        "revisits are not cold"
    );
    assert_eq!(compressed.stats().cold_misses(), compressed_cold);
}

#[test]
fn sectored_honours_the_configured_replacement_policy() {
    // FIFO vs LRU must diverge on a stream where the oldest line is also
    // the most recently used: re-touching way 0 saves it under LRU but
    // not under FIFO.
    let run = |policy: ReplacementPolicy| {
        let mut cache =
            SectoredCache::new(CacheConfig::new(256, 64, 4).unwrap().with_policy(policy), 4);
        // One set (256/64/4 = 1 set): fill 4 ways, re-touch line 0, add a
        // 5th line, then probe line 0.
        for line in 0..4u64 {
            cache.access(line * 64, false);
        }
        cache.access(0, false); // line 0 now MRU but still oldest
        cache.access(4 * 64, false); // eviction decision
        cache.contains(0)
    };
    assert!(run(ReplacementPolicy::Lru), "LRU keeps the re-touched line");
    assert!(
        !run(ReplacementPolicy::Fifo),
        "FIFO evicts the oldest line regardless of reuse"
    );
}

#[test]
fn compressed_honours_the_configured_replacement_policy() {
    let run = |policy: ReplacementPolicy| {
        let mut cache = CompressedCache::new(
            CacheConfig::new(256, 64, 4).unwrap().with_policy(policy),
            Box::new(Fpc::new()),
        );
        // Incompressible lines: exactly 4 fit the one set's budget.
        for line in 0..4u64 {
            cache.access_with_data(line * 64, false, &noise_line(line));
        }
        cache.access_with_data(0, false, &noise_line(0));
        cache.access_with_data(4 * 64, false, &noise_line(4));
        cache.contains(0)
    };
    assert!(run(ReplacementPolicy::Lru), "LRU keeps the re-touched line");
    assert!(
        !run(ReplacementPolicy::Fifo),
        "FIFO evicts the oldest line regardless of reuse"
    );
}
