//! Trace-driven cache and CMP simulation.
//!
//! This crate provides the measurement substrate the bandwidth-wall paper
//! relies on: set-associative caches with selectable replacement policies,
//! two-level hierarchies with off-chip traffic accounting, and a CMP
//! system with shared or private L2s — plus the specialised cache variants
//! the paper's techniques assume:
//!
//! Every cache variant is a thin alias over one generic engine — the
//! [`PipelineCache`] access pipeline, parameterised by a [`Fill`]
//! granularity policy and observed by a composable stats stack:
//!
//! * [`Cache`] — whole-line fills ([`FullLineFill`]): set-associative,
//!   write-back, write-allocate, with optional per-word usage and
//!   per-core sharer tracking.
//! * [`SectoredCache`] — sector-granularity fetching ([`SectoredFill`],
//!   Section 6.2).
//! * [`CompressedCache`] — byte-budget sets over any
//!   `bandwall_compress::Compressor` ([`CompressedFill`], Section 6.1).
//! * [`SectoredCompressedCache`] — both composed
//!   ([`SectoredCompressedFill`]).
//! * [`TwoLevelHierarchy`] — L1 + L2 + [`MemoryTraffic`] accounting.
//! * [`CmpSystem`] — multi-core with [`L2Organization::Shared`] or
//!   [`L2Organization::Private`] L2s; the Figure 14 simulator.
//! * [`EngineSimConfig`] / [`CmpSimConfig`] / [`CoherentSimConfig`] —
//!   bank-partitioned parallel simulation whose merged statistics are
//!   bit-identical to a sequential run, for every fill policy
//!   ([`FillSpec`]).
//!
//! # Example
//!
//! ```
//! use bandwall_cache_sim::{CacheConfig, TwoLevelHierarchy};
//! use bandwall_trace::{StackDistanceTrace, TraceSource};
//!
//! let mut system = TwoLevelHierarchy::new(
//!     CacheConfig::new(16 << 10, 64, 2)?,
//!     CacheConfig::new(512 << 10, 64, 8)?,
//! );
//! let mut workload = StackDistanceTrace::builder(0.5).seed(1).max_distance(1 << 14).build();
//! for access in workload.iter().take(10_000) {
//!     system.access(access.address(), access.kind().is_write());
//! }
//! assert!(system.memory_traffic().total_bytes() > 0);
//! # Ok::<(), bandwall_cache_sim::ConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod cmp;
mod coherence;
mod compressed;
mod config;
mod footprint;
mod hierarchy;
mod memory;
mod parallel;
mod pipeline;
mod sectored;
mod stats;

pub use cache::{AccessOutcome, Cache, EvictedLine};
pub use cmp::{CmpSystem, L2Organization};
pub use coherence::{CoherenceStats, CoherentCmp};
pub use compressed::CompressedCache;
pub use config::{CacheConfig, ConfigError, ReplacementPolicy};
pub use footprint::PredictiveSectoredCache;
pub use hierarchy::{InclusionPolicy, TwoLevelHierarchy};
pub use memory::{simulate_throughput, DramChannel, ThroughputSimConfig, ThroughputSimResult};
pub use parallel::{
    CmpSimConfig, CmpSimStats, CoherentSimConfig, CoherentSimStats, EngineSimConfig,
    EngineSimStats, Partitioning,
};
pub use pipeline::{
    CompressedFill, CompressorKind, ExactCompressorKind, Fill, FillSpec, FullLineFill,
    PipelineCache, ProfileKind, SectoredCompressedFill, SectoredFill, ValueSpec,
};
pub use sectored::SectoredCache;
pub use stats::{CacheStats, MemoryTraffic, SharingStats, WordUsageStats};

/// Sectored *and* compressed cache — the composed configuration the
/// unified pipeline makes expressible (see [`SectoredCompressedFill`]).
pub type SectoredCompressedCache = PipelineCache<SectoredCompressedFill>;
