//! Cache and memory-traffic statistics.

use std::fmt;

/// Counters accumulated by one cache.
///
/// # Examples
///
/// ```
/// use bandwall_cache_sim::CacheStats;
///
/// let mut s = CacheStats::new();
/// s.record_hit();
/// s.record_miss(true);
/// s.record_eviction(true);
/// assert_eq!(s.accesses(), 2);
/// assert_eq!(s.miss_rate(), 0.5);
/// assert_eq!(s.writebacks(), 1);
/// assert_eq!(s.writeback_ratio(), 1.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    hits: u64,
    misses: u64,
    cold_misses: u64,
    evictions: u64,
    writebacks: u64,
}

impl CacheStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        CacheStats::default()
    }

    /// Records a hit.
    pub fn record_hit(&mut self) {
        self.hits += 1;
    }

    /// Records a miss; `cold` marks a first-ever touch of the line.
    pub fn record_miss(&mut self, cold: bool) {
        self.misses += 1;
        if cold {
            self.cold_misses += 1;
        }
    }

    /// Records an eviction; `dirty` lines additionally count a write-back.
    pub fn record_eviction(&mut self, dirty: bool) {
        self.evictions += 1;
        if dirty {
            self.writebacks += 1;
        }
    }

    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hits.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses (cold + capacity/conflict).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// First-touch misses.
    pub fn cold_misses(&self) -> u64 {
        self.cold_misses
    }

    /// Evictions.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Dirty evictions (write-backs).
    pub fn writebacks(&self) -> u64 {
        self.writebacks
    }

    /// Miss rate in `[0, 1]`; 0 before any access.
    pub fn miss_rate(&self) -> f64 {
        let n = self.accesses();
        if n == 0 {
            0.0
        } else {
            self.misses as f64 / n as f64
        }
    }

    /// Write-backs per miss — the paper's `rwb`, observed to be an
    /// application-specific constant across cache sizes (Section 4.2).
    pub fn writeback_ratio(&self) -> f64 {
        if self.misses == 0 {
            0.0
        } else {
            self.writebacks as f64 / self.misses as f64
        }
    }

    /// Merges another cache's counters into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.cold_misses += other.cold_misses;
        self.evictions += other.evictions;
        self.writebacks += other.writebacks;
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} accesses, {:.2}% misses, {} writebacks",
            self.accesses(),
            self.miss_rate() * 100.0,
            self.writebacks
        )
    }
}

/// Off-chip memory traffic counter, in bytes, split by direction.
///
/// The paper's metric `M` is fetch + write-back traffic for a fixed amount
/// of work; [`MemoryTraffic::total_bytes`] is exactly that.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoryTraffic {
    fetched_bytes: u64,
    written_bytes: u64,
}

impl MemoryTraffic {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        MemoryTraffic::default()
    }

    /// Records a fetch from memory.
    pub fn record_fetch(&mut self, bytes: u64) {
        self.fetched_bytes += bytes;
    }

    /// Records a write-back to memory.
    pub fn record_writeback(&mut self, bytes: u64) {
        self.written_bytes += bytes;
    }

    /// Bytes fetched from memory.
    pub fn fetched_bytes(&self) -> u64 {
        self.fetched_bytes
    }

    /// Bytes written back to memory.
    pub fn written_bytes(&self) -> u64 {
        self.written_bytes
    }

    /// Total off-chip traffic (the model's `M`).
    pub fn total_bytes(&self) -> u64 {
        self.fetched_bytes + self.written_bytes
    }

    /// Merges another counter.
    pub fn merge(&mut self, other: &MemoryTraffic) {
        self.fetched_bytes += other.fetched_bytes;
        self.written_bytes += other.written_bytes;
    }
}

impl fmt::Display for MemoryTraffic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} B fetched + {} B written = {} B",
            self.fetched_bytes,
            self.written_bytes,
            self.total_bytes()
        )
    }
}

/// Word-usage accounting at eviction: how much of each line the processor
/// actually referenced (the Fltr/Sect/SmCl parameter of Sections 6.1–6.3).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WordUsageStats {
    evicted_lines: u64,
    words_per_line: u64,
    used_words: u64,
}

impl WordUsageStats {
    /// Creates a zeroed accumulator for lines of `words_per_line` words.
    pub fn new(words_per_line: u32) -> Self {
        WordUsageStats {
            evicted_lines: 0,
            words_per_line: words_per_line as u64,
            used_words: 0,
        }
    }

    /// Records an evicted line that had `used_words` of its words touched.
    pub fn record_eviction(&mut self, used_words: u32) {
        self.evicted_lines += 1;
        self.used_words += used_words as u64;
    }

    /// Lines observed.
    pub fn evicted_lines(&self) -> u64 {
        self.evicted_lines
    }

    /// Average fraction of each line that went *unused* — the paper's
    /// "amount of unused data" knob (≈40% for 64-byte lines in [9, 23]).
    pub fn unused_fraction(&self) -> f64 {
        if self.evicted_lines == 0 || self.words_per_line == 0 {
            0.0
        } else {
            1.0 - self.used_words as f64 / (self.evicted_lines * self.words_per_line) as f64
        }
    }
}

/// Sharing accounting at eviction (Figure 14): how many evicted lines were
/// touched by two or more cores during their residency.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SharingStats {
    evicted_lines: u64,
    shared_lines: u64,
}

impl SharingStats {
    /// Creates a zeroed accumulator.
    pub fn new() -> Self {
        SharingStats::default()
    }

    /// Records an evicted line; `sharers` is the number of distinct cores
    /// that accessed it while resident.
    pub fn record_eviction(&mut self, sharers: u32) {
        self.evicted_lines += 1;
        if sharers >= 2 {
            self.shared_lines += 1;
        }
    }

    /// Lines observed.
    pub fn evicted_lines(&self) -> u64 {
        self.evicted_lines
    }

    /// Lines shared by 2+ cores.
    pub fn shared_lines(&self) -> u64 {
        self.shared_lines
    }

    /// Fraction of evicted lines accessed by more than one core.
    pub fn shared_fraction(&self) -> f64 {
        if self.evicted_lines == 0 {
            0.0
        } else {
            self.shared_lines as f64 / self.evicted_lines as f64
        }
    }

    /// Merges another accumulator's counters into this one.
    pub fn merge(&mut self, other: &SharingStats) {
        self.evicted_lines += other.evicted_lines;
        self.shared_lines += other.shared_lines;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_stats_accumulate() {
        let mut s = CacheStats::new();
        for _ in 0..3 {
            s.record_hit();
        }
        s.record_miss(true);
        s.record_miss(false);
        s.record_eviction(false);
        s.record_eviction(true);
        assert_eq!(s.accesses(), 5);
        assert_eq!(s.hits(), 3);
        assert_eq!(s.misses(), 2);
        assert_eq!(s.cold_misses(), 1);
        assert_eq!(s.evictions(), 2);
        assert_eq!(s.writebacks(), 1);
        assert!((s.miss_rate() - 0.4).abs() < 1e-12);
        assert!((s.writeback_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_have_zero_rates() {
        let s = CacheStats::new();
        assert_eq!(s.miss_rate(), 0.0);
        assert_eq!(s.writeback_ratio(), 0.0);
    }

    #[test]
    fn merge_cache_stats() {
        let mut a = CacheStats::new();
        a.record_hit();
        let mut b = CacheStats::new();
        b.record_miss(false);
        a.merge(&b);
        assert_eq!(a.accesses(), 2);
    }

    #[test]
    fn memory_traffic_totals() {
        let mut t = MemoryTraffic::new();
        t.record_fetch(64);
        t.record_fetch(64);
        t.record_writeback(64);
        assert_eq!(t.fetched_bytes(), 128);
        assert_eq!(t.written_bytes(), 64);
        assert_eq!(t.total_bytes(), 192);
        let mut u = MemoryTraffic::new();
        u.record_fetch(64);
        t.merge(&u);
        assert_eq!(t.total_bytes(), 256);
    }

    #[test]
    fn word_usage_fraction() {
        let mut w = WordUsageStats::new(8);
        w.record_eviction(4);
        w.record_eviction(6);
        // 10 of 16 words used → 37.5% unused.
        assert!((w.unused_fraction() - 0.375).abs() < 1e-12);
        assert_eq!(w.evicted_lines(), 2);
    }

    #[test]
    fn sharing_fraction() {
        let mut s = SharingStats::new();
        s.record_eviction(1);
        s.record_eviction(2);
        s.record_eviction(5);
        s.record_eviction(1);
        assert_eq!(s.shared_lines(), 2);
        assert_eq!(s.shared_fraction(), 0.5);
    }

    #[test]
    fn merge_sharing_stats() {
        let mut a = SharingStats::new();
        a.record_eviction(2);
        let mut b = SharingStats::new();
        b.record_eviction(1);
        b.record_eviction(3);
        a.merge(&b);
        assert_eq!(a.evicted_lines(), 3);
        assert_eq!(a.shared_lines(), 2);
    }

    #[test]
    fn displays() {
        let mut s = CacheStats::new();
        s.record_miss(false);
        assert!(s.to_string().contains("100.00%"));
        let mut t = MemoryTraffic::new();
        t.record_fetch(64);
        assert!(t.to_string().contains("64"));
    }

    #[test]
    fn empty_usage_and_sharing() {
        assert_eq!(WordUsageStats::new(8).unused_fraction(), 0.0);
        assert_eq!(SharingStats::new().shared_fraction(), 0.0);
    }
}
