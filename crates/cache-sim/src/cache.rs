//! The set-associative, write-back, write-allocate cache.

use crate::config::{CacheConfig, ReplacementPolicy};
use crate::stats::{CacheStats, SharingStats, WordUsageStats};
use bandwall_numerics::Rng;
use std::collections::HashSet;

/// State of one resident line.
#[derive(Debug, Clone, Copy)]
struct LineState {
    /// Full line address (serves as the tag; the set index is implicit).
    tag: u64,
    dirty: bool,
    last_used: u64,
    inserted: u64,
    /// Bitmask of 8-byte words referenced while resident.
    word_mask: u64,
    /// Bitmask of cores (clamped to 64) that referenced the line.
    sharers: u64,
}

/// One set: ways plus tree-PLRU bits.
#[derive(Debug, Clone, Default)]
struct CacheSet {
    ways: Vec<Option<LineState>>,
    plru_bits: u64,
}

/// A line pushed out of the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictedLine {
    line_address: u64,
    dirty: bool,
    used_words: u32,
    sharers: u32,
}

impl EvictedLine {
    /// The evicted line's address in line units (byte address / line size).
    pub fn line_address(&self) -> u64 {
        self.line_address
    }

    /// Whether the line was dirty (requires a write-back).
    pub fn dirty(&self) -> bool {
        self.dirty
    }

    /// Number of distinct words referenced during residency.
    pub fn used_words(&self) -> u32 {
        self.used_words
    }

    /// Number of distinct cores that referenced the line.
    pub fn sharers(&self) -> u32 {
        self.sharers
    }
}

/// The outcome of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    hit: bool,
    evicted: Option<EvictedLine>,
}

impl AccessOutcome {
    /// Whether the access hit.
    pub fn is_hit(&self) -> bool {
        self.hit
    }

    /// The line displaced by this access, if any.
    pub fn evicted(&self) -> Option<EvictedLine> {
        self.evicted
    }
}

/// A set-associative, write-back, write-allocate cache with selectable
/// replacement policy and optional word-usage / sharer tracking.
///
/// # Examples
///
/// ```
/// use bandwall_cache_sim::{Cache, CacheConfig};
///
/// let mut cache = Cache::new(CacheConfig::new(4096, 64, 4)?);
/// assert!(!cache.access(0x1000, false).is_hit()); // cold miss
/// assert!(cache.access(0x1000, false).is_hit());  // now resident
/// assert_eq!(cache.stats().misses(), 1);
/// # Ok::<(), bandwall_cache_sim::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<CacheSet>,
    stats: CacheStats,
    word_usage: Option<WordUsageStats>,
    sharing: Option<SharingStats>,
    seen_lines: HashSet<u64>,
    tick: u64,
    rng: Rng,
}

impl Cache {
    /// Builds an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the policy is [`ReplacementPolicy::TreePlru`] and the
    /// associativity is not a power of two (the PLRU tree needs a complete
    /// binary tree over the ways).
    pub fn new(config: CacheConfig) -> Self {
        assert!(
            config.policy() != ReplacementPolicy::TreePlru
                || config.associativity().is_power_of_two(),
            "tree-PLRU requires a power-of-two associativity"
        );
        let sets = (0..config.sets())
            .map(|_| CacheSet {
                ways: vec![None; config.associativity() as usize],
                plru_bits: 0,
            })
            .collect();
        Cache {
            config,
            sets,
            stats: CacheStats::new(),
            word_usage: None,
            sharing: None,
            seen_lines: HashSet::new(),
            tick: 0,
            rng: Rng::seed_from_u64(config.policy_seed()),
        }
    }

    /// Enables per-word usage tracking (needed for unused-data studies).
    #[must_use]
    pub fn with_word_tracking(mut self) -> Self {
        self.word_usage = Some(WordUsageStats::new(self.config.words_per_line()));
        self
    }

    /// Enables per-core sharer tracking (needed for Figure 14).
    #[must_use]
    pub fn with_sharer_tracking(mut self) -> Self {
        self.sharing = Some(SharingStats::new());
        self
    }

    /// The cache's geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Access counters.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Word-usage statistics, if tracking is enabled.
    pub fn word_usage(&self) -> Option<&WordUsageStats> {
        self.word_usage.as_ref()
    }

    /// Sharing statistics, if tracking is enabled.
    pub fn sharing(&self) -> Option<&SharingStats> {
        self.sharing.as_ref()
    }

    /// Non-mutating residency check.
    pub fn contains(&self, address: u64) -> bool {
        let (set_idx, tag) = self.config.locate(address);
        self.sets[set_idx as usize]
            .ways
            .iter()
            .flatten()
            .any(|l| l.tag == tag)
    }

    /// Accesses `address` from core 0.
    pub fn access(&mut self, address: u64, is_write: bool) -> AccessOutcome {
        self.access_from(0, address, is_write)
    }

    /// Accesses `address` from `core` (the core id feeds sharer tracking).
    pub fn access_from(&mut self, core: u16, address: u64, is_write: bool) -> AccessOutcome {
        self.tick += 1;
        let (set_idx, tag) = self.config.locate(address);
        let word_bit = 1u64 << ((address % self.config.line_size()) / 8).min(63);
        let core_bit = 1u64 << (core as u64).min(63);
        let tick = self.tick;
        let policy = self.config.policy();
        let assoc = self.sets[set_idx as usize].ways.len();

        // Hit path.
        if let Some(way) = self.sets[set_idx as usize]
            .ways
            .iter()
            .position(|l| l.is_some_and(|l| l.tag == tag))
        {
            let set = &mut self.sets[set_idx as usize];
            let line = set.ways[way].as_mut().expect("hit way is occupied");
            line.last_used = tick;
            line.dirty |= is_write;
            line.word_mask |= word_bit;
            line.sharers |= core_bit;
            if policy == ReplacementPolicy::TreePlru {
                Self::plru_touch(&mut set.plru_bits, assoc, way);
            }
            self.stats.record_hit();
            return AccessOutcome {
                hit: true,
                evicted: None,
            };
        }

        // Miss path: classify, choose a frame, fill.
        let cold = self.seen_lines.insert(tag);
        self.stats.record_miss(cold);

        let victim_way = {
            let set = &self.sets[set_idx as usize];
            match set.ways.iter().position(|l| l.is_none()) {
                Some(empty) => empty,
                None => self.choose_victim(set_idx as usize),
            }
        };

        let set = &mut self.sets[set_idx as usize];
        let evicted = set.ways[victim_way].take().map(|old| EvictedLine {
            line_address: old.tag,
            dirty: old.dirty,
            used_words: old.word_mask.count_ones(),
            sharers: old.sharers.count_ones(),
        });
        if let Some(ev) = &evicted {
            self.stats.record_eviction(ev.dirty);
            if let Some(usage) = &mut self.word_usage {
                usage.record_eviction(ev.used_words);
            }
            if let Some(sharing) = &mut self.sharing {
                sharing.record_eviction(ev.sharers);
            }
        }
        set.ways[victim_way] = Some(LineState {
            tag,
            dirty: is_write,
            last_used: tick,
            inserted: tick,
            word_mask: word_bit,
            sharers: core_bit,
        });
        if policy == ReplacementPolicy::TreePlru {
            Self::plru_touch(&mut set.plru_bits, assoc, victim_way);
        }
        AccessOutcome {
            hit: false,
            evicted,
        }
    }

    /// Picks a victim way in a full set according to the policy.
    fn choose_victim(&mut self, set_idx: usize) -> usize {
        let set = &self.sets[set_idx];
        match self.config.policy() {
            ReplacementPolicy::Lru => Self::min_by_key(&set.ways, |l| l.last_used),
            ReplacementPolicy::Fifo => Self::min_by_key(&set.ways, |l| l.inserted),
            ReplacementPolicy::Random => self.rng.gen_range(0..set.ways.len()),
            ReplacementPolicy::TreePlru => Self::plru_victim(set.plru_bits, set.ways.len()),
        }
    }

    fn min_by_key<F: Fn(&LineState) -> u64>(ways: &[Option<LineState>], key: F) -> usize {
        ways.iter()
            .enumerate()
            .filter_map(|(i, l)| l.as_ref().map(|l| (i, key(l))))
            .min_by_key(|&(_, k)| k)
            .map(|(i, _)| i)
            .expect("choose_victim called on a full set")
    }

    /// Marks `way` as recently used in the PLRU tree: walk from the root
    /// to the leaf, pointing every internal node *away* from the path.
    ///
    /// The tree is stored as a heap in `bits`: node 1 is the root; node
    /// `n`'s children are `2n` and `2n+1`; bit = 0 points left, 1 right.
    /// Requires a power-of-two associativity (checked at construction
    /// time by [`Cache::new`] callers via config validation).
    fn plru_touch(bits: &mut u64, assoc: usize, way: usize) {
        debug_assert!(assoc.is_power_of_two());
        let levels = assoc.trailing_zeros();
        let mut node = 1usize;
        for level in (0..levels).rev() {
            let go_right = (way >> level) & 1 == 1;
            // Point away from where we went.
            if go_right {
                *bits &= !(1 << node);
            } else {
                *bits |= 1 << node;
            }
            node = node * 2 + usize::from(go_right);
        }
    }

    /// Follows the PLRU bits from the root to the pseudo-LRU leaf.
    fn plru_victim(bits: u64, assoc: usize) -> usize {
        debug_assert!(assoc.is_power_of_two());
        let levels = assoc.trailing_zeros();
        let mut node = 1usize;
        let mut way = 0usize;
        for _ in 0..levels {
            let go_right = (bits >> node) & 1 == 1;
            way = way * 2 + usize::from(go_right);
            node = node * 2 + usize::from(go_right);
        }
        way
    }

    /// Removes `address`'s line if resident, returning its state. Counts
    /// as an eviction in the statistics (an invalidation caused by an
    /// external agent, e.g. inclusion enforcement).
    pub fn invalidate(&mut self, address: u64) -> Option<EvictedLine> {
        let ev = self.extract(address)?;
        self.stats.record_eviction(ev.dirty());
        if let Some(usage) = &mut self.word_usage {
            usage.record_eviction(ev.used_words());
        }
        if let Some(sharing) = &mut self.sharing {
            sharing.record_eviction(ev.sharers());
        }
        Some(ev)
    }

    /// Marks `address`'s line dirty if resident (used when a hierarchy
    /// transfers a dirty line between levels). Returns whether the line
    /// was present.
    pub fn mark_dirty(&mut self, address: u64) -> bool {
        let (set_idx, tag) = self.config.locate(address);
        let set = &mut self.sets[set_idx as usize];
        for line in set.ways.iter_mut().flatten() {
            if line.tag == tag {
                line.dirty = true;
                return true;
            }
        }
        false
    }

    /// Removes `address`'s line if resident *without* touching any
    /// statistics — a silent transfer, e.g. an exclusive hierarchy moving
    /// a line from the L2 into the L1.
    pub fn extract(&mut self, address: u64) -> Option<EvictedLine> {
        let (set_idx, tag) = self.config.locate(address);
        let set = &mut self.sets[set_idx as usize];
        let way = set
            .ways
            .iter()
            .position(|l| l.is_some_and(|l| l.tag == tag))?;
        let old = set.ways[way].take().expect("found way is occupied");
        Some(EvictedLine {
            line_address: old.tag,
            dirty: old.dirty,
            used_words: old.word_mask.count_ones(),
            sharers: old.sharers.count_ones(),
        })
    }

    /// Number of currently resident lines.
    pub fn resident_lines(&self) -> usize {
        self.sets
            .iter()
            .map(|s| s.ways.iter().flatten().count())
            .sum()
    }

    /// Evicts everything, reporting dirty lines through the usual stats
    /// (useful to flush write-backs at the end of a measurement window).
    pub fn flush(&mut self) -> Vec<EvictedLine> {
        let mut evicted = Vec::new();
        for set in &mut self.sets {
            for way in &mut set.ways {
                if let Some(old) = way.take() {
                    let ev = EvictedLine {
                        line_address: old.tag,
                        dirty: old.dirty,
                        used_words: old.word_mask.count_ones(),
                        sharers: old.sharers.count_ones(),
                    };
                    self.stats.record_eviction(ev.dirty);
                    if let Some(usage) = &mut self.word_usage {
                        usage.record_eviction(ev.used_words);
                    }
                    if let Some(sharing) = &mut self.sharing {
                        sharing.record_eviction(ev.sharers);
                    }
                    evicted.push(ev);
                }
            }
        }
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ConfigError;

    fn small_cache(policy: ReplacementPolicy) -> Cache {
        // 4 sets × 2 ways × 64 B lines = 512 B.
        Cache::new(
            CacheConfig::new(512, 64, 2)
                .unwrap()
                .with_policy(policy)
                .with_policy_seed(3),
        )
    }

    #[test]
    fn hit_after_fill() {
        let mut c = small_cache(ReplacementPolicy::Lru);
        assert!(!c.access(0, false).is_hit());
        assert!(c.access(0, false).is_hit());
        assert!(c.access(8, false).is_hit(), "same line, different word");
        assert_eq!(c.stats().hits(), 2);
        assert_eq!(c.stats().misses(), 1);
        assert_eq!(c.stats().cold_misses(), 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small_cache(ReplacementPolicy::Lru);
        // Set 0 holds lines with line_addr % 4 == 0: 0, 4, 8 (addresses
        // 0, 1024, 2048 with 64-byte lines and 4 sets).
        c.access(0, false);
        c.access(1024, false);
        c.access(0, false); // refresh line 0
        let out = c.access(2048, false); // evicts line 1024's line (addr 16)
        let ev = out.evicted().unwrap();
        assert_eq!(ev.line_address(), 1024 / 64);
        assert!(c.contains(0));
        assert!(!c.contains(1024));
    }

    #[test]
    fn fifo_ignores_recency() {
        let mut c = small_cache(ReplacementPolicy::Fifo);
        c.access(0, false);
        c.access(1024, false);
        c.access(0, false); // refresh does not help under FIFO
        let out = c.access(2048, false);
        assert_eq!(out.evicted().unwrap().line_address(), 0);
    }

    #[test]
    fn writeback_on_dirty_eviction_only() {
        let mut c = small_cache(ReplacementPolicy::Lru);
        c.access(0, true); // dirty
        c.access(1024, false); // clean
        c.access(2048, false); // evicts line 0 (dirty)
        assert_eq!(c.stats().writebacks(), 1);
        c.access(3072, false); // evicts line 1024 (clean)
        assert_eq!(c.stats().writebacks(), 1);
        assert_eq!(c.stats().evictions(), 2);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = small_cache(ReplacementPolicy::Lru);
        c.access(0, false);
        c.access(0, true); // dirty via hit
        c.access(1024, false);
        let out = c.access(2048, false);
        assert!(out.evicted().unwrap().dirty());
    }

    #[test]
    fn word_usage_tracking() {
        let mut c = small_cache(ReplacementPolicy::Lru).with_word_tracking();
        c.access(0, false); // word 0
        c.access(16, false); // word 2 of the same line
        c.access(1024, false);
        c.access(2048, false); // evicts line 0 with 2 used words
        let usage = c.word_usage().unwrap();
        assert_eq!(usage.evicted_lines(), 1);
        // 2 of 8 words used → 75% unused.
        assert!((usage.unused_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn sharer_tracking() {
        let mut c = small_cache(ReplacementPolicy::Lru).with_sharer_tracking();
        c.access_from(0, 0, false);
        c.access_from(3, 0, false); // second core touches line 0
        c.access_from(1, 1024, false); // single-core line
        c.access_from(0, 2048, false); // evicts line 0 (2 sharers)
        c.access_from(0, 3072, false); // evicts line 1024 (1 sharer)
        let sharing = c.sharing().unwrap();
        assert_eq!(sharing.evicted_lines(), 2);
        assert_eq!(sharing.shared_lines(), 1);
        assert_eq!(sharing.shared_fraction(), 0.5);
    }

    #[test]
    fn random_policy_is_deterministic_per_seed() {
        let run = |seed| {
            let mut c = Cache::new(
                CacheConfig::new(512, 64, 2)
                    .unwrap()
                    .with_policy(ReplacementPolicy::Random)
                    .with_policy_seed(seed),
            );
            let mut evictions = Vec::new();
            for i in 0..50u64 {
                if let Some(ev) = c.access(i * 1024, false).evicted() {
                    evictions.push(ev.line_address());
                }
            }
            evictions
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn tree_plru_behaves_like_lru_for_two_ways() {
        // With 2 ways the PLRU tree is exact LRU.
        let mut plru = small_cache(ReplacementPolicy::TreePlru);
        let mut lru = small_cache(ReplacementPolicy::Lru);
        let pattern: Vec<u64> = vec![0, 1024, 0, 2048, 1024, 0, 3072, 2048, 0, 1024];
        for &a in &pattern {
            let ph = plru.access(a, false).is_hit();
            let lh = lru.access(a, false).is_hit();
            assert_eq!(ph, lh, "divergence at address {a}");
        }
    }

    #[test]
    fn tree_plru_victim_is_untouched_way() {
        // 1 set × 4 ways.
        let mut c = Cache::new(
            CacheConfig::new(256, 64, 4)
                .unwrap()
                .with_policy(ReplacementPolicy::TreePlru),
        );
        for line in 0..4u64 {
            c.access(line * 64, false);
        }
        // Touch lines 0..3 in order; PLRU victim should be line 0.
        let out = c.access(4 * 64, false);
        assert_eq!(out.evicted().unwrap().line_address(), 0);
    }

    #[test]
    fn resident_lines_counts() {
        let mut c = small_cache(ReplacementPolicy::Lru);
        assert_eq!(c.resident_lines(), 0);
        c.access(0, false);
        c.access(64, false);
        assert_eq!(c.resident_lines(), 2);
    }

    #[test]
    fn flush_reports_dirty_lines() {
        let mut c = small_cache(ReplacementPolicy::Lru);
        c.access(0, true);
        c.access(64, false);
        let flushed = c.flush();
        assert_eq!(flushed.len(), 2);
        assert_eq!(flushed.iter().filter(|e| e.dirty()).count(), 1);
        assert_eq!(c.resident_lines(), 0);
        assert_eq!(c.stats().evictions(), 2);
    }

    #[test]
    fn conflict_misses_in_direct_mapped() {
        let mut c = Cache::new(CacheConfig::new(256, 64, 1).unwrap());
        // Two lines mapping to the same set (4 sets).
        c.access(0, false);
        c.access(4 * 64, false);
        assert!(!c.access(0, false).is_hit(), "conflict must have evicted");
        // Not a cold miss the second time.
        assert_eq!(c.stats().cold_misses(), 2);
        assert_eq!(c.stats().misses(), 3);
    }

    #[test]
    fn geometry_errors_bubble_up() {
        let err = CacheConfig::new(100, 64, 2).unwrap_err();
        assert!(matches!(err, ConfigError::Indivisible { .. }));
    }

    #[test]
    fn invalidate_removes_and_counts() {
        let mut c = small_cache(ReplacementPolicy::Lru);
        c.access(0, true);
        let ev = c.invalidate(0).unwrap();
        assert!(ev.dirty());
        assert_eq!(c.stats().evictions(), 1);
        assert_eq!(c.stats().writebacks(), 1);
        assert!(!c.contains(0));
        assert!(c.invalidate(0).is_none());
    }

    #[test]
    fn extract_is_silent() {
        let mut c = small_cache(ReplacementPolicy::Lru);
        c.access(0, false);
        let ev = c.extract(0).unwrap();
        assert!(!ev.dirty());
        assert_eq!(c.stats().evictions(), 0);
        assert!(!c.contains(0));
        assert!(c.extract(64).is_none());
    }

    #[test]
    fn fully_associative_lru_matches_stack_property() {
        // A fully-associative LRU cache of N lines must hit iff the reuse
        // distance is < N. Cross-check against the trace crate's profiler.
        use bandwall_trace::{MissRateProbe, StackDistanceTrace, TraceSource};
        let lines: usize = 64;
        let mut cache = Cache::new(CacheConfig::new(64 * lines as u64, 64, lines as u32).unwrap());
        let mut probe = MissRateProbe::new(&[lines]);
        let mut trace = StackDistanceTrace::builder(0.5)
            .seed(8)
            .max_distance(1 << 12)
            .build();
        let mut cache_misses = 0u64;
        let n = 20_000;
        for a in trace.iter().take(n) {
            let line = a.address() / 64;
            probe.observe(line);
            if !cache.access(line * 64, false).is_hit() {
                cache_misses += 1;
            }
        }
        let probe_misses = (probe.miss_rates()[0] * n as f64).round() as u64;
        assert_eq!(cache_misses, probe_misses);
    }
}
